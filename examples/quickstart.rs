//! Quickstart: run the paper's two kernels and both GEMM baselines on one
//! problem each, verify their outputs against the CPU reference, and print
//! the modeled performance.
//!
//! Run with: `cargo run --release --example quickstart`

use kconv::prelude::*;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GpuSpec::kepler_k40m();
    println!("simulated device: {spec}");

    // ------------------------------------------------------------------
    // Special case: one input channel (paper section 3).
    // ------------------------------------------------------------------
    banner("special case: 512x512 grayscale image, 8 filters of 3x3");
    let problem = ConvProblem::special(512, 8, 3);
    let image = random_maps(1, 512, 512, 1);
    let filters = random_filters(8, 1, 3, 2);

    let engines: Vec<Box<dyn Convolution>> = vec![
        Box::new(SpecialConv::default()),
        Box::new(SpecialConv::new(SpecialConfig::kepler_unmatched())),
        Box::new(ImplicitGemmConv::default()),
    ];
    for engine in engines {
        let mut gpu = Gpu::new(spec.clone());
        let run = engine.run(&mut gpu, &problem, &image, &filters, SimMode::Full)?;
        run.verify_executed(&problem, &image, &filters, CONV_TOL)
            .expect("output verified against the CPU reference");
        println!(
            "{:<38} {:>8.3} ms   {:>7.1} GFlop/s   (verified)",
            engine.name(),
            run.report.seconds() * 1e3,
            run.effective_gflops(&problem),
        );
    }

    // ------------------------------------------------------------------
    // General case: a CNN layer (paper section 4).
    // ------------------------------------------------------------------
    banner("general case: 64x64 feature maps, C=64 -> F=64, 3x3");
    let problem = ConvProblem::general(66, 64, 64, 3);
    let maps = random_maps(64, 66, 66, 3);
    let filters = random_filters(64, 64, 3, 4);

    let engines: Vec<Box<dyn Convolution>> = vec![
        Box::new(GeneralConv::table1(3)),
        Box::new(ImplicitGemmConv::default()),
        Box::new(ExplicitGemmConv::default()),
    ];
    for engine in engines {
        let mut gpu = Gpu::new(spec.clone());
        let run = engine.run(&mut gpu, &problem, &maps, &filters, SimMode::Full)?;
        run.verify_executed(&problem, &maps, &filters, CONV_TOL)
            .expect("output verified against the CPU reference");
        println!(
            "{:<38} {:>8.3} ms   {:>7.1} GFlop/s   (verified)",
            engine.name(),
            run.report.seconds() * 1e3,
            run.effective_gflops(&problem),
        );
    }

    println!(
        "\nTimes are the simulator's trace-driven model of a Tesla K40m; see\n\
         EXPERIMENTS.md for how they compare to the paper's measurements."
    );
    Ok(())
}

//! CNN inference with per-layer engine selection and timing — the paper's
//! headline workload for the general-case kernel.
//!
//! Runs two stacks:
//! * a LeNet-flavoured stack on a grayscale input, whose first layer is
//!   exactly the paper's special case (C = 1);
//! * a VGG-flavoured stack on an RGB input, exercising the general kernel
//!   at growing channel counts;
//!
//! and compares the automatic engine against forcing the cuDNN-like
//! baseline everywhere.
//!
//! Run with: `cargo run --release --example cnn_inference`

use kconv::prelude::*;

fn run_stack(
    name: &str,
    stack: &LayerStack,
    input: FeatureMaps,
    engine: Engine,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let run = stack.run(&mut gpu, input, engine, SimMode::Sampled(4))?;
    println!("\n{name} with engine {engine:?}:");
    println!(
        "  {:<22} {:<28} {:>9} {:>10}",
        "layer", "engine", "time(ms)", "GFlop/s"
    );
    for layer in &run.layers {
        println!(
            "  {:<22} {:<28} {:>9.3} {:>10.1}",
            layer.name,
            layer.engine,
            layer.seconds * 1e3,
            layer.gflops
        );
    }
    println!(
        "  total conv time: {:.3} ms; final maps: {}x{}x{}",
        run.total_seconds() * 1e3,
        run.output.channels(),
        run.output.height(),
        run.output.width()
    );
    Ok(run.total_seconds())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("CNN inference on the simulated {}", GpuSpec::kepler_k40m());

    // LeNet-flavoured, grayscale 68x68.
    let lenet = LayerStack::lenet_like();
    let gray = random_maps(1, 68, 68, 7);
    run_stack("LeNet-like", &lenet, gray.clone(), Engine::Auto)?;

    // VGG-flavoured, RGB 130x130.
    let vgg = LayerStack::vgg_like();
    let rgb = random_maps(3, 130, 130, 8);
    let t_auto = run_stack("VGG-like", &vgg, rgb.clone(), Engine::Auto)?;
    let t_gemm = run_stack("VGG-like", &vgg, rgb, Engine::ImplicitGemm)?;

    println!(
        "\nVGG-like stack: the paper's kernels are {:.2}x faster end-to-end than\n\
         the cuDNN-like baseline under the model (paper: +35.5% on average for\n\
         individual general-case layers).",
        t_gemm / t_auto
    );
    Ok(())
}

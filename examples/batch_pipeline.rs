//! Batched inference with narrow storage and a full launch report — the
//! library's inspection surfaces in one place.
//!
//! Runs a batch of grayscale frames through the special-case kernel in
//! three storage precisions (f32, fp16, int8), prints the aggregate
//! throughput of each, and dumps the detailed simulator report for the f32
//! run (coalescing, bank-conflict replay factor, occupancy, ...).
//!
//! Run with: `cargo run --release --example batch_pipeline`

use kconv::core::{run_batch, SpecialConvF16, SpecialConvI8};
use kconv::prelude::*;
use kconv::sim::render_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GpuSpec::kepler_k40m();
    let problem = ConvProblem::special(512, 16, 3);
    let frames: Vec<FeatureMaps> = (0..4).map(|i| random_maps(1, 512, 512, 40 + i)).collect();
    let filters = random_filters(16, 1, 3, 50);

    println!(
        "batch of {} frames, {problem}, on simulated {spec}\n",
        frames.len()
    );

    let engines: Vec<Box<dyn Convolution>> = vec![
        Box::new(SpecialConv::default()),
        Box::new(SpecialConvF16::kepler_matched()),
        Box::new(SpecialConvI8::kepler_matched()),
    ];
    let mut f32_first_report = None;
    for engine in engines {
        let mut gpu = Gpu::new(spec.clone());
        let batch = run_batch(
            engine.as_ref(),
            &mut gpu,
            &problem,
            &frames,
            &filters,
            SimMode::Sampled(4),
        )?;
        println!(
            "{:<34} {:>8.3} ms total   {:>7.1} GFlop/s   launch overhead {:.2}%",
            engine.name(),
            batch.total_seconds() * 1e3,
            batch.effective_gflops(&problem),
            100.0 * batch.launch_overhead_share(),
        );
        if f32_first_report.is_none() {
            f32_first_report = Some(batch.runs[0].report.clone());
        }
    }

    // Fused batch: one grid over batch x tiles instead of one launch per
    // frame — the overhead and SM-imbalance win, in one call.
    let mut gpu = Gpu::new(spec.clone());
    let fused = SpecialConv::default().run_fused_batch(
        &mut gpu,
        &problem,
        &frames,
        &filters,
        SimMode::Sampled(4),
    )?;
    println!(
        "{:<34} {:>8.3} ms total   {:>7.1} GFlop/s   (single launch)",
        "special f32, fused batch",
        fused.report.seconds() * 1e3,
        problem.flops() as f64 * frames.len() as f64 / fused.report.seconds() / 1e9,
    );

    println!("\ndetailed report of the first f32 launch:\n");
    println!("{}", render_report(&f32_first_report.expect("ran"), &spec));
    println!(
        "Narrow storage wins by exactly its traffic ratio here: the special\n\
         kernel at large F is output-write-bound, and fp16/int8 halve/quarter\n\
         that stream while the matched access width keeps the shared-memory\n\
         instruction count of the f32 kernel (paper, section 6)."
    );
    Ok(())
}

//! Edge detection and vessel-style template matching on a synthetic scene —
//! the classic image-processing workloads the paper's special-case kernel
//! targets.
//!
//! Builds a synthetic image containing a bright disk and two bars, then:
//! 1. Gaussian-smooths it,
//! 2. runs Sobel edge detection (one launch, both gradients),
//! 3. runs a 12-orientation matched-filter bank (one launch, 12 maps)
//!    and reports the detected line orientations,
//!
//! rendering the edge map as ASCII art.
//!
//! Run with: `cargo run --release --example edge_detection`

use kconv::apps::gallery;
use kconv::prelude::*;

/// A synthetic test scene: a disk, a vertical bar and a diagonal bar.
fn scene(n: usize) -> Image {
    Image::from_fn(n, n, |y, x| {
        let (fy, fx) = (y as f32, x as f32);
        let c = n as f32 / 2.0;
        let disk = ((fy - c * 0.5).powi(2) + (fx - c * 0.5).powi(2)).sqrt() < n as f32 * 0.12;
        let vbar = (x as i64 - (n as i64 * 3 / 4)).abs() <= 1 && y > n / 8;
        let diag = (y as i64 - x as i64 + (n / 4) as i64).abs() <= 1;
        if disk || vbar || diag {
            1.0
        } else {
            0.0
        }
    })
}

fn ascii_render(img: &Image, threshold: f32, step: usize) -> String {
    let mut out = String::new();
    let mut y = 0;
    while y < img.height() {
        let mut x = 0;
        while x < img.width() {
            out.push(if img.get(y, x) > threshold { '#' } else { '.' });
            x += step;
        }
        out.push('\n');
        y += step * 2; // terminal cells are ~2x taller than wide
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
    let image = scene(256);
    println!("input scene (256x256):");
    println!("{}", ascii_render(&image, 0.5, 4));

    // 1. Smooth.
    let (smoothed, report) = smooth(&mut gpu, &image, 5, 1.0, Engine::Auto)?;
    println!(
        "gaussian 5x5: {:.3} ms modeled ({} B of global-memory bus traffic)",
        report.seconds() * 1e3,
        report.stats.gm_bytes_bus(),
    );

    // 2. Edges.
    let edges = edge_detect(&mut gpu, &smoothed, Engine::Auto)?;
    println!(
        "sobel pair:   {:.3} ms modeled, {:.1} cycles/access shared-memory replay factor",
        edges.report.seconds() * 1e3,
        edges.report.stats.sm_replay_factor(),
    );
    println!("\nedge magnitude:");
    println!("{}", ascii_render(&edges.magnitude, 0.3, 4));

    // 3. Matched filters (the vessel-detection workload of the paper's
    //    reference [2]): 12 orientations in a single launch.
    let bank = gallery::matched_line_bank(9, 12);
    let matches = template_match(&mut gpu, &smoothed, &bank, Engine::Auto)?;
    println!(
        "matched-filter bank (12 orientations of 9x9): {:.3} ms modeled",
        matches.report.seconds() * 1e3
    );
    for d in &matches.peaks {
        let angle = 180.0 * d.template as f32 / 12.0;
        println!(
            "  orientation {:>5.1} deg: peak {:>6.2} at ({}, {})",
            angle, d.score, d.y, d.x
        );
    }
    // The two bars should dominate: vertical (90 deg) and diagonal (45 deg).
    let best = matches
        .peaks
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("12 orientations");
    println!(
        "\nstrongest line orientation: {:.0} deg (expected 45 or 90)",
        180.0 * best.template as f32 / 12.0
    );
    Ok(())
}

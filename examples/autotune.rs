//! Design-space exploration from the public API — how Table 1 was made.
//!
//! Explores the general-kernel configuration space for a user-supplied
//! problem shape and prints the top candidates with their modeled
//! throughput and the resources that limit them.
//!
//! Run with: `cargo run --release --example autotune [-- K [C] [F]]`

use kconv::core::tune::{candidate_space, explore_general, is_feasible};
use kconv::prelude::*;
use kconv::sim::occupancy;
use kconv_sim::LaunchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let k = args.first().copied().unwrap_or(3);
    let c = args.get(1).copied().unwrap_or(64);
    let f = args.get(2).copied().unwrap_or(64);

    let spec = GpuSpec::kepler_k40m();
    let problem = ConvProblem::general(64 + k - 1, c, f, k);
    println!("exploring general-kernel configs for {problem} on {spec}\n");

    let space = candidate_space();
    let feasible = space
        .iter()
        .filter(|cfg| is_feasible(&spec, cfg, &problem))
        .count();
    println!("{} candidates, {feasible} feasible\n", space.len());

    let results = explore_general(&spec, &problem, &space, 2)?;
    println!(
        "{:<4} {:>3} {:>2} {:>5} {:>4} {:>4} {:>5} {:>9}  {:<14} smem",
        "rank", "W", "H", "F_TB", "W_T", "F_T", "C_SH", "GFlop/s", "limiter"
    );
    for (i, r) in results.iter().take(10).enumerate() {
        let cfg = &r.config;
        let launch = LaunchConfig::new("probe", 1024, cfg.threads())
            .with_smem(cfg.smem_bytes(k))
            .with_regs(cfg.regs_per_thread(k));
        let occ = occupancy(&spec, &launch)?;
        println!(
            "{:<4} {:>3} {:>2} {:>5} {:>4} {:>4} {:>5} {:>9.0}  {:<14} {} B",
            i + 1,
            cfg.width,
            cfg.height,
            cfg.f_tb,
            cfg.w_t,
            cfg.f_t,
            cfg.c_sh,
            r.gflops,
            occ.limiter,
            cfg.smem_bytes(k)
        );
    }

    let paper = GeneralConfig::table1(k);
    if let Some(pos) = results.iter().position(|r| r.config == paper) {
        println!(
            "\nthe paper's Table 1 config for {k}x{k} ranks #{} of {} here\n\
             (a different machine model reshuffles near-ties; see EXPERIMENTS.md)",
            pos + 1,
            results.len()
        );
    }
    Ok(())
}

//! # kconv-replay — re-price captured kernel traces under any [`GpuSpec`]
//!
//! The paper's central observation is that memory cost is a function of
//! *addresses* and *architecture*, not of kernel code: the same warp
//! access pattern that runs conflict-free on Fermi's 4-byte shared-memory
//! banks wastes half the SM bandwidth on Kepler's 8-byte banks (the
//! bank-width mismatch factor, eq. 1). A KTRC v2+ trace records exactly
//! the address side of that function — per-lane byte addresses, live
//! masks and lane widths for every warp memory instruction — so the cost
//! side can be recomputed offline for an architecture the kernel never
//! ran on.
//!
//! [`replay`] is that recomputation. It consumes a binary trace and a
//! [`TargetSpec`], re-derives every architecture-dependent counter
//! (global-memory coalesced transactions, read-only-cache residency,
//! shared-memory bank-conflict replay cycles, constant-cache
//! serialization and misses) from the recorded addresses using the *same*
//! pricing functions the live simulator charges with
//! ([`kconv_sim::pricing`]), and re-runs the timing model on the result.
//! Replaying a trace under its own capture spec therefore reproduces the
//! live launch's [`KernelStats`] bit for bit — the differential gate the
//! `trace_report` harness and CI enforce — while replaying under a
//! different spec answers the what-if question directly: *what would this
//! exact kernel execution have cost on that machine?*
//!
//! What is recomputable from the trace alone and what is not:
//!
//! * **Recomputed per event**: GM transactions/bus bytes (coalescing is
//!   `segment_count` over addresses), read-only-cache hits vs misses
//!   (FIFO residency per block), SM conflict cycles/broadcasts (bank
//!   math over addresses), CM serialization/misses (distinct words and
//!   first-touch lines). These may all legitimately differ from the
//!   values recorded in the trace events when the target spec differs
//!   from the capture spec.
//! * **Grafted from the launch-end record** (architecture-independent,
//!   not re-derivable from memory events): `fma_lane_ops`,
//!   `alu_lane_ops`, `barriers`.
//! * **Reconstructed from the header**: launch geometry and resource
//!   declaration, which feed occupancy and the timing model; sampled
//!   launches are re-scaled with the same round-to-nearest rule the
//!   live launcher uses.
//!
//! The crate is a **batch facility**, fast in both loops. Inner loop:
//! [`Trace::decode`] parses the byte stream once into flat slabs, and
//! [`replay_decoded`] / [`replay_launch`] re-price the in-memory form —
//! an N-spec sweep pays the varint decoder exactly once ([`replay`] is
//! the decode-once wrapper; [`replay_streamed`] keeps the single-pass
//! byte path for one-shot replay of huge traces). Outer loop: the
//! [`farm`] module fans the pure trace×spec cells of a sweep over a
//! scoped thread pool with deterministic, thread-count-invariant output.
//!
//! ```
//! use kconv_replay::{replay, TargetSpec};
//! use kconv_sim::{lane_addrs, Gpu, GpuSpec, LaneMask, LaunchConfig, SimMode};
//! use kconv_trace::{SharedBuffer, TraceWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let src = gpu.alloc_f32(32)?;
//! gpu.upload_f32(src, &[1.0; 32])?;
//! let buf = SharedBuffer::new();
//! gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
//! let report = gpu.launch(&LaunchConfig::new("read", 1, 32), SimMode::Full, |blk| {
//!     blk.each_warp(|w| {
//!         w.ld_global::<1>(&lane_addrs(src.f32_addr(0), 4), LaneMask::ALL);
//!     });
//! })?;
//! gpu.set_trace_sink(None);
//!
//! // Under the capture spec the replay is bit-identical to the live run.
//! let replayed = replay(&buf.take(), &TargetSpec::Capture)?;
//! assert_eq!(replayed[0].stats, report.stats);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod farm;

use std::collections::HashSet;

use kconv_sim::pricing::{
    bank_conflict_cycles, for_each_unit, ro_capacity_lines, segment_count, RoCache,
};
use kconv_sim::{
    timing, GpuSpec, KernelStats, LaneMask, LaunchConfig, Timing, TraceEvent, TraceOp, WarpAddrs,
};
use kconv_trace::{read_trace, LaunchEnd, LaunchHeader, TraceVisitor};

pub use farm::{sweep, sweep_cells, SweepCell};
pub use kconv_trace::{DecodedLaunch, Trace, TraceError};

/// Which architecture to price the replay under.
#[derive(Debug, Clone)]
pub enum TargetSpec {
    /// The spec embedded in each launch header (KTRC v2). Replaying a v2
    /// trace this way reproduces the live counters bit-exactly; v1 traces
    /// carry no spec and fail with [`ReplayError::MissingCaptureSpec`].
    Capture,
    /// An explicit spec — the what-if case, and the only way to replay a
    /// v1 trace (`--assume-spec` in the CLIs).
    Spec(GpuSpec),
}

/// Errors from [`replay`].
#[derive(Debug)]
pub enum ReplayError {
    /// The trace bytes could not be parsed.
    Trace(TraceError),
    /// [`TargetSpec::Capture`] was requested but a launch header carries
    /// no embedded spec (a v1 trace).
    MissingCaptureSpec {
        /// Kernel name of the offending launch.
        kernel: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "replay: {e}"),
            ReplayError::MissingCaptureSpec { kernel } => write!(
                f,
                "replay: launch '{kernel}' has no embedded capture spec (v1 trace); \
                 pass an explicit target spec (--assume-spec)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            ReplayError::MissingCaptureSpec { .. } => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

/// Replayed totals for one [`TraceOp`] kind (unscaled: the events actually
/// present in the trace, before any sampled-launch extrapolation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Warp instructions of this kind.
    pub events: u64,
    /// Active lanes summed over those instructions.
    pub lane_accesses: u64,
    /// Bytes the active lanes requested (`mask.count() * lane_bytes`).
    /// Spec-independent: a sweep over target specs must leave this fixed.
    pub useful_bytes: u64,
    /// Re-priced global-memory bus transactions (0 for SM/CM ops).
    pub transactions: u64,
    /// Re-priced SM/CM pipeline cycles (0 for GM ops).
    pub cycles: u64,
}

/// One launch of a trace, re-priced under a target architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Kernel name from the launch header.
    pub kernel: String,
    /// Blocks the captured grid logically contained.
    pub grid_blocks: u64,
    /// Blocks whose events are in the trace (fewer when sampled).
    pub executed_blocks: u64,
    /// The spec embedded in the launch header (`None` for v1 traces).
    pub capture_spec: Option<GpuSpec>,
    /// The spec this replay was priced under.
    pub target_spec: GpuSpec,
    /// Re-priced counters for the full grid — scaled with the live
    /// launcher's rule when the capture was sampled. Under the capture
    /// spec these equal the live launch's stats bit for bit.
    pub stats: KernelStats,
    /// Unscaled per-op totals, indexed by [`TraceOp::index`].
    pub per_op: [OpCost; TraceOp::COUNT],
    /// Timing-model evaluation of `stats` under the target spec. `None`
    /// for aborted launches or when the launch cannot run on the target
    /// (see `timing_error`).
    pub timing: Option<Timing>,
    /// Why the timing model could not run (e.g. the captured block shape
    /// exceeds the target's occupancy limits), if it could not.
    pub timing_error: Option<String>,
    /// Whether the capture aborted (faulted launch / truncated trace) —
    /// the stats then cover only the clean prefix of blocks, unscaled.
    pub aborted: bool,
}

impl ReplayReport {
    /// Replayed totals for one op kind.
    pub fn op(&self, op: TraceOp) -> &OpCost {
        &self.per_op[op.index()]
    }

    /// Total shared-memory pipeline cycles (loads + stores, replays
    /// included) of the full-grid stats.
    pub fn sm_cycles(&self) -> u64 {
        self.stats.sm_ld_cycles + self.stats.sm_st_cycles
    }

    /// Shared-memory bandwidth waste: bytes the SM pipeline *moved*
    /// (cycles × full bank-row width) per byte the lanes *requested*.
    /// 1.0 is a perfectly matched access pattern; the paper's bank-width
    /// mismatch inflates this by exactly the mismatch factor `n` (eq. 1).
    /// 0.0 when the launch touched no shared memory.
    pub fn sm_waste(&self) -> f64 {
        if self.stats.sm_bytes_useful == 0 {
            return 0.0;
        }
        (self.sm_cycles() * self.target_spec.smem_bytes_per_cycle()) as f64
            / self.stats.sm_bytes_useful as f64
    }

    /// Total re-priced global-memory bus transactions (loads + stores).
    pub fn gm_transactions(&self) -> u64 {
        self.stats.gm_ld_transactions + self.stats.gm_st_transactions
    }
}

/// The shared pricing core: one launch being re-priced, fed either by the
/// streaming byte visitor ([`replay_streamed`]) or by the decoded slab
/// walker ([`replay_launch`]). Both paths go through the same three
/// methods, which is what makes the decoded ≡ streamed differential hold
/// by construction.
struct LaunchAccum {
    header: LaunchHeader,
    spec: GpuSpec,
    stats: KernelStats,
    per_op: [OpCost; TraceOp::COUNT],
    /// Per-block read-only (texture) cache, fresh at each `block_begin` —
    /// the same reset discipline as the live simulator.
    ro: RoCache,
    /// Launch-scoped constant-cache residency: lines (address ÷ line
    /// bytes) touched so far. The live model never evicts within a
    /// launch, so a `HashSet` reproduces its miss count exactly.
    cm_lines: HashSet<u64>,
}

impl LaunchAccum {
    fn begin(header: LaunchHeader, spec: GpuSpec) -> Self {
        let ro_capacity = ro_capacity_lines(spec.ro_cache_bytes, spec.gm_transaction_bytes);
        LaunchAccum {
            header,
            spec,
            stats: KernelStats::default(),
            per_op: [OpCost::default(); TraceOp::COUNT],
            ro: RoCache::new(ro_capacity),
            cm_lines: HashSet::new(),
        }
    }

    fn block_begin(&mut self) {
        self.stats.blocks_executed += 1;
        // The read-only cache is per-SM, per-block residency in the live
        // model: fresh for every block.
        self.ro = RoCache::new(ro_capacity_lines(
            self.spec.ro_cache_bytes,
            self.spec.gm_transaction_bytes,
        ));
    }

    /// Re-prices one event, updating the stats exactly the way the live
    /// memory models charge their counters (`GmPlane`, `SharedMemory`,
    /// `CmPlane` in `kconv-sim`).
    fn event(&mut self, op: TraceOp, mask: LaneMask, lane_bytes: u32, addrs: &WarpAddrs) {
        let (tx, cycles) = self.price(op, mask, lane_bytes, addrs);
        let t = &mut self.per_op[op.index()];
        t.events += 1;
        t.lane_accesses += u64::from(mask.count());
        t.useful_bytes += u64::from(mask.count()) * u64::from(lane_bytes);
        t.transactions += tx;
        t.cycles += cycles;
    }

    /// Returns the (transactions, cycles) pair for the per-op table.
    fn price(
        &mut self,
        op: TraceOp,
        mask: LaneMask,
        lane_bytes: u32,
        addrs: &WarpAddrs,
    ) -> (u64, u64) {
        let spec = &self.spec;
        let stats = &mut self.stats;
        let ro = &mut self.ro;
        let cm_lines = &mut self.cm_lines;
        let width = u64::from(lane_bytes);
        let useful = u64::from(mask.count()) * width;
        match op {
            TraceOp::GmLd => {
                let seg = spec.gm_transaction_bytes;
                let segs = segment_count(addrs, width, mask, seg);
                stats.gm_ld_requests += 1;
                stats.gm_ld_transactions += segs;
                stats.gm_ld_bytes_bus += segs * seg;
                stats.gm_ld_bytes_useful += useful;
                (segs, 0)
            }
            TraceOp::GmSt => {
                let seg = spec.gm_store_transaction_bytes;
                let segs = segment_count(addrs, width, mask, seg);
                stats.gm_st_requests += 1;
                stats.gm_st_transactions += segs;
                stats.gm_st_bytes_bus += segs * seg;
                stats.gm_st_bytes_useful += useful;
                (segs, 0)
            }
            TraceOp::GmLdRo => {
                let seg = spec.gm_transaction_bytes;
                let mut misses = 0u64;
                for_each_unit(addrs, width, mask, seg, |line, first_visit| {
                    if first_visit {
                        if ro.touch(line) {
                            stats.gm_ro_hits += 1;
                        } else {
                            misses += 1;
                        }
                    }
                });
                stats.gm_ld_requests += 1;
                stats.gm_ld_transactions += misses;
                stats.gm_ld_bytes_bus += misses * seg;
                stats.gm_ld_bytes_useful += useful;
                (misses, 0)
            }
            TraceOp::SmLd | TraceOp::SmSt => {
                let out =
                    bank_conflict_cycles(addrs, width, mask, spec.smem_banks, spec.bank_width);
                if op == TraceOp::SmLd {
                    stats.sm_ld_requests += 1;
                    stats.sm_ld_cycles += out.cycles;
                } else {
                    stats.sm_st_requests += 1;
                    stats.sm_st_cycles += out.cycles;
                }
                stats.sm_bytes_useful += useful;
                stats.sm_broadcasts += u64::from(out.broadcast);
                stats.sm_conflict_histogram[KernelStats::conflict_bucket(out.cycles)] += 1;
                (0, out.cycles)
            }
            TraceOp::CmLd => {
                // The live model dedups at word (not lane-width)
                // granularity and counts a first-touched line as a miss.
                // Distinct counting runs on the dispatched lane backend;
                // line touching is an idempotent set insert, deduped to
                // distinct lines before probing the set. The dominant
                // constant-memory pattern is a fully-uniform broadcast,
                // which one lane-engine bounds pass resolves to one
                // distinct address and one probe — not thirty-two.
                let mut touch = |line: u64| {
                    if cm_lines.insert(line) {
                        stats.cm_misses += 1;
                    }
                };
                let line_bytes = spec.cm_line_bytes;
                let distinct = match kconv_sim::mem::lanes::unit_bounds(addrs, 1, mask, 1) {
                    None => 0,
                    Some((lo, hi)) if lo == hi => {
                        touch(lo / line_bytes);
                        1
                    }
                    Some(_) => {
                        let distinct = segment_count(addrs, 1, mask, 1);
                        if line_bytes.is_power_of_two() {
                            for_each_unit(addrs, 1, mask, line_bytes, |line, first_visit| {
                                if first_visit {
                                    touch(line);
                                }
                            });
                        } else {
                            for_each_unit(addrs, 1, mask, 1, |a, first_visit| {
                                if first_visit {
                                    touch(a / line_bytes);
                                }
                            });
                        }
                        distinct
                    }
                };
                let cycles = distinct.saturating_sub(1);
                stats.cm_requests += 1;
                stats.cm_cycles += cycles;
                (0, cycles)
            }
            TraceOp::Bar => {
                // Barrier arrivals touch no memory and are
                // architecture-independent: the counters come from the
                // launch-end graft, so repricing charges nothing here.
                (0, 0)
            }
        }
    }

    fn finish(mut self, end: &LaunchEnd) -> ReplayReport {
        let grid = self.header.grid_blocks;
        let executed = self.stats.blocks_executed;
        if end.aborted {
            // A faulted capture has no final live stats: report the clean
            // prefix as-is, unscaled.
            self.stats.blocks_total = grid;
        } else if executed == grid {
            self.stats.blocks_total = grid;
        } else {
            // Sampled capture: extrapolate with the live launcher's
            // round-to-nearest rule.
            self.stats = self.stats.scaled_to_blocks(grid, executed.max(1));
        }
        // Arithmetic and barrier counts are not memory events — graft
        // them from the (already scaled) launch-end stats. v1 ends carry
        // only the FMA count.
        if let Some(live) = &end.stats {
            self.stats.fma_lane_ops = live.fma_lane_ops;
            self.stats.alu_lane_ops = live.alu_lane_ops;
            self.stats.barriers = live.barriers;
            self.stats.bar_syncs = live.bar_syncs;
        } else {
            self.stats.fma_lane_ops = end.fma_lane_ops;
        }
        let (timing, timing_error) = if end.aborted {
            (None, None)
        } else {
            let cfg = LaunchConfig {
                name: self.header.kernel.clone(),
                blocks: grid as usize,
                threads_per_block: self.header.threads_per_block as usize,
                smem_bytes: self.header.smem_bytes as u32,
                regs_per_thread: self.header.regs_per_thread as u32,
                overlap: self.header.overlap,
            };
            match timing::evaluate(&self.spec, &cfg, &self.stats) {
                Ok(t) => (Some(t), None),
                Err(e) => (None, Some(e.to_string())),
            }
        };
        ReplayReport {
            kernel: self.header.kernel,
            grid_blocks: grid,
            executed_blocks: executed,
            capture_spec: self.header.spec,
            target_spec: self.spec,
            stats: self.stats,
            per_op: self.per_op,
            timing,
            timing_error,
            aborted: end.aborted,
        }
    }
}

/// Resolves the pricing spec for one launch header under `target`.
fn resolve_spec(header: &LaunchHeader, target: &TargetSpec) -> Result<GpuSpec, ReplayError> {
    match target {
        TargetSpec::Spec(s) => Ok(s.clone()),
        TargetSpec::Capture => header
            .spec
            .clone()
            .ok_or_else(|| ReplayError::MissingCaptureSpec {
                kernel: header.kernel.clone(),
            }),
    }
}

/// The streaming replay engine: a [`TraceVisitor`] feeding [`LaunchAccum`].
struct Engine<'t> {
    target: &'t TargetSpec,
    done: Vec<ReplayReport>,
    open: Option<LaunchAccum>,
    missing_spec: Option<String>,
}

impl TraceVisitor for Engine<'_> {
    fn launch_begin(&mut self, header: &LaunchHeader) {
        match resolve_spec(header, self.target) {
            Ok(spec) => self.open = Some(LaunchAccum::begin(header.clone(), spec)),
            Err(_) => {
                if self.missing_spec.is_none() {
                    self.missing_spec = Some(header.kernel.clone());
                }
                self.open = None;
            }
        }
    }

    fn block_begin(&mut self, _block_id: u64, _event_count: u64) {
        if let Some(open) = self.open.as_mut() {
            open.block_begin();
        }
    }

    fn event(&mut self, _block_id: u64, ev: &TraceEvent) {
        if let Some(open) = self.open.as_mut() {
            open.event(ev.op, ev.mask, ev.lane_bytes, &ev.addrs);
        }
    }

    fn launch_end(&mut self, end: &LaunchEnd) {
        if let Some(open) = self.open.take() {
            self.done.push(open.finish(end));
        }
    }
}

/// Re-prices every launch in a binary KTRC trace under `target`, decoding
/// the byte stream **once** into a [`Trace`] and replaying the in-memory
/// form. Re-pricing the same capture under many specs should decode once
/// with [`Trace::decode`] and call [`replay_decoded`] per spec instead.
///
/// # Errors
///
/// [`ReplayError::Trace`] when the bytes are not a well-formed trace;
/// [`ReplayError::MissingCaptureSpec`] when `target` is
/// [`TargetSpec::Capture`] and a launch header has no embedded spec (v1).
pub fn replay(bytes: &[u8], target: &TargetSpec) -> Result<Vec<ReplayReport>, ReplayError> {
    let trace = Trace::decode(bytes)?;
    replay_decoded(&trace, target)
}

/// Re-prices every launch without materializing the trace: a single
/// streaming pass over the byte stream. Same results as [`replay`], bit
/// for bit (both drive the same [`LaunchAccum`] core — the differential
/// tests pin it); use this for one-shot replay of very large traces where
/// the decoded slabs are not worth holding.
///
/// # Errors
///
/// As [`replay`].
pub fn replay_streamed(
    bytes: &[u8],
    target: &TargetSpec,
) -> Result<Vec<ReplayReport>, ReplayError> {
    let mut engine = Engine {
        target,
        done: Vec::new(),
        open: None,
        missing_spec: None,
    };
    read_trace(bytes, &mut engine)?;
    if let Some(kernel) = engine.missing_spec {
        return Err(ReplayError::MissingCaptureSpec { kernel });
    }
    Ok(engine.done)
}

/// Re-prices every launch of an already-decoded [`Trace`] under `target`.
/// This is the farm's inner loop: decode once, call this per grid cell.
///
/// # Errors
///
/// [`ReplayError::MissingCaptureSpec`] as in [`replay`] (the trace itself
/// is already parsed, so no [`ReplayError::Trace`]).
pub fn replay_decoded(
    trace: &Trace,
    target: &TargetSpec,
) -> Result<Vec<ReplayReport>, ReplayError> {
    trace
        .launches()
        .iter()
        .map(|launch| replay_launch(launch, target))
        .collect()
}

/// Re-prices one decoded launch under `target`: walks the flat slabs,
/// borrowing each event's lane addresses zero-copy.
///
/// # Errors
///
/// [`ReplayError::MissingCaptureSpec`] when `target` is
/// [`TargetSpec::Capture`] and the launch header has no embedded spec.
pub fn replay_launch(
    launch: &DecodedLaunch,
    target: &TargetSpec,
) -> Result<ReplayReport, ReplayError> {
    let spec = resolve_spec(&launch.header, target)?;
    let mut accum = LaunchAccum::begin(launch.header.clone(), spec);
    for block in launch.blocks() {
        accum.block_begin();
        for (head, addrs) in block.events() {
            accum.event(head.op, head.mask, head.lane_bytes, addrs);
        }
    }
    Ok(accum.finish(&launch.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::{
        lane_addrs, lane_addrs_uniform, Gpu, KernelStats, LaneMask, LaunchConfig, LaunchReport,
        OverlapMode, Parallelism, SimMode, TraceLaunch, TraceSink, WARP_SIZE,
    };
    use kconv_trace::varint::{write_u64, zigzag};
    use kconv_trace::{SharedBuffer, TraceWriter, MAGIC, V1};

    /// A kernel exercising every traced op: plain/read-only/store global
    /// traffic, matched and mismatched shared-memory patterns, divergent
    /// constant reads, FMAs and barriers.
    fn all_ops_launch(parallelism: Parallelism, mode: SimMode) -> (LaunchReport, Vec<u8>) {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
        let src = gpu.alloc_f32(1024).unwrap();
        let dst = gpu.alloc_f32(1024).unwrap();
        let vals: Vec<f32> = (0..1024).map(|i| i as f32 * 0.5).collect();
        gpu.upload_f32(src, &vals).unwrap();
        gpu.write_const_f32(0, &[2.0; 64]).unwrap();
        let buf = SharedBuffer::new();
        gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
        let cfg = LaunchConfig::new("all-ops", 6, 64)
            .with_smem(4096)
            .with_regs(40);
        let report = gpu
            .launch(&cfg, mode, |blk| {
                let id = blk.dims.block_id as u64;
                blk.each_warp(|w| {
                    let wid = w.warp_id() as u64;
                    let g = lane_addrs(src.f32_addr((id * 64 + wid * 32) % 512), 4);
                    let x = w.ld_global::<1>(&g, LaneMask::ALL);
                    // Read-only path with block overlap: the second warp
                    // re-touches lines the first warp cached.
                    let r = lane_addrs(src.f32_addr((id % 4) * 64), 8);
                    let y = w.ld_global_ro::<2>(&r, LaneMask::first(20));
                    let c = w.ld_const(&lane_addrs_uniform(4 * (id % 16)), LaneMask::ALL);
                    // Unvectorized float store: stride 4 B — conflict-free
                    // on 4 B banks, half-bandwidth on Kepler's 8 B banks.
                    let s4 = lane_addrs(wid * 512, 4);
                    let v: [[f32; 1]; WARP_SIZE] =
                        std::array::from_fn(|l| [x[l][0] + y[l % 20][0] + c[l]]);
                    w.st_shared::<1>(&s4, &v, LaneMask::ALL);
                    let z = w.ld_shared::<1>(&s4, LaneMask::ALL);
                    // float2 pattern: stride 8 B, one lane per 8 B bank.
                    let s8 = lane_addrs(1024 + wid * 512, 8);
                    let v2: [[f32; 2]; WARP_SIZE] =
                        std::array::from_fn(|l| [z[l][0], z[(l + 1) % 32][0]]);
                    w.st_shared::<2>(&s8, &v2, LaneMask::ALL);
                    let q = w.ld_shared::<2>(&s8, LaneMask::ALL);
                    let d = lane_addrs(dst.f32_addr(id * 64 + wid * 32), 4);
                    let out: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [q[l][0] + q[l][1]]);
                    w.st_global::<1>(&d, &out, LaneMask::ALL);
                    w.count_fma(96);
                });
                blk.sync();
            })
            .unwrap();
        gpu.set_trace_sink(None);
        (report, buf.take())
    }

    #[test]
    fn replay_under_capture_spec_is_bit_identical_to_live() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let (live, bytes) = all_ops_launch(parallelism, SimMode::Full);
            let reports = replay(&bytes, &TargetSpec::Capture).unwrap();
            assert_eq!(reports.len(), 1);
            let r = &reports[0];
            assert_eq!(r.kernel, "all-ops");
            assert!(!r.aborted);
            assert_eq!(r.stats, live.stats, "{parallelism:?}");
            assert_eq!(r.timing, Some(live.timing), "{parallelism:?}");
            assert_eq!(r.capture_spec.as_ref().unwrap(), &r.target_spec);
            // The kernel exercised every op kind.
            for op in TraceOp::ALL {
                assert!(r.op(op).events > 0, "no {op} events replayed");
            }
            // Three-way differential: the streamed byte path and the
            // decoded slab path drive the same accumulator and must agree
            // with each other — and, under the capture spec, with the
            // live counters — bit for bit.
            let streamed = replay_streamed(&bytes, &TargetSpec::Capture).unwrap();
            assert_eq!(streamed, reports, "{parallelism:?}");
            let decoded =
                replay_decoded(&Trace::decode(&bytes).unwrap(), &TargetSpec::Capture).unwrap();
            assert_eq!(decoded, reports, "{parallelism:?}");
        }
    }

    /// splitmix64, as in the trace-format property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Decoded-vs-byte differential on seeded random streams: for
    /// arbitrary (not just kernel-shaped) event soup, under every preset,
    /// both replay paths must produce identical reports.
    #[test]
    fn decoded_and_streamed_replay_agree_on_random_streams() {
        for seed in 0..6u64 {
            let mut rng = Rng(0xFA21_0000 + seed);
            let spec = GpuSpec::kepler_k40m();
            let buf = SharedBuffer::new();
            let mut w = TraceWriter::new(buf.clone());
            for li in 0..1 + (seed % 3) {
                let blocks = 1 + rng.next() % 5;
                w.launch_begin(&TraceLaunch {
                    kernel: &format!("rand-{seed}-{li}"),
                    grid_blocks: blocks as usize,
                    executed_blocks: blocks as usize,
                    threads_per_block: 32 * (1 + (rng.next() % 8) as usize),
                    smem_bytes: (rng.next() % 40_000) as u32,
                    regs_per_thread: 16 + (rng.next() % 48) as u32,
                    overlap: OverlapMode::from_u8((rng.next() % 3) as u8).unwrap(),
                    spec: &spec,
                });
                for block_id in 0..blocks {
                    let events: Vec<TraceEvent> = (0..rng.next() % 24)
                        .map(|_| {
                            let mask = LaneMask(match rng.next() % 4 {
                                0 => 0,
                                1 => 1 << (rng.next() % 32),
                                2 => u32::MAX,
                                _ => rng.next() as u32,
                            });
                            let mut addrs = [0u64; WARP_SIZE];
                            for (lane, slot) in addrs.iter_mut().enumerate() {
                                if mask.is_active(lane) {
                                    *slot = match rng.next() % 3 {
                                        0 => rng.next() % (1 << 30), // scattered
                                        _ => 4096 + lane as u64 * (rng.next() % 40),
                                    };
                                }
                            }
                            TraceEvent {
                                op: TraceOp::ALL[(rng.next() % 6) as usize],
                                warp: rng.next() as u32 % 8,
                                mask,
                                lane_bytes: 1 << (rng.next() % 4),
                                transactions: 0,
                                cycles: 0,
                                addrs,
                            }
                        })
                        .collect();
                    w.block_events(block_id as usize, &events);
                }
                w.launch_end(&KernelStats {
                    fma_lane_ops: rng.next() % (1 << 40),
                    alu_lane_ops: rng.next() % (1 << 40),
                    barriers: rng.next() % 100,
                    blocks_total: blocks,
                    ..Default::default()
                });
            }
            let (_, err) = w.into_inner();
            assert!(err.is_none());
            let bytes = buf.take();
            let trace = Trace::decode(&bytes).unwrap();
            for target in [
                TargetSpec::Capture,
                TargetSpec::Spec(GpuSpec::kepler_k40m_4b()),
                TargetSpec::Spec(GpuSpec::fermi_m2090()),
                TargetSpec::Spec(GpuSpec::maxwell_like()),
            ] {
                let streamed = replay_streamed(&bytes, &target).unwrap();
                let decoded = replay_decoded(&trace, &target).unwrap();
                assert_eq!(streamed, decoded, "seed {seed}");
                assert_eq!(replay(&bytes, &target).unwrap(), decoded, "seed {seed}");
            }
        }
    }

    #[test]
    fn replay_reproduces_sampled_launch_scaling() {
        let (live, bytes) = all_ops_launch(Parallelism::Serial, SimMode::Sampled(2));
        let r = &replay(&bytes, &TargetSpec::Capture).unwrap()[0];
        assert_eq!(r.executed_blocks, 2);
        assert_eq!(r.grid_blocks, 6);
        assert_eq!(r.stats, live.stats);
        assert_eq!(r.timing, Some(live.timing));
    }

    #[test]
    fn replay_under_other_specs_keeps_useful_bytes_and_repriced_costs_move() {
        let (_, bytes) = all_ops_launch(Parallelism::Serial, SimMode::Full);
        let kepler = &replay(&bytes, &TargetSpec::Capture).unwrap()[0];
        let four_byte = &replay(&bytes, &TargetSpec::Spec(GpuSpec::kepler_k40m_4b())).unwrap()[0];
        // Useful bytes are a property of the access pattern, not the spec.
        assert_eq!(
            kepler.stats.sm_bytes_useful,
            four_byte.stats.sm_bytes_useful
        );
        assert_eq!(
            kepler.stats.gm_ld_bytes_useful,
            four_byte.stats.gm_ld_bytes_useful
        );
        // Per-op lane counts are pure trace facts: identical in any sweep.
        for op in TraceOp::ALL {
            assert_eq!(kepler.op(op).lane_accesses, four_byte.op(op).lane_accesses);
            assert_eq!(kepler.op(op).useful_bytes, four_byte.op(op).useful_bytes);
        }
        // Every shared access here is full-mask and aligned, so 4-byte
        // banks serve them with zero wasted bytes (the float2 pattern
        // takes 2x the cycles there, but moves only requested data);
        // Kepler's 8-byte banks waste half of each row the unvectorized
        // float pattern touches, pushing the blended waste above 1.
        assert_eq!(four_byte.sm_waste(), 1.0);
        assert!(kepler.sm_waste() > 1.0);
    }

    /// Builds a synthetic one-block trace of full-mask shared-memory loads
    /// with the given per-lane width and byte stride.
    fn sm_pattern_trace(lane_bytes: u32, stride: u64, events: usize) -> Vec<u8> {
        let spec = GpuSpec::kepler_k40m();
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        w.launch_begin(&TraceLaunch {
            kernel: "pattern",
            grid_blocks: 1,
            executed_blocks: 1,
            threads_per_block: 256,
            smem_bytes: 4096,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        let evs: Vec<TraceEvent> = (0..events)
            .map(|_| {
                let mut addrs = [0u64; WARP_SIZE];
                for (lane, a) in addrs.iter_mut().enumerate() {
                    *a = lane as u64 * stride;
                }
                TraceEvent {
                    op: TraceOp::SmLd,
                    warp: 0,
                    mask: LaneMask::ALL,
                    lane_bytes,
                    transactions: 0,
                    cycles: 1,
                    addrs,
                }
            })
            .collect();
        w.block_events(0, &evs);
        w.launch_end(&KernelStats::default());
        buf.take()
    }

    #[test]
    fn bank_width_mismatch_factor_appears_and_vanishes() {
        let b8 = TargetSpec::Spec(GpuSpec::kepler_k40m());
        let b4 = TargetSpec::Spec(GpuSpec::kepler_k40m_4b());

        // Unvectorized floats, stride 4: each 8-byte Kepler bank serves
        // two lanes' words in its one-cycle row, so the pattern is
        // conflict-free on both widths — but on 8-byte banks only half of
        // every fetched row is requested: waste = n = 2 (eq. 1).
        let float_trace = sm_pattern_trace(4, 4, 10);
        let f_b8 = &replay(&float_trace, &b8).unwrap()[0];
        let f_b4 = &replay(&float_trace, &b4).unwrap()[0];
        assert_eq!(f_b8.sm_cycles(), 10);
        assert_eq!(f_b4.sm_cycles(), 10);
        assert_eq!(f_b8.sm_waste(), 2.0);
        assert_eq!(f_b4.sm_waste(), 1.0);

        // float2, stride 8: one lane per 8-byte bank — fully matched on
        // Kepler. On 4-byte banks each lane spans two banks, halving the
        // row throughput: exactly 2x the cycles, but no wasted bytes.
        let float2_trace = sm_pattern_trace(8, 8, 10);
        let v_b8 = &replay(&float2_trace, &b8).unwrap()[0];
        let v_b4 = &replay(&float2_trace, &b4).unwrap()[0];
        assert_eq!(v_b8.sm_waste(), 1.0);
        assert_eq!(v_b4.sm_waste(), 1.0);
        assert_eq!(v_b4.sm_cycles(), 2 * v_b8.sm_cycles());
    }

    /// Hand-encodes a v1 (spec-less) trace: one launch, one block, one
    /// full-mask stride-4 shared-memory load, fma count 64.
    fn v1_trace() -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&MAGIC);
        b.push(V1);
        b.push(1); // launch begin
        write_u64(&mut b, 6);
        b.extend_from_slice(b"legacy");
        write_u64(&mut b, 1); // grid
        write_u64(&mut b, 1); // executed
        write_u64(&mut b, 32); // threads
        write_u64(&mut b, 2048); // smem
        b.push(2); // block record
        write_u64(&mut b, 0); // block id
        write_u64(&mut b, 1); // event count
        b.push(TraceOp::SmLd as u8);
        write_u64(&mut b, 0); // warp
        write_u64(&mut b, u64::from(LaneMask::ALL.0));
        write_u64(&mut b, 4); // lane bytes
        write_u64(&mut b, 0); // transactions
        write_u64(&mut b, 1); // cycles
        write_u64(&mut b, 0); // first address
        for _ in 1..WARP_SIZE {
            write_u64(&mut b, zigzag(4)); // +4 B per lane
        }
        b.push(3); // launch end
        b.push(0); // not aborted
        write_u64(&mut b, 64); // fma lane ops
        b
    }

    #[test]
    fn v1_trace_requires_an_explicit_spec() {
        let bytes = v1_trace();
        match replay(&bytes, &TargetSpec::Capture) {
            Err(ReplayError::MissingCaptureSpec { kernel }) => assert_eq!(kernel, "legacy"),
            other => panic!("expected MissingCaptureSpec, got {other:?}"),
        }
    }

    #[test]
    fn v1_trace_replays_under_an_assumed_spec() {
        let bytes = v1_trace();
        let r = &replay(&bytes, &TargetSpec::Spec(GpuSpec::kepler_k40m())).unwrap()[0];
        assert_eq!(r.kernel, "legacy");
        assert!(r.capture_spec.is_none());
        assert_eq!(r.stats.sm_ld_requests, 1);
        assert_eq!(r.stats.sm_ld_cycles, 1); // stride 4 on 8 B banks: pairs share a row
        assert_eq!(r.stats.sm_bytes_useful, 32 * 4);
        assert_eq!(r.stats.fma_lane_ops, 64); // grafted from the v1 end record
        assert_eq!(r.stats.blocks_total, 1);
        assert!(r.timing.is_some(), "v1 headers default to runnable configs");
        // The same pattern on 4-byte banks is fully matched.
        let r4 = &replay(&bytes, &TargetSpec::Spec(GpuSpec::fermi_m2090())).unwrap()[0];
        assert_eq!(r4.sm_waste(), 1.0);
        assert_eq!(r.sm_waste(), 2.0);
    }

    #[test]
    fn aborted_captures_report_the_clean_prefix_without_timing() {
        // A trace cut off mid-launch: header + one block, no end record.
        let spec = GpuSpec::kepler_k40m();
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        w.launch_begin(&TraceLaunch {
            kernel: "cut",
            grid_blocks: 4,
            executed_blocks: 4,
            threads_per_block: 32,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        let mut addrs = [0u64; WARP_SIZE];
        for (lane, a) in addrs.iter_mut().enumerate() {
            *a = lane as u64 * 4;
        }
        w.block_events(
            0,
            &[TraceEvent {
                op: TraceOp::GmLd,
                warp: 0,
                mask: LaneMask::ALL,
                lane_bytes: 4,
                transactions: 1,
                cycles: 0,
                addrs,
            }],
        );
        drop(w);
        let r = &replay(&buf.take(), &TargetSpec::Capture).unwrap()[0];
        assert!(r.aborted);
        assert!(r.timing.is_none());
        assert_eq!(r.stats.blocks_executed, 1);
        assert_eq!(r.stats.blocks_total, 4); // prefix is NOT extrapolated
        assert_eq!(r.stats.gm_ld_transactions, 1);
    }
}

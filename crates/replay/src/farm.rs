//! The replay farm's sweep engine: fan pure trace×spec replay cells over
//! a scoped thread pool.
//!
//! A sweep cell — "re-price launch L of trace T under spec S" — touches
//! only immutable inputs ([`Trace`] slabs and a [`GpuSpec`]) and produces
//! an owned [`ReplayReport`], so cells are embarrassingly parallel. The
//! engine distributes cells over `std::thread::scope` workers (the PR-1
//! recipe: no external dependencies, an atomic work index, per-worker
//! result buffers) and then places every result into its pre-assigned
//! slot, so the output is **bit-identical and deterministically ordered**
//! — ascending `(trace, spec, launch)` — no matter the thread count or
//! the order cells were requested in. The farm harness and the
//! serial ≡ threaded tests pin that invariant.
//!
//! Cells that fail to replay (a v1 trace swept under
//! [`TargetSpec::Capture`]) surface as [`SweepCell::report`] `Err` rather
//! than aborting the rest of the sweep: a farm corpus can mix trace
//! generations.

use kconv_sim::{GpuSpec, Parallelism};
use kconv_trace::Trace;

use crate::{replay_launch, ReplayError, ReplayReport, TargetSpec};

/// One completed cell of a sweep: the replay of `trace`'s `launch`-th
/// launch under `spec`, with the indices that place it in the grid.
#[derive(Debug)]
pub struct SweepCell {
    /// Index into the sweep's trace list.
    pub trace: usize,
    /// Index of the launch within that trace.
    pub launch: usize,
    /// Index into the sweep's spec list.
    pub spec: usize,
    /// The re-priced launch, or why this cell could not be priced.
    pub report: Result<ReplayReport, ReplayError>,
}

/// Sweeps the full cartesian product: every launch of every trace under
/// every spec, in ascending `(trace, spec, launch)` order.
///
/// Results are bit-identical across [`Parallelism::Serial`] and any
/// [`Parallelism::Threads`] count.
pub fn sweep(traces: &[Trace], specs: &[GpuSpec], parallelism: Parallelism) -> Vec<SweepCell> {
    let cells: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|t| (0..specs.len()).map(move |s| (t, s)))
        .collect();
    sweep_cells(traces, specs, &cells, parallelism)
}

/// Sweeps an explicit cell list, where each entry names a
/// `(trace index, spec index)` pair. Duplicates are priced once; the
/// output is canonicalized to ascending `(trace, spec, launch)` order
/// regardless of the order `cells` arrived in, so a shuffled request and
/// a sorted one produce identical output.
///
/// # Panics
///
/// Panics if a cell indexes outside `traces` or `specs` — the farm
/// builds cell lists from the same slices it passes here, so an
/// out-of-range index is a caller bug, not data-dependent input.
pub fn sweep_cells(
    traces: &[Trace],
    specs: &[GpuSpec],
    cells: &[(usize, usize)],
    parallelism: Parallelism,
) -> Vec<SweepCell> {
    let mut work: Vec<(usize, usize)> = cells.to_vec();
    for &(t, s) in &work {
        assert!(t < traces.len(), "cell trace index {t} out of range");
        assert!(s < specs.len(), "cell spec index {s} out of range");
    }
    work.sort_unstable();
    work.dedup();

    // Expand (trace, spec) pairs into per-launch cells: the unit of work
    // the pool schedules.
    let units: Vec<(usize, usize, usize)> = work
        .iter()
        .flat_map(|&(t, s)| (0..traces[t].launches().len()).map(move |l| (t, s, l)))
        .collect();

    let price = |&(t, s, l): &(usize, usize, usize)| SweepCell {
        trace: t,
        launch: l,
        spec: s,
        report: replay_launch(
            &traces[t].launches()[l],
            &TargetSpec::Spec(specs[s].clone()),
        ),
    };

    let workers = parallelism.worker_threads().min(units.len().max(1));
    if workers <= 1 {
        return units.iter().map(price).collect();
    }

    // Scoped pool: an atomic cursor hands out unit indices, each worker
    // collects (slot, cell) pairs, and the merge writes every cell into
    // its slot — output order never depends on scheduling.
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<SweepCell>> = (0..units.len()).map(|_| None).collect();
    let finished: Vec<Vec<(usize, SweepCell)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(unit) = units.get(i) else {
                            break;
                        };
                        local.push((i, price(unit)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (slot, cell) in finished.into_iter().flatten() {
        debug_assert!(slots[slot].is_none());
        slots[slot] = Some(cell);
    }
    slots
        .into_iter()
        .map(|c| c.expect("every unit priced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::{lane_addrs, BankWidth, Gpu, LaneMask, LaunchConfig, SimMode};
    use kconv_trace::{SharedBuffer, TraceWriter};

    /// Captures a small two-block launch touching GM + SM + CM.
    fn capture(seed: u64) -> Trace {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let src = gpu.alloc_f32(256).unwrap();
        gpu.upload_f32(src, &vec![1.0; 256]).unwrap();
        gpu.write_const_f32(0, &[2.0; 32]).unwrap();
        let buf = SharedBuffer::new();
        gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
        let cfg = LaunchConfig::new("farm-cell", 2, 64).with_smem(2048);
        gpu.launch(&cfg, SimMode::Full, |blk| {
            let id = blk.dims.block_id as u64;
            blk.each_warp(|w| {
                let a = lane_addrs(src.f32_addr((seed % 2) * 32 + id * 64), 4);
                let x = w.ld_global::<1>(&a, LaneMask::ALL);
                let s = lane_addrs(w.warp_id() as u64 * 128, 4);
                w.st_shared::<1>(&s, &x, LaneMask::ALL);
                let _ = w.ld_const(
                    &kconv_sim::lane_addrs_uniform(4 * (seed % 8)),
                    LaneMask::ALL,
                );
            });
            blk.sync();
        })
        .unwrap();
        gpu.set_trace_sink(None);
        Trace::decode(&buf.take()).unwrap()
    }

    fn grid() -> Vec<GpuSpec> {
        GpuSpec::kepler_k40m()
            .grid()
            .bank_widths(&[BankWidth::B4, BankWidth::B8])
            .line_sizes(&[64, 128])
            .build()
            .unwrap()
    }

    /// xorshift for the shuffle — deterministic, dependency-free.
    fn shuffle<T>(items: &mut [T], mut state: u64) {
        for i in (1..items.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            items.swap(i, (state % (i as u64 + 1)) as usize);
        }
    }

    #[test]
    fn serial_and_threaded_sweeps_are_bit_identical_under_shuffled_cells() {
        let traces = vec![capture(0), capture(1), capture(2)];
        let specs = grid();
        let mut cells: Vec<(usize, usize)> = (0..traces.len())
            .flat_map(|t| (0..specs.len()).map(move |s| (t, s)))
            .collect();
        let baseline = sweep(&traces, &specs, Parallelism::Serial);
        assert_eq!(baseline.len(), traces.len() * specs.len());
        // Canonical order: ascending (trace, spec, launch).
        for (i, cell) in baseline.iter().enumerate() {
            assert_eq!(cell.trace, i / specs.len());
            assert_eq!(cell.spec, i % specs.len());
            assert_eq!(cell.launch, 0);
        }
        for threads in [2, 3, 7] {
            for shuffle_seed in [1u64, 99] {
                shuffle(&mut cells, shuffle_seed * 7 + threads as u64);
                let got = sweep_cells(&traces, &specs, &cells, Parallelism::Threads(threads));
                assert_eq!(got.len(), baseline.len(), "threads {threads}");
                for (g, b) in got.iter().zip(&baseline) {
                    assert_eq!(
                        (g.trace, g.spec, g.launch),
                        (b.trace, b.spec, b.launch),
                        "threads {threads}"
                    );
                    assert_eq!(
                        g.report.as_ref().unwrap(),
                        b.report.as_ref().unwrap(),
                        "threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_cells_price_once() {
        let traces = vec![capture(0)];
        let specs = grid();
        let got = sweep_cells(
            &traces,
            &specs,
            &[(0, 1), (0, 1), (0, 0), (0, 1)],
            Parallelism::Serial,
        );
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].trace, got[0].spec), (0, 0));
        assert_eq!((got[1].trace, got[1].spec), (0, 1));
    }

    #[test]
    fn sweep_matches_direct_replay() {
        let traces = vec![capture(4)];
        let specs = GpuSpec::presets_all();
        let cells = sweep(&traces, &specs, Parallelism::Threads(2));
        for cell in &cells {
            let direct = crate::replay_decoded(
                &traces[cell.trace],
                &TargetSpec::Spec(specs[cell.spec].clone()),
            )
            .unwrap();
            assert_eq!(cell.report.as_ref().unwrap(), &direct[cell.launch]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cells_panic() {
        let traces = vec![capture(0)];
        let specs = grid();
        sweep_cells(&traces, &specs, &[(1, 0)], Parallelism::Serial);
    }
}

//! Engine selection: map a convolution problem to the right kernel.

use std::collections::HashMap;

use kconv_core::{
    run_with_fallback, ConvError, ConvRun, Convolution, DataType, ExplicitGemmConv, FaultRecord,
    GeneralConfig, GeneralConv, ImplicitGemmConv, KernelShape, NaiveConv, SpecialConfig,
    SpecialConv, SpecialConvHalf2, SpecialConvI8,
};
use kconv_sim::{Gpu, GpuSpec, SimMode};
use kconv_systolic::{PipelineConfig, SystolicConv};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

/// Which convolution implementation an application uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Pick automatically: the special-case kernel for `C = 1`, the
    /// general-case kernel when a configuration fits the shape, the
    /// implicit-GEMM baseline otherwise.
    #[default]
    Auto,
    /// Force the special-case kernel (requires `C = 1`).
    Special,
    /// Force the general-case kernel (requires a feasible configuration).
    General,
    /// Force the cuDNN-like implicit-GEMM baseline.
    ImplicitGemm,
    /// Force the Caffe-like explicit `im2col` + GEMM baseline.
    ExplicitGemm,
    /// Force the double-buffered systolic pipeline executor (the one
    /// engine covering the full strided/dilated/depthwise workload
    /// matrix).
    Systolic,
}

/// The outcome of resolving an [`Engine`] for a problem on a spec: which
/// kernel runs, with the tuned configuration already chosen. `Copy` and
/// `Hash` so resolutions can be cached and shared across requests (see
/// [`PlanCache`]); [`instantiate`](EnginePlan::instantiate) turns a plan
/// into the runnable implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePlan {
    /// The paper's special-case (`C = 1`) constant-memory kernel, in the
    /// dtype variant and vector factor the generator derives for the
    /// planning spec ([`KernelShape::matched`] — `n = W_SMB / W_CD`).
    Special(KernelShape),
    /// The paper's general-case kernel with this tuned configuration.
    General(GeneralConfig),
    /// The cuDNN-like implicit-GEMM baseline.
    ImplicitGemm,
    /// The Caffe-like explicit `im2col` + GEMM baseline.
    ExplicitGemm,
    /// The double-buffered systolic executor with this pipeline
    /// configuration (depth, tile, staging shape).
    Systolic(PipelineConfig),
}

impl EnginePlan {
    /// Builds the runnable implementation this plan names.
    pub fn instantiate(&self) -> Box<dyn Convolution> {
        match self {
            EnginePlan::Special(shape) => {
                let config = SpecialConfig::with_vec_width(shape.vec_width);
                match shape.dtype {
                    DataType::F32 => Box::new(SpecialConv::new(config)),
                    DataType::F16 => Box::new(SpecialConvHalf2::new(config)),
                    DataType::I8 => Box::new(SpecialConvI8::new(config)),
                }
            }
            EnginePlan::General(cfg) => Box::new(GeneralConv::new(*cfg)),
            EnginePlan::ImplicitGemm => Box::new(ImplicitGemmConv::default()),
            EnginePlan::ExplicitGemm => Box::new(ExplicitGemmConv::default()),
            EnginePlan::Systolic(cfg) => Box::new(SystolicConv::new(*cfg)),
        }
    }
}

/// A shared resolution cache keyed by `(engine, dtype, bank width,
/// pipeline depth, problem shape)`: the serving layer resolves each
/// distinct shape once and every later request with the same shape reuses
/// the tuned plan. The key carries the axes the generator varies a plan
/// on — the computation dtype and the spec's shared-memory bank width,
/// which together pick the kernel variant and its vector factor, plus the
/// requested staging-pipeline depth (0 = auto, the deepest schedule that
/// fits) — so one cache can serve devices with different bank widths
/// without handing a Kepler float2 plan to a 4-byte-bank part, and
/// depth-1 baseline runs never alias depth-2 pipelined plans. Errors are
/// not cached — a failed resolution is cheap and carries a fresh message.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<(Engine, DataType, u64, usize, ConvProblem), EnginePlan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `engine` for `problem` on `spec` in `f32`, consulting the
    /// cache. Shorthand for [`PlanCache::plan_for`] with
    /// [`DataType::F32`].
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::plan`] errors (never cached).
    pub fn plan(
        &mut self,
        engine: Engine,
        spec: &GpuSpec,
        problem: &ConvProblem,
    ) -> Result<EnginePlan, ConvError> {
        self.plan_for(engine, spec, problem, DataType::F32)
    }

    /// Resolves `engine` for `problem` on `spec` computing in `dtype`,
    /// consulting the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::plan_for`] errors (never cached).
    pub fn plan_for(
        &mut self,
        engine: Engine,
        spec: &GpuSpec,
        problem: &ConvProblem,
        dtype: DataType,
    ) -> Result<EnginePlan, ConvError> {
        self.plan_with_depth(engine, spec, problem, dtype, 0)
    }

    /// Resolves `engine` with an explicit staging-pipeline depth request
    /// (`0` = auto: the deepest schedule that fits the spec's shared
    /// memory; `1`/`2` force the baseline or double-buffered schedule of
    /// systolic plans). The depth is part of the cache key, so baseline
    /// and pipelined resolutions of the same shape coexist.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::plan_with_depth`] errors (never cached).
    pub fn plan_with_depth(
        &mut self,
        engine: Engine,
        spec: &GpuSpec,
        problem: &ConvProblem,
        dtype: DataType,
        pipeline_depth: usize,
    ) -> Result<EnginePlan, ConvError> {
        let key = (
            engine,
            dtype,
            spec.bank_width.bytes(),
            pipeline_depth,
            *problem,
        );
        if let Some(plan) = self.plans.get(&key) {
            self.hits += 1;
            return Ok(*plan);
        }
        let plan = engine.plan_with_depth(spec, problem, dtype, pipeline_depth)?;
        self.misses += 1;
        self.plans.insert(key, plan);
        Ok(plan)
    }

    /// Cache hits and misses so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct `(engine, problem)` resolutions cached.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

impl Engine {
    /// Resolves this engine for `problem` on `spec` computing in `f32`,
    /// returning the cacheable [`EnginePlan`]. Shorthand for
    /// [`Engine::plan_for`] with [`DataType::F32`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::Shape`] when a forced engine cannot run the
    /// problem ([`Engine::Auto`] always resolves in `f32`).
    pub fn plan(self, spec: &GpuSpec, problem: &ConvProblem) -> Result<EnginePlan, ConvError> {
        self.plan_for(spec, problem, DataType::F32)
    }

    /// Resolves this engine for `problem` on `spec` computing in `dtype`,
    /// without running anything. The special plan carries the kernel
    /// shape derived for the spec's bank width
    /// ([`KernelShape::matched`]), so the same engine resolves to the
    /// float2 kernel on Kepler and the scalar variant on 4-byte-bank
    /// parts; narrow dtypes resolve to the matched half2/int8 variants.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::Shape`] when a forced engine cannot run the
    /// problem, or when `dtype` is narrow and the problem has no special
    /// variant (the general and GEMM kernels compute in `f32` only).
    pub fn plan_for(
        self,
        spec: &GpuSpec,
        problem: &ConvProblem,
        dtype: DataType,
    ) -> Result<EnginePlan, ConvError> {
        self.plan_with_depth(spec, problem, dtype, 0)
    }

    /// [`Engine::plan_for`] with an explicit staging-pipeline depth
    /// request: `0` picks the deepest schedule whose staging buffers fit
    /// the spec's shared memory (depth 2, falling back to 1), `1`/`2`
    /// force that schedule for systolic plans. Non-systolic plans ignore
    /// the depth — they have no staging pipeline to configure.
    ///
    /// # Errors
    ///
    /// As [`Engine::plan_for`], plus [`ConvError::Config`] when a forced
    /// depth cannot fit the problem's staging buffers.
    pub fn plan_with_depth(
        self,
        spec: &GpuSpec,
        problem: &ConvProblem,
        dtype: DataType,
        pipeline_depth: usize,
    ) -> Result<EnginePlan, ConvError> {
        // The narrow-dtype kernels exist only in the special family.
        let special_fits = |elem_bytes: usize| {
            problem.stride == 1
                && problem.channels == 1
                && (problem.filters * problem.k * problem.k * elem_bytes) as u64 <= spec.cm_bytes
        };
        if dtype != DataType::F32 {
            let shape = KernelShape::matched(spec, dtype);
            return match self {
                Engine::Special | Engine::Auto if special_fits(shape.elem_bytes()) => {
                    Ok(EnginePlan::Special(shape))
                }
                _ => Err(ConvError::Shape(format!(
                    "no {dtype} kernel variant accepts {problem} under {self:?} \
                     (narrow compute is special-case only)"
                ))),
            };
        }
        match self {
            Engine::Special => {
                if problem.channels != 1 {
                    return Err(ConvError::Shape(format!(
                        "special engine requires C = 1, got {}",
                        problem.channels
                    )));
                }
                Ok(EnginePlan::Special(KernelShape::matched(spec, dtype)))
            }
            Engine::General => {
                let cfg =
                    GeneralConfig::for_problem(spec, problem.k, problem.channels, problem.filters)
                        .ok_or_else(|| {
                            ConvError::Shape(format!(
                                "no general-kernel configuration fits {problem}"
                            ))
                        })?;
                Ok(EnginePlan::General(cfg))
            }
            Engine::ImplicitGemm => Ok(EnginePlan::ImplicitGemm),
            Engine::ExplicitGemm => Ok(EnginePlan::ExplicitGemm),
            Engine::Systolic => Ok(EnginePlan::Systolic(systolic_plan(
                spec,
                problem,
                pipeline_depth,
            )?)),
            Engine::Auto => {
                if !problem.is_dense() {
                    // Dilated and depthwise layers are outside every other
                    // engine's workload matrix; the systolic executor is
                    // the one kernel (short of the naive reference) that
                    // covers them.
                    Ok(EnginePlan::Systolic(systolic_plan(
                        spec,
                        problem,
                        pipeline_depth,
                    )?))
                } else if problem.stride != 1 {
                    // The paper's direct kernels are stride-1 specialized;
                    // strided dense layers take the universal GEMM path.
                    Ok(EnginePlan::ImplicitGemm)
                } else if problem.channels == 1 && special_fits(dtype.bytes()) {
                    Ok(EnginePlan::Special(KernelShape::matched(spec, dtype)))
                } else if let Some(cfg) =
                    GeneralConfig::for_problem(spec, problem.k, problem.channels, problem.filters)
                {
                    Ok(EnginePlan::General(cfg))
                } else {
                    Ok(EnginePlan::ImplicitGemm)
                }
            }
        }
    }

    /// Resolves this engine for `problem`, returning a runnable
    /// implementation. Convenience for [`Engine::plan`] +
    /// [`EnginePlan::instantiate`].
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::Shape`] when a forced engine cannot run the
    /// problem ([`Engine::Auto`] always resolves).
    pub fn resolve(
        self,
        gpu: &Gpu,
        problem: &ConvProblem,
    ) -> Result<Box<dyn Convolution>, ConvError> {
        Ok(self.plan(gpu.spec(), problem)?.instantiate())
    }

    /// Resolves and runs in one call.
    ///
    /// # Errors
    ///
    /// Propagates resolution and launch errors.
    pub fn run(
        self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun, ConvError> {
        self.resolve(gpu, problem)?
            .run(gpu, problem, input, filters, mode)
    }

    /// Resolves and runs with **graceful degradation**: when the chosen
    /// kernel trips a device-side fault (an out-of-bounds access, a shared
    /// memory race or barrier divergence under the sanitizer, a watchdog
    /// timeout, a contained panic — see [`kconv_sim::DeviceFault`]), the
    /// computation falls back to the implicit-GEMM baseline and finally to
    /// the [`NaiveConv`] reference, which accepts every shape. Every
    /// absorbed failure — including a failed resolution — is recorded in
    /// [`ConvRun::faults`] of the returned run, so callers still learn
    /// exactly which kernel misbehaved and where.
    ///
    /// # Errors
    ///
    /// Returns an error only when even the reference implementation fails
    /// (or a non-recoverable host-side error occurs, e.g. a failed
    /// allocation).
    pub fn run_resilient(
        self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun, ConvError> {
        let mut resolve_fault = None;
        let mut chain: Vec<Box<dyn Convolution>> = Vec::new();
        match self.resolve(gpu, problem) {
            Ok(primary) => chain.push(primary),
            // A forced engine that cannot run the shape degrades too; the
            // rejection is recorded like any other fault.
            Err(e) => {
                resolve_fault = Some(FaultRecord {
                    engine: format!("{self:?} (resolution)"),
                    error: e,
                });
            }
        }
        for fallback in [
            Box::new(ImplicitGemmConv::default()) as Box<dyn Convolution>,
            Box::new(NaiveConv::default()),
        ] {
            if !chain.iter().any(|c| c.name() == fallback.name()) {
                chain.push(fallback);
            }
        }
        let refs: Vec<&dyn Convolution> = chain.iter().map(AsRef::as_ref).collect();
        let mut run = run_with_fallback(&refs, gpu, problem, input, filters, mode)?;
        if let Some(fault) = resolve_fault {
            run.faults.insert(0, fault);
        }
        Ok(run)
    }
}

/// Picks the pipeline configuration for a systolic plan: the staging shape
/// matched to `spec`'s bank width, at the requested depth (`0` = auto —
/// the deepest schedule whose staging buffers fit the block's shared
/// memory, preferring the double-buffered one).
fn systolic_plan(
    spec: &GpuSpec,
    problem: &ConvProblem,
    pipeline_depth: usize,
) -> Result<PipelineConfig, ConvError> {
    let base = PipelineConfig::matched_for(spec);
    let depths: &[usize] = match pipeline_depth {
        0 => &[2, 1],
        _ => &[pipeline_depth],
    };
    let mut last = String::new();
    for &depth in depths {
        let cfg = base.with_depth(depth);
        match cfg.validate(spec, problem) {
            Ok(()) => return Ok(cfg),
            Err(reason) => last = reason,
        }
    }
    Err(ConvError::Config(format!(
        "no systolic pipeline fits {problem}: {last}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m())
    }

    #[test]
    fn auto_picks_special_for_single_channel() {
        let g = gpu();
        let p = ConvProblem::special(64, 4, 3);
        let conv = Engine::Auto.resolve(&g, &p).unwrap();
        assert!(conv.name().contains("special"));
    }

    #[test]
    fn auto_picks_general_for_cnn_shapes() {
        let g = gpu();
        let p = ConvProblem::general(34, 64, 64, 3);
        let conv = Engine::Auto.resolve(&g, &p).unwrap();
        assert!(conv.name().contains("general"));
    }

    #[test]
    fn auto_falls_back_to_gemm_for_awkward_shapes() {
        let g = gpu();
        let p = ConvProblem::general(34, 5, 7, 3); // prime F
        let conv = Engine::Auto.resolve(&g, &p).unwrap();
        assert!(conv.name().contains("GEMM"));
    }

    #[test]
    fn auto_avoids_special_when_filters_overflow_cm() {
        let g = gpu();
        // 512 filters of 7x7 = 100 KiB > 64 KiB constant memory.
        let p = ConvProblem::special(64, 512, 7);
        let conv = Engine::Auto.resolve(&g, &p).unwrap();
        assert!(!conv.name().contains("special"));
    }

    #[test]
    fn auto_routes_strided_problems_to_gemm() {
        let g = gpu();
        let p = ConvProblem::general(34, 64, 64, 3).with_stride(2);
        let conv = Engine::Auto.resolve(&g, &p).unwrap();
        assert!(conv.name().contains("GEMM"));
    }

    #[test]
    fn forced_engines_validate() {
        let g = gpu();
        let p = ConvProblem::general(34, 2, 8, 3);
        assert!(matches!(
            Engine::Special.resolve(&g, &p),
            Err(ConvError::Shape(_))
        ));
        let p = ConvProblem::general(34, 2, 7, 3);
        assert!(matches!(
            Engine::General.resolve(&g, &p),
            Err(ConvError::Shape(_))
        ));
    }

    #[test]
    fn resilient_run_absorbs_resolution_failure() {
        // Forcing the special kernel on a multi-channel problem cannot
        // resolve; the resilient path must degrade to a working engine and
        // record why.
        let p = ConvProblem::general(20, 2, 8, 3);
        let input = random_maps(2, 20, 20, 61);
        let filters = random_filters(8, 2, 3, 63);
        let mut g = gpu();
        let run = Engine::Special
            .run_resilient(&mut g, &p, &input, &filters, SimMode::Full)
            .unwrap();
        assert_eq!(run.faults.len(), 1);
        assert!(run.faults[0].engine.contains("Special"));
        assert!(matches!(run.faults[0].error, ConvError::Shape(_)));
        run.verify_executed(&p, &input, &filters, CONV_TOL).unwrap();
    }

    #[test]
    fn resilient_run_is_faultless_on_the_happy_path() {
        let p = ConvProblem::special(64, 4, 3);
        let input = random_maps(1, 64, 64, 65);
        let filters = random_filters(4, 1, 3, 67);
        let mut g = gpu();
        let run = Engine::Auto
            .run_resilient(&mut g, &p, &input, &filters, SimMode::Full)
            .unwrap();
        assert!(run.faults.is_empty());
        run.verify_executed(&p, &input, &filters, CONV_TOL).unwrap();
    }

    #[test]
    fn plan_cache_shares_resolutions_across_requests() {
        let spec = GpuSpec::kepler_k40m();
        let mut cache = PlanCache::new();
        let p = ConvProblem::general(34, 64, 64, 3);
        let first = cache.plan(Engine::Auto, &spec, &p).unwrap();
        assert!(matches!(first, EnginePlan::General(_)));
        for _ in 0..3 {
            assert_eq!(cache.plan(Engine::Auto, &spec, &p).unwrap(), first);
        }
        assert_eq!(cache.stats(), (3, 1));
        assert_eq!(cache.len(), 1);
        // A failed resolution is not cached and keeps failing.
        let bad = ConvProblem::general(34, 2, 8, 3);
        assert!(cache.plan(Engine::Special, &spec, &bad).is_err());
        assert_eq!(cache.len(), 1);
        // The plan instantiates the same kernel `resolve` builds.
        let g = gpu();
        assert_eq!(
            first.instantiate().name(),
            Engine::Auto.resolve(&g, &p).unwrap().name()
        );
    }

    #[test]
    fn special_plan_adapts_to_the_bank_width() {
        let p = ConvProblem::special(64, 4, 3);
        let kepler = Engine::Auto.plan(&GpuSpec::kepler_k40m(), &p).unwrap();
        let maxwell = Engine::Auto.plan(&GpuSpec::maxwell_like(), &p).unwrap();
        assert!(matches!(kepler, EnginePlan::Special(s) if s.vec_width == 2));
        assert!(matches!(maxwell, EnginePlan::Special(s) if s.vec_width == 1));
        assert!(kepler.instantiate().name().contains("n=2"));
        assert!(maxwell.instantiate().name().contains("n=1"));
    }

    #[test]
    fn narrow_dtypes_resolve_to_the_matched_variant() {
        let p = ConvProblem::special(64, 4, 3);
        let spec = GpuSpec::maxwell_like();
        let plan = Engine::Auto.plan_for(&spec, &p, DataType::F16).unwrap();
        assert!(matches!(plan, EnginePlan::Special(s) if s.vec_width == 2));
        assert!(plan.instantiate().name().contains("half2"));
        // Narrow compute has no general/GEMM variant.
        assert!(matches!(
            Engine::General.plan_for(&spec, &p, DataType::F16),
            Err(ConvError::Shape(_))
        ));
        let multi = ConvProblem::general(34, 4, 8, 3);
        assert!(matches!(
            Engine::Auto.plan_for(&spec, &multi, DataType::I8),
            Err(ConvError::Shape(_))
        ));
    }

    #[test]
    fn plan_cache_keys_on_dtype_and_bank_width() {
        let mut cache = PlanCache::new();
        let p = ConvProblem::special(64, 4, 3);
        let kepler = GpuSpec::kepler_k40m();
        let maxwell = GpuSpec::maxwell_like();
        let a = cache.plan(Engine::Auto, &kepler, &p).unwrap();
        let b = cache.plan(Engine::Auto, &maxwell, &p).unwrap();
        assert_ne!(a, b, "bank widths must not share a plan");
        let c = cache
            .plan_for(Engine::Auto, &kepler, &p, DataType::F16)
            .unwrap();
        assert_ne!(a, c, "dtypes must not share a plan");
        assert_eq!(cache.stats(), (0, 3));
        // Each key replays from the cache.
        assert_eq!(cache.plan(Engine::Auto, &kepler, &p).unwrap(), a);
        assert_eq!(cache.plan(Engine::Auto, &maxwell, &p).unwrap(), b);
        assert_eq!(
            cache
                .plan_for(Engine::Auto, &kepler, &p, DataType::F16)
                .unwrap(),
            c
        );
        assert_eq!(cache.stats(), (3, 3));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn auto_routes_the_extended_workload_matrix_to_systolic() {
        let spec = GpuSpec::kepler_k40m();
        let dilated = ConvProblem::general(24, 4, 4, 3).with_dilation(2);
        let depthwise = ConvProblem::general(24, 4, 4, 3).depthwise();
        for p in [dilated, depthwise] {
            let plan = Engine::Auto.plan(&spec, &p).unwrap();
            assert!(
                matches!(plan, EnginePlan::Systolic(cfg) if cfg.depth == 2),
                "{p}: {plan:?}"
            );
            // The resolved plan actually runs and verifies.
            let input = random_maps(p.channels, p.height, p.width, 71);
            let filters = random_filters(p.filters, p.channels_per_group(), p.k, 73);
            let mut g = gpu();
            let run = plan
                .instantiate()
                .run(&mut g, &p, &input, &filters, SimMode::Full)
                .unwrap_or_else(|e| panic!("{p}: {e}"));
            run.verify_executed(&p, &input, &filters, CONV_TOL)
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn plan_cache_keys_on_pipeline_depth() {
        let spec = GpuSpec::kepler_k40m();
        let mut cache = PlanCache::new();
        let p = ConvProblem::general(24, 4, 4, 3).with_dilation(2);
        let d1 = cache
            .plan_with_depth(Engine::Systolic, &spec, &p, DataType::F32, 1)
            .unwrap();
        let d2 = cache
            .plan_with_depth(Engine::Systolic, &spec, &p, DataType::F32, 2)
            .unwrap();
        assert_ne!(d1, d2, "depths must not share a plan");
        assert!(matches!(d1, EnginePlan::Systolic(cfg) if cfg.depth == 1));
        assert!(matches!(d2, EnginePlan::Systolic(cfg) if cfg.depth == 2));
        assert_eq!(cache.len(), 2);
        // Auto depth (0) is its own key and resolves to the pipelined form.
        let auto = cache
            .plan_with_depth(Engine::Systolic, &spec, &p, DataType::F32, 0)
            .unwrap();
        assert_eq!(auto, d2);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn forced_systolic_engine_resolves_and_runs_dense_shapes() {
        let p = ConvProblem::general(24, 4, 4, 3);
        let g = gpu();
        let conv = Engine::Systolic.resolve(&g, &p).unwrap();
        assert!(conv.name().contains("systolic d2"), "{}", conv.name());
        // An unsatisfiable forced depth is a config error.
        assert!(matches!(
            Engine::Systolic.plan_with_depth(g.spec(), &p, DataType::F32, 3),
            Err(ConvError::Config(_))
        ));
    }

    #[test]
    fn all_engines_agree_on_a_problem_both_support() {
        let p = ConvProblem::general(20, 2, 8, 3);
        let input = random_maps(2, 20, 20, 51);
        let filters = random_filters(8, 2, 3, 53);
        for engine in [Engine::General, Engine::ImplicitGemm, Engine::ExplicitGemm] {
            let mut g = gpu();
            let run = engine
                .run(&mut g, &p, &input, &filters, SimMode::Full)
                .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            run.verify_executed(&p, &input, &filters, CONV_TOL)
                .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
        }
    }
}

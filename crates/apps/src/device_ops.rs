//! Elementwise device kernels for the CNN stacks: ReLU and 2x2 max
//! pooling.
//!
//! These are bandwidth-trivial kernels (the convolutions dominate any
//! stack), but running them on the simulated GPU keeps the whole inference
//! pipeline's traffic on the books — and they double as simple examples of
//! writing kernels against the `kconv-sim` warp API.

use kconv_core::{ConvError, Result};
use kconv_sim::{
    lane_addrs_from, Gpu, LaneMask, LaunchConfig, LaunchReport, OverlapMode, SimMode, WARP_SIZE,
};
use kconv_tensor::FeatureMaps;

const THREADS: usize = 256;

/// ReLU on the device: `y = max(x, 0)` over all elements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn relu_device(gpu: &mut Gpu, maps: &FeatureMaps) -> Result<(FeatureMaps, LaunchReport)> {
    let total = maps.as_slice().len();
    let d_in = gpu.alloc_f32(total as u64).map_err(ConvError::Sim)?;
    gpu.upload_f32(d_in, maps.as_slice())
        .map_err(ConvError::Sim)?;
    let d_out = gpu.alloc_f32(total as u64).map_err(ConvError::Sim)?;

    let launch = LaunchConfig::new("relu", total.div_ceil(THREADS), THREADS)
        .with_regs(10)
        .with_overlap(OverlapMode::Moderate);
    let report = gpu
        .launch(&launch, SimMode::Full, |blk| {
            let base = blk.dims.block_id * THREADS;
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| base + w.thread_id(lane) < total);
                if mask.is_empty() {
                    return;
                }
                let addrs = lane_addrs_from(|lane| {
                    d_in.f32_addr((base + w.thread_id(lane)).min(total - 1) as u64)
                });
                let vals = w.ld_global::<1>(&addrs, mask);
                let mut out = [[0.0f32; 1]; WARP_SIZE];
                for lane in mask.iter() {
                    out[lane][0] = vals[lane][0].max(0.0);
                }
                w.count_alu(mask.count() as u64);
                let oaddrs = lane_addrs_from(|lane| {
                    d_out.f32_addr((base + w.thread_id(lane)).min(total - 1) as u64)
                });
                w.st_global::<1>(&oaddrs, &out, mask);
            });
        })
        .map_err(ConvError::Sim)?;

    let data = gpu.download_f32(d_out).map_err(ConvError::Sim)?;
    Ok((
        FeatureMaps::from_vec(maps.channels(), maps.height(), maps.width(), data),
        report,
    ))
}

/// 2x2 stride-2 max pooling on the device (truncating odd edges). Each
/// thread reduces one output element from two vectorized `float2` loads.
///
/// # Errors
///
/// Propagates simulator errors; rejects maps smaller than 2x2.
pub fn max_pool2_device(gpu: &mut Gpu, maps: &FeatureMaps) -> Result<(FeatureMaps, LaunchReport)> {
    let (c, ih, iw) = (maps.channels(), maps.height(), maps.width());
    if ih < 2 || iw < 2 {
        return Err(ConvError::Shape(format!(
            "max pooling needs at least 2x2 input, got {ih}x{iw}"
        )));
    }
    let (oh, ow) = (ih / 2, iw / 2);
    let total = c * oh * ow;

    let d_in = gpu
        .alloc_f32(maps.as_slice().len() as u64)
        .map_err(ConvError::Sim)?;
    gpu.upload_f32(d_in, maps.as_slice())
        .map_err(ConvError::Sim)?;
    let d_out = gpu.alloc_f32(total as u64).map_err(ConvError::Sim)?;

    let launch = LaunchConfig::new("maxpool2", total.div_ceil(THREADS), THREADS)
        .with_regs(12)
        .with_overlap(OverlapMode::Moderate);
    let report = gpu
        .launch(&launch, SimMode::Full, |blk| {
            let base = blk.dims.block_id * THREADS;
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| base + w.thread_id(lane) < total);
                if mask.is_empty() {
                    return;
                }
                let coords = |lane: usize| {
                    let t = (base + w.thread_id(lane)).min(total - 1);
                    let ch = t / (oh * ow);
                    let rest = t % (oh * ow);
                    (ch, rest / ow, rest % ow)
                };
                // Two float2 loads cover the 2x2 window.
                let top = lane_addrs_from(|lane| {
                    let (ch, y, x) = coords(lane);
                    d_in.f32_addr(((ch * ih + 2 * y) * iw + 2 * x) as u64)
                });
                let bot = lane_addrs_from(|lane| {
                    let (ch, y, x) = coords(lane);
                    d_in.f32_addr(((ch * ih + 2 * y + 1) * iw + 2 * x) as u64)
                });
                let t = w.ld_global::<2>(&top, mask);
                let b = w.ld_global::<2>(&bot, mask);
                let mut out = [[0.0f32; 1]; WARP_SIZE];
                for lane in mask.iter() {
                    out[lane][0] = t[lane][0].max(t[lane][1]).max(b[lane][0]).max(b[lane][1]);
                }
                w.count_alu(mask.count() as u64 * 3);
                let oaddrs = lane_addrs_from(|lane| {
                    d_out.f32_addr((base + w.thread_id(lane)).min(total - 1) as u64)
                });
                w.st_global::<1>(&oaddrs, &out, mask);
            });
        })
        .map_err(ConvError::Sim)?;

    let data = gpu.download_f32(d_out).map_err(ConvError::Sim)?;
    Ok((FeatureMaps::from_vec(c, oh, ow, data), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::random_maps;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m())
    }

    #[test]
    fn relu_matches_host() {
        let maps = random_maps(3, 9, 7, 401);
        let mut g = gpu();
        let (out, report) = relu_device(&mut g, &maps).unwrap();
        for (a, b) in maps.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(*b, a.max(0.0));
        }
        assert!(report.stats.alu_lane_ops >= maps.as_slice().len() as u64);
    }

    #[test]
    fn pool_matches_host() {
        let maps = random_maps(2, 8, 10, 403);
        let mut g = gpu();
        let (out, _) = max_pool2_device(&mut g, &maps).unwrap();
        assert_eq!((out.channels(), out.height(), out.width()), (2, 4, 5));
        for c in 0..2 {
            for y in 0..4 {
                for x in 0..5 {
                    let want = maps
                        .get(c, 2 * y, 2 * x)
                        .max(maps.get(c, 2 * y, 2 * x + 1))
                        .max(maps.get(c, 2 * y + 1, 2 * x))
                        .max(maps.get(c, 2 * y + 1, 2 * x + 1));
                    assert_eq!(out.get(c, y, x), want);
                }
            }
        }
    }

    #[test]
    fn pool_truncates_odd_edges() {
        let maps = random_maps(1, 5, 7, 405);
        let mut g = gpu();
        let (out, _) = max_pool2_device(&mut g, &maps).unwrap();
        assert_eq!((out.height(), out.width()), (2, 3));
    }

    #[test]
    fn pool_rejects_tiny_maps() {
        let maps = random_maps(1, 1, 8, 407);
        let mut g = gpu();
        assert!(matches!(
            max_pool2_device(&mut g, &maps),
            Err(ConvError::Shape(_))
        ));
    }

    #[test]
    fn relu_loads_are_coalesced() {
        let maps = random_maps(1, 32, 32, 409);
        let mut g = gpu();
        let (_, report) = relu_device(&mut g, &maps).unwrap();
        assert!(report.stats.gm_coalescing_efficiency() > 0.9);
    }
}

//! Classic image-processing filter banks — the workloads the paper's
//! introduction motivates the special-case kernel with (edge detection,
//! smoothing, template-based object detection).

use kconv_tensor::FilterSet;

/// The horizontal Sobel edge filter.
pub fn sobel_x() -> FilterSet {
    FilterSet::from_vec(
        1,
        1,
        3,
        vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],
    )
}

/// The vertical Sobel edge filter.
pub fn sobel_y() -> FilterSet {
    FilterSet::from_vec(
        1,
        1,
        3,
        vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0],
    )
}

/// Both Sobel filters as one bank (one kernel launch computes both
/// gradients — the `F`-filter amortization the special kernel exploits).
pub fn sobel_pair() -> FilterSet {
    let mut bank = FilterSet::zeros(2, 1, 3);
    let (x, y) = (sobel_x(), sobel_y());
    for i in 0..3 {
        for j in 0..3 {
            bank.set(0, 0, i, j, x.get(0, 0, i, j));
            bank.set(1, 0, i, j, y.get(0, 0, i, j));
        }
    }
    bank
}

/// The 3x3 discrete Laplacian.
pub fn laplacian() -> FilterSet {
    FilterSet::from_vec(1, 1, 3, vec![0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0])
}

/// A normalized `k x k` Gaussian smoothing filter with standard deviation
/// `sigma`.
///
/// # Panics
///
/// Panics if `k` is even or zero, or `sigma` is not positive.
pub fn gaussian(k: usize, sigma: f32) -> FilterSet {
    assert!(k % 2 == 1 && k > 0, "gaussian filter size must be odd");
    assert!(sigma > 0.0, "sigma must be positive");
    let c = (k / 2) as f32;
    let mut f = FilterSet::zeros(1, 1, k);
    let mut sum = 0.0f32;
    for i in 0..k {
        for j in 0..k {
            let (dy, dx) = (i as f32 - c, j as f32 - c);
            let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            f.set(0, 0, i, j, v);
            sum += v;
        }
    }
    for v in f.as_mut_slice() {
        *v /= sum;
    }
    f
}

/// A normalized `k x k` box (mean) filter.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn box_filter(k: usize) -> FilterSet {
    assert!(k > 0, "box filter size must be positive");
    FilterSet::from_fn(1, 1, k, |_, _, _, _| 1.0 / (k * k) as f32)
}

/// A bank of oriented matched filters for line/vessel detection (the
/// retinal blood-vessel use case of the paper's reference \[2\]): each filter
/// is a zero-mean line detector rotated to one of `orientations` angles.
///
/// # Panics
///
/// Panics if `k` is even or zero, or `orientations` is zero.
pub fn matched_line_bank(k: usize, orientations: usize) -> FilterSet {
    assert!(k % 2 == 1 && k > 0, "filter size must be odd");
    assert!(orientations > 0, "need at least one orientation");
    let c = (k / 2) as f32;
    let mut bank = FilterSet::zeros(orientations, 1, k);
    for o in 0..orientations {
        let theta = std::f32::consts::PI * o as f32 / orientations as f32;
        let (sin, cos) = theta.sin_cos();
        let mut sum = 0.0f32;
        for i in 0..k {
            for j in 0..k {
                // Signed distance from the line through the center.
                let (dy, dx) = (i as f32 - c, j as f32 - c);
                let d = dx * sin - dy * cos;
                let v = (-(d * d) / 2.0).exp();
                bank.set(o, 0, i, j, v);
                sum += v;
            }
        }
        // Zero-mean: matched filters respond to shape, not brightness.
        let mean = sum / (k * k) as f32;
        for i in 0..k {
            for j in 0..k {
                let v = bank.get(o, 0, i, j) - mean;
                bank.set(o, 0, i, j, v);
            }
        }
    }
    bank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sobel_filters_are_antisymmetric() {
        let x = sobel_x();
        assert_eq!(x.get(0, 0, 1, 0), -2.0);
        assert_eq!(x.get(0, 0, 1, 2), 2.0);
        let y = sobel_y();
        assert_eq!(y.get(0, 0, 0, 1), -2.0);
    }

    #[test]
    fn sobel_pair_combines_both() {
        let p = sobel_pair();
        assert_eq!(p.count(), 2);
        assert_eq!(p.get(0, 0, 1, 2), 2.0);
        assert_eq!(p.get(1, 0, 2, 1), 2.0);
    }

    #[test]
    fn gaussian_is_normalized_and_peaked() {
        let g = gaussian(5, 1.0);
        let sum: f32 = g.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let center = g.get(0, 0, 2, 2);
        assert!(g.as_slice().iter().all(|&v| v <= center));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn gaussian_rejects_even_sizes() {
        gaussian(4, 1.0);
    }

    #[test]
    fn box_filter_sums_to_one() {
        let b = box_filter(3);
        let sum: f32 = b.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn laplacian_sums_to_zero() {
        let sum: f32 = laplacian().as_slice().iter().sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn matched_bank_is_zero_mean_per_filter() {
        let bank = matched_line_bank(7, 4);
        assert_eq!(bank.count(), 4);
        for o in 0..4 {
            let mut sum = 0.0f32;
            for i in 0..7 {
                for j in 0..7 {
                    sum += bank.get(o, 0, i, j);
                }
            }
            assert!(sum.abs() < 1e-4, "orientation {o}: mean {sum}");
        }
    }

    #[test]
    fn matched_bank_orientations_differ() {
        let bank = matched_line_bank(7, 2);
        // Horizontal vs vertical response patterns must differ.
        let mut diff = 0.0f32;
        for i in 0..7 {
            for j in 0..7 {
                diff += (bank.get(0, 0, i, j) - bank.get(1, 0, i, j)).abs();
            }
        }
        assert!(diff > 1.0);
    }
}

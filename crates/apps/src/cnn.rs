//! CNN inference layer stacks — the paper's headline workload for the
//! general-case kernel.
//!
//! A [`LayerStack`] chains convolution layers (run on the simulated GPU
//! through any [`Engine`]) with host-side ReLU and 2x2 max-pooling, and
//! reports per-layer statistics. Stride-1 "valid" convolutions only, like
//! the kernels themselves; the stock stacks are VGG-flavoured for that
//! reason.

use kconv_core::ConvError;
use kconv_sim::{Gpu, SimMode};
use kconv_tensor::{random_filters, ConvProblem, FeatureMaps, FilterSet};

use crate::device_ops::{max_pool2_device, relu_device};
use crate::engine::Engine;

/// One convolution layer: a filter bank plus post-processing switches.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    /// Display name.
    pub name: String,
    /// The layer's filters (`F x C x K x K`).
    pub filters: FilterSet,
    /// Spatial stride (strided layers route to the GEMM baseline under
    /// [`Engine::Auto`] — the paper's kernels are stride-1 specialized).
    pub stride: usize,
    /// Apply ReLU after the convolution.
    pub relu: bool,
    /// Apply 2x2 stride-2 max pooling after the activation.
    pub pool: bool,
}

impl ConvLayer {
    /// A layer with seeded random weights.
    pub fn random(
        name: impl Into<String>,
        filters: usize,
        channels: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        ConvLayer {
            name: name.into(),
            filters: random_filters(filters, channels, k, seed),
            stride: 1,
            relu: true,
            pool: false,
        }
    }

    /// Enables 2x2 max pooling after this layer.
    pub fn with_pool(mut self) -> Self {
        self.pool = true;
        self
    }

    /// Sets the layer's spatial stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }
}

/// Host-side ReLU (test oracle for the device kernel).
#[cfg(test)]
fn relu(maps: &mut FeatureMaps) {
    for v in maps.as_mut_slice() {
        *v = v.max(0.0);
    }
}

/// Host-side 2x2 stride-2 max pooling (test oracle for the device kernel).
#[cfg(test)]
fn max_pool2(maps: &FeatureMaps) -> FeatureMaps {
    let (c, h, w) = (maps.channels(), maps.height() / 2, maps.width() / 2);
    FeatureMaps::from_fn(c, h, w, |ch, y, x| {
        let (yy, xx) = (2 * y, 2 * x);
        maps.get(ch, yy, xx)
            .max(maps.get(ch, yy, xx + 1))
            .max(maps.get(ch, yy + 1, xx))
            .max(maps.get(ch, yy + 1, xx + 1))
    })
}

/// Per-layer record of a stack run.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// The convolution problem the layer solved.
    pub problem: ConvProblem,
    /// Engine display name that ran it.
    pub engine: String,
    /// Modeled seconds of the convolution launch.
    pub seconds: f64,
    /// Modeled seconds of the layer's device post-processing (ReLU and
    /// pooling kernels).
    pub post_seconds: f64,
    /// Algorithmic GFlop/s of the convolution.
    pub gflops: f64,
}

/// Result of [`LayerStack::run`].
#[derive(Debug, Clone)]
pub struct StackRun {
    /// Final feature maps.
    pub output: FeatureMaps,
    /// Per-layer statistics, in execution order.
    pub layers: Vec<LayerReport>,
}

impl StackRun {
    /// Total modeled convolution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.seconds).sum()
    }

    /// Total modeled post-processing (ReLU/pooling) time in seconds.
    pub fn total_post_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.post_seconds).sum()
    }
}

/// A feed-forward stack of convolution layers.
#[derive(Debug, Clone, Default)]
pub struct LayerStack {
    /// The layers, in order.
    pub layers: Vec<ConvLayer>,
}

impl LayerStack {
    /// An empty stack.
    pub fn new() -> Self {
        LayerStack { layers: Vec::new() }
    }

    /// A LeNet-flavoured stack for 1-channel inputs: 5x5 convolutions with
    /// pooling — its first layer is the paper's special case.
    pub fn lenet_like() -> Self {
        LayerStack {
            layers: vec![
                ConvLayer::random("conv1 (special case)", 8, 1, 5, 1).with_pool(),
                ConvLayer::random("conv2", 16, 8, 5, 2).with_pool(),
            ],
        }
    }

    /// An AlexNet-flavoured prefix for RGB inputs: a strided 7x7 stem
    /// (routed to the GEMM baseline — the paper's kernels are stride-1
    /// only) followed by stride-1 layers on the paper's kernels.
    pub fn alexnet_like() -> Self {
        LayerStack {
            layers: vec![
                ConvLayer::random("conv1-32 /2 (strided stem)", 32, 3, 7, 21).with_stride(2),
                ConvLayer::random("conv2-64", 64, 32, 5, 22).with_pool(),
                ConvLayer::random("conv3-128", 128, 64, 3, 23),
            ],
        }
    }

    /// A VGG-A-flavoured prefix for RGB inputs: stride-1 3x3 convolutions
    /// with pooling, channel widths 64 -> 128 -> 256.
    pub fn vgg_like() -> Self {
        LayerStack {
            layers: vec![
                ConvLayer::random("conv1-64", 64, 3, 3, 11).with_pool(),
                ConvLayer::random("conv2-128", 128, 64, 3, 12).with_pool(),
                ConvLayer::random("conv3-256", 256, 128, 3, 13),
            ],
        }
    }

    /// Runs the stack on `input`, timing every convolution on `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::Shape`] when a layer's input became smaller
    /// than its filter, and propagates kernel errors.
    pub fn run(
        &self,
        gpu: &mut Gpu,
        input: FeatureMaps,
        engine: Engine,
        mode: SimMode,
    ) -> Result<StackRun, ConvError> {
        let mut maps = input;
        let mut layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let k = layer.filters.k();
            if maps.height() < k || maps.width() < k {
                return Err(ConvError::Shape(format!(
                    "layer {}: input {}x{} smaller than filter {k}x{k}",
                    layer.name,
                    maps.height(),
                    maps.width()
                )));
            }
            let problem = ConvProblem::new(
                maps.channels(),
                maps.height(),
                maps.width(),
                layer.filters.count(),
                k,
            )
            .with_stride(layer.stride);
            let conv = engine.resolve(gpu, &problem)?;
            let run = conv.run(gpu, &problem, &maps, &layer.filters, mode.clone())?;
            let seconds = run.report.seconds();
            let gflops = run.effective_gflops(&problem);
            let mut post_seconds = 0.0;
            maps = run.output;
            if layer.relu {
                let (out, report) = relu_device(gpu, &maps)?;
                maps = out;
                post_seconds += report.seconds();
            }
            if layer.pool && maps.height() >= 2 && maps.width() >= 2 {
                let (out, report) = max_pool2_device(gpu, &maps)?;
                maps = out;
                post_seconds += report.seconds();
            }
            layers.push(LayerReport {
                name: layer.name.clone(),
                problem,
                engine: conv.name(),
                seconds,
                post_seconds,
                gflops,
            });
        }
        Ok(StackRun {
            output: maps,
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::random_maps;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m())
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut maps = FeatureMaps::from_fn(1, 2, 2, |_, y, x| (y as f32 - 0.5) * (x as f32 + 1.0));
        relu(&mut maps);
        assert!(maps.as_slice().iter().all(|&v| v >= 0.0));
        assert_eq!(maps.get(0, 1, 1), 1.0);
    }

    #[test]
    fn pooling_halves_and_takes_max() {
        let maps = FeatureMaps::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let pooled = max_pool2(&maps);
        assert_eq!(pooled.height(), 2);
        assert_eq!(pooled.get(0, 0, 0), 5.0);
        assert_eq!(pooled.get(0, 1, 1), 15.0);
    }

    #[test]
    fn lenet_stack_runs_and_shrinks() {
        let mut g = gpu();
        let input = random_maps(1, 36, 36, 61);
        let run = LayerStack::lenet_like()
            .run(&mut g, input, Engine::Auto, SimMode::Full)
            .unwrap();
        assert_eq!(run.layers.len(), 2);
        // conv1: 36 -> 32, pool -> 16; conv2: 16 -> 12, pool -> 6.
        assert_eq!(run.output.channels(), 16);
        assert_eq!(run.output.height(), 6);
        // The first layer must have used the special-case kernel.
        assert!(run.layers[0].engine.contains("special"));
        assert!(run.total_seconds() > 0.0);
    }

    #[test]
    fn vgg_stack_uses_general_kernel() {
        let mut g = gpu();
        let input = random_maps(3, 20, 20, 62);
        let run = LayerStack::vgg_like()
            .run(&mut g, input, Engine::Auto, SimMode::Sampled(2))
            .unwrap();
        assert!(run.layers.iter().all(|l| l.engine.contains("general")));
        assert_eq!(run.output.channels(), 256);
    }

    #[test]
    fn alexnet_stack_mixes_engines() {
        let mut g = gpu();
        let input = random_maps(3, 39, 39, 68);
        let run = LayerStack::alexnet_like()
            .run(&mut g, input, Engine::Auto, SimMode::Sampled(2))
            .unwrap();
        // The strided stem takes the GEMM path, the rest the paper's kernel.
        assert!(
            run.layers[0].engine.contains("GEMM"),
            "{}",
            run.layers[0].engine
        );
        assert!(run.layers[1].engine.contains("general"));
        // conv1: (39-7)/2+1 = 17; conv2: 13, pool -> 6; conv3: 4.
        assert_eq!(run.output.height(), 4);
        assert_eq!(run.output.channels(), 128);
    }

    #[test]
    fn undersized_input_is_an_error() {
        let mut g = gpu();
        let input = random_maps(1, 6, 6, 63);
        // conv1 5x5 -> 2x2, pool -> 1x1, conv2 5x5 impossible.
        let err = LayerStack::lenet_like().run(&mut g, input, Engine::Auto, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn device_postprocessing_matches_host_oracles() {
        let mut g = gpu();
        let input = random_maps(2, 10, 10, 66);
        let layer = ConvLayer::random("probe", 4, 2, 3, 67).with_pool();
        let stack = LayerStack {
            layers: vec![layer.clone()],
        };
        let run = stack
            .run(&mut g, input.clone(), Engine::ImplicitGemm, SimMode::Full)
            .unwrap();
        // Recompute with the host oracles.
        let problem = ConvProblem::new(2, 10, 10, 4, 3);
        let mut want = kconv_core::conv_reference(&problem, &input, &layer.filters);
        relu(&mut want);
        let want = max_pool2(&want);
        kconv_tensor::assert_close(
            run.output.as_slice(),
            want.as_slice(),
            kconv_tensor::CONV_TOL,
            "device post ops",
        );
        assert!(run.total_post_seconds() > 0.0);
    }

    #[test]
    fn outputs_match_reference_through_the_stack() {
        // One layer, no pooling: stack output equals direct reference.
        let mut g = gpu();
        let input = random_maps(2, 16, 16, 64);
        let layer = ConvLayer {
            relu: false,
            ..ConvLayer::random("probe", 8, 2, 3, 65)
        };
        let stack = LayerStack {
            layers: vec![layer.clone()],
        };
        let run = stack
            .run(&mut g, input.clone(), Engine::ImplicitGemm, SimMode::Full)
            .unwrap();
        let problem = ConvProblem::new(2, 16, 16, 8, 3);
        let want = kconv_core::conv_reference(&problem, &input, &layer.filters);
        kconv_tensor::assert_close(
            run.output.as_slice(),
            want.as_slice(),
            kconv_tensor::CONV_TOL,
            "stack",
        );
    }
}

//! Image-processing routines built on the special-case kernel: edge
//! detection, smoothing and template matching — the applications the paper
//! cites as motivation for the `C = 1` case.

use kconv_core::{ConvError, ConvRun};
use kconv_sim::{Gpu, LaunchReport, SimMode};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet, Image};

use crate::engine::Engine;
use crate::gallery;

fn run_on_image(
    gpu: &mut Gpu,
    image: &Image,
    filters: &FilterSet,
    engine: Engine,
) -> Result<ConvRun, ConvError> {
    let problem = ConvProblem::new(
        1,
        image.height(),
        image.width(),
        filters.count(),
        filters.k(),
    );
    let input = FeatureMaps::from_image(image.clone());
    engine.run(gpu, &problem, &input, filters, SimMode::Full)
}

/// Result of [`edge_detect`].
#[derive(Debug, Clone)]
pub struct EdgeMap {
    /// Gradient magnitude `sqrt(gx^2 + gy^2)`.
    pub magnitude: Image,
    /// Horizontal gradient.
    pub gx: Image,
    /// Vertical gradient.
    pub gy: Image,
    /// Launch statistics of the convolution.
    pub report: LaunchReport,
}

/// Sobel edge detection: one launch convolves both gradient filters, the
/// magnitude is combined on the host.
///
/// # Errors
///
/// Propagates kernel errors (e.g. an image smaller than the filter).
pub fn edge_detect(gpu: &mut Gpu, image: &Image, engine: Engine) -> Result<EdgeMap, ConvError> {
    let run = run_on_image(gpu, image, &gallery::sobel_pair(), engine)?;
    let (h, w) = (run.output.height(), run.output.width());
    let gx = run.output.channel(0);
    let gy = run.output.channel(1);
    let magnitude = Image::from_fn(h, w, |y, x| gx.get(y, x).hypot(gy.get(y, x)));
    Ok(EdgeMap {
        magnitude,
        gx,
        gy,
        report: run.report,
    })
}

/// Gaussian smoothing with a `k x k` filter of standard deviation `sigma`.
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if `k` is even (see [`gallery::gaussian`]).
pub fn smooth(
    gpu: &mut Gpu,
    image: &Image,
    k: usize,
    sigma: f32,
    engine: Engine,
) -> Result<(Image, LaunchReport), ConvError> {
    let run = run_on_image(gpu, image, &gallery::gaussian(k, sigma), engine)?;
    Ok((run.output.channel(0), run.report))
}

/// A detection from [`template_match`]: the strongest response position
/// per template orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Template (orientation) index.
    pub template: usize,
    /// Response row.
    pub y: usize,
    /// Response column.
    pub x: usize,
    /// Response value.
    pub score: f32,
}

/// Result of [`template_match`].
#[derive(Debug, Clone)]
pub struct MatchMap {
    /// Raw responses, one map per template.
    pub responses: FeatureMaps,
    /// Per-pixel maximum over templates (the vessel-detection combination
    /// rule of the paper's reference \[2\]).
    pub max_response: Image,
    /// Strongest detection per template.
    pub peaks: Vec<Detection>,
    /// Launch statistics of the convolution.
    pub report: LaunchReport,
}

/// Matched-filter template matching: convolve the image with a bank of
/// templates (e.g. [`gallery::matched_line_bank`]) in a single launch and
/// reduce on the host.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn template_match(
    gpu: &mut Gpu,
    image: &Image,
    templates: &FilterSet,
    engine: Engine,
) -> Result<MatchMap, ConvError> {
    let run = run_on_image(gpu, image, templates, engine)?;
    let out = run.output;
    let (f, h, w) = (out.channels(), out.height(), out.width());
    let mut peaks = Vec::with_capacity(f);
    for t in 0..f {
        let mut best = Detection {
            template: t,
            y: 0,
            x: 0,
            score: f32::NEG_INFINITY,
        };
        for y in 0..h {
            for x in 0..w {
                let v = out.get(t, y, x);
                if v > best.score {
                    best = Detection {
                        template: t,
                        y,
                        x,
                        score: v,
                    };
                }
            }
        }
        peaks.push(best);
    }
    let max_response = Image::from_fn(h, w, |y, x| {
        (0..f).map(|t| out.get(t, y, x)).fold(f32::MIN, f32::max)
    });
    Ok(MatchMap {
        responses: out,
        max_response,
        peaks,
        report: run.report,
    })
}

/// Result of [`canny`].
#[derive(Debug, Clone)]
pub struct CannyMap {
    /// Binary edge map (1.0 = edge), same geometry as the input.
    pub edges: Image,
    /// Gradient magnitude after non-maximum suppression.
    pub thinned: Image,
    /// Raw gradient magnitude.
    pub magnitude: Image,
}

/// Canny edge detection: Gaussian smoothing and the Sobel pair run on the
/// GPU ("same" geometry via border padding); non-maximum suppression and
/// hysteresis thresholding run on the host.
///
/// `low`/`high` are the hysteresis thresholds on gradient magnitude.
///
/// # Errors
///
/// Propagates kernel errors, and rejects `low > high`.
pub fn canny(
    gpu: &mut Gpu,
    image: &Image,
    low: f32,
    high: f32,
    engine: Engine,
) -> Result<CannyMap, ConvError> {
    if low > high {
        return Err(ConvError::Shape(format!(
            "hysteresis thresholds inverted: low {low} > high {high}"
        )));
    }
    // 1. Smooth at "same" geometry (pad by (K-1)/2 = 2 for the 5x5).
    let padded = image.padded_border(2, 2, 2, 2);
    let (smoothed, _) = smooth(gpu, &padded, 5, 1.0, engine)?;

    // 2. Sobel at "same" geometry.
    let padded = smoothed.padded_border(1, 1, 1, 1);
    let grads = edge_detect(gpu, &padded, engine)?;
    let (h, w) = (grads.magnitude.height(), grads.magnitude.width());
    debug_assert_eq!((h, w), (image.height(), image.width()));

    // 3. Non-maximum suppression along the quantized gradient direction.
    let mut thinned = Image::zeros(h, w);
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let m = grads.magnitude.get(y, x);
            if m == 0.0 {
                continue;
            }
            let (gx, gy) = (grads.gx.get(y, x), grads.gy.get(y, x));
            // Quantize the direction to 0/45/90/135 degrees.
            let angle = gy.atan2(gx).to_degrees().rem_euclid(180.0);
            let (d1, d2) = if !(22.5..157.5).contains(&angle) {
                ((0i64, 1i64), (0i64, -1i64)) // horizontal gradient
            } else if angle < 67.5 {
                ((1, 1), (-1, -1))
            } else if angle < 112.5 {
                ((1, 0), (-1, 0))
            } else {
                ((1, -1), (-1, 1))
            };
            let at = |dy: i64, dx: i64| {
                grads
                    .magnitude
                    .get((y as i64 + dy) as usize, (x as i64 + dx) as usize)
            };
            if m >= at(d1.0, d1.1) && m >= at(d2.0, d2.1) {
                thinned.set(y, x, m);
            }
        }
    }

    // 4. Hysteresis: BFS from strong pixels through weak ones.
    let mut edges = Image::zeros(h, w);
    let mut stack = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if thinned.get(y, x) >= high {
                stack.push((y, x));
                edges.set(y, x, 1.0);
            }
        }
    }
    while let Some((y, x)) = stack.pop() {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (ny, nx) = (y as i64 + dy, x as i64 + dx);
                if ny < 0 || nx < 0 || ny as usize >= h || nx as usize >= w {
                    continue;
                }
                let (ny, nx) = (ny as usize, nx as usize);
                if edges.get(ny, nx) == 0.0 && thinned.get(ny, nx) >= low {
                    edges.set(ny, nx, 1.0);
                    stack.push((ny, nx));
                }
            }
        }
    }

    Ok(CannyMap {
        edges,
        thinned,
        magnitude: grads.magnitude,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m())
    }

    /// A white vertical bar on black background.
    fn bar_image(n: usize, col: usize) -> Image {
        Image::from_fn(n, n, |_, x| if x == col { 1.0 } else { 0.0 })
    }

    #[test]
    fn edge_detect_finds_the_bar() {
        let mut g = gpu();
        let img = bar_image(48, 24);
        let edges = edge_detect(&mut g, &img, Engine::Auto).unwrap();
        // Strong |gx| response next to the bar, none far away.
        assert!(edges.magnitude.get(20, 22).abs() > 1.0);
        assert_eq!(edges.magnitude.get(20, 10), 0.0);
        // Vertical bar: gy must vanish along the bar's interior.
        assert_eq!(edges.gy.get(20, 23), 0.0);
    }

    #[test]
    fn smoothing_preserves_mass_and_spreads() {
        let mut g = gpu();
        let mut img = Image::zeros(33, 33);
        img.set(16, 16, 100.0);
        let (out, _) = smooth(&mut g, &img, 5, 1.0, Engine::Auto).unwrap();
        // Peak attenuated, neighbours lit.
        let peak = out.get(14, 14); // output coords shift by (K-1)/2
        assert!(peak < 100.0 && peak > 5.0);
        assert!(out.get(13, 14) > 0.0);
        // Total mass approximately preserved away from borders.
        let total: f32 = out.as_slice().iter().sum();
        assert!((total - 100.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn template_match_peaks_on_the_line() {
        let mut g = gpu();
        let img = bar_image(40, 20);
        let bank = gallery::matched_line_bank(7, 4);
        let m = template_match(&mut g, &img, &bank, Engine::Auto).unwrap();
        // The vertical-line template (pi/2 is orientation index 2 of 4:
        // theta = 0, 45, 90, 135 degrees) should peak on the bar column.
        let vertical = &m.peaks[2];
        assert_eq!(vertical.x + 3, 20, "peak at {:?}", vertical); // center offset (K-1)/2
                                                                  // And it must beat the horizontal template's best score.
        assert!(vertical.score > m.peaks[0].score);
        // The combined map peaks on the bar too.
        let (h, w) = (m.max_response.height(), m.max_response.width());
        let mut best = (0usize, 0usize, f32::MIN);
        for y in 0..h {
            for x in 0..w {
                if m.max_response.get(y, x) > best.2 {
                    best = (y, x, m.max_response.get(y, x));
                }
            }
        }
        assert_eq!(best.1 + 3, 20);
    }

    #[test]
    fn canny_finds_a_box_outline() {
        let mut g = gpu();
        // A bright 12x12 square in a 40x40 image.
        let img = Image::from_fn(40, 40, |y, x| {
            if (14..26).contains(&y) && (14..26).contains(&x) {
                1.0
            } else {
                0.0
            }
        });
        let result = canny(&mut g, &img, 0.2, 0.8, Engine::Auto).unwrap();
        assert_eq!(result.edges.height(), 40);
        // Edges on the box boundary, none deep inside or far outside.
        let edge_count: f32 = result.edges.as_slice().iter().sum();
        assert!(edge_count > 30.0, "too few edge pixels: {edge_count}");
        assert_eq!(result.edges.get(20, 20), 0.0, "interior must be clean");
        assert_eq!(result.edges.get(5, 5), 0.0, "background must be clean");
        let boundary: f32 = (14..26)
            .map(|x| result.edges.get(13, x) + result.edges.get(14, x))
            .sum();
        assert!(boundary >= 10.0, "top boundary weak: {boundary}");
    }

    #[test]
    fn canny_hysteresis_extends_strong_edges() {
        let mut g = gpu();
        let img = Image::from_fn(32, 32, |y, x| {
            // A bar with fading intensity.
            if x == 16 {
                1.0 - y as f32 / 64.0
            } else {
                0.0
            }
        });
        let strict = canny(&mut g, &img, 1.2, 1.2, Engine::Auto).unwrap();
        let hysteretic = canny(&mut g, &img, 0.4, 1.2, Engine::Auto).unwrap();
        let count = |m: &Image| m.as_slice().iter().sum::<f32>();
        assert!(count(&hysteretic.edges) > count(&strict.edges));
    }

    #[test]
    fn canny_rejects_inverted_thresholds() {
        let mut g = gpu();
        let img = Image::zeros(16, 16);
        assert!(canny(&mut g, &img, 0.9, 0.1, Engine::Auto).is_err());
    }

    #[test]
    fn engines_produce_identical_edges() {
        let img = bar_image(40, 13);
        let mut g1 = gpu();
        let a = edge_detect(&mut g1, &img, Engine::Special).unwrap();
        let mut g2 = gpu();
        let b = edge_detect(&mut g2, &img, Engine::ImplicitGemm).unwrap();
        kconv_tensor::assert_close(
            a.magnitude.as_slice(),
            b.magnitude.as_slice(),
            kconv_tensor::CONV_TOL,
            "edge engines",
        );
    }
}

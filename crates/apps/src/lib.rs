//! # kconv-apps — applications on the kconv convolution kernels
//!
//! The workloads the paper's introduction motivates, built on the public
//! API of `kconv-core`:
//!
//! * [`imgproc`] — Sobel edge detection, Gaussian smoothing and
//!   matched-filter template matching (the retinal-vessel use case of the
//!   paper's reference \[2\]), all powered by the special-case kernel;
//! * [`cnn`] — feed-forward CNN layer stacks with per-layer timing, the
//!   general-case kernel's home turf;
//! * [`gallery`] — classic filter banks (Sobel, Laplacian, Gaussian,
//!   oriented matched filters);
//! * [`Engine`] — automatic kernel selection per problem shape.
//!
//! ## Example
//!
//! ```
//! use kconv_apps::{edge_detect, Engine};
//! use kconv_sim::{Gpu, GpuSpec};
//! use kconv_tensor::random_image;
//!
//! # fn main() -> Result<(), kconv_core::ConvError> {
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let image = random_image(64, 64, 9);
//! let edges = edge_detect(&mut gpu, &image, Engine::Auto)?;
//! assert_eq!(edges.magnitude.height(), 62);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cnn;
pub mod device_ops;
mod engine;
pub mod gallery;
pub mod imgproc;

pub use cnn::{ConvLayer, LayerReport, LayerStack, StackRun};
pub use device_ops::{max_pool2_device, relu_device};
pub use engine::{Engine, EnginePlan, PlanCache};
pub use imgproc::{
    canny, edge_detect, smooth, template_match, CannyMap, Detection, EdgeMap, MatchMap,
};

//! # kconv-systolic — double-buffered staging pipeline over the workload matrix
//!
//! The paper's kernels alternate *stage → barrier → compute → barrier* every
//! channel round: two `bar.sync`s per round, with every warp idle while the
//! round's shared-memory slab fills. This crate splits the shared-memory
//! allocation into ping/pong halves and overlaps the rounds: while round `r`
//! computes from buffer `A`, the same warps stage round `r + 1` into buffer
//! `B`, and one barrier per round separates the two phases. Over `R` rounds
//! the barrier count drops from `2R` to `R + 1` — asymptotically half — at
//! the cost of doubling the staging footprint.
//!
//! [`PipelineConfig::depth`] selects the schedule: depth 1 is the paper's
//! stage/compute alternation (the differential baseline), depth 2 the
//! double-buffered pipeline. Everything else — global-memory addresses,
//! shared-memory conflict behavior, FMA order, output — is bit-identical
//! between the two, so the simulator's counters isolate exactly the barrier
//! savings. The ping/pong offset is a multiple of 256 bytes (a full bank
//! row on both 4- and 8-byte-bank parts), which keeps the bank-conflict
//! cost of every staged access invariant across depths.
//!
//! The executor also widens the workload matrix beyond the paper's dense
//! stride-1 case: [`SystolicConv`] accepts strided, dilated and depthwise
//! (`groups == channels`) problems (see
//! [`ConvProblem::with_dilation`]/[`ConvProblem::depthwise`]), staging only
//! the `K` gathered input rows a dilated/strided tap pattern actually
//! touches. Staging is `n`-wide through the [`KernelShape`] vector factor,
//! so the architecture-adaptive generator's matched variants get the
//! pipelined form too.
//!
//! ```
//! use kconv_core::Convolution;
//! use kconv_sim::{Gpu, GpuSpec, SimMode};
//! use kconv_systolic::{PipelineConfig, SystolicConv};
//! use kconv_tensor::{random_filters, random_maps, ConvProblem};
//!
//! # fn main() -> Result<(), kconv_core::ConvError> {
//! let spec = GpuSpec::kepler_k40m();
//! let problem = ConvProblem::general(32, 8, 4, 3).with_stride(2);
//! let input = random_maps(8, 32, 32, 1);
//! let filters = random_filters(4, 8, 3, 2);
//!
//! let base = PipelineConfig::matched_for(&spec).with_depth(1);
//! let pipe = base.with_depth(2);
//! let mut gpu = Gpu::new(spec);
//! let d1 = SystolicConv::new(base).run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
//! let d2 = SystolicConv::new(pipe).run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
//!
//! // Same numbers, same memory traffic, (R + 1) vs 2R barriers.
//! assert_eq!(d1.output.as_slice(), d2.output.as_slice());
//! assert_eq!(d1.report.stats.gm_ld_bytes_bus, d2.report.stats.gm_ld_bytes_bus);
//! assert!(d2.report.stats.barriers < d1.report.stats.barriers);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use kconv_core::tune::TuneSkip;
use kconv_core::{ConvError, ConvRun, Convolution, DataType, KernelShape, OutRegion, Result};
use kconv_sim::{
    lane_addrs_from, Gpu, GpuSpec, LaneMask, LaunchConfig, OverlapMode, SimMode, WARP_SIZE,
};
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet};

/// Ping/pong buffer alignment in bytes: one full shared-memory bank row on
/// every modeled part (32 banks x 8 bytes). Offsetting the second buffer by
/// a multiple of this keeps each staged address in the same bank it used at
/// depth 1, so bank-conflict costs are bit-identical across depths.
pub const BUF_ALIGN: usize = 256;

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Configuration of the pipelined executor: the staging schedule depth plus
/// the tile geometry and vectorization shape every round stages with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Staging schedule: `1` = stage/compute alternation (two barriers per
    /// round — the paper's kernels, kept as the differential baseline);
    /// `2` = double-buffered ping/pong (one barrier per round plus a prime).
    pub depth: usize,
    /// Output columns per block; one thread per column, so also the block's
    /// thread count.
    pub tile_w: usize,
    /// Channels staged per round (`C_SH`); `ceil(C / c_sh)` rounds total.
    pub c_sh: usize,
    /// Vectorization shape of the staging stream (`n`-wide global loads and
    /// shared stores). The systolic kernel computes in `f32`; the shape's
    /// `vec_width` must be one of its instantiable factors (1, 2, 4).
    pub shape: KernelShape,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: 2,
            tile_w: 64,
            c_sh: 2,
            shape: KernelShape {
                dtype: DataType::F32,
                vec_width: 2,
            },
        }
    }
}

impl PipelineConfig {
    /// The default tile with the staging vector factor derived from `spec`'s
    /// bank width (eq. 1 in reverse, like the architecture-adaptive
    /// generator).
    pub fn matched_for(spec: &GpuSpec) -> Self {
        PipelineConfig {
            shape: KernelShape::matched(spec, DataType::F32),
            ..PipelineConfig::default()
        }
    }

    /// This configuration with a different pipeline depth.
    pub fn with_depth(self, depth: usize) -> Self {
        PipelineConfig { depth, ..self }
    }

    /// Channel rounds the main loop runs for `problem`.
    pub fn rounds(&self, problem: &ConvProblem) -> usize {
        problem.channels.div_ceil(self.c_sh)
    }

    /// Columns of one staged input row: the tile's gathered span
    /// `(tile_w - 1) * stride + k_span`, padded to the staging vector
    /// factor so `n`-wide staging stays aligned.
    pub fn row_pitch(&self, problem: &ConvProblem) -> usize {
        let span = (self.tile_w - 1) * problem.stride + problem.k_span();
        round_up(span, self.shape.vec_width)
    }

    /// Filters staged per channel: all `F` for dense convolution, exactly
    /// one for depthwise (channel `c` feeds only output map `c`).
    fn fcount(&self, problem: &ConvProblem) -> usize {
        if problem.depthwise {
            1
        } else {
            problem.filters
        }
    }

    /// Bytes one round's slab occupies: `c_sh` channels x `K` gathered
    /// input rows x [`row_pitch`](Self::row_pitch), plus the round's filter
    /// taps.
    pub fn round_bytes(&self, problem: &ConvProblem) -> usize {
        let kk = problem.k * problem.k;
        let img = self.c_sh * problem.k * self.row_pitch(problem);
        let flt = self.c_sh * self.fcount(problem) * kk;
        (img + flt) * 4
    }

    /// Distance between ping and pong buffers: [`round_bytes`]
    /// (Self::round_bytes) rounded up to [`BUF_ALIGN`].
    pub fn buf_stride(&self, problem: &ConvProblem) -> usize {
        round_up(self.round_bytes(problem), BUF_ALIGN)
    }

    /// Total static shared memory per block: `depth` staging buffers.
    pub fn smem_bytes(&self, problem: &ConvProblem) -> usize {
        self.depth * self.buf_stride(problem)
    }

    /// Barriers one block issues for `problem` under this schedule:
    /// `2R` at depth 1 (stage;sync;compute;sync per round), `R + 1` at
    /// depth 2 (one priming sync plus one per round).
    pub fn barriers_per_block(&self, problem: &ConvProblem) -> u64 {
        let r = self.rounds(problem) as u64;
        match self.depth {
            1 => 2 * r,
            _ => r + 1,
        }
    }

    /// Checks this configuration against `spec` and `problem`, returning a
    /// human-readable reason on rejection — the string the depth-axis tuner
    /// records as a [`TuneSkip`] when the doubled staging buffer no longer
    /// fits the shared memory of one block.
    ///
    /// # Errors
    ///
    /// Returns the reason the configuration cannot run.
    pub fn validate(
        &self,
        spec: &GpuSpec,
        problem: &ConvProblem,
    ) -> std::result::Result<(), String> {
        if !(1..=2).contains(&self.depth) {
            return Err(format!("pipeline depth {} (supported: 1, 2)", self.depth));
        }
        if self.tile_w == 0 || self.tile_w > 1024 {
            return Err(format!("tile_w {} threads per block", self.tile_w));
        }
        if self.c_sh == 0 {
            return Err("c_sh must be at least 1".into());
        }
        if self.shape.dtype != DataType::F32 {
            return Err(format!(
                "systolic kernel computes in f32, got {:?}",
                self.shape.dtype
            ));
        }
        if !KernelShape::supported_factors(DataType::F32).contains(&self.shape.vec_width) {
            return Err(format!(
                "staging vector factor {} (supported: 1, 2, 4)",
                self.shape.vec_width
            ));
        }
        let need = self.smem_bytes(problem);
        if need > spec.max_smem_per_block as usize {
            return Err(format!(
                "depth-{} staging needs {} B of shared memory ({} B/buffer x {}), \
                 exceeds the {} B per-block capacity of {}",
                self.depth,
                need,
                self.buf_stride(problem),
                self.depth,
                spec.max_smem_per_block,
                spec.name
            ));
        }
        Ok(())
    }
}

/// The barrier-halving relation between the two schedules on the same
/// problem: depth 2's `R + 1` per-block barriers against depth 1's `2R`,
/// i.e. `(pipelined - 1) * 2 == baseline`. This is the per-block check the
/// `systolic` harness and `trace_report --check` apply to captured traces.
pub fn barrier_halving(baseline_per_block: u64, pipelined_per_block: u64) -> bool {
    pipelined_per_block >= 1 && (pipelined_per_block - 1) * 2 == baseline_per_block
}

/// The pipelined direct convolution: one thread per output column, one
/// block per (output row, column tile), channel rounds staged through the
/// ping/pong schedule of its [`PipelineConfig`].
///
/// Unlike the paper's kernels this executor accepts the full workload
/// matrix — strided, dilated and depthwise problems — by staging the `K`
/// gathered input rows (`y * stride + i * dilation`) each output row
/// actually reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystolicConv {
    /// The pipeline schedule and tile geometry.
    pub config: PipelineConfig,
}

impl SystolicConv {
    /// A kernel with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        SystolicConv { config }
    }
}

impl Convolution for SystolicConv {
    fn name(&self) -> String {
        format!(
            "systolic d{} n={}",
            self.config.depth, self.config.shape.vec_width
        )
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        self.config
            .validate(gpu.spec(), problem)
            .map_err(ConvError::Config)?;
        match self.config.shape.vec_width {
            1 => run_systolic::<1>(gpu, &self.config, problem, input, filters, mode),
            2 => run_systolic::<2>(gpu, &self.config, problem, input, filters, mode),
            4 => run_systolic::<4>(gpu, &self.config, problem, input, filters, mode),
            n => Err(ConvError::Config(format!(
                "unsupported vec_width {n} (expected 1, 2 or 4)"
            ))),
        }
    }
}

/// Geometry shared by setup and the block body.
struct Geom {
    k: usize,
    kk: usize,
    channels: usize,
    filters: usize,
    stride: usize,
    dilation: usize,
    depthwise: bool,
    oh: usize,
    ow: usize,
    tiles_x: usize,
    tile_w: usize,
    c_sh: usize,
    rounds: usize,
    row_pitch: usize,
    in_pitch: usize,
    in_rows: usize,
    fcount: usize,
    /// Element offset of the filter slab inside one staging buffer.
    flt_base: usize,
    /// Byte distance between the ping and pong buffers.
    buf_stride: u64,
    depth: usize,
}

fn run_systolic<const N: usize>(
    gpu: &mut Gpu,
    cfg: &PipelineConfig,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let tiles_x = ow.div_ceil(cfg.tile_w);
    let row_pitch = cfg.row_pitch(problem);
    // Every tile stages a full row_pitch of columns; pad the device image so
    // the last tile's (vector-aligned) staging reads stay in bounds.
    let in_pitch = problem
        .width
        .max((tiles_x - 1) * cfg.tile_w * problem.stride + row_pitch);

    let padded = input.padded_to(problem.height, in_pitch);
    let d_in = gpu.alloc_f32((problem.channels * problem.height * in_pitch) as u64)?;
    gpu.upload_f32(d_in, padded.as_slice())?;
    let d_flt = gpu.alloc_f32(filters.len() as u64)?;
    gpu.upload_f32(d_flt, filters.as_slice())?;
    let d_out = gpu.alloc_f32((problem.filters * oh * ow) as u64)?;

    let g = Geom {
        k: problem.k,
        kk: problem.k * problem.k,
        channels: problem.channels,
        filters: problem.filters,
        stride: problem.stride,
        dilation: problem.dilation,
        depthwise: problem.depthwise,
        oh,
        ow,
        tiles_x,
        tile_w: cfg.tile_w,
        c_sh: cfg.c_sh,
        rounds: cfg.rounds(problem),
        row_pitch,
        in_pitch,
        in_rows: problem.height,
        fcount: cfg.fcount(problem),
        flt_base: cfg.c_sh * problem.k * row_pitch,
        buf_stride: cfg.buf_stride(problem) as u64,
        depth: cfg.depth,
    };

    let launch = LaunchConfig::new(
        format!("systolic d{} n{N} K={}", cfg.depth, problem.k),
        oh * tiles_x,
        cfg.tile_w,
    )
    .with_smem(cfg.smem_bytes(problem) as u32)
    .with_regs(32)
    .with_overlap(OverlapMode::Prefetch);

    let report = gpu.launch(&launch, mode, |blk| {
        systolic_block::<N>(blk, &g, d_in, d_flt, d_out);
    })?;

    let flat = gpu.download_f32(d_out)?;
    let output = FeatureMaps::from_vec(problem.filters, oh, ow, flat);

    let mut regions = Vec::new();
    for &b in &report.executed_blocks {
        let (y, tx) = (b / tiles_x, b % tiles_x);
        if let Some(r) = (OutRegion {
            f0: 0,
            nf: problem.filters,
            y0: y,
            x0: tx * cfg.tile_w,
            h: 1,
            w: cfg.tile_w,
        })
        .clipped(problem)
        {
            regions.push(r);
        }
    }
    Ok(ConvRun {
        output,
        report,
        executed_regions: regions,
        faults: Vec::new(),
    })
}

/// One thread block: output row `y`, columns `[tx * tile_w, ...)`, every
/// filter. The channel rounds run under the configured staging schedule;
/// staging and compute issue identical memory operations at either depth —
/// only their interleaving and the buffer offsets differ.
fn systolic_block<const N: usize>(
    blk: &mut kconv_sim::BlockCtx<'_>,
    g: &Geom,
    d_in: kconv_sim::GmBuf,
    d_flt: kconv_sim::GmBuf,
    d_out: kconv_sim::GmBuf,
) {
    let b = blk.dims.block_id;
    let (y, tx) = (b / g.tiles_x, b % g.tiles_x);
    let gx = tx * g.tile_w * g.stride; // input-column base of the tile
    let ox0 = tx * g.tile_w; // output-column base

    // Per-thread accumulators: each thread owns one output column across
    // all F maps. Sized to whole warps so trailing lanes index in bounds.
    let lanes = g.tile_w.div_ceil(WARP_SIZE) * WARP_SIZE;
    let mut acc = vec![0.0f32; lanes * g.filters];

    let buf_off = |r: usize| (r % 2) as u64 * g.buf_stride;
    if g.depth == 1 {
        // Baseline schedule: stage; sync; compute; sync — 2R barriers.
        for r in 0..g.rounds {
            stage_round::<N>(blk, g, d_in, d_flt, r, 0, y, gx);
            blk.sync();
            compute_round(blk, g, r, 0, ox0, &mut acc);
            blk.sync();
        }
    } else {
        // Pipelined schedule: prime buffer 0, then each round stages the
        // next round's slab into the other buffer while computing the
        // current one — R + 1 barriers. The write set (buffer r+1) and the
        // read set (buffer r) are disjoint, so no hazard spans a round.
        stage_round::<N>(blk, g, d_in, d_flt, 0, 0, y, gx);
        blk.sync();
        for r in 0..g.rounds {
            if r + 1 < g.rounds {
                stage_round::<N>(blk, g, d_in, d_flt, r + 1, buf_off(r + 1), y, gx);
            }
            compute_round(blk, g, r, buf_off(r), ox0, &mut acc);
            blk.sync();
        }
    }

    // Write back: one coalesced row segment per filter, no barrier needed —
    // every accumulator is thread-private.
    for f in 0..g.filters {
        blk.each_warp(|w| {
            let pop = w.population();
            let mask =
                LaneMask::from_fn(|lane| pop.is_active(lane) && ox0 + w.thread_id(lane) < g.ow);
            if mask.is_empty() {
                return;
            }
            let addrs = lane_addrs_from(|lane| {
                let x = (ox0 + w.thread_id(lane)).min(g.ow - 1);
                d_out.f32_addr(((f * g.oh + y) * g.ow + x) as u64)
            });
            let vals: [[f32; 1]; WARP_SIZE] =
                std::array::from_fn(|lane| [acc[w.thread_id(lane) * g.filters + f]]);
            w.st_global::<1>(&addrs, &vals, mask);
        });
    }
}

/// Stages round `r`'s slab into the buffer at byte offset `buf`: the `K`
/// gathered input rows (`y * stride + i * dilation`) of each of the round's
/// channels, `N` elements per lane, then the round's filter taps. Identical
/// global addresses at every depth; shared addresses differ only by `buf`.
#[allow(clippy::too_many_arguments)]
fn stage_round<const N: usize>(
    blk: &mut kconv_sim::BlockCtx<'_>,
    g: &Geom,
    d_in: kconv_sim::GmBuf,
    d_flt: kconv_sim::GmBuf,
    r: usize,
    buf: u64,
    y: usize,
    gx: usize,
) {
    let threads = blk.dims.threads;
    let c0 = r * g.c_sh;
    let cr = (g.channels - c0).min(g.c_sh);

    // Image slab: cr channels x K gathered rows x row_pitch columns, in
    // N-wide groups (row_pitch is a multiple of N).
    let gpr = g.row_pitch / N;
    let groups = cr * g.k * gpr;
    let mut g0 = 0usize;
    while g0 < groups {
        blk.each_warp(|w| {
            let mask = LaneMask::from_fn(|lane| g0 + w.thread_id(lane) < groups);
            if mask.is_empty() {
                return;
            }
            let decode = |lane: usize| {
                let e = (g0 + w.thread_id(lane)).min(groups - 1);
                let col = (e % gpr) * N;
                let i = (e / gpr) % g.k;
                let cc = e / (gpr * g.k);
                (cc, i, col)
            };
            let gaddrs = lane_addrs_from(|lane| {
                let (cc, i, col) = decode(lane);
                d_in.f32_addr(
                    (((c0 + cc) * g.in_rows + y * g.stride + i * g.dilation) * g.in_pitch
                        + gx
                        + col) as u64,
                )
            });
            let saddrs = lane_addrs_from(|lane| {
                let (cc, i, col) = decode(lane);
                buf + (((cc * g.k + i) * g.row_pitch + col) * 4) as u64
            });
            let vals = w.ld_global::<N>(&gaddrs, mask);
            w.st_shared::<N>(&saddrs, &vals, mask);
        });
        g0 += threads;
    }

    // Filter slab: cr channels x fcount filters x K*K taps, scalar (the
    // FCHW source is only contiguous within one filter's K*K window).
    let elems = cr * g.fcount * g.kk;
    let mut e0 = 0usize;
    while e0 < elems {
        blk.each_warp(|w| {
            let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < elems);
            if mask.is_empty() {
                return;
            }
            let decode = |lane: usize| {
                let e = (e0 + w.thread_id(lane)).min(elems - 1);
                let q = e % g.kk;
                let fi = (e / g.kk) % g.fcount;
                let cc = e / (g.kk * g.fcount);
                (cc, fi, q)
            };
            let gaddrs = lane_addrs_from(|lane| {
                let (cc, fi, q) = decode(lane);
                // Dense: filter fi, channel c0+cc of a C-channel filter.
                // Depthwise: filter c0+cc, whose single channel is its own.
                let idx = if g.depthwise {
                    (c0 + cc) * g.kk + q
                } else {
                    (fi * g.channels + c0 + cc) * g.kk + q
                };
                d_flt.f32_addr(idx as u64)
            });
            let saddrs = lane_addrs_from(|lane| {
                let (cc, fi, q) = decode(lane);
                buf + ((g.flt_base + (cc * g.fcount + fi) * g.kk + q) * 4) as u64
            });
            let vals = w.ld_global::<1>(&gaddrs, mask);
            w.st_shared::<1>(&saddrs, &vals, mask);
        });
        e0 += threads;
    }
}

/// Computes round `r` from the buffer at byte offset `buf`: every thread
/// accumulates its output column's taps for the round's channels. Filter
/// reads are warp-uniform (broadcast); pixel reads walk the gathered rows
/// at `stride`-spaced lanes. The operation stream is independent of the
/// pipeline depth.
fn compute_round(
    blk: &mut kconv_sim::BlockCtx<'_>,
    g: &Geom,
    r: usize,
    buf: u64,
    ox0: usize,
    acc: &mut [f32],
) {
    let c0 = r * g.c_sh;
    let cr = (g.channels - c0).min(g.c_sh);
    blk.each_warp(|w| {
        let pop = w.population();
        let mask = LaneMask::from_fn(|lane| pop.is_active(lane) && ox0 + w.thread_id(lane) < g.ow);
        if mask.is_empty() {
            return;
        }
        for cc in 0..cr {
            for i in 0..g.k {
                for j in 0..g.k {
                    let paddrs = lane_addrs_from(|lane| {
                        let t = w.thread_id(lane).min(g.tile_w - 1);
                        buf + (((cc * g.k + i) * g.row_pitch + t * g.stride + j * g.dilation) * 4)
                            as u64
                    });
                    let pix = w.ld_shared::<1>(&paddrs, mask);
                    // Depthwise: channel c0+cc feeds only output map c0+cc
                    // (slab slot 0); dense: all F maps.
                    let fouts = if g.depthwise { 1 } else { g.filters };
                    for fi in 0..fouts {
                        let f_out = if g.depthwise { c0 + cc } else { fi };
                        let taddr = buf
                            + ((g.flt_base + (cc * g.fcount + fi) * g.kk + i * g.k + j) * 4) as u64;
                        let taddrs = lane_addrs_from(|_| taddr);
                        let tap = w.ld_shared::<1>(&taddrs, mask);
                        for lane in mask.iter() {
                            acc[w.thread_id(lane) * g.filters + f_out] +=
                                pix[lane][0] * tap[lane][0];
                        }
                    }
                }
            }
        }
        let per_thread = cr * g.kk * if g.depthwise { 1 } else { g.filters };
        w.count_fma(mask.count() as u64 * per_thread as u64);
    });
}

/// One measured pipeline configuration (see [`explore_pipeline`]).
#[derive(Debug, Clone, Copy)]
pub struct PipelineTuneResult {
    /// The configuration.
    pub config: PipelineConfig,
    /// Achieved algorithmic GFlop/s on the probe problem.
    pub gflops: f64,
}

/// The depth axis of the search space: `base` at depth 1 (the baseline
/// alternation) and depth 2 (double-buffered), in that order.
pub fn depth_axis(base: PipelineConfig) -> Vec<PipelineConfig> {
    vec![base.with_depth(1), base.with_depth(2)]
}

/// [`explore_pipeline`] plus the skip record: candidates rejected by
/// [`PipelineConfig::validate`] — most importantly depth-2 tiles whose
/// doubled staging buffer exceeds the block's shared-memory capacity — are
/// returned as [`TuneSkip`]s instead of being silently dropped.
///
/// # Errors
///
/// Propagates launch errors from candidates that validated but failed.
pub fn explore_pipeline_recorded(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[PipelineConfig],
    blocks: usize,
) -> Result<(Vec<PipelineTuneResult>, Vec<TuneSkip<PipelineConfig>>)> {
    let input = random_maps(problem.channels, problem.height, problem.width, 81);
    let filters = random_filters(problem.filters, problem.channels_per_group(), problem.k, 83);
    let mut results = Vec::new();
    let mut skips = Vec::new();
    for &config in candidates {
        if let Err(reason) = config.validate(spec, problem) {
            skips.push(TuneSkip { config, reason });
            continue;
        }
        let mut gpu = Gpu::new(spec.clone());
        let run = SystolicConv::new(config).run(
            &mut gpu,
            problem,
            &input,
            &filters,
            SimMode::Sampled(blocks),
        )?;
        results.push(PipelineTuneResult {
            config,
            gflops: run.effective_gflops(problem),
        });
    }
    results.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));
    Ok((results, skips))
}

/// Measures `candidates` on a sampled run of `problem` and returns them
/// sorted by achieved GFlop/s (best first). Invalid candidates are skipped;
/// use [`explore_pipeline_recorded`] to see why.
///
/// # Errors
///
/// Propagates launch errors from candidates that validated but failed.
pub fn explore_pipeline(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[PipelineConfig],
    blocks: usize,
) -> Result<Vec<PipelineTuneResult>> {
    explore_pipeline_recorded(spec, problem, candidates, blocks).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::{GpuSpec, KernelStats, SanitizerMode};
    use kconv_tensor::CONV_TOL;

    fn run_cfg(cfg: PipelineConfig, problem: &ConvProblem, seed: u64, mode: SimMode) -> ConvRun {
        let input = random_maps(problem.channels, problem.height, problem.width, seed);
        let filters = random_filters(
            problem.filters,
            problem.channels_per_group(),
            problem.k,
            seed + 1,
        );
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_sanitizer(SanitizerMode::Full);
        let run = SystolicConv::new(cfg)
            .run(&mut gpu, problem, &input, &filters, mode)
            .unwrap_or_else(|e| panic!("{problem}: {e}"));
        run.verify_executed(problem, &input, &filters, CONV_TOL)
            .unwrap_or_else(|e| panic!("{problem}: {e}"));
        run
    }

    /// Memory-traffic counters that must be bit-identical across depths —
    /// everything except the barrier group.
    fn traffic(s: &KernelStats) -> Vec<u64> {
        vec![
            s.fma_lane_ops,
            s.gm_ld_requests,
            s.gm_st_requests,
            s.gm_ld_transactions,
            s.gm_st_transactions,
            s.gm_ld_bytes_bus,
            s.gm_st_bytes_bus,
            s.gm_ld_bytes_useful,
            s.gm_st_bytes_useful,
            s.sm_ld_requests,
            s.sm_st_requests,
            s.sm_ld_cycles,
            s.sm_st_cycles,
            s.sm_bytes_useful,
            s.sm_broadcasts,
            s.cm_requests,
            s.cm_cycles,
            s.cm_misses,
        ]
    }

    #[test]
    fn workload_matrix_matches_reference_at_both_depths() {
        // Differential grid over (stride, dilation, depthwise) x depth,
        // sanitizer on full, every cell freshly seeded.
        let mut seed = 4000u64;
        for &stride in &[1usize, 2] {
            for &dilation in &[1usize, 2] {
                for &depthwise in &[false, true] {
                    for depth in [1usize, 2] {
                        seed += 13;
                        let c = 4;
                        let f = if depthwise { c } else { 3 };
                        let mut problem = ConvProblem::general(19, c, f, 3)
                            .with_stride(stride)
                            .with_dilation(dilation);
                        if depthwise {
                            problem = problem.depthwise();
                        }
                        let cfg = PipelineConfig {
                            depth,
                            tile_w: 8,
                            c_sh: 2,
                            ..PipelineConfig::default()
                        };
                        run_cfg(cfg, &problem, seed, SimMode::Full);
                    }
                }
            }
        }
    }

    #[test]
    fn depth_two_is_bit_identical_except_barriers() {
        let problem = ConvProblem::general(24, 8, 4, 3).with_stride(2);
        let base = PipelineConfig {
            tile_w: 16,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let d1 = run_cfg(base.with_depth(1), &problem, 700, SimMode::Full);
        let d2 = run_cfg(base.with_depth(2), &problem, 700, SimMode::Full);
        // Same FMA order => bitwise-equal output, not merely close.
        assert_eq!(d1.output.as_slice(), d2.output.as_slice());
        assert_eq!(traffic(&d1.report.stats), traffic(&d2.report.stats));
        assert!(d2.report.stats.barriers < d1.report.stats.barriers);
    }

    #[test]
    fn barrier_counts_follow_the_pipeline_formulas() {
        let problem = ConvProblem::general(20, 8, 2, 3);
        let base = PipelineConfig {
            tile_w: 32,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let rounds = base.rounds(&problem) as u64;
        assert_eq!(rounds, 4);
        let d1 = run_cfg(base.with_depth(1), &problem, 710, SimMode::Full);
        let d2 = run_cfg(base.with_depth(2), &problem, 710, SimMode::Full);
        let blocks = d1.report.executed_blocks.len() as u64;
        assert_eq!(d1.report.stats.barriers, blocks * 2 * rounds);
        assert_eq!(d2.report.stats.barriers, blocks * (rounds + 1));
        // Warp arrivals scale with one warp per 32-thread tile.
        assert_eq!(d1.report.stats.bar_syncs, d1.report.stats.barriers);
        assert!(barrier_halving(
            d1.report.stats.barriers / blocks,
            d2.report.stats.barriers / blocks
        ));
        assert_eq!(base.with_depth(1).barriers_per_block(&problem), 2 * rounds);
        assert_eq!(base.with_depth(2).barriers_per_block(&problem), rounds + 1);
    }

    #[test]
    fn depth_two_improves_modeled_time() {
        // R = 4 rounds: 9 barriers instead of 16 per block, same traffic,
        // same occupancy class => strictly better modeled time.
        let problem = ConvProblem::general(40, 8, 4, 3);
        let base = PipelineConfig {
            tile_w: 64,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let d1 = run_cfg(base.with_depth(1), &problem, 720, SimMode::Full);
        let d2 = run_cfg(base.with_depth(2), &problem, 720, SimMode::Full);
        assert!(
            d2.report.seconds() < d1.report.seconds(),
            "depth 2 {} s not faster than depth 1 {} s",
            d2.report.seconds(),
            d1.report.seconds()
        );
    }

    #[test]
    fn vector_factors_agree_bitwise() {
        let problem = ConvProblem::general(22, 4, 3, 3).with_dilation(2);
        let runs: Vec<ConvRun> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                let cfg = PipelineConfig {
                    shape: KernelShape::forced(DataType::F32, n).unwrap(),
                    tile_w: 16,
                    c_sh: 2,
                    ..PipelineConfig::default()
                };
                run_cfg(cfg, &problem, 730, SimMode::Full)
            })
            .collect();
        assert_eq!(runs[0].output.as_slice(), runs[1].output.as_slice());
        assert_eq!(runs[0].output.as_slice(), runs[2].output.as_slice());
    }

    #[test]
    fn oversized_staging_becomes_a_tune_skip() {
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::general(130, 64, 8, 5);
        let fat = PipelineConfig {
            depth: 2,
            tile_w: 1024,
            c_sh: 64,
            ..PipelineConfig::default()
        };
        let reason = fat.validate(&spec, &problem).unwrap_err();
        assert!(reason.contains("exceeds"), "{reason}");
        let (results, skips) =
            explore_pipeline_recorded(&spec, &problem, &depth_axis(fat), 2).unwrap();
        assert!(results.is_empty());
        assert_eq!(skips.len(), 2);
        assert!(
            skips[1].reason.contains("shared memory"),
            "{}",
            skips[1].reason
        );
    }

    #[test]
    fn tuner_prefers_the_pipelined_depth() {
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::general(40, 8, 4, 3);
        let base = PipelineConfig {
            tile_w: 64,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let (results, skips) =
            explore_pipeline_recorded(&spec, &problem, &depth_axis(base), 4).unwrap();
        assert!(skips.is_empty(), "{:?}", skips.first().map(|s| &s.reason));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].config.depth, 2, "pipelined depth should win");
    }

    #[test]
    fn single_round_problems_degenerate_gracefully() {
        // C <= c_sh => R = 1: depth 2 primes and computes with the same
        // barrier count as depth 1 (2 each) and identical everything else.
        let problem = ConvProblem::general(16, 2, 2, 3);
        let base = PipelineConfig {
            tile_w: 16,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let d1 = run_cfg(base.with_depth(1), &problem, 740, SimMode::Full);
        let d2 = run_cfg(base.with_depth(2), &problem, 740, SimMode::Full);
        assert_eq!(d1.report.stats.barriers, d2.report.stats.barriers);
        assert_eq!(d1.output.as_slice(), d2.output.as_slice());
    }

    #[test]
    fn rejects_non_f32_shapes_and_bad_depths() {
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::general(16, 2, 2, 3);
        let bad_dtype = PipelineConfig {
            shape: KernelShape {
                dtype: DataType::F16,
                vec_width: 2,
            },
            ..PipelineConfig::default()
        };
        assert!(bad_dtype.validate(&spec, &problem).is_err());
        let bad_depth = PipelineConfig::default().with_depth(3);
        assert!(bad_depth.validate(&spec, &problem).is_err());
        let zero_tile = PipelineConfig {
            tile_w: 0,
            ..PipelineConfig::default()
        };
        assert!(zero_tile.validate(&spec, &problem).is_err());
    }

    #[test]
    fn sampled_execution_verifies() {
        let problem = ConvProblem::general(33, 4, 3, 3).with_stride(2);
        let cfg = PipelineConfig {
            tile_w: 8,
            c_sh: 2,
            ..PipelineConfig::default()
        };
        let run = run_cfg(cfg, &problem, 750, SimMode::Sampled(3));
        assert!(!run.executed_regions.is_empty());
    }
}

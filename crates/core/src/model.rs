//! Closed-form memory-traffic model (paper sections 3.2 and 4.2).
//!
//! These formulas predict the kernels' global- and shared-memory traffic
//! from the problem and configuration alone. Unit tests cross-check them
//! against the simulator's counted traffic, which ties the analytic claims
//! of the paper to the executable kernels:
//!
//! * the special-case kernel is *communication-optimal* up to tile halos —
//!   each pixel of a tile's input is read exactly once;
//! * the general-case kernel reduces global-memory traffic by roughly
//!   `1/K` against GEMM-based convolution (one staged image row serves `K`
//!   output rows);
//! * its contiguous-output thread mapping reduces shared-memory image
//!   traffic by `(W_T + K - 1) / (W_T * K)` against the one-output-per-
//!   thread mapping.

use kconv_sim::{GpuSpec, KernelStats};
use kconv_tensor::ConvProblem;

use crate::config::{GeneralConfig, SpecialConfig};

/// Number of tiles a `tiles x tile` partition needs to cover `len`.
fn tiles(len: usize, tile: usize) -> usize {
    len.div_ceil(tile)
}

/// Theoretical lower bound on global-memory traffic for any direct
/// convolution, in bytes: read the input once, write the output once.
pub fn gm_lower_bound(problem: &ConvProblem) -> u64 {
    let input = problem.channels * problem.height * problem.width;
    let output = problem.filters * problem.out_pixels();
    ((input + output) * 4) as u64
}

/// Exact useful global-memory **load** bytes of the special-case kernel:
/// every tile reads its `(W + K - 1) x (H + K - 1)` input window once.
/// The excess over one read per image pixel is the halo overhead the paper
/// calls "small".
pub fn special_gm_load_bytes(problem: &ConvProblem, cfg: &SpecialConfig) -> u64 {
    let tx = tiles(problem.out_width(), cfg.width);
    let ty = tiles(problem.out_height(), cfg.height);
    (tx * ty * (cfg.width + problem.k - 1) * (cfg.height + problem.k - 1) * 4) as u64
}

/// Exact useful global-memory **store** bytes of the special-case kernel
/// (the padded output tiles, all `F` maps).
pub fn special_gm_store_bytes(problem: &ConvProblem, cfg: &SpecialConfig) -> u64 {
    let tx = tiles(problem.out_width(), cfg.width);
    let ty = tiles(problem.out_height(), cfg.height);
    (tx * ty * cfg.width * cfg.height * problem.filters * 4) as u64
}

/// Halo overhead factor of the special-case tiling: loaded bytes over the
/// single-read lower bound of the covered area. Approaches 1 for large
/// tiles — the paper's "(almost) communication-optimal".
pub fn special_halo_factor(problem: &ConvProblem, cfg: &SpecialConfig) -> f64 {
    let loaded = special_gm_load_bytes(problem, cfg) as f64;
    let tx = tiles(problem.out_width(), cfg.width);
    let ty = tiles(problem.out_height(), cfg.height);
    let covered = ((tx * cfg.width + problem.k - 1) * (ty * cfg.height + problem.k - 1) * 4) as f64;
    loaded / covered
}

/// Exact useful global-memory **load** bytes of the general-case kernel:
/// every `(filter group, tile)` block stages its `C x (H+K-1) x (W+K-1)`
/// image window and its `F_TB x C x K x K` filter slice once.
pub fn general_gm_load_bytes(problem: &ConvProblem, cfg: &GeneralConfig) -> u64 {
    let tx = tiles(problem.out_width(), cfg.width);
    let ty = tiles(problem.out_height(), cfg.height);
    let tbx = problem.filters / cfg.f_tb;
    let img = problem.channels * (cfg.height + problem.k - 1) * (cfg.width + problem.k - 1);
    let flt = cfg.f_tb * problem.channels * problem.k * problem.k;
    (tx * ty * tbx * (img + flt) * 4) as u64
}

/// Approximate useful global-memory load bytes of a GEMM-style convolution
/// that stages the patch matrix from global memory: `K*K`-duplicated image
/// reads plus one filter-matrix read per pixel tile.
pub fn gemm_gm_load_bytes(problem: &ConvProblem, pixel_tile: usize, filter_tile: usize) -> u64 {
    let np = problem.out_pixels();
    let kd = problem.channels * problem.k * problem.k;
    let m_tiles = tiles(problem.filters, filter_tile);
    let n_tiles = tiles(np, pixel_tile);
    // Patch matrix staged once per filter tile; filter matrix once per
    // pixel tile.
    ((m_tiles * kd * np + n_tiles * problem.filters * kd) * 4) as u64
}

/// The paper's headline general-case ratio: our kernel's image traffic over
/// a GEMM-based kernel's, "approximately 1/K" (one staged image row serves
/// the convolutions of K output rows).
pub fn general_vs_gemm_gm_ratio(problem: &ConvProblem, cfg: &GeneralConfig) -> f64 {
    let ours = general_gm_load_bytes(problem, cfg) as f64;
    let gemm = gemm_gm_load_bytes(problem, cfg.width * cfg.height, cfg.f_tb) as f64;
    ours / gemm
}

/// Shared-memory image reads per thread per channel of the general kernel,
/// in pixels: `K` row refills of `W_T + K - 1` pixels.
pub fn general_sm_image_pixels_per_thread(cfg: &GeneralConfig, k: usize) -> usize {
    k * (cfg.w_t + k - 1)
}

/// Roofline placement of a measured kernel execution: where its arithmetic
/// intensity puts it against the machine's compute and bandwidth ceilings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Flops per global-memory bus byte.
    pub arithmetic_intensity: f64,
    /// The ceiling at that intensity, in GFlop/s
    /// (`min(issue ceiling, AI x bandwidth)`).
    pub bound_gflops: f64,
    /// Whether the compute ceiling (rather than bandwidth) binds.
    pub compute_bound: bool,
    /// Achieved fraction of the ceiling, given the achieved GFlop/s.
    pub efficiency: f64,
}

/// Computes the roofline placement of a counted execution on `spec`, given
/// the achieved rate. Sanity tool for the harnesses: an "achieved" number
/// above its roofline would indicate a timing-model inconsistency (and is
/// asserted against in tests).
pub fn roofline(spec: &GpuSpec, stats: &KernelStats, achieved_gflops: f64) -> Roofline {
    let flops = stats.flops() as f64;
    let bytes = stats.gm_bytes_bus().max(1) as f64;
    let ai = flops / bytes;
    let compute_ceiling = spec.peak_gflops() * spec.issue_efficiency;
    let bandwidth_ceiling = ai * spec.gm_bandwidth_gbs;
    let bound = compute_ceiling.min(bandwidth_ceiling);
    Roofline {
        arithmetic_intensity: ai,
        bound_gflops: bound,
        compute_bound: compute_ceiling <= bandwidth_ceiling,
        efficiency: achieved_gflops / bound,
    }
}

/// The paper's shared-memory reduction factor `(W_T + K - 1) / (W_T * K)`:
/// image pixels read from shared memory by the contiguous-output mapping,
/// relative to one-output-per-thread (which reads `W_T * K * K`).
pub fn general_sm_reduction(cfg: &GeneralConfig, k: usize) -> f64 {
    (cfg.w_t + k - 1) as f64 / (cfg.w_t * k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Convolution;
    use crate::{GeneralConv, SpecialConv};
    use kconv_sim::{Gpu, SimMode};
    use kconv_tensor::{random_filters, random_maps};

    #[test]
    fn special_formulas_match_simulator_exactly() {
        let cfg = SpecialConfig {
            width: 32,
            height: 4,
            vec_width: 2,
        };
        let problem = ConvProblem::special(50, 3, 3);
        let input = random_maps(1, 50, 50, 1);
        let filters = random_filters(3, 1, 3, 2);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        assert_eq!(
            run.report.stats.gm_ld_bytes_useful,
            special_gm_load_bytes(&problem, &cfg)
        );
        assert_eq!(
            run.report.stats.gm_st_bytes_useful,
            special_gm_store_bytes(&problem, &cfg)
        );
    }

    #[test]
    fn general_formula_matches_simulator_exactly() {
        let cfg = GeneralConfig {
            width: 16,
            height: 4,
            f_tb: 8,
            w_t: 8,
            f_t: 4,
            c_sh: 2,
            vec_width: 2,
        };
        let problem = ConvProblem::general(18, 4, 16, 3);
        let input = random_maps(4, 18, 18, 1);
        let filters = random_filters(16, 4, 3, 2);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = GeneralConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        assert_eq!(
            run.report.stats.gm_ld_bytes_useful,
            general_gm_load_bytes(&problem, &cfg)
        );
    }

    #[test]
    fn halo_factor_shrinks_with_tile_size() {
        let problem = ConvProblem::special(1024, 1, 3);
        let small = SpecialConfig {
            width: 32,
            height: 4,
            vec_width: 2,
        };
        let big = SpecialConfig {
            width: 256,
            height: 8,
            vec_width: 2,
        };
        let hs = special_halo_factor(&problem, &small);
        let hb = special_halo_factor(&problem, &big);
        assert!(hb < hs);
        // K=3 on the paper's 256x8 tiles: (258*10)/(256*8) per tile,
        // ~26% overhead, dominated by the vertical halo.
        assert!(hb < 1.30, "large tiles should be near-optimal: {hb}");
        // Input loads are nonetheless a small share of total GM traffic
        // once F output maps are written.
        let ld = special_gm_load_bytes(&problem, &big) as f64;
        let st = special_gm_store_bytes(&ConvProblem::special(1024, 32, 3), &big) as f64;
        assert!(ld / (ld + st) < 0.05);
    }

    #[test]
    fn lower_bound_is_a_bound() {
        let problem = ConvProblem::special(512, 8, 3);
        let cfg = SpecialConfig::kepler_best();
        assert!(
            special_gm_load_bytes(&problem, &cfg) + special_gm_store_bytes(&problem, &cfg)
                >= gm_lower_bound(&problem)
        );
    }

    #[test]
    fn general_beats_gemm_by_about_one_over_k() {
        // Large C and F so filter traffic does not dominate.
        for k in [3usize, 5, 7] {
            let cfg = GeneralConfig::table1(k);
            let problem = ConvProblem::general(128, 128, 128, k);
            let ratio = general_vs_gemm_gm_ratio(&problem, &cfg);
            // "reduces GM communication by approximately 1/K": the ratio
            // should sit in the right ballpark (well below 1, near 1/K
            // within a factor ~2 given halos and filter restaging).
            assert!(
                ratio < 2.5 / k as f64,
                "K={k}: ratio {ratio} vs 1/K = {}",
                1.0 / k as f64
            );
            assert!(ratio > 0.2 / k as f64, "K={k}: ratio {ratio}");
        }
    }

    #[test]
    fn roofline_bounds_every_kernel() {
        use crate::{Convolution, ImplicitGemmConv, SpecialConv};
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::special(130, 8, 3);
        let input = random_maps(1, 130, 130, 5);
        let filters = random_filters(8, 1, 3, 6);
        for conv in [
            Box::new(SpecialConv::default()) as Box<dyn Convolution>,
            Box::new(ImplicitGemmConv::default()),
        ] {
            let mut gpu = kconv_sim::Gpu::new(spec.clone());
            let run = conv
                .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap();
            // Note: roofline uses the *counted* flops (incl. padding work),
            // so compare the raw launch rate, not the algorithmic one.
            let r = roofline(&spec, &run.report.stats, run.report.gflops());
            assert!(
                r.efficiency <= 1.0 + 1e-9,
                "{}: achieved above its roofline ({:.2})",
                conv.name(),
                r.efficiency
            );
            assert!(r.bound_gflops > 0.0);
        }
    }

    #[test]
    fn roofline_regimes() {
        let spec = GpuSpec::kepler_k40m();
        // Bandwidth-bound: 1 flop per byte.
        let mut s = KernelStats {
            fma_lane_ops: 500,
            gm_ld_bytes_bus: 1000,
            ..Default::default()
        };
        let r = roofline(&spec, &s, 100.0);
        assert!(!r.compute_bound);
        assert!((r.bound_gflops - spec.gm_bandwidth_gbs).abs() < 1e-9);
        // Compute-bound: enormous intensity.
        s.gm_ld_bytes_bus = 1;
        let r = roofline(&spec, &s, 100.0);
        assert!(r.compute_bound);
        assert!((r.bound_gflops - spec.peak_gflops() * spec.issue_efficiency).abs() < 1e-9);
    }

    #[test]
    fn sm_reduction_formula() {
        let cfg = GeneralConfig::table1_3x3(); // W_T = 16, K = 3
        assert!((general_sm_reduction(&cfg, 3) - 18.0 / 48.0).abs() < 1e-12);
        assert_eq!(general_sm_image_pixels_per_thread(&cfg, 3), 54);
    }
}

//! The uniform interface every convolution implementation exposes, and the
//! result type carrying output, statistics and verification support.

use kconv_sim::{Gpu, LaunchReport, SimMode};
use kconv_tensor::{worst_mismatch, ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};
use crate::reference::{conv_reference_region, OutRegion};

/// A failure observed while attempting an engine in a fallback chain
/// (see [`run_with_fallback`]): which implementation failed and how.
///
/// When the error wraps a device-side [`kconv_sim::DeviceFault`], it names
/// the exact kernel, block, warp and thread that misbehaved.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// [`Convolution::name`] of the implementation that failed.
    pub engine: String,
    /// The error it failed with.
    pub error: ConvError,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.engine, self.error)
    }
}

/// Result of running a convolution implementation.
#[derive(Debug, Clone)]
pub struct ConvRun {
    /// The output maps (`F x out_h x out_w`). Under sampled execution only
    /// the [`ConvRun::executed_regions`] hold computed values; the rest is
    /// zero.
    pub output: FeatureMaps,
    /// Launch counters and modeled timing.
    pub report: LaunchReport,
    /// Output regions that were actually computed (clipped to the output).
    pub executed_regions: Vec<OutRegion>,
    /// Faults absorbed on the way to this result. Empty for a direct
    /// [`Convolution::run`]; [`run_with_fallback`] records here every
    /// engine that faulted before one completed.
    pub faults: Vec<FaultRecord>,
}

impl ConvRun {
    /// Achieved throughput in GFlop/s, computed from the *algorithmic* flop
    /// count of `problem` (so baselines doing redundant work are not
    /// credited for it) over the modeled time.
    pub fn effective_gflops(&self, problem: &ConvProblem) -> f64 {
        problem.flops() as f64 / self.report.seconds() / 1e9
    }

    /// Validates every executed region against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching element.
    pub fn verify_executed(
        &self,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        tol: f32,
    ) -> std::result::Result<(), String> {
        for region in &self.executed_regions {
            let want = conv_reference_region(problem, input, filters, *region);
            for f in 0..region.nf {
                for y in 0..region.h {
                    let got: Vec<f32> = (0..region.w)
                        .map(|x| self.output.get(region.f0 + f, region.y0 + y, region.x0 + x))
                        .collect();
                    let row: Vec<f32> = (0..region.w).map(|x| want.get(f, y, x)).collect();
                    if let Some(m) = worst_mismatch(&got, &row, tol) {
                        return Err(format!(
                            "filter {}, output ({}, {}): got {} want {} (error {:.2e})",
                            region.f0 + f,
                            region.y0 + y,
                            region.x0 + m.index,
                            m.lhs,
                            m.rhs,
                            m.error
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A convolution implementation runnable on the simulator.
///
/// Implemented by the paper's two kernels ([`SpecialConv`], [`GeneralConv`])
/// and the baselines ([`ImplicitGemmConv`], [`ExplicitGemmConv`]), so
/// harnesses and applications can switch engines freely.
///
/// [`SpecialConv`]: crate::SpecialConv
/// [`GeneralConv`]: crate::GeneralConv
/// [`ImplicitGemmConv`]: crate::ImplicitGemmConv
/// [`ExplicitGemmConv`]: crate::ExplicitGemmConv
pub trait Convolution {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Runs the convolution on `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError`](crate::ConvError) when the problem shape is
    /// incompatible with the implementation/configuration or the launch is
    /// invalid.
    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun>;
}

/// Rejects dilated and depthwise problems for kernels that only implement
/// the dense case (dilation 1, all channels accumulated). Strides are
/// policed separately — the GEMM baselines accept them.
pub(crate) fn require_dense(problem: &ConvProblem) -> Result<()> {
    if !problem.is_dense() {
        return Err(ConvError::Shape(format!(
            "this kernel supports only dense convolution (dilation 1, no \
             depthwise grouping), got {problem} (use the systolic or naive \
             kernels for the extended workload matrix)"
        )));
    }
    Ok(())
}

/// Builds the clipped output regions of the executed blocks of a launch:
/// `block_box` maps a block id to `(tile index, first filter, filter
/// count)` under the kernel's grid layout (shared by the special and
/// general kernels).
pub(crate) fn executed_tile_regions(
    problem: &ConvProblem,
    report: &LaunchReport,
    tiles_x: usize,
    tile_w: usize,
    tile_h: usize,
    block_box: impl Fn(usize) -> (usize, usize, usize),
) -> Vec<OutRegion> {
    let mut regions = Vec::new();
    for &b in &report.executed_blocks {
        let (tile, f0, nf) = block_box(b);
        let ty = tile / tiles_x;
        let tx = tile % tiles_x;
        if let Some(r) = (OutRegion {
            f0,
            nf,
            y0: ty * tile_h,
            x0: tx * tile_w,
            h: tile_h,
            w: tile_w,
        })
        .clipped(problem)
        {
            regions.push(r);
        }
    }
    regions
}

/// Convenience: run an implementation in [`SimMode::Full`] and verify the
/// whole output, returning the run.
///
/// # Errors
///
/// Returns the underlying error, or [`ConvError::Shape`] when verification
/// fails.
///
/// [`ConvError::Shape`]: crate::ConvError::Shape
pub fn run_verified(
    conv: &dyn Convolution,
    gpu: &mut Gpu,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> Result<ConvRun> {
    let run = conv.run(gpu, problem, input, filters, SimMode::Full)?;
    run.verify_executed(problem, input, filters, kconv_tensor::CONV_TOL)
        .map_err(|e| {
            crate::error::ConvError::Shape(format!("{} output mismatch: {e}", conv.name()))
        })?;
    Ok(run)
}

/// Whether an engine failure should be absorbed and the next engine in a
/// fallback chain tried: device-side kernel faults (the sanitizer or the
/// containment layer stopped the kernel) and shape/configuration rejections
/// are recoverable; host-side simulator errors (failed allocations, invalid
/// launches) indicate the *chain* is misused and propagate. The decision
/// is [`ConvError::retry_class`], the single classification shared with
/// retrying layers above the chain.
fn is_recoverable(e: &ConvError) -> bool {
    e.retry_class().recoverable()
}

/// Runs `engines` in order until one completes, absorbing recoverable
/// failures (device-side kernel faults and shape/config rejections) into
/// [`ConvRun::faults`] of the successful run.
///
/// This is the containment counterpart of [`Gpu::launch`]'s fault
/// reporting: a kernel that trips the sanitizer or faults on a device
/// access does not abort the computation — the next (typically simpler and
/// better-trusted) engine produces the answer, and the record of what
/// failed travels with it. End the chain with a reference implementation
/// such as [`NaiveConv`](crate::NaiveConv), which accepts every shape.
///
/// # Errors
///
/// Returns the last engine's error when every engine fails, a
/// non-recoverable error (e.g. a failed allocation) as soon as one occurs,
/// or [`ConvError::Config`] when `engines` is empty.
pub fn run_with_fallback(
    engines: &[&dyn Convolution],
    gpu: &mut Gpu,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    let mut faults = Vec::new();
    for (i, conv) in engines.iter().enumerate() {
        match conv.run(gpu, problem, input, filters, mode.clone()) {
            Ok(mut run) => {
                run.faults = faults;
                return Ok(run);
            }
            Err(e) if is_recoverable(&e) && i + 1 < engines.len() => {
                faults.push(FaultRecord {
                    engine: conv.name(),
                    error: e,
                });
            }
            Err(e) => return Err(e),
        }
    }
    Err(ConvError::Config(
        "run_with_fallback called with no engines".into(),
    ))
}

//! Narrow-storage special-case kernels (fp16 and int8) — the paper's
//! section-6 extension made concrete.
//!
//! The paper closes by predicting its bank-width model pays off even more
//! for short data types: `W_CD` = 2 bytes (fp16) gives `n = 4` on Kepler,
//! `W_CD` = 1 byte (int8 fixed point) gives `n = 8` — and a mismatch exists
//! even on 4-byte-bank architectures. This module is Algorithm 1 with
//! narrow **storage** and single-precision **arithmetic**: image rows and
//! outputs move through global and shared memory as `elem_bytes`-wide
//! elements, `vec_width` of them per thread per access; values are widened
//! to `f32` in registers for the FMAs (the standard mixed-precision scheme
//! of the era).
//!
//! Three variants share the one kernel:
//!
//! * [`SpecialConvF16`] — IEEE binary16 storage, f32 filters in constant
//!   memory;
//! * [`SpecialConvHalf2`] — binary16 storage **and** binary16 filters,
//!   packed two taps per 4-byte constant-memory word (CUDA's `__half2`
//!   idiom): the generator's fp16 variant for 4-byte-bank parts;
//! * [`SpecialConvI8`] — symmetric 8-bit fixed point with per-tensor
//!   scales (chosen on the host from the data and a filter-norm bound).
//!
//! Besides restoring the shared-memory fabric, narrow storage divides the
//! global-memory traffic by 2 (fp16) or 4 (int8) — and the `F`-map write
//! stream is exactly what bounds the f32 special kernel at large `F`, so
//! the matched narrow kernels are the fastest convolutions in this
//! workspace.

use kconv_sim::{
    lane_addrs_from, lane_addrs_uniform, BlockCtx, GmBuf, Gpu, LaneMask, LaunchConfig, OverlapMode,
    SimMode, WARP_SIZE,
};
use kconv_tensor::{
    f16_bits_to_f32, f16_roundtrip, f32_to_f16_bits, pack_f16x2, unpack_f16x2, ConvProblem,
    FeatureMaps, FilterSet,
};

use crate::config::{round_up, SpecialConfig};
use crate::dtype::DataType;
use crate::error::{ConvError, Result};
use crate::run::{executed_tile_regions, ConvRun, Convolution};
use crate::shape::KernelShape;
use crate::special::MAX_K;

/// Comparison tolerance for fp16-stored convolutions (re-exported from
/// [`kconv_tensor`], where the bound is documented next to the comparison
/// helpers that use it).
pub use kconv_tensor::F16_TOL;

/// Comparison tolerance for int8-stored convolutions: with |image| <= 1
/// inputs and the filter-norm output scale, quantization noise stays well
/// inside this bound.
pub const I8_TOL: f32 = 8e-2;

/// How pixel values are stored in device memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Encoding {
    /// IEEE binary16.
    F16,
    /// Symmetric fixed point: `stored_i8 = round(value / scale)`, clamped
    /// to `[-127, 127]`. Separate scales for input and output tensors.
    I8 {
        /// Input quantization step.
        scale_in: f32,
        /// Output quantization step.
        scale_out: f32,
    },
}

impl Encoding {
    /// Storage width `W_CD` in bytes.
    pub fn elem_bytes(self) -> usize {
        match self {
            Encoding::F16 => 2,
            Encoding::I8 { .. } => 1,
        }
    }

    /// The computation [`DataType`] this encoding stores.
    pub fn dtype(self) -> DataType {
        match self {
            Encoding::F16 => DataType::F16,
            Encoding::I8 { .. } => DataType::I8,
        }
    }

    fn encode_input(self, v: f32, out: &mut [u8]) {
        match self {
            Encoding::F16 => out.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes()),
            Encoding::I8 { scale_in, .. } => out[0] = quant_i8(v, scale_in) as u8,
        }
    }

    fn decode_input(self, bytes: &[u8]) -> f32 {
        match self {
            Encoding::F16 => f16_bits_to_f32(u16::from_le_bytes([bytes[0], bytes[1]])),
            Encoding::I8 { scale_in, .. } => (bytes[0] as i8) as f32 * scale_in,
        }
    }

    fn encode_output(self, v: f32, out: &mut [u8]) {
        match self {
            Encoding::F16 => out.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes()),
            Encoding::I8 { scale_out, .. } => out[0] = quant_i8(v, scale_out) as u8,
        }
    }

    fn decode_output(self, bytes: &[u8]) -> f32 {
        match self {
            Encoding::F16 => f16_bits_to_f32(u16::from_le_bytes([bytes[0], bytes[1]])),
            Encoding::I8 { scale_out, .. } => (bytes[0] as i8) as f32 * scale_out,
        }
    }
}

fn quant_i8(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantizes feature maps through an encoding (`f32 -> storage -> f32`) —
/// the input the narrow kernel effectively convolves; pass the result to
/// the reference when validating.
pub fn quantize_maps(maps: &FeatureMaps, enc: Encoding) -> FeatureMaps {
    let eb = enc.elem_bytes();
    let mut buf = [0u8; 2];
    let data = maps
        .as_slice()
        .iter()
        .map(|&v| {
            enc.encode_input(v, &mut buf[..eb]);
            enc.decode_input(&buf[..eb])
        })
        .collect();
    FeatureMaps::from_vec(maps.channels(), maps.height(), maps.width(), data)
}

/// Quantizes feature maps through fp16 (kept for API compatibility with
/// the fp16 kernel's tests and docs).
pub fn quantize_maps_f16(maps: &FeatureMaps) -> FeatureMaps {
    quantize_maps(maps, Encoding::F16)
}

/// Quantizes a filter bank through fp16 (`f32 -> f16 -> f32`) — the taps
/// the half2 kernel effectively convolves with; pass the result to the
/// reference when validating [`SpecialConvHalf2`].
pub fn quantize_filters_f16(filters: &FilterSet) -> FilterSet {
    FilterSet::from_vec(
        filters.count(),
        filters.channels(),
        filters.k(),
        filters
            .as_slice()
            .iter()
            .map(|&v| f16_roundtrip(v))
            .collect(),
    )
}

/// Symmetric per-tensor input scale: `max|x| / 127` (1/127 for all-zero
/// data so the scale is always usable).
pub fn i8_input_scale(maps: &FeatureMaps) -> f32 {
    let max = maps.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    (max / 127.0).max(1.0 / 127.0)
}

/// Output scale from the worst-case amplification bound
/// `max_f sum |w_f|` applied to the dequantized input range.
pub fn i8_output_scale(maps: &FeatureMaps, filters: &FilterSet) -> f32 {
    let max_in = maps.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let mut worst = 0.0f32;
    for f in 0..filters.count() {
        let mut sum = 0.0f32;
        for c in 0..filters.channels() {
            for i in 0..filters.k() {
                for j in 0..filters.k() {
                    sum += filters.get(f, c, i, j).abs();
                }
            }
        }
        worst = worst.max(sum);
    }
    (max_in * worst / 127.0).max(1.0 / 127.0)
}

/// The special-case kernel with half-precision storage.
///
/// [`SpecialConfig::vec_width`] counts **fp16 elements** per thread per
/// access: 4 is matched on Kepler (8-byte banks), 2 on 4-byte-bank parts,
/// 1 is the unmatched ablation.
///
/// # Examples
///
/// ```
/// use kconv_core::{SpecialConvF16, Convolution, F16_TOL};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::special(64, 4, 3);
/// let input = random_maps(1, 64, 64, 7);
/// let filters = random_filters(4, 1, 3, 8);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = SpecialConvF16::kepler_matched()
///     .run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// // Output is compared against the reference on the fp16-quantized input.
/// let quantized = kconv_core::quantize_maps_f16(&input);
/// run.verify_executed(&problem, &quantized, &filters, F16_TOL).unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpecialConvF16 {
    /// Tiling and element-width configuration (`vec_width` in fp16
    /// elements).
    pub config: SpecialConfig,
}

impl SpecialConvF16 {
    /// Creates the kernel with the given configuration.
    pub fn new(config: SpecialConfig) -> Self {
        SpecialConvF16 { config }
    }

    /// The Kepler-matched variant: 4 fp16 elements (one 8-byte bank word)
    /// per thread per access.
    pub fn kepler_matched() -> Self {
        SpecialConvF16::new(SpecialConfig {
            vec_width: 4,
            ..SpecialConfig::kepler_best()
        })
    }

    /// The unmatched ablation: scalar fp16 accesses (one eighth of the
    /// Kepler fabric).
    pub fn unmatched() -> Self {
        SpecialConvF16::new(SpecialConfig {
            vec_width: 1,
            ..SpecialConfig::kepler_best()
        })
    }
}

impl Default for SpecialConvF16 {
    fn default() -> Self {
        SpecialConvF16::kepler_matched()
    }
}

impl Convolution for SpecialConvF16 {
    fn name(&self) -> String {
        format!(
            "special fp16 ({}, n={})",
            match_label(self.config.vec_width, self.config.vec_width * 2),
            self.config.vec_width
        )
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        run_narrow(
            gpu,
            &self.config,
            Encoding::F16,
            FilterStore::F32,
            problem,
            input,
            filters,
            mode,
        )
    }
}

/// The special-case kernel with half-precision storage **and** half2-packed
/// filters: the `kconv-arch` generator's fp16 variant.
///
/// Where [`SpecialConvF16`] keeps exact f32 taps in constant memory, this
/// variant packs two binary16 taps per 4-byte word (CUDA's `__half2`),
/// halving the tap broadcast count; outputs therefore match the reference
/// run on fp16-quantized input **and** filters
/// ([`quantize_filters_f16`]) within [`F16_TOL`].
///
/// [`SpecialConfig::vec_width`] counts fp16 elements per thread per access:
/// 2 (one 4-byte bank word — the eponymous half2) is matched on
/// Fermi/Maxwell-class parts, 4 on Kepler's 8-byte banks, 1 is the
/// unmatched ablation that re-exhibits eq. 1's factor-2 serialization on
/// 4-byte banks.
///
/// # Examples
///
/// ```
/// use kconv_core::{SpecialConvHalf2, Convolution, F16_TOL};
/// use kconv_core::{quantize_filters_f16, quantize_maps_f16};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let spec = GpuSpec::maxwell_like();
/// let conv = SpecialConvHalf2::matched_for(&spec);
/// assert_eq!(conv.config.vec_width, 2);
/// let problem = ConvProblem::special(64, 2, 3);
/// let input = random_maps(1, 64, 64, 7);
/// let filters = random_filters(2, 1, 3, 8);
/// let mut gpu = Gpu::new(spec);
/// let run = conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// run.verify_executed(
///     &problem,
///     &quantize_maps_f16(&input),
///     &quantize_filters_f16(&filters),
///     F16_TOL,
/// )
/// .unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpecialConvHalf2 {
    /// Tiling and element-width configuration (`vec_width` in fp16
    /// elements).
    pub config: SpecialConfig,
}

impl SpecialConvHalf2 {
    /// Creates the kernel with the given configuration.
    pub fn new(config: SpecialConfig) -> Self {
        SpecialConvHalf2 { config }
    }

    /// The matched variant for `spec`:
    /// `vec_width = KernelShape::derive_n(spec, F16)` — 2 on 4-byte-bank
    /// parts (true half2), 4 on Kepler's 8-byte banks.
    pub fn matched_for(spec: &kconv_sim::GpuSpec) -> Self {
        SpecialConvHalf2::new(SpecialConfig::with_vec_width(KernelShape::derive_n(
            spec,
            DataType::F16,
        )))
    }

    /// A variant with an explicitly forced vector factor (the wrong-`n`
    /// ablation knob); `None` if `n` is not instantiable for fp16.
    pub fn forced(n: usize) -> Option<Self> {
        KernelShape::forced(DataType::F16, n)
            .map(|s| SpecialConvHalf2::new(SpecialConfig::with_vec_width(s.vec_width)))
    }
}

impl Default for SpecialConvHalf2 {
    /// Defaults to the 4-byte-bank matched shape (`n = 2`): the variant the
    /// type is named after.
    fn default() -> Self {
        SpecialConvHalf2::new(SpecialConfig::with_vec_width(2))
    }
}

impl Convolution for SpecialConvHalf2 {
    fn name(&self) -> String {
        format!(
            "special half2 ({}, n={})",
            match_label(self.config.vec_width, self.config.vec_width * 2),
            self.config.vec_width
        )
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        run_narrow(
            gpu,
            &self.config,
            Encoding::F16,
            FilterStore::Half2,
            problem,
            input,
            filters,
            mode,
        )
    }
}

/// The special-case kernel with 8-bit fixed-point storage.
///
/// [`SpecialConfig::vec_width`] counts **int8 elements** per thread per
/// access: 8 is matched on Kepler (8-byte bank words), 4 on 4-byte-bank
/// parts, 1 is the unmatched ablation. Scales are derived from the data on
/// each run (symmetric per-tensor quantization).
///
/// # Examples
///
/// ```
/// use kconv_core::{SpecialConvI8, Convolution, quantize_maps, Encoding, I8_TOL, i8_input_scale};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::special(64, 2, 3);
/// let input = random_maps(1, 64, 64, 7);
/// let filters = random_filters(2, 1, 3, 8);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = SpecialConvI8::kepler_matched()
///     .run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// assert_eq!(run.output.channels(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpecialConvI8 {
    /// Tiling and element-width configuration (`vec_width` in int8
    /// elements).
    pub config: SpecialConfig,
}

impl SpecialConvI8 {
    /// Creates the kernel with the given configuration.
    pub fn new(config: SpecialConfig) -> Self {
        SpecialConvI8 { config }
    }

    /// The Kepler-matched variant: 8 int8 elements (one bank word) per
    /// thread per access.
    pub fn kepler_matched() -> Self {
        SpecialConvI8::new(SpecialConfig {
            vec_width: 8,
            ..SpecialConfig::kepler_best()
        })
    }

    /// The unmatched ablation: scalar int8 accesses (one sixteenth of the
    /// Kepler fabric... the model says one eighth of the cycles' bytes).
    pub fn unmatched() -> Self {
        SpecialConvI8::new(SpecialConfig {
            vec_width: 1,
            ..SpecialConfig::kepler_best()
        })
    }
}

impl Default for SpecialConvI8 {
    fn default() -> Self {
        SpecialConvI8::kepler_matched()
    }
}

impl Convolution for SpecialConvI8 {
    fn name(&self) -> String {
        format!(
            "special int8 ({}, n={})",
            match_label(self.config.vec_width, self.config.vec_width),
            self.config.vec_width
        )
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        let enc = Encoding::I8 {
            scale_in: i8_input_scale(input),
            scale_out: i8_output_scale(input, filters),
        };
        run_narrow(
            gpu,
            &self.config,
            enc,
            FilterStore::F32,
            problem,
            input,
            filters,
            mode,
        )
    }
}

fn match_label(vec_width: usize, bytes_per_access: usize) -> &'static str {
    if vec_width == 1 {
        "unmatched"
    } else if bytes_per_access >= 8 {
        "matched"
    } else {
        "partial"
    }
}

/// How filter taps are stored in constant memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterStore {
    /// One f32 tap per 4-byte word (the paper's layout; exact taps).
    F32,
    /// Two binary16 taps per 4-byte word — CUDA's `__half2` idiom
    /// (SNIPPETS exemplar 1): halves both the constant-memory footprint and
    /// the broadcast-read count, at fp16 tap precision.
    Half2,
}

/// Geometry shared by the setup code and the per-block closure; as in the
/// f32 kernel, the [`KernelShape`] is the single source of truth for the
/// vector factor and element width used in every address computation.
struct Geom {
    k: usize,
    f: usize,
    tiles_x: usize,
    tile_w: usize,
    tile_h: usize,
    in_pitch: usize,
    out_pitch: usize,
    out_rows: usize,
    sm_pitch: usize,
    row_len: usize,
    shape: KernelShape,
}

#[allow(clippy::too_many_arguments)]
fn run_narrow(
    gpu: &mut Gpu,
    cfg: &SpecialConfig,
    enc: Encoding,
    store: FilterStore,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    if problem.channels != 1 {
        return Err(ConvError::Shape(format!(
            "special-case kernel requires C = 1, got C = {}",
            problem.channels
        )));
    }
    if problem.stride != 1 {
        return Err(ConvError::Shape(format!(
            "the paper's direct kernels are stride-1 only, got S = {}",
            problem.stride
        )));
    }
    crate::run::require_dense(problem)?;
    if !problem.matches(input, filters) {
        return Err(ConvError::Shape(format!(
            "input/filter shapes do not match {problem}"
        )));
    }
    cfg.validate(gpu.spec(), problem.k, problem.filters)
        .map_err(ConvError::Config)?;
    // Dispatch on the per-lane access width in bytes.
    match cfg.vec_width * enc.elem_bytes() {
        1 => run_impl::<1>(gpu, cfg, enc, store, problem, input, filters, mode),
        2 => run_impl::<2>(gpu, cfg, enc, store, problem, input, filters, mode),
        4 => run_impl::<4>(gpu, cfg, enc, store, problem, input, filters, mode),
        8 => run_impl::<8>(gpu, cfg, enc, store, problem, input, filters, mode),
        b => Err(ConvError::Config(format!(
            "unsupported access width {b} B (vec_width {} x {} B elements)",
            cfg.vec_width,
            enc.elem_bytes()
        ))),
    }
}

/// `B` bytes per lane per access (= `vec_width * elem_bytes`).
#[allow(clippy::too_many_arguments)]
fn run_impl<const B: usize>(
    gpu: &mut Gpu,
    cfg: &SpecialConfig,
    enc: Encoding,
    store: FilterStore,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    let k = problem.k;
    let n = cfg.vec_width;
    let eb = enc.elem_bytes();
    debug_assert_eq!(B, n * eb);
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let tiles_x = ow.div_ceil(cfg.width);
    let tiles_y = oh.div_ceil(cfg.height);
    // Pitch headroom for full-vector tail loads (see the f32 kernel).
    let row_len = cfg.width + k - 1;
    let in_pitch =
        (tiles_x * cfg.width + k - 1).max((tiles_x - 1) * cfg.width + round_up(row_len, n));
    let in_rows = tiles_y * cfg.height + k - 1;
    let out_pitch = tiles_x * cfg.width;
    let out_rows = tiles_y * cfg.height;

    // Device setup: narrow image and output, f32 filters in constant
    // memory.
    let padded = input.channel(0).padded_to(in_rows, in_pitch);
    let mut image_bytes = vec![0u8; in_rows * in_pitch * eb];
    for (i, &v) in padded.as_slice().iter().enumerate() {
        enc.encode_input(v, &mut image_bytes[i * eb..(i + 1) * eb]);
    }
    let d_in = gpu.alloc_bytes(image_bytes.len() as u64)?;
    upload_bytes(gpu, d_in, &image_bytes)?;
    let d_out = gpu.alloc_bytes((problem.filters * out_rows * out_pitch * eb) as u64)?;
    match store {
        FilterStore::F32 => gpu.write_const_f32(0, filters.as_slice())?,
        FilterStore::Half2 => {
            // Two binary16 taps per constant-memory word, per filter
            // (words are uploaded through the f32 facade bitwise).
            let wpf = (k * k).div_ceil(2);
            let mut words = Vec::with_capacity(problem.filters * wpf);
            for f in 0..problem.filters {
                let taps = &filters.as_slice()[f * k * k..(f + 1) * k * k];
                for w in 0..wpf {
                    let lo = taps[2 * w];
                    let hi = taps.get(2 * w + 1).copied().unwrap_or(0.0);
                    words.push(f32::from_le_bytes(pack_f16x2(lo, hi).to_le_bytes()));
                }
            }
            gpu.write_const_f32(0, &words)?;
        }
    }

    let geom = Geom {
        k,
        f: problem.filters,
        tiles_x,
        tile_w: cfg.width,
        tile_h: cfg.height,
        in_pitch,
        out_pitch,
        out_rows,
        sm_pitch: cfg.smem_pitch(k),
        row_len,
        shape: KernelShape {
            dtype: enc.dtype(),
            vec_width: cfg.vec_width,
        },
    };
    let smem_bytes = (k * geom.sm_pitch * eb) as u32;

    let kernel = match store {
        FilterStore::F32 => format!("special-{}B K={k} n={n}", eb),
        FilterStore::Half2 => format!("special-half2 K={k} n={n}"),
    };
    let launch = LaunchConfig::new(kernel, tiles_x * tiles_y, cfg.threads())
        .with_smem(smem_bytes)
        .with_regs(cfg.regs_per_thread(k))
        .with_overlap(OverlapMode::Prefetch);

    let report = gpu.launch(&launch, mode, |blk| {
        narrow_block::<B>(blk, enc, store, &geom, d_in, d_out);
    })?;

    // Download and decode the narrow output.
    let raw = download_bytes(gpu, d_out, problem.filters * out_rows * out_pitch * eb)?;
    let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
    let dst = output.as_mut_slice();
    for f in 0..problem.filters {
        for y in 0..oh {
            for x in 0..ow {
                let src = ((f * out_rows + y) * out_pitch + x) * eb;
                dst[(f * oh + y) * ow + x] = enc.decode_output(&raw[src..src + eb]);
            }
        }
    }
    let regions = executed_tile_regions(problem, &report, tiles_x, cfg.width, cfg.height, |b| {
        (b, 0, problem.filters)
    });
    Ok(ConvRun {
        output,
        report,
        executed_regions: regions,
        faults: Vec::new(),
    })
}

/// Host upload of raw bytes via the f32 facade (bitwise).
fn upload_bytes(gpu: &mut Gpu, buf: GmBuf, bytes: &[u8]) -> Result<()> {
    let mut words = Vec::with_capacity(bytes.len().div_ceil(4));
    for chunk in bytes.chunks(4) {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(f32::from_le_bytes(w));
    }
    gpu.upload_f32(buf, &words)?;
    Ok(())
}

/// Host download of `len` raw bytes via the f32 facade.
fn download_bytes(gpu: &Gpu, buf: GmBuf, len: usize) -> Result<Vec<u8>> {
    let words = gpu.download_f32_at(buf, 0, len.div_ceil(4))?;
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    Ok(out)
}

/// Algorithm 1 with narrow storage. Structurally identical to the f32
/// version in [`crate::special`]; the element width changes every memory
/// access, so the two are kept separate and easy to audit side by side.
/// As there, the vector factor and element width come from the geometry's
/// [`KernelShape`]; `B` only sizes the per-lane byte arrays.
fn narrow_block<const B: usize>(
    blk: &mut BlockCtx<'_>,
    enc: Encoding,
    store: FilterStore,
    g: &Geom,
    d_in: GmBuf,
    d_out: GmBuf,
) {
    let k = g.k;
    let n = g.shape.vec_width;
    let eb = g.shape.elem_bytes();
    debug_assert_eq!(eb, enc.elem_bytes());
    debug_assert_eq!(B, n * eb);
    let threads = blk.dims.threads;
    let bx = blk.dims.block_id % g.tiles_x;
    let by = blk.dims.block_id / g.tiles_x;
    let in_row0 = by * g.tile_h;
    let in_col0 = bx * g.tile_w;

    let win_w = round_up(k + n - 1, n);
    let mut win = vec![0.0f32; threads * k * win_w];
    let rounds = g.row_len.div_ceil(threads * n);
    let mut pf = vec![0.0f32; rounds * threads * n];

    let gm_row_to_pf = |blk: &mut BlockCtx<'_>, pf: &mut [f32], row: usize| {
        for r in 0..rounds {
            blk.each_warp(|w| {
                let mask =
                    LaneMask::from_fn(|lane| (r * threads + w.thread_id(lane)) * n < g.row_len);
                let addrs = lane_addrs_from(|lane| {
                    let p = ((r * threads + w.thread_id(lane)) * n).min(g.row_len - 1);
                    d_in.offset() + (((in_row0 + row) * g.in_pitch + in_col0 + p) * eb) as u64
                });
                let vals = w.ld_global_bytes::<B>(&addrs, mask);
                for lane in mask.iter() {
                    let p = (r * threads + w.thread_id(lane)) * n;
                    for e in 0..n {
                        pf[p + e] = enc.decode_input(&vals[lane][e * eb..(e + 1) * eb]);
                    }
                }
            });
        }
    };

    let pf_to_smem = |blk: &mut BlockCtx<'_>, pf: &[f32], slot: usize| {
        for r in 0..rounds {
            blk.each_warp(|w| {
                let mask =
                    LaneMask::from_fn(|lane| (r * threads + w.thread_id(lane)) * n < g.row_len);
                let addrs = lane_addrs_from(|lane| {
                    let p = ((r * threads + w.thread_id(lane)) * n).min(g.row_len - 1);
                    ((slot * g.sm_pitch + p) * eb) as u64
                });
                let mut vals = [[0u8; B]; WARP_SIZE];
                for lane in mask.iter() {
                    let p = (r * threads + w.thread_id(lane)) * n;
                    for e in 0..n {
                        enc.encode_input(pf[p + e], &mut vals[lane][e * eb..(e + 1) * eb]);
                    }
                }
                w.st_shared_bytes::<B>(&addrs, &vals, mask);
            });
        }
    };

    let smem_to_window = |blk: &mut BlockCtx<'_>, win: &mut [f32], slot: usize, wr: usize| {
        for gv in 0..win_w / n {
            blk.each_warp(|w| {
                let addrs = lane_addrs_from(|lane| {
                    ((slot * g.sm_pitch + w.thread_id(lane) * n + gv * n) * eb) as u64
                });
                let vals = w.ld_shared_bytes::<B>(&addrs, LaneMask::ALL);
                for lane in w.population().iter() {
                    let t = w.thread_id(lane);
                    let at = (t * k + wr) * win_w + gv * n;
                    for e in 0..n {
                        win[at + e] = enc.decode_input(&vals[lane][e * eb..(e + 1) * eb]);
                    }
                }
            });
        }
    };

    for row in 0..k {
        gm_row_to_pf(blk, &mut pf, row);
        pf_to_smem(blk, &pf, row % k);
    }
    blk.sync();
    for wr in 0..k - 1 {
        smem_to_window(blk, &mut win, wr % k, wr);
    }

    let total_rows = g.tile_h + k - 1;
    for k_row in (k - 1)..total_rows {
        let next = k_row + 1;
        if next < total_rows {
            gm_row_to_pf(blk, &mut pf, next);
        }
        smem_to_window(blk, &mut win, k_row % k, k - 1);

        let out_row = k_row - (k - 1);
        for f in 0..g.f {
            blk.each_warp(|w| {
                let mut taps = [0.0f32; MAX_K * MAX_K];
                match store {
                    FilterStore::F32 => {
                        for i in 0..k {
                            for j in 0..k {
                                let addr = ((f * k * k + i * k + j) * 4) as u64;
                                let vals = w.ld_const(&lane_addrs_uniform(addr), LaneMask::ALL);
                                taps[i * k + j] = vals[0];
                            }
                        }
                    }
                    FilterStore::Half2 => {
                        // One broadcast read yields two binary16 taps: half
                        // the constant-memory requests of the f32 layout.
                        let wpf = (k * k).div_ceil(2);
                        for widx in 0..wpf {
                            let addr = ((f * wpf + widx) * 4) as u64;
                            let vals = w.ld_const(&lane_addrs_uniform(addr), LaneMask::ALL);
                            let (lo, hi) = unpack_f16x2(u32::from_le_bytes(vals[0].to_le_bytes()));
                            taps[2 * widx] = lo;
                            if 2 * widx + 1 < k * k {
                                taps[2 * widx + 1] = hi;
                            }
                        }
                    }
                }
                let pop = w.population();
                let mut acc = [[0u8; B]; WARP_SIZE];
                for lane in pop.iter() {
                    let t = w.thread_id(lane);
                    let base = t * k * win_w;
                    for v in 0..n {
                        let mut s = 0.0f32;
                        for i in 0..k {
                            for j in 0..k {
                                s += win[base + i * win_w + j + v] * taps[i * k + j];
                            }
                        }
                        enc.encode_output(s, &mut acc[lane][v * eb..(v + 1) * eb]);
                    }
                }
                w.count_fma(pop.count() as u64 * (n * k * k) as u64);
                let addrs = lane_addrs_from(|lane| {
                    let t = w.thread_id(lane);
                    d_out.offset()
                        + (((f * g.out_rows + in_row0 + out_row) * g.out_pitch + in_col0 + t * n)
                            * eb) as u64
                });
                w.st_global_bytes::<B>(&addrs, &acc, LaneMask::ALL);
            });
        }

        blk.sync();
        if next < total_rows {
            pf_to_smem(blk, &pf, next % k);
        }
        blk.sync();
        for t in 0..threads {
            let base = t * k * win_w;
            for wr in 0..k - 1 {
                let (dst, src) = (base + wr * win_w, base + (wr + 1) * win_w);
                win.copy_within(src..src + win_w, dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv_reference;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps};

    fn small(vec_width: usize) -> SpecialConfig {
        SpecialConfig {
            width: 32,
            height: 4,
            vec_width,
        }
    }

    fn check_f16(cfg: SpecialConfig, n: usize, f: usize, k: usize) -> ConvRun {
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 81);
        let filters = random_filters(f, 1, k, 83);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvF16::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("launch");
        let quantized = quantize_maps(&input, Encoding::F16);
        run.verify_executed(&problem, &quantized, &filters, F16_TOL)
            .expect("fp16 output mismatch");
        run
    }

    fn check_i8(cfg: SpecialConfig, n: usize, f: usize, k: usize) -> ConvRun {
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 181);
        let filters = random_filters(f, 1, k, 183);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConvI8::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("launch");
        // Compare against the reference on the int8-quantized input, with
        // the int8 tolerance (output quantization adds its own noise).
        let enc = Encoding::I8 {
            scale_in: i8_input_scale(&input),
            scale_out: i8_output_scale(&input, &filters),
        };
        let quantized = quantize_maps(&input, enc);
        run.verify_executed(&problem, &quantized, &filters, I8_TOL)
            .expect("int8 output mismatch");
        run
    }

    #[test]
    fn f16_matched_3x3() {
        check_f16(small(4), 40, 2, 3);
    }

    #[test]
    fn f16_matched_5x5_ragged() {
        check_f16(small(4), 45, 3, 5);
    }

    #[test]
    fn f16_partial_width_2() {
        check_f16(small(2), 40, 2, 3);
    }

    #[test]
    fn f16_unmatched_scalar() {
        check_f16(small(1), 40, 2, 3);
    }

    fn check_half2(cfg: SpecialConfig, spec: GpuSpec, n: usize, f: usize, k: usize) -> ConvRun {
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 281);
        let filters = random_filters(f, 1, k, 283);
        let mut gpu = Gpu::new(spec);
        let run = SpecialConvHalf2::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("launch");
        // Half2 quantizes the filters too: the oracle is the reference on
        // fp16 input AND fp16 taps.
        run.verify_executed(
            &problem,
            &quantize_maps_f16(&input),
            &quantize_filters_f16(&filters),
            F16_TOL,
        )
        .expect("half2 output mismatch");
        run
    }

    #[test]
    fn half2_matched_3x3_on_4b_banks() {
        check_half2(small(2), GpuSpec::maxwell_like(), 40, 2, 3);
    }

    #[test]
    fn half2_matched_5x5_ragged() {
        check_half2(small(2), GpuSpec::maxwell_like(), 45, 3, 5);
    }

    #[test]
    fn half2_even_tap_count_2x2() {
        // k*k even: no zero-padded tail tap in the packed words.
        check_half2(small(2), GpuSpec::maxwell_like(), 40, 2, 2);
    }

    #[test]
    fn half2_unmatched_and_kepler_shapes() {
        check_half2(small(1), GpuSpec::maxwell_like(), 40, 2, 3);
        check_half2(small(4), GpuSpec::kepler_k40m(), 40, 2, 3);
    }

    #[test]
    fn half2_filters_halve_cm_requests() {
        let problem = ConvProblem::special(40, 2, 3);
        let input = random_maps(1, 40, 40, 285);
        let filters = random_filters(2, 1, 3, 286);
        let cm = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::maxwell_like());
            let run = conv
                .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap();
            // The broadcast fast path must survive the packing.
            assert_eq!(run.report.stats.cm_cycles, 0);
            run.report.stats.cm_requests
        };
        let f32_taps = cm(&SpecialConvF16::new(small(2)));
        let half2_taps = cm(&SpecialConvHalf2::new(small(2)));
        // 9 taps -> 5 words per filter: ceil division, not exact halving.
        let ratio = f32_taps as f64 / half2_taps as f64;
        assert!(
            (ratio - 9.0 / 5.0).abs() < 1e-9,
            "expected 9/5 request ratio, got {ratio} ({f32_taps} vs {half2_taps})"
        );
    }

    #[test]
    fn half2_matched_for_derives_n() {
        assert_eq!(
            SpecialConvHalf2::matched_for(&GpuSpec::maxwell_like())
                .config
                .vec_width,
            2
        );
        assert_eq!(
            SpecialConvHalf2::matched_for(&GpuSpec::kepler_k40m())
                .config
                .vec_width,
            4
        );
        assert_eq!(SpecialConvHalf2::forced(1).unwrap().config.vec_width, 1);
        assert!(SpecialConvHalf2::forced(8).is_none());
    }

    #[test]
    fn quantize_filters_f16_round_trips_taps() {
        let filters = random_filters(2, 1, 3, 77);
        let q = quantize_filters_f16(&filters);
        assert_eq!(q.count(), 2);
        for (a, b) in q.as_slice().iter().zip(filters.as_slice()) {
            assert_eq!(*a, f16_roundtrip(*b));
        }
    }

    #[test]
    fn i8_matched_3x3() {
        check_i8(small(8), 40, 2, 3);
    }

    #[test]
    fn i8_matched_5x5_ragged() {
        check_i8(small(8), 45, 2, 5);
    }

    #[test]
    fn i8_partial_and_scalar() {
        check_i8(small(4), 40, 2, 3);
        check_i8(small(2), 40, 2, 3);
        check_i8(small(1), 40, 1, 3);
    }

    #[test]
    fn narrow_storage_divides_gm_traffic() {
        let problem = ConvProblem::special(66, 4, 3);
        let input = random_maps(1, 66, 66, 85);
        let filters = random_filters(4, 1, 3, 86);
        let run_with = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap()
                .report
                .stats
                .gm_st_bytes_useful
        };
        let f32_st = run_with(&crate::SpecialConv::new(small(2)));
        let f16_st = run_with(&SpecialConvF16::new(small(4)));
        let i8_st = run_with(&SpecialConvI8::new(small(8)));
        // Stores halve (fp16) and quarter (int8) exactly.
        assert_eq!(2 * f16_st, f32_st);
        assert_eq!(4 * i8_st, f32_st);
    }

    #[test]
    fn matched_narrow_keeps_f32_access_count() {
        // n=4 fp16 and n=8 int8 move 8 bytes per lane per access, exactly
        // like n=2 f32: same instruction count.
        let problem = ConvProblem::special(66, 2, 3);
        let input = random_maps(1, 66, 66, 87);
        let filters = random_filters(2, 1, 3, 88);
        let count = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap()
                .report
                .stats
                .sm_requests()
        };
        let f32_req = count(&crate::SpecialConv::new(small(2)));
        assert_eq!(count(&SpecialConvF16::new(small(4))), f32_req);
        assert_eq!(count(&SpecialConvI8::new(small(8))), f32_req);
    }

    #[test]
    fn unmatched_narrow_is_slower_than_matched() {
        let problem = ConvProblem::special(66, 8, 3);
        let input = random_maps(1, 66, 66, 89);
        let filters = random_filters(8, 1, 3, 90);
        let secs = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap()
                .report
                .seconds()
        };
        assert!(secs(&SpecialConvF16::new(small(4))) < secs(&SpecialConvF16::new(small(1))));
        assert!(secs(&SpecialConvI8::new(small(8))) < secs(&SpecialConvI8::new(small(1))));
    }

    #[test]
    fn f16_quantization_is_visible_but_bounded() {
        let problem = ConvProblem::special(40, 1, 3);
        let input = random_maps(1, 40, 40, 89);
        let filters = random_filters(1, 1, 3, 90);
        let run = {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            SpecialConvF16::new(small(4))
                .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap()
        };
        let exact = conv_reference(&problem, &input, &filters);
        let worst = kconv_tensor::worst_mismatch(run.output.as_slice(), exact.as_slice(), 0.0);
        assert!(worst.is_some(), "fp16 must quantize something");
        assert!(kconv_tensor::all_close(
            run.output.as_slice(),
            exact.as_slice(),
            8e-3
        ));
    }

    #[test]
    fn i8_scales_are_sane() {
        let maps = random_maps(1, 8, 8, 11);
        let s = i8_input_scale(&maps);
        assert!(s > 0.0 && s < 1.0 / 64.0);
        let zeros = FeatureMaps::zeros(1, 4, 4);
        assert!(i8_input_scale(&zeros) > 0.0);
        let filters = random_filters(3, 1, 3, 13);
        assert!(i8_output_scale(&maps, &filters) >= s);
    }

    #[test]
    fn rejects_multichannel() {
        let problem = ConvProblem::general(20, 2, 2, 3);
        let input = random_maps(2, 20, 20, 91);
        let filters = random_filters(2, 2, 3, 92);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        for conv in [
            Box::new(SpecialConvF16::default()) as Box<dyn Convolution>,
            Box::new(SpecialConvI8::default()),
        ] {
            let err = conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full);
            assert!(matches!(err, Err(ConvError::Shape(_))));
        }
    }

    #[test]
    fn names() {
        assert!(SpecialConvF16::kepler_matched().name().contains("matched"));
        assert!(SpecialConvF16::unmatched().name().contains("unmatched"));
        assert!(SpecialConvF16::new(small(2)).name().contains("partial"));
        assert!(SpecialConvI8::kepler_matched().name().contains("matched"));
        assert!(SpecialConvI8::unmatched().name().contains("unmatched"));
    }
}

//! The communication-reduced general-case kernel (paper section 4).
//!
//! With many input channels the filters no longer fit in constant memory
//! and one convolution's pixels no longer fit in registers, so the kernel
//! adopts the blocked-GEMM thread-block structure (2D grid over filter
//! groups x image tiles, 2D `T_X x T_Y` threads, intermediate results
//! accumulated in registers) — but departs from blocked GEMM in the one way
//! that matters for memory traffic:
//!
//! * **Contiguous outputs per thread.** Each thread computes `W_T`
//!   *horizontally contiguous* output pixels, so one shared-memory row of
//!   `W_T + K - 1` pixels held in registers serves `K` FMA rounds. Against
//!   computing those pixels in different threads this cuts the
//!   shared-memory image traffic by `(W_T + K - 1) / (W_T * K)`, and one
//!   staged image row serves the convolutions of `K` output rows, cutting
//!   global-memory traffic by about `1/K` versus GEMM-based convolution.
//! * `C_SH` channels of image tile and filters are staged in shared memory
//!   per step; the filter tile is stored **transposed with a padded pitch**
//!   so both its staging stores and its fragment loads are conflict-free.
//! * Fragment reads are `n`-wide (`float2` on Kepler) so the computation
//!   data width matches the bank width; threads in the same `T_X` row read
//!   identical image addresses, served by the shared-memory broadcast.
//! * The write-back of `rAcc` is **uncoalesced** (contiguous threads write
//!   different output maps); the paper measures this phase as negligible
//!   and leaves it unoptimized, as do we — the simulator charges the real
//!   scattered-transaction cost.

use kconv_sim::{
    lane_addrs_from, BlockCtx, GmBuf, Gpu, LaneMask, LaunchConfig, OverlapMode, SimMode, WARP_SIZE,
};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::config::{round_up, GeneralConfig};
use crate::dtype::DataType;
use crate::error::{ConvError, Result};
use crate::run::{executed_tile_regions, ConvRun, Convolution};
use crate::shape::KernelShape;

/// The general-case (multi-channel) direct convolution kernel.
///
/// # Examples
///
/// ```
/// use kconv_core::{GeneralConv, GeneralConfig, Convolution};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::general(34, 4, 64, 3);
/// let input = random_maps(4, 34, 34, 1);
/// let filters = random_filters(64, 4, 3, 2);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = GeneralConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// assert!(run
///     .verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL)
///     .is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralConv {
    /// Tiling, register-blocking and vector-width configuration.
    pub config: GeneralConfig,
}

impl GeneralConv {
    /// Creates the kernel with the given configuration.
    pub fn new(config: GeneralConfig) -> Self {
        GeneralConv { config }
    }

    /// The kernel with the paper's Table 1 configuration for filter size
    /// `k`.
    pub fn table1(k: usize) -> Self {
        GeneralConv {
            config: GeneralConfig::table1(k),
        }
    }
}

impl Convolution for GeneralConv {
    fn name(&self) -> String {
        format!("general (n={})", self.config.vec_width)
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        if problem.stride != 1 {
            return Err(ConvError::Shape(format!(
                "the paper's direct kernels are stride-1 only, got S = {} \
                 (use a GEMM baseline for strided problems)",
                problem.stride
            )));
        }
        crate::run::require_dense(problem)?;
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        self.config
            .validate(gpu.spec(), problem.k)
            .map_err(ConvError::Config)?;
        if !problem.filters.is_multiple_of(self.config.f_tb) {
            return Err(ConvError::Shape(format!(
                "F = {} not divisible by F_TB = {}",
                problem.filters, self.config.f_tb
            )));
        }
        if !problem.channels.is_multiple_of(self.config.c_sh) {
            return Err(ConvError::Shape(format!(
                "C = {} not divisible by C_SH = {}",
                problem.channels, self.config.c_sh
            )));
        }
        match self.config.vec_width {
            1 => run_general::<1>(gpu, &self.config, problem, input, filters, mode),
            2 => run_general::<2>(gpu, &self.config, problem, input, filters, mode),
            4 => run_general::<4>(gpu, &self.config, problem, input, filters, mode),
            n => Err(ConvError::Config(format!(
                "unsupported vec_width {n} (expected 1, 2 or 4)"
            ))),
        }
    }
}

/// Geometry shared by the setup code and the per-block closure; the
/// [`KernelShape`] supplies the vector factor and element width for every
/// address computed inside the block body (see [`crate::special`]).
struct Geom {
    k: usize,
    channels: usize,
    tiles_x: usize,
    tbx: usize,
    tile_w: usize,
    tile_h: usize,
    in_pitch: usize,
    in_rows: usize,
    out_pitch: usize,
    out_rows: usize,
    img_pitch: usize,
    flt_pitch: usize,
    row_len: usize,
    shape: KernelShape,
}

fn run_general<const N: usize>(
    gpu: &mut Gpu,
    cfg: &GeneralConfig,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    run_general_inner::<N>(gpu, cfg, problem, input, filters, mode, false)
}

#[allow(clippy::too_many_arguments)]
fn run_general_inner<const N: usize>(
    gpu: &mut Gpu,
    cfg: &GeneralConfig,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
    strided: bool,
) -> Result<ConvRun> {
    let k = problem.k;
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let tiles_x = ow.div_ceil(cfg.width);
    let tiles_y = oh.div_ceil(cfg.height);
    let in_pitch = tiles_x * cfg.width + k - 1;
    let in_rows = tiles_y * cfg.height + k - 1;
    let out_pitch = tiles_x * cfg.width;
    let out_rows = tiles_y * cfg.height;
    let tbx = problem.filters / cfg.f_tb;

    // Device setup: zero-padded input (every channel), filters FCHW,
    // padded output.
    let padded = input.padded_to(in_rows, in_pitch);
    let d_in = gpu.alloc_f32((problem.channels * in_rows * in_pitch) as u64)?;
    gpu.upload_f32(d_in, padded.as_slice())?;
    let d_flt = gpu.alloc_f32(filters.len() as u64)?;
    gpu.upload_f32(d_flt, filters.as_slice())?;
    let d_out = gpu.alloc_f32((problem.filters * out_rows * out_pitch) as u64)?;

    let geom = Geom {
        k,
        channels: problem.channels,
        tiles_x,
        tbx,
        tile_w: cfg.width,
        tile_h: cfg.height,
        in_pitch,
        in_rows,
        out_pitch,
        out_rows,
        img_pitch: cfg.img_pitch(k),
        flt_pitch: cfg.flt_pitch(),
        row_len: cfg.width + k - 1,
        shape: KernelShape {
            dtype: DataType::F32,
            vec_width: cfg.vec_width,
        },
    };

    let launch = LaunchConfig::new(
        format!("general K={k} n={N}"),
        tbx * tiles_x * tiles_y,
        cfg.threads(),
    )
    .with_smem(cfg.smem_bytes(k))
    .with_regs(cfg.regs_per_thread(k))
    .with_overlap(OverlapMode::Prefetch);

    let cfg_copy = *cfg;
    let report = gpu.launch(&launch, mode, |blk| {
        if strided {
            general_block_strided(blk, &cfg_copy, &geom, d_in, d_flt, d_out);
        } else {
            general_block::<N>(blk, &cfg_copy, &geom, d_in, d_flt, d_out);
        }
    })?;

    let flat = gpu.download_f32(d_out)?;
    let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
    let dst = output.as_mut_slice();
    for f in 0..problem.filters {
        for y in 0..oh {
            let src = (f * out_rows + y) * out_pitch;
            let at = (f * oh + y) * ow;
            dst[at..at + ow].copy_from_slice(&flat[src..src + ow]);
        }
    }
    let regions = executed_tile_regions(problem, &report, tiles_x, cfg.width, cfg.height, |b| {
        (b / tbx, (b % tbx) * cfg.f_tb, cfg.f_tb)
    });
    Ok(ConvRun {
        output,
        report,
        executed_regions: regions,
        faults: Vec::new(),
    })
}

/// Algorithm 2 of the paper, executed by one thread block. The vector
/// factor comes from the geometry's [`KernelShape`] at run time; `N` only
/// sizes the simulator's per-lane value arrays and must agree with it.
fn general_block<const N: usize>(
    blk: &mut BlockCtx<'_>,
    cfg: &GeneralConfig,
    g: &Geom,
    d_in: GmBuf,
    d_flt: GmBuf,
    d_out: GmBuf,
) {
    let k = g.k;
    let kk = k * k;
    let n = g.shape.vec_width;
    debug_assert_eq!(
        n, N,
        "shape vec_width must match the instantiated lane width"
    );
    let threads = cfg.threads();
    let tx_count = cfg.threads_x();
    let (w_t, f_t, c_sh) = (cfg.w_t, cfg.f_t, cfg.c_sh);
    let cols_per_row = cfg.width / w_t;

    let fx = blk.dims.block_id % g.tbx;
    let tile = blk.dims.block_id / g.tbx;
    let tile_y = tile / g.tiles_x;
    let tile_x = tile % g.tiles_x;
    let f0 = fx * cfg.f_tb;
    let gy = tile_y * g.tile_h; // output-row base (== input-row base)
    let gx = tile_x * g.tile_w;

    let slab_rows = g.tile_h + k - 1;
    let flt_base = (c_sh * slab_rows * g.img_pitch * 4) as u64;

    // rAcc[F_T][W_T] per thread, flat.
    let mut acc = vec![0.0f32; threads * f_t * w_t];
    // rImg: the W_T + K - 1 row window per thread.
    let win_w = round_up(w_t + k - 1, n);
    let mut rimg = vec![0.0f32; threads * win_w];
    // rFlt fragments per lane; fully overwritten before every use, so one
    // buffer serves the whole block instead of being zeroed per access.
    let mut rflt = [[0.0f32; 16]; WARP_SIZE];

    // Per-thread geometry, decoded once per block: the div/mod chains in
    // the per-lane address closures ran once per lane per shared-memory
    // access and were the hottest instructions of the whole launch.
    // Trailing slots past `threads` use the same formulas, so dead lanes
    // see exactly the addresses they always did.
    let lanes = threads.div_ceil(WARP_SIZE) * WARP_SIZE;
    let mut t_tx = vec![0usize; lanes];
    let mut t_r = vec![0usize; lanes];
    let mut t_col = vec![0usize; lanes];
    let mut img_off = vec![0usize; lanes]; // r_t * img_pitch + col_t
    for t in 0..lanes {
        let ty = t / tx_count;
        let r_t = ty / cols_per_row;
        let col_t = (ty % cols_per_row) * w_t;
        t_tx[t] = t % tx_count;
        t_r[t] = r_t;
        t_col[t] = col_t;
        img_off[t] = r_t * g.img_pitch + col_t;
    }

    let mut c0 = 0usize;
    while c0 < g.channels {
        // Lines 4-5 / 17-18: stage C_SH channels of image tile and filters.
        stage_tiles(blk, cfg, g, d_in, d_flt, c0, gy, gx, f0, flt_base);
        blk.sync();

        // Lines 10-15: C_SH channels x K filter rows x K rounds.
        for i in 0..c_sh {
            for j in 0..k {
                // Line 12: each thread refills its image-row window
                // (W_T + K - 1 pixels, n at a time). Threads sharing a
                // T_Y row read identical addresses: broadcast.
                for gv in 0..win_w / n {
                    let base = (i * slab_rows + j) * g.img_pitch + gv * n;
                    blk.each_warp(|w| {
                        let lane0 = w.warp_id() * WARP_SIZE;
                        let addrs =
                            lane_addrs_from(|lane| ((base + img_off[lane0 + lane]) * 4) as u64);
                        let vals = w.ld_shared::<N>(&addrs, LaneMask::ALL);
                        for lane in w.population().iter() {
                            let t = w.thread_id(lane);
                            rimg[t * win_w + gv * n..t * win_w + gv * n + n]
                                .copy_from_slice(&vals[lane][..n]);
                        }
                    });
                }
                for kc in 0..k {
                    // Line 14: F_T filter values, n-wide, contiguous
                    // across T_X threads: conflict-free.
                    let row = (i * kk + j * k + kc) * g.flt_pitch;
                    blk.each_warp(|w| {
                        let lane0 = w.warp_id() * WARP_SIZE;
                        for gv in 0..f_t / n {
                            let addrs = lane_addrs_from(|lane| {
                                flt_base + ((row + t_tx[lane0 + lane] * f_t + gv * n) * 4) as u64
                            });
                            let vals = w.ld_shared::<N>(&addrs, LaneMask::ALL);
                            for lane in 0..WARP_SIZE {
                                rflt[lane][gv * n..gv * n + n].copy_from_slice(&vals[lane][..n]);
                            }
                        }
                        // Line 15: the rank-1 update
                        // rAcc[ff][v] += rFlt[ff] * rImg[kc + v]. Slice
                        // windows keep the per-element FMA order of the
                        // indexed loop while letting the adds vectorize.
                        let pop = w.population();
                        for lane in pop.iter() {
                            let t = w.thread_id(lane);
                            let abase = t * f_t * w_t;
                            let arow = &mut acc[abase..abase + f_t * w_t];
                            let img = &rimg[t * win_w + kc..t * win_w + kc + w_t];
                            for ff in 0..f_t {
                                let fv = rflt[lane][ff];
                                for (a, &x) in arow[ff * w_t..ff * w_t + w_t].iter_mut().zip(img) {
                                    *a += fv * x;
                                }
                            }
                        }
                        w.count_fma(pop.count() as u64 * (f_t * w_t) as u64);
                    });
                }
            }
        }
        blk.sync();
        c0 += c_sh;
    }

    // Line 20: write rAcc back. Contiguous T_X threads hold different
    // output maps, so this is uncoalesced by design (measured, not
    // optimized — matching the paper).
    for ff in 0..f_t {
        for gv in 0..w_t / n {
            blk.each_warp(|w| {
                let wid = w.warp_id();
                let addrs = lane_addrs_from(|lane| {
                    let t = wid * WARP_SIZE + lane;
                    let f = f0 + t_tx[t] * f_t + ff;
                    d_out.f32_addr(
                        ((f * g.out_rows + gy + t_r[t]) * g.out_pitch + gx + t_col[t] + gv * n)
                            as u64,
                    )
                });
                let mut vals = [[0.0f32; N]; WARP_SIZE];
                for (lane, v) in vals.iter_mut().enumerate() {
                    let t = wid * WARP_SIZE + lane;
                    if t < threads {
                        v[..n].copy_from_slice(
                            &acc[t * f_t * w_t + ff * w_t + gv * n
                                ..t * f_t * w_t + ff * w_t + gv * n + n],
                        );
                    }
                }
                w.st_global::<N>(&addrs, &vals, LaneMask::ALL);
            });
        }
    }
}

/// Cooperative staging of `C_SH` channels of image tile (natural layout)
/// and filters (transposed, padded pitch) into shared memory — lines 4-5 /
/// 17-18 of Algorithm 2, shared by both output layouts.
#[allow(clippy::too_many_arguments)]
fn stage_tiles(
    blk: &mut BlockCtx<'_>,
    cfg: &GeneralConfig,
    g: &Geom,
    d_in: GmBuf,
    d_flt: GmBuf,
    c0: usize,
    gy: usize,
    gx: usize,
    f0: usize,
    flt_base: u64,
) {
    let k = g.k;
    let kk = k * k;
    let threads = cfg.threads();
    let c_sh = cfg.c_sh;
    let slab_rows = g.tile_h + k - 1;

    let img_elems = c_sh * slab_rows * g.row_len;
    let mut e0 = 0usize;
    while e0 < img_elems {
        blk.each_warp(|w| {
            let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < img_elems);
            // Consecutive lanes stage consecutive elements, so the
            // (channel, row, col) decode is an odometer carried across the
            // warp — and shared by the load and store streams — instead of
            // three divisions per lane per address.
            let mut e = (e0 + w.thread_id(0)).min(img_elems - 1);
            let mut col = e % g.row_len;
            let rows = e / g.row_len;
            let mut row = rows % slab_rows;
            let mut cc = rows / slab_rows;
            let mut gaddrs = [0u64; WARP_SIZE];
            let mut saddrs = [0u64; WARP_SIZE];
            for (ga, sa) in gaddrs.iter_mut().zip(saddrs.iter_mut()) {
                *ga = d_in
                    .f32_addr((((c0 + cc) * g.in_rows + gy + row) * g.in_pitch + gx + col) as u64);
                *sa = (((cc * slab_rows + row) * g.img_pitch + col) * 4) as u64;
                if e + 1 < img_elems {
                    e += 1;
                    col += 1;
                    if col == g.row_len {
                        col = 0;
                        row += 1;
                        if row == slab_rows {
                            row = 0;
                            cc += 1;
                        }
                    }
                }
            }
            let vals = w.ld_global::<1>(&gaddrs, mask);
            w.st_shared::<1>(&saddrs, &vals, mask);
        });
        e0 += threads;
    }
    // The pitch extends past the `W + K - 1` data columns so aligned
    // `n`-wide window loads stay in bounds; zero the pad columns so those
    // loads never touch undefined shared memory.
    let pad = g.img_pitch - g.row_len;
    if pad > 0 {
        let pad_elems = c_sh * slab_rows * pad;
        let mut e0 = 0usize;
        while e0 < pad_elems {
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < pad_elems);
                let saddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(pad_elems - 1);
                    let col = g.row_len + e % pad;
                    let row = (e / pad) % slab_rows;
                    let cc = e / (pad * slab_rows);
                    (((cc * slab_rows + row) * g.img_pitch + col) * 4) as u64
                });
                w.st_shared::<1>(&saddrs, &[[0.0f32; 1]; WARP_SIZE], mask);
            });
            e0 += threads;
        }
    }
    // Filters: read (nearly) coalesced from FCHW, store transposed with
    // padded pitch (the gray box of the paper's Fig. 6).
    let flt_elems = c_sh * kk * cfg.f_tb;
    let per_f = c_sh * kk; // the C_SH x K x K taps of one filter are
                           // contiguous in FCHW: coalesced chunks
    let mut e0 = 0usize;
    while e0 < flt_elems {
        blk.each_warp(|w| {
            let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < flt_elems);
            // Same odometer decode as the image loop: one division per
            // warp, carried across lanes and shared by both streams.
            let mut e = (e0 + w.thread_id(0)).min(flt_elems - 1);
            let mut qq = e % per_f;
            let mut f = e / per_f;
            let mut gaddrs = [0u64; WARP_SIZE];
            let mut saddrs = [0u64; WARP_SIZE];
            for (ga, sa) in gaddrs.iter_mut().zip(saddrs.iter_mut()) {
                *ga = d_flt.f32_addr(((f0 + f) * g.channels * kk + c0 * kk + qq) as u64);
                *sa = flt_base + ((qq * g.flt_pitch + f) * 4) as u64;
                if e + 1 < flt_elems {
                    e += 1;
                    qq += 1;
                    if qq == per_f {
                        qq = 0;
                        f += 1;
                    }
                }
            }
            let vals = w.ld_global::<1>(&gaddrs, mask);
            w.st_shared::<1>(&saddrs, &vals, mask);
        });
        e0 += threads;
    }
}

/// The **blocked-GEMM-layout ablation** of the general kernel: identical
/// staging, register blocking and filter handling, but each thread's `W_T`
/// outputs are *interleaved across threads* (output `v` of thread `g` is
/// column `g + v*G`) — the layout of the paper's reference \[19\] that
/// [`GeneralConv`] deliberately departs from.
///
/// Two costs follow, both measured by the simulator: the image-row reuse
/// collapses (each output needs its own `K`-pixel window: `W_T * K * K`
/// shared-memory pixel reads per thread per channel instead of
/// `(W_T + K - 1) * K` — the paper's section 4.2 factor), and the reads
/// cannot be vectorized (scalar, bank-width-unmatched). In exchange the
/// write-back becomes coalesced. The paper's measurement that write-back
/// time is negligible is exactly why its trade goes the other way.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralConvStrided {
    /// Tiling configuration (shared with [`GeneralConv`]; `vec_width` is
    /// ignored — the strided layout forces scalar image reads).
    pub config: GeneralConfig,
}

impl GeneralConvStrided {
    /// Creates the ablation kernel with the given configuration.
    pub fn new(config: GeneralConfig) -> Self {
        GeneralConvStrided { config }
    }
}

impl Convolution for GeneralConvStrided {
    fn name(&self) -> String {
        "general (strided outputs, GEMM layout)".into()
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        if problem.stride != 1 {
            return Err(ConvError::Shape(format!(
                "the paper's direct kernels are stride-1 only, got S = {}",
                problem.stride
            )));
        }
        crate::run::require_dense(problem)?;
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        self.config
            .validate(gpu.spec(), problem.k)
            .map_err(ConvError::Config)?;
        if !problem.filters.is_multiple_of(self.config.f_tb)
            || !problem.channels.is_multiple_of(self.config.c_sh)
        {
            return Err(ConvError::Shape(format!(
                "F/C not divisible by F_TB/C_SH for {problem}"
            )));
        }
        run_general_inner::<2>(gpu, &self.config, problem, input, filters, mode, true)
    }
}

/// Algorithm 2 with the blocked-GEMM output layout (see
/// [`GeneralConvStrided`]). Staging and the filter-fragment path are
/// identical to [`general_block`]; only the image-read/accumulate/write
/// phases differ.
fn general_block_strided(
    blk: &mut BlockCtx<'_>,
    cfg: &GeneralConfig,
    g: &Geom,
    d_in: GmBuf,
    d_flt: GmBuf,
    d_out: GmBuf,
) {
    let k = g.k;
    let kk = k * k;
    let threads = cfg.threads();
    let tx_count = cfg.threads_x();
    let (w_t, f_t, c_sh) = (cfg.w_t, cfg.f_t, cfg.c_sh);
    let cols_per_row = cfg.width / w_t; // thread groups per tile row (G)

    let fx = blk.dims.block_id % g.tbx;
    let tile = blk.dims.block_id / g.tbx;
    let tile_y = tile / g.tiles_x;
    let tile_x = tile % g.tiles_x;
    let f0 = fx * cfg.f_tb;
    let gy = tile_y * g.tile_h;
    let gx = tile_x * g.tile_w;

    let slab_rows = g.tile_h + k - 1;
    let flt_base = (c_sh * slab_rows * g.img_pitch * 4) as u64;

    let mut acc = vec![0.0f32; threads * f_t * w_t];
    // Per-thread image registers: one K-window per owned output.
    let mut rimg = vec![0.0f32; threads * w_t * k];

    // Per-thread geometry, decoded once per block — the same tables
    // general_block uses; these closures were the last per-lane div/mod
    // chains on the shared-memory path. Output v of pixel-thread ty is
    // column s_col0[t] + v * cols_per_row (the interleaved layout).
    // Trailing slots past `threads` use the same formulas, so dead lanes
    // see exactly the addresses they always did.
    let lanes = threads.div_ceil(WARP_SIZE) * WARP_SIZE;
    let mut t_tx = vec![0usize; lanes];
    let mut s_row = vec![0usize; lanes];
    let mut s_col0 = vec![0usize; lanes];
    for t in 0..lanes {
        let ty = t / tx_count;
        t_tx[t] = t % tx_count;
        s_row[t] = ty / cols_per_row;
        s_col0[t] = ty % cols_per_row;
    }

    let mut c0 = 0usize;
    while c0 < g.channels {
        stage_tiles(blk, cfg, g, d_in, d_flt, c0, gy, gx, f0, flt_base);
        blk.sync();

        for i in 0..c_sh {
            for j in 0..k {
                // Every output's window is loaded separately, one scalar
                // lane-read per pixel: W_T * K reads per thread per row —
                // the reuse the contiguous layout gets for free is gone,
                // and scalar reads waste half of Kepler's 8-byte banks.
                for v in 0..w_t {
                    for kc in 0..k {
                        blk.each_warp(|w| {
                            let lane0 = w.warp_id() * WARP_SIZE;
                            let addrs = lane_addrs_from(|lane| {
                                let t = lane0 + lane;
                                (((i * slab_rows + s_row[t] + j) * g.img_pitch
                                    + s_col0[t]
                                    + v * cols_per_row
                                    + kc)
                                    * 4) as u64
                            });
                            let vals = w.ld_shared::<1>(&addrs, LaneMask::ALL);
                            for lane in w.population().iter() {
                                let t = w.thread_id(lane);
                                rimg[(t * w_t + v) * k + kc] = vals[lane][0];
                            }
                        });
                    }
                }
                for kc in 0..k {
                    blk.each_warp(|w| {
                        let lane0 = w.warp_id() * WARP_SIZE;
                        let mut rflt = [[0.0f32; 16]; WARP_SIZE];
                        for gv in 0..f_t / 2 {
                            let addrs = lane_addrs_from(|lane| {
                                flt_base
                                    + (((i * kk + j * k + kc) * g.flt_pitch
                                        + t_tx[lane0 + lane] * f_t
                                        + gv * 2)
                                        * 4) as u64
                            });
                            let vals = w.ld_shared::<2>(&addrs, LaneMask::ALL);
                            for lane in 0..WARP_SIZE {
                                rflt[lane][gv * 2..gv * 2 + 2].copy_from_slice(&vals[lane]);
                            }
                        }
                        let pop = w.population();
                        for lane in pop.iter() {
                            let t = w.thread_id(lane);
                            let abase = t * f_t * w_t;
                            for ff in 0..f_t {
                                let fv = rflt[lane][ff];
                                for v in 0..w_t {
                                    acc[abase + ff * w_t + v] += fv * rimg[(t * w_t + v) * k + kc];
                                }
                            }
                        }
                        w.count_fma(pop.count() as u64 * (f_t * w_t) as u64);
                    });
                }
            }
        }
        blk.sync();
        c0 += c_sh;
    }

    // Write-back: within a T_X group, consecutive pixel-threads hold
    // consecutive columns — coalesced scalar stores (the one advantage of
    // this layout).
    for ff in 0..f_t {
        for v in 0..w_t {
            blk.each_warp(|w| {
                let wid = w.warp_id();
                let addrs = lane_addrs_from(|lane| {
                    let t = wid * WARP_SIZE + lane;
                    let f = f0 + t_tx[t] * f_t + ff;
                    d_out.f32_addr(
                        ((f * g.out_rows + gy + s_row[t]) * g.out_pitch
                            + gx
                            + s_col0[t]
                            + v * cols_per_row) as u64,
                    )
                });
                let mut vals = [[0.0f32; 1]; WARP_SIZE];
                for (lane, val) in vals.iter_mut().enumerate() {
                    let t = wid * WARP_SIZE + lane;
                    if t < threads {
                        val[0] = acc[t * f_t * w_t + ff * w_t + v];
                    }
                }
                w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn small_cfg() -> GeneralConfig {
        GeneralConfig {
            width: 16,
            height: 4,
            f_tb: 8,
            w_t: 8,
            f_t: 4,
            c_sh: 2,
            vec_width: 2,
        }
    }

    fn check(cfg: GeneralConfig, n: usize, c: usize, f: usize, k: usize, mode: SimMode) -> ConvRun {
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, 21);
        let filters = random_filters(f, c, k, 23);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = GeneralConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, mode)
            .expect("launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("output mismatch");
        run
    }

    #[test]
    fn exact_tiles_3x3() {
        // 18x18 input, K=3 -> 16x16 output = 1x4 tiles; C=4, F=16.
        check(small_cfg(), 18, 4, 16, 3, SimMode::Full);
    }

    #[test]
    fn ragged_tiles_3x3() {
        // 25x25 -> 23x23 output: clipping on both axes.
        check(small_cfg(), 25, 2, 8, 3, SimMode::Full);
    }

    #[test]
    fn five_by_five() {
        check(small_cfg(), 22, 2, 8, 5, SimMode::Full);
    }

    #[test]
    fn seven_by_seven() {
        check(small_cfg(), 26, 2, 8, 7, SimMode::Full);
    }

    #[test]
    fn single_channel_general_path() {
        let cfg = GeneralConfig {
            c_sh: 1,
            ..small_cfg()
        };
        check(cfg, 20, 1, 8, 3, SimMode::Full);
    }

    #[test]
    fn unmatched_variant() {
        let cfg = GeneralConfig {
            vec_width: 1,
            ..small_cfg()
        };
        check(cfg, 18, 2, 8, 3, SimMode::Full);
    }

    #[test]
    fn multiple_filter_groups() {
        // F = 32 with F_TB = 8: four blocks along the filter axis.
        let run = check(small_cfg(), 18, 2, 32, 3, SimMode::Full);
        assert_eq!(run.report.stats.blocks_total, (4 * 4));
    }

    #[test]
    fn sampled_execution_verifies_filter_slices() {
        let run = check(small_cfg(), 34, 2, 32, 3, SimMode::Sampled(3));
        assert_eq!(run.executed_regions.len(), 3);
        // Each region covers exactly one filter group.
        assert!(run.executed_regions.iter().all(|r| r.nf == 8));
    }

    #[test]
    fn paper_table1_config_runs() {
        // The real Table 1 3x3 config on a small-but-divisible problem.
        let cfg = GeneralConfig::table1_3x3();
        check(cfg, 34, 2, 64, 3, SimMode::Full);
    }

    #[test]
    fn smem_loads_are_nearly_conflict_free() {
        let run = check(small_cfg(), 18, 4, 16, 3, SimMode::Full);
        assert!(
            run.report.stats.sm_replay_factor() < 1.05,
            "replay {}",
            run.report.stats.sm_replay_factor()
        );
    }

    #[test]
    fn strided_layout_is_correct() {
        let problem = ConvProblem::general(18, 4, 16, 3);
        let input = random_maps(4, 18, 18, 25);
        let filters = random_filters(16, 4, 3, 27);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = GeneralConvStrided::new(small_cfg())
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("strided launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("strided output mismatch");
    }

    #[test]
    fn contiguous_outputs_cut_sm_image_traffic() {
        // Paper section 4.2: (W_T + K - 1)/(W_T * K) shared-memory image
        // reduction vs the blocked-GEMM layout, measured in pixel reads.
        let cfg = small_cfg(); // W_T = 8, K = 3
        let problem = ConvProblem::general(18, 4, 8, 3);
        let input = random_maps(4, 18, 18, 29);
        let filters = random_filters(8, 4, 3, 31);
        let run_with = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap()
                .report
        };
        let ours = run_with(&GeneralConv::new(cfg));
        let gemm_layout = run_with(&GeneralConvStrided::new(cfg));
        // Same arithmetic.
        assert_eq!(ours.stats.fma_lane_ops, gemm_layout.stats.fma_lane_ops);
        // Image pixels read from shared memory per thread per channel row:
        // contiguous (W_T + K - 1) = 10, strided W_T * K = 24 -> 2.4x. The
        // totals also include (identical) filter reads and staging stores,
        // so require a healthy but smaller ratio on useful bytes.
        let ratio = gemm_layout.stats.sm_bytes_useful as f64 / ours.stats.sm_bytes_useful as f64;
        assert!(ratio > 1.5, "sm-bytes ratio {ratio}");
        // And the model says the contiguous layout is faster.
        assert!(ours.seconds() < gemm_layout.seconds());
    }

    #[test]
    fn rejects_indivisible_shapes() {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let problem = ConvProblem::general(18, 3, 8, 3); // C=3 not divisible by c_sh=2
        let input = random_maps(3, 18, 18, 1);
        let filters = random_filters(8, 3, 3, 1);
        let err =
            GeneralConv::new(small_cfg()).run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));

        let problem = ConvProblem::general(18, 2, 12, 3); // F=12 not divisible by f_tb=8
        let input = random_maps(2, 18, 18, 1);
        let filters = random_filters(12, 2, 3, 1);
        let err =
            GeneralConv::new(small_cfg()).run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn gm_traffic_reduction_vs_kk_duplication() {
        // The staged image bytes should be ~ (H+K-1)(W+K-1)/(H*W) per
        // output pixel per channel per tile — far below the K*K im2col
        // duplication.
        let run = check(small_cfg(), 18, 4, 8, 3, SimMode::Full);
        let tiles = 4;
        let per_tile_img = 4 * (4 + 2) * (16 + 2) * 4; // C*(H+K-1)*(W+K-1)*4B
        let flt = 8 * 4 * 9 * 4 * tiles; // every tile restages its filters
        let expected = tiles * per_tile_img + flt;
        assert_eq!(run.report.stats.gm_ld_bytes_useful, expected as u64);
    }
}

//! Design-space exploration for the general-case kernel — the process that
//! produced the paper's Table 1.
//!
//! The tuner enumerates the cross product of the paper's tuning knobs
//! (`W, H, F_TB, W_T, F_T, C_SH`), filters out configurations that violate
//! the architectural constraints or the problem's divisibility
//! requirements, measures each survivor on a representative problem with
//! sampled execution, and ranks by achieved GFlop/s.

use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

use crate::config::{GeneralConfig, SpecialConfig};
use crate::dtype::DataType;
use crate::error::{ConvError, Result};
use crate::general::GeneralConv;
use crate::run::Convolution;
use crate::shape::KernelShape;
use crate::special::SpecialConv;

/// One explored configuration and its measured throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The configuration.
    pub config: GeneralConfig,
    /// Achieved algorithmic GFlop/s on the probe problem.
    pub gflops: f64,
}

/// A candidate the tuner refused to simulate, and why.
///
/// Recorded by the `*_recorded` exploration variants so a sweep's report
/// can show what was pruned (a wrong vector factor for the target's bank
/// width, a validation failure, a device-side fault) instead of silently
/// shrinking the space.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSkip<C> {
    /// The configuration that was skipped.
    pub config: C,
    /// Human-readable reason it was not (or could not be) measured.
    pub reason: String,
}

/// Returns `Some(reason)` if `vec_width` should not even be simulated on
/// `spec`: the architecture-adaptive generator derives exactly one matched
/// vector factor per (spec, dtype) from the paper's eq. 1, and any other
/// factor is either uninstantiable or reproduces the known n-fold bank
/// serialization — measuring it again is wasted sweep time.
fn derived_n_incompatibility(spec: &GpuSpec, vec_width: usize) -> Option<String> {
    let derived = KernelShape::derive_n(spec, DataType::F32);
    if KernelShape::forced(DataType::F32, vec_width).is_none() {
        return Some(format!(
            "vec_width {vec_width} has no instantiable f32 kernel variant"
        ));
    }
    if vec_width != derived {
        return Some(format!(
            "vec_width {vec_width} mismatches derived n={derived} for {} ({}B banks)",
            spec.name,
            spec.bank_width.bytes()
        ));
    }
    None
}

/// The candidate space explored for Table 1 (the paper's knobs with the
/// values its result table draws from), vectorized for the K40m's 8-byte
/// banks (`n = 2`). For other architectures use [`candidate_space_for`].
pub fn candidate_space() -> Vec<GeneralConfig> {
    candidate_space_for(&GpuSpec::kepler_k40m())
}

/// The Table 1 candidate space with the vector factor derived from
/// `spec`'s bank width via [`KernelShape::derive_n`] — `n = 2` on 8-byte
/// banks (Kepler), `n = 1` on 4-byte banks (Fermi/Maxwell-class).
pub fn candidate_space_for(spec: &GpuSpec) -> Vec<GeneralConfig> {
    let vec_width = KernelShape::derive_n(spec, DataType::F32);
    let mut out = Vec::new();
    for &width in &[32usize, 64] {
        for &height in &[4usize, 8] {
            for &f_tb in &[32usize, 64] {
                for &w_t in &[8usize, 16] {
                    for &f_t in &[4usize, 8] {
                        for &c_sh in &[1usize, 2] {
                            out.push(GeneralConfig {
                                width,
                                height,
                                f_tb,
                                w_t,
                                f_t,
                                c_sh,
                                vec_width,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Whether `cfg` can run `problem` at all (architecture + divisibility).
pub fn is_feasible(spec: &GpuSpec, cfg: &GeneralConfig, problem: &ConvProblem) -> bool {
    cfg.validate(spec, problem.k).is_ok()
        && problem.filters.is_multiple_of(cfg.f_tb)
        && problem.channels.is_multiple_of(cfg.c_sh)
}

/// Explores `candidates` on `problem`, returning feasible results sorted
/// by descending throughput. Uses sampled execution (`blocks` blocks per
/// candidate) — the kernels are tile-homogeneous, so the scaled counters
/// are exact for interior tiles. Launches run with
/// [`Parallelism::env_or_auto`] (serial results are bit-identical; set
/// `KCONV_THREADS=serial` to force the single-threaded path).
///
/// Candidates whose kernel trips a device-side fault (a sanitizer report
/// or a contained kernel panic — see [`kconv_sim::DeviceFault`]) are
/// skipped rather than aborting the exploration: one poisoned
/// configuration should not take down a 64-point sweep.
///
/// # Errors
///
/// Propagates host-side simulator errors (a candidate that fails
/// validation is silently skipped; a candidate that fails at launch setup
/// is a bug).
pub fn explore_general(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[GeneralConfig],
    blocks: usize,
) -> Result<Vec<TuneResult>> {
    explore_general_recorded(spec, problem, candidates, blocks).map(|(results, _)| results)
}

/// [`explore_general`] plus the list of candidates that were pruned
/// without simulation and why — a wrong derived vector factor for the
/// target's bank width, a validation/divisibility failure, or a
/// device-side fault.
///
/// # Errors
///
/// Propagates host-side simulator errors (see [`explore_general`]).
pub fn explore_general_recorded(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[GeneralConfig],
    blocks: usize,
) -> Result<(Vec<TuneResult>, Vec<TuneSkip<GeneralConfig>>)> {
    let input = random_maps(problem.channels, problem.height, problem.width, 71);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 73);
    let mut results = Vec::new();
    let mut skips = Vec::new();
    for cfg in candidates {
        // Wrong-n candidates are pruned analytically: eq. 1 already tells
        // us they serialize (or cannot be built), so they are not worth a
        // simulated launch.
        if let Some(reason) = derived_n_incompatibility(spec, cfg.vec_width) {
            skips.push(TuneSkip {
                config: *cfg,
                reason,
            });
            continue;
        }
        if !is_feasible(spec, cfg, problem) {
            skips.push(TuneSkip {
                config: *cfg,
                reason: "fails architectural or divisibility validation".into(),
            });
            continue;
        }
        let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
        let run = match GeneralConv::new(*cfg).run(
            &mut gpu,
            problem,
            &input,
            &filters,
            SimMode::Sampled(blocks),
        ) {
            Ok(run) => run,
            // A device-side fault poisons this candidate, not the sweep.
            Err(ConvError::Sim(e)) if e.device_fault().is_some() => {
                skips.push(TuneSkip {
                    config: *cfg,
                    reason: "device-side fault during sampled execution".into(),
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        results.push(TuneResult {
            config: *cfg,
            gflops: run.effective_gflops(problem),
        });
    }
    results.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).expect("finite gflops"));
    Ok((results, skips))
}

/// Convenience: the best configuration for filter size `k` on a
/// representative problem (`N = 64`, `C = F = 64`), exploring the full
/// candidate space.
///
/// # Errors
///
/// Propagates simulator errors; fails if no candidate is feasible.
pub fn best_general_config(spec: &GpuSpec, k: usize) -> Result<GeneralConfig> {
    let problem = ConvProblem::general(64 + k - 1, 64, 64, k);
    let results = explore_general(spec, &problem, &candidate_space(), 2)?;
    results
        .first()
        .map(|r| r.config)
        .ok_or_else(|| crate::error::ConvError::Config("no feasible configuration".into()))
}

/// One explored special-case configuration and its measured throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecialTuneResult {
    /// The configuration.
    pub config: SpecialConfig,
    /// Achieved algorithmic GFlop/s on the probe problem.
    pub gflops: f64,
}

/// The candidate space for the special-case kernel's tile shape (the
/// paper: "Through design space exploration, we determined that the best
/// block size for the special case convolution kernel is W = 256 and
/// H = 8"), vectorized for Kepler's 8-byte banks. For other architectures
/// use [`special_candidate_space_for`].
pub fn special_candidate_space() -> Vec<SpecialConfig> {
    special_candidate_space_for(&GpuSpec::kepler_k40m())
}

/// The special-case tile space with the vector factor derived from
/// `spec`'s bank width via [`KernelShape::derive_n`].
pub fn special_candidate_space_for(spec: &GpuSpec) -> Vec<SpecialConfig> {
    let vec_width = KernelShape::derive_n(spec, DataType::F32);
    let mut out = Vec::new();
    for &width in &[64usize, 128, 256, 512] {
        for &height in &[2usize, 4, 8, 16] {
            out.push(SpecialConfig {
                width,
                height,
                vec_width,
            });
        }
    }
    out
}

/// Explores special-case tile shapes on `problem`, returning feasible
/// results sorted by descending throughput.
///
/// # Errors
///
/// Propagates host-side simulator errors; candidates that trip a
/// device-side fault are skipped (see [`explore_general`]).
pub fn explore_special(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[SpecialConfig],
    blocks: usize,
) -> Result<Vec<SpecialTuneResult>> {
    explore_special_recorded(spec, problem, candidates, blocks).map(|(results, _)| results)
}

/// [`explore_special`] plus the list of candidates pruned without
/// simulation and why (see [`explore_general_recorded`]).
///
/// # Errors
///
/// Propagates host-side simulator errors.
pub fn explore_special_recorded(
    spec: &GpuSpec,
    problem: &ConvProblem,
    candidates: &[SpecialConfig],
    blocks: usize,
) -> Result<(Vec<SpecialTuneResult>, Vec<TuneSkip<SpecialConfig>>)> {
    let input = random_maps(1, problem.height, problem.width, 75);
    let filters = random_filters(problem.filters, 1, problem.k, 77);
    let mut results = Vec::new();
    let mut skips = Vec::new();
    for cfg in candidates {
        if let Some(reason) = derived_n_incompatibility(spec, cfg.vec_width) {
            skips.push(TuneSkip {
                config: *cfg,
                reason,
            });
            continue;
        }
        if cfg.validate(spec, problem.k, problem.filters).is_err() {
            skips.push(TuneSkip {
                config: *cfg,
                reason: "fails architectural or divisibility validation".into(),
            });
            continue;
        }
        let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
        let run = match SpecialConv::new(*cfg).run(
            &mut gpu,
            problem,
            &input,
            &filters,
            SimMode::Sampled(blocks),
        ) {
            Ok(run) => run,
            // A device-side fault poisons this candidate, not the sweep.
            Err(ConvError::Sim(e)) if e.device_fault().is_some() => {
                skips.push(TuneSkip {
                    config: *cfg,
                    reason: "device-side fault during sampled execution".into(),
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        results.push(SpecialTuneResult {
            config: *cfg,
            gflops: run.effective_gflops(problem),
        });
    }
    results.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).expect("finite gflops"));
    Ok((results, skips))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_size() {
        // 2^6 knob combinations.
        assert_eq!(candidate_space().len(), 64);
    }

    #[test]
    fn feasibility_filters_divisibility() {
        let spec = GpuSpec::kepler_k40m();
        let cfg = GeneralConfig::table1_3x3(); // F_TB = 64
        let ok = ConvProblem::general(34, 2, 64, 3);
        let bad_f = ConvProblem::general(34, 2, 48, 3);
        assert!(is_feasible(&spec, &cfg, &ok));
        assert!(!is_feasible(&spec, &cfg, &bad_f));
        let bad_c = ConvProblem::general(34, 3, 64, 3); // C=3 vs C_SH=2
        assert!(!is_feasible(&spec, &cfg, &bad_c));
    }

    #[test]
    fn exploration_ranks_descending() {
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::general(34, 4, 64, 3);
        // A small probe space to keep the test quick.
        let cands = [
            GeneralConfig::table1_3x3(),
            GeneralConfig {
                w_t: 8,
                ..GeneralConfig::table1_3x3()
            },
            GeneralConfig {
                c_sh: 1,
                ..GeneralConfig::table1_3x3()
            },
        ];
        let results = explore_general(&spec, &problem, &cands, 2).unwrap();
        assert!(!results.is_empty());
        for pair in results.windows(2) {
            assert!(pair[0].gflops >= pair[1].gflops);
        }
    }

    #[test]
    fn special_space_and_exploration() {
        assert_eq!(special_candidate_space().len(), 16);
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::special(512, 8, 3);
        let cands = [
            SpecialConfig {
                width: 64,
                height: 4,
                vec_width: 2,
            },
            SpecialConfig {
                width: 256,
                height: 8,
                vec_width: 2,
            },
        ];
        let results = explore_special(&spec, &problem, &cands, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].gflops >= results[1].gflops);
    }

    #[test]
    fn candidate_space_for_derives_the_vector_factor() {
        // Kepler's 8-byte banks want n = 2 (the historical default space).
        assert!(candidate_space().iter().all(|c| c.vec_width == 2));
        assert!(special_candidate_space().iter().all(|c| c.vec_width == 2));
        // 4-byte-bank architectures want the scalar variant.
        let maxwell = GpuSpec::maxwell_like();
        assert!(candidate_space_for(&maxwell)
            .iter()
            .all(|c| c.vec_width == 1));
        assert!(special_candidate_space_for(&maxwell)
            .iter()
            .all(|c| c.vec_width == 1));
    }

    #[test]
    fn wrong_n_candidates_are_pruned_analytically() {
        // The Kepler-tuned space (n = 2) should be pruned wholesale on a
        // 4-byte-bank target — with the reason recorded, not silently.
        let maxwell = GpuSpec::maxwell_like();
        let problem = ConvProblem::general(34, 4, 64, 3);
        let (results, skips) =
            explore_general_recorded(&maxwell, &problem, &candidate_space(), 1).unwrap();
        assert!(results.is_empty());
        assert_eq!(skips.len(), 64);
        for skip in &skips {
            assert!(
                skip.reason.contains("mismatches derived n=1"),
                "{}",
                skip.reason
            );
        }
        // The matched space simulates normally on the same target.
        let (results, skips) =
            explore_general_recorded(&maxwell, &problem, &candidate_space_for(&maxwell), 1)
                .unwrap();
        assert!(!results.is_empty());
        assert!(skips
            .iter()
            .all(|s| s.reason.contains("validation") || s.reason.contains("fault")));
    }

    #[test]
    fn special_skips_record_reasons_too() {
        let maxwell = GpuSpec::maxwell_like();
        let problem = ConvProblem::special(512, 8, 3);
        let (results, skips) =
            explore_special_recorded(&maxwell, &problem, &special_candidate_space(), 1).unwrap();
        assert!(results.is_empty());
        assert_eq!(skips.len(), 16);
        assert!(skips.iter().all(|s| s.reason.contains("4B banks")));
    }

    #[test]
    fn infeasible_candidates_are_skipped_not_fatal() {
        let spec = GpuSpec::kepler_k40m();
        let problem = ConvProblem::general(34, 4, 64, 3);
        let cands = [
            GeneralConfig {
                c_sh: 32, // shared-memory blowup: infeasible
                ..GeneralConfig::table1_3x3()
            },
            GeneralConfig::table1_3x3(),
        ];
        let results = explore_general(&spec, &problem, &cands, 1).unwrap();
        assert_eq!(results.len(), 1);
    }
}

//! The Caffe-style explicit `im2col` + GEMM baseline.
//!
//! Caffe's default convolution (the paper's reference [7]/[18]) lowers the
//! input to the full patch matrix with an `im2col` kernel — allocating
//! `K*K` times the input's memory — and then calls a cuBLAS SGEMM. This
//! implementation runs both stages on the simulator:
//!
//! 1. an `im2col` device kernel that writes every element of the
//!    `(C*K*K) x (OH*OW)` patch matrix (duplicated global-memory traffic
//!    plus unrolled-index ALU, both counted);
//! 2. a bank-width-matched blocked SGEMM from [`kconv_gemm`] over the
//!    (zero-padded) operands.
//!
//! The reported [`ConvRun`] carries the **combined** statistics and time of
//! both launches.

use kconv_gemm::{launch_gemm, GemmConfig, GemmShape};
use kconv_sim::{
    lane_addrs_from, Gpu, KernelStats, LaneMask, LaunchConfig, LaunchReport, OverlapMode, SimMode,
};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};
use crate::reference::OutRegion;
use crate::run::{ConvRun, Convolution};

/// The explicit `im2col` + GEMM convolution baseline.
///
/// # Examples
///
/// ```
/// use kconv_core::{ExplicitGemmConv, Convolution};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::general(16, 2, 4, 3);
/// let input = random_maps(2, 16, 16, 1);
/// let filters = random_filters(4, 2, 3, 2);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = ExplicitGemmConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// assert!(run
///     .verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL)
///     .is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExplicitGemmConv {
    /// GEMM blocking; `None` uses a 64x64 Kepler-matched kernel.
    pub gemm: Option<GemmConfig>,
}

impl ExplicitGemmConv {
    /// Baseline with an explicit GEMM blocking.
    pub fn new(gemm: GemmConfig) -> Self {
        ExplicitGemmConv { gemm: Some(gemm) }
    }
}

/// ALU lane-ops charged per written patch-matrix element (index decode +
/// address computation), matching the implicit baseline's accounting.
const DECODE_ALU: u64 = 10;

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Sums two launch reports: statistics merge, component times add, and the
/// slower launch's occupancy is kept for display.
fn combine(a: LaunchReport, b: LaunchReport) -> LaunchReport {
    let mut stats = KernelStats::default();
    stats.merge(&a.stats);
    stats.merge(&b.stats);
    let mut timing = if a.timing.t_total >= b.timing.t_total {
        a.timing
    } else {
        b.timing
    };
    timing.t_compute = a.timing.t_compute + b.timing.t_compute;
    timing.t_smem = a.timing.t_smem + b.timing.t_smem;
    timing.t_cm = a.timing.t_cm + b.timing.t_cm;
    timing.t_gm = a.timing.t_gm + b.timing.t_gm;
    timing.t_barrier = a.timing.t_barrier + b.timing.t_barrier;
    timing.t_latency = a.timing.t_latency + b.timing.t_latency;
    timing.t_total = a.timing.t_total + b.timing.t_total;
    timing.gflops = stats.flops() as f64 / timing.t_total / 1e9;
    LaunchReport {
        stats,
        timing,
        executed_blocks: b.executed_blocks,
    }
}

impl Convolution for ExplicitGemmConv {
    fn name(&self) -> String {
        "Caffe-like im2col + GEMM".into()
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        crate::run::require_dense(problem)?;
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        let gemm_cfg = self.gemm.clone().unwrap_or_else(|| GemmConfig {
            name: "explicit-conv SGEMM",
            ..GemmConfig::fermi_tuned_matched()
        });
        gemm_cfg.validate().map_err(ConvError::Config)?;

        let (oh, ow) = (problem.out_height(), problem.out_width());
        let np = oh * ow;
        let kd = problem.channels * problem.k * problem.k;
        // Padded GEMM dimensions.
        let mp = round_up(problem.filters, gemm_cfg.tile_m);
        let npad = round_up(np, gemm_cfg.tile_n);
        let kp = round_up(kd, gemm_cfg.tile_k);

        // Device buffers: input tensor, padded filter matrix, padded patch
        // matrix (the K*K-fold blowup Caffe allocates), padded output.
        let d_in = gpu.alloc_f32(input.as_slice().len() as u64)?;
        gpu.upload_f32(d_in, input.as_slice())?;
        let d_a = gpu.alloc_f32((mp * kp) as u64)?;
        gpu.fill_f32(d_a, 0.0)?;
        // Filters are already the row-major F x kd matrix; upload row-wise
        // into the padded pitch.
        for f in 0..problem.filters {
            let row = &filters.as_slice()[f * kd..(f + 1) * kd];
            gpu.upload_f32_at(d_a, (f * kp) as u64, row)?;
        }
        let d_b = gpu.alloc_f32((kp * npad) as u64)?;
        gpu.fill_f32(d_b, 0.0)?;
        let d_c = gpu.alloc_f32((mp * npad) as u64)?;

        // Stage 1: the im2col kernel (always full — the GEMM depends on
        // every element).
        let total = kd * np;
        let threads = 256;
        let im2col_launch = LaunchConfig::new(
            format!("im2col K={}", problem.k),
            total.div_ceil(threads),
            threads,
        )
        .with_regs(20)
        .with_overlap(OverlapMode::Moderate);
        let p = *problem;
        let kk = p.k * p.k;
        let im2col_report = gpu.launch(&im2col_launch, SimMode::Full, |blk| {
            let base = blk.dims.block_id * threads;
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| base + w.thread_id(lane) < total);
                let gaddrs = lane_addrs_from(|lane| {
                    let e = (base + w.thread_id(lane)).min(total - 1);
                    let (kq, px) = (e / np, e % np);
                    let (c, q) = (kq / kk, kq % kk);
                    let (dy, dx) = (q / p.k, q % p.k);
                    let ow = p.out_width();
                    let (oy, ox) = (px / ow, px % ow);
                    d_in.f32_addr(
                        ((c * p.height + oy * p.stride + dy) * p.width + ox * p.stride + dx) as u64,
                    )
                });
                w.count_alu(mask.count() as u64 * DECODE_ALU);
                let vals = w.ld_global::<1>(&gaddrs, mask);
                let saddrs = lane_addrs_from(|lane| {
                    let e = (base + w.thread_id(lane)).min(total - 1);
                    let (kq, px) = (e / np, e % np);
                    d_b.f32_addr((kq * npad + px) as u64)
                });
                w.st_global::<1>(&saddrs, &vals, mask);
            });
        })?;

        // Stage 2: the SGEMM.
        let shape = GemmShape::new(mp, npad, kp);
        let gemm_report = launch_gemm(gpu, &gemm_cfg, shape, d_a, d_b, d_c, mode.clone())?;

        // Executed C tiles become row-segment regions (as in the implicit
        // baseline).
        let tiles_n = npad / gemm_cfg.tile_n;
        let mut regions = Vec::new();
        for &b in &gemm_report.executed_blocks {
            let bm = b / tiles_n;
            let bn = b % tiles_n;
            let f0 = bm * gemm_cfg.tile_m;
            if f0 >= problem.filters {
                continue;
            }
            let nf = gemm_cfg.tile_m.min(problem.filters - f0);
            let px0 = bn * gemm_cfg.tile_n;
            let px1 = (px0 + gemm_cfg.tile_n).min(np);
            let mut px = px0;
            while px < px1 {
                let (y, x) = (px / ow, px % ow);
                let w = (ow - x).min(px1 - px);
                regions.push(OutRegion {
                    f0,
                    nf,
                    y0: y,
                    x0: x,
                    h: 1,
                    w,
                });
                px += w;
            }
        }

        let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
        for f in 0..problem.filters {
            let row = gpu.download_f32_at(d_c, (f * npad) as u64, np)?;
            for (px, v) in row.into_iter().enumerate() {
                output.set(f, px / ow, px % ow, v);
            }
        }

        Ok(ConvRun {
            output,
            report: combine(im2col_report, gemm_report),
            executed_regions: regions,
            faults: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn check(n: usize, c: usize, f: usize, k: usize, mode: SimMode) -> ConvRun {
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, 41);
        let filters = random_filters(f, c, k, 43);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = ExplicitGemmConv::default()
            .run(&mut gpu, &problem, &input, &filters, mode)
            .expect("launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("output mismatch");
        run
    }

    #[test]
    fn small_multichannel() {
        check(16, 2, 4, 3, SimMode::Full);
    }

    #[test]
    fn single_channel_and_filter() {
        check(16, 1, 1, 3, SimMode::Full);
    }

    #[test]
    fn five_by_five() {
        check(18, 2, 3, 5, SimMode::Full);
    }

    #[test]
    fn one_by_one() {
        check(16, 3, 4, 1, SimMode::Full);
    }

    #[test]
    fn sampled_gemm_stage() {
        let run = check(34, 2, 8, 3, SimMode::Sampled(2));
        assert!(!run.executed_regions.is_empty());
    }

    #[test]
    fn strided_convolutions_are_supported() {
        let problem = ConvProblem::general(17, 2, 4, 3).with_stride(2);
        let input = random_maps(2, 17, 17, 361);
        let filters = random_filters(4, 2, 3, 363);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = ExplicitGemmConv::default()
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("strided explicit");
    }

    #[test]
    fn combined_report_includes_both_stages() {
        let run = check(16, 2, 4, 3, SimMode::Full);
        // im2col ALU must be present alongside GEMM FMAs.
        assert!(run.report.stats.alu_lane_ops > 0);
        assert!(run.report.stats.fma_lane_ops > 0);
        // im2col writes kd*np elements: bus write traffic at least that.
        let kd_np = (2 * 9 * 14 * 14) as u64;
        assert!(run.report.stats.gm_st_bytes_useful >= kd_np * 4);
    }

    #[test]
    fn memory_blowup_is_real() {
        // The patch matrix allocation is ~K*K times the input: visible in
        // the device allocation trace via successful allocation of the
        // padded buffer (behavioural check: output still correct while
        // padded dims exceed the true ones).
        let run = check(20, 3, 5, 3, SimMode::Full);
        assert!(run.report.stats.gm_ld_bytes_useful > 0);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let problem = ConvProblem::general(12, 2, 4, 3);
        let input = random_maps(1, 12, 12, 1);
        let filters = random_filters(4, 2, 3, 1);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err =
            ExplicitGemmConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }
}

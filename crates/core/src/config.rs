//! Kernel configurations for the special-case and general-case convolution
//! kernels, including the paper's Table 1 presets.

use kconv_sim::GpuSpec;

/// Rounds `v` up to a multiple of `to`.
pub(crate) fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Configuration of the special-case (`C = 1`) kernel (paper section 3).
///
/// An image tile of `width x height` **output** pixels is handled by one
/// thread block of `width / vec_width` threads; `vec_width` is the paper's
/// `n = W_SMB / W_CD` (2 for `float` on Kepler; 1 gives the *unmatched*
/// ablation kernel of Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecialConfig {
    /// Output pixels per tile row (`W` in the paper; best found: 256).
    pub width: usize,
    /// Output rows per tile (`H` in the paper; best found: 8).
    pub height: usize,
    /// Pixels per thread per access (`n`).
    pub vec_width: usize,
}

impl SpecialConfig {
    /// The paper's design-space-exploration winner for the K40m:
    /// `W = 256`, `H = 8`, matched accesses (`n = 2`).
    pub fn kepler_best() -> Self {
        SpecialConfig {
            width: 256,
            height: 8,
            vec_width: 2,
        }
    }

    /// The unmatched ablation kernel of Fig. 7b: identical tiling but
    /// scalar (`float`) accesses.
    pub fn kepler_unmatched() -> Self {
        SpecialConfig {
            vec_width: 1,
            ..SpecialConfig::kepler_best()
        }
    }

    /// The paper's tile with an explicit vector factor — the generator's
    /// building block for forced-`n` ablations.
    pub fn with_vec_width(n: usize) -> Self {
        SpecialConfig {
            vec_width: n,
            ..SpecialConfig::kepler_best()
        }
    }

    /// The matched configuration for `f32` on `spec`: the paper's best tile
    /// with `n` derived from eq. 1 in reverse
    /// ([`KernelShape::derive_n`](crate::KernelShape::derive_n)), so the
    /// same tiling self-adapts to 8-byte-bank Kepler (`n = 2`) and
    /// 4-byte-bank Fermi/Maxwell (`n = 1`).
    pub fn matched_for(spec: &GpuSpec) -> Self {
        Self::with_vec_width(crate::KernelShape::derive_n(spec, crate::DataType::F32))
    }

    /// Threads per block (`W / n`).
    pub fn threads(&self) -> usize {
        self.width / self.vec_width
    }

    /// Shared-memory row pitch in `f32` elements for filter size `k`: at
    /// least the `W + K - 1` tile row, extended so every aligned
    /// `vec_width`-wide window load stays in bounds, and aligned to
    /// `vec_width`.
    pub fn smem_pitch(&self, k: usize) -> usize {
        let n = self.vec_width;
        let window = round_up(k + n - 1, n);
        round_up((self.width + k - 1).max(self.width - n + window), n)
    }

    /// Shared-memory bytes per block for filter size `k`: a `K`-row ring
    /// buffer of padded rows.
    pub fn smem_bytes(&self, k: usize) -> u32 {
        (k * self.smem_pitch(k) * 4) as u32
    }

    /// Per-thread register estimate: the `K x (K + n - 1)` window, `n`
    /// accumulators, the prefetch staging and ~12 for addresses.
    pub fn regs_per_thread(&self, k: usize) -> u32 {
        let n = self.vec_width;
        (k * round_up(k + n - 1, n) + 2 * n + 12) as u32
    }

    /// Validates the configuration against `spec` for filter size `k` and
    /// `filters` output maps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, spec: &GpuSpec, k: usize, filters: usize) -> Result<(), String> {
        if self.vec_width == 0 || self.width == 0 || self.height == 0 {
            return Err("all dimensions must be positive".into());
        }
        if k > crate::special::MAX_K {
            return Err(format!(
                "filter size {k} exceeds the special kernel's maximum {}",
                crate::special::MAX_K
            ));
        }
        if !self.width.is_multiple_of(self.vec_width) {
            return Err(format!(
                "tile width {} not divisible by vec_width {}",
                self.width, self.vec_width
            ));
        }
        let threads = self.threads();
        if threads == 0 || threads > 1024 {
            return Err(format!("{threads} threads per block is not launchable"));
        }
        if self.smem_bytes(k) > spec.max_smem_per_block {
            return Err(format!(
                "{} B of shared memory exceeds the per-block limit",
                self.smem_bytes(k)
            ));
        }
        let cm_bytes = (filters * k * k * 4) as u64;
        if cm_bytes > spec.cm_bytes {
            return Err(format!(
                "{filters} filters of size {k}x{k} ({cm_bytes} B) exceed constant memory"
            ));
        }
        Ok(())
    }
}

impl Default for SpecialConfig {
    fn default() -> Self {
        SpecialConfig::kepler_best()
    }
}

impl std::fmt::Display for SpecialConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "special W={} H={} n={}",
            self.width, self.height, self.vec_width
        )
    }
}

/// Configuration of the general-case kernel (paper section 4, Table 1).
///
/// A thread block covers `f_tb` filters and one `width x height` output
/// tile across **all** input channels, staging `c_sh` channels of image
/// tiles plus filters in shared memory; each thread computes `w_t`
/// contiguous output pixels for `f_t` filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeneralConfig {
    /// Output tile width (`W`).
    pub width: usize,
    /// Output tile height (`H`).
    pub height: usize,
    /// Filters per thread block (`F_TB`).
    pub f_tb: usize,
    /// Contiguous output pixels per thread (`W_T`).
    pub w_t: usize,
    /// Filters per thread (`F_T`).
    pub f_t: usize,
    /// Channels staged in shared memory per step (`C_SH`).
    pub c_sh: usize,
    /// Shared-memory access width in `f32` elements (`n`; 2 on Kepler).
    pub vec_width: usize,
}

/// Shared-memory padding (in `f32` elements) added to the transposed filter
/// tile's pitch so its strided stores are conflict-free.
pub const FLT_PAD: usize = 2;

impl GeneralConfig {
    /// Paper Table 1, 3x3 filters: `W=32 H=4 F_TB=64 W_T=16 F_T=4 C_SH=2`.
    pub fn table1_3x3() -> Self {
        GeneralConfig {
            width: 32,
            height: 4,
            f_tb: 64,
            w_t: 16,
            f_t: 4,
            c_sh: 2,
            vec_width: 2,
        }
    }

    /// Paper Table 1, 5x5 filters: `W=32 H=8 F_TB=32 W_T=8 F_T=8 C_SH=1`.
    pub fn table1_5x5() -> Self {
        GeneralConfig {
            width: 32,
            height: 8,
            f_tb: 32,
            w_t: 8,
            f_t: 8,
            c_sh: 1,
            vec_width: 2,
        }
    }

    /// Paper Table 1, 7x7 filters: `W=64 H=4 F_TB=32 W_T=8 F_T=8 C_SH=1`.
    pub fn table1_7x7() -> Self {
        GeneralConfig {
            width: 64,
            height: 4,
            f_tb: 32,
            w_t: 8,
            f_t: 8,
            c_sh: 1,
            vec_width: 2,
        }
    }

    /// The paper's best configuration for filter size `k` (Table 1);
    /// the 3x3 entry is used for other sizes as a fallback.
    pub fn table1(k: usize) -> Self {
        match k {
            5 => GeneralConfig::table1_5x5(),
            7 => GeneralConfig::table1_7x7(),
            _ => GeneralConfig::table1_3x3(),
        }
    }

    /// The Table 1 configuration for filter size `k` with the vector factor
    /// re-derived for `spec` from eq. 1 in reverse
    /// ([`KernelShape::derive_n`](crate::KernelShape::derive_n)): `n = 2`
    /// on 8-byte-bank Kepler reproduces Table 1 exactly; 4-byte-bank parts
    /// get the scalar (`n = 1`) matched layout.
    pub fn matched_for(spec: &GpuSpec, k: usize) -> Self {
        GeneralConfig {
            vec_width: crate::KernelShape::derive_n(spec, crate::DataType::F32),
            ..GeneralConfig::table1(k)
        }
    }

    /// Adapts the Table 1 configuration for filter size `k` to a problem
    /// with `channels` input channels and `filters` output maps, relaxing
    /// `C_SH` and `F_TB` until the kernel's divisibility requirements hold.
    /// Returns `None` when no adaptation validates (callers fall back to a
    /// GEMM baseline).
    ///
    /// # Examples
    ///
    /// ```
    /// use kconv_core::GeneralConfig;
    /// use kconv_sim::GpuSpec;
    /// let spec = GpuSpec::kepler_k40m();
    /// // AlexNet conv2: C = 96 is not divisible by the 3x3 preset's
    /// // C_SH = 2? It is - but C = 3 (an RGB first layer) is not.
    /// let cfg = GeneralConfig::for_problem(&spec, 3, 3, 64).unwrap();
    /// assert_eq!(cfg.c_sh, 1);
    /// ```
    pub fn for_problem(
        spec: &GpuSpec,
        k: usize,
        channels: usize,
        filters: usize,
    ) -> Option<GeneralConfig> {
        let base = GeneralConfig::table1(k);
        let c_sh = if channels.is_multiple_of(base.c_sh) {
            base.c_sh
        } else {
            1
        };
        for f_tb in [base.f_tb, 64, 32, 16, 8, 4] {
            if !filters.is_multiple_of(f_tb) {
                continue;
            }
            let mut f_t = base.f_t.min(f_tb);
            while f_t >= 2 && (f_tb % f_t != 0) {
                f_t /= 2;
            }
            let cfg = GeneralConfig {
                f_tb,
                f_t,
                c_sh,
                ..base
            };
            if cfg.validate(spec, k).is_ok()
                && filters.is_multiple_of(cfg.f_tb)
                && channels.is_multiple_of(cfg.c_sh)
            {
                return Some(cfg);
            }
        }
        None
    }

    /// Threads along the filter dimension (`T_X = F_TB / F_T`).
    pub fn threads_x(&self) -> usize {
        self.f_tb / self.f_t
    }

    /// Threads along the pixel dimension (`T_Y = W*H / W_T`).
    pub fn threads_y(&self) -> usize {
        self.width * self.height / self.w_t
    }

    /// Total threads per block.
    pub fn threads(&self) -> usize {
        self.threads_x() * self.threads_y()
    }

    /// Image-tile row pitch in `f32` elements for filter size `k` (covers
    /// aligned vector window loads, aligned to `vec_width`).
    pub fn img_pitch(&self, k: usize) -> usize {
        let n = self.vec_width;
        let window = round_up(self.w_t + k - 1, n);
        round_up((self.width + k - 1).max(self.width - self.w_t + window), n)
    }

    /// Filter-tile pitch in `f32` elements (`F_TB` plus conflict padding).
    pub fn flt_pitch(&self) -> usize {
        round_up(self.f_tb + FLT_PAD, self.vec_width)
    }

    /// Shared-memory bytes per block for filter size `k`:
    /// `C_SH` channels of image tile plus `C_SH` channels of transposed,
    /// padded filters.
    pub fn smem_bytes(&self, k: usize) -> u32 {
        let img = self.c_sh * (self.height + k - 1) * self.img_pitch(k);
        let flt = self.c_sh * k * k * self.flt_pitch();
        ((img + flt) * 4) as u32
    }

    /// Per-thread register estimate: the `F_T x W_T` accumulator block, the
    /// `W_T + K - 1` image row, `F_T` filter values and ~16 for addresses.
    pub fn regs_per_thread(&self, k: usize) -> u32 {
        (self.f_t * self.w_t + round_up(self.w_t + k - 1, self.vec_width) + self.f_t + 16) as u32
    }

    /// Validates the configuration against `spec` for filter size `k`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, spec: &GpuSpec, k: usize) -> Result<(), String> {
        let n = self.vec_width;
        if n == 0 || self.width == 0 || self.height == 0 {
            return Err("all dimensions must be positive".into());
        }
        if !self.f_tb.is_multiple_of(self.f_t) {
            return Err(format!(
                "F_TB {} not divisible by F_T {}",
                self.f_tb, self.f_t
            ));
        }
        if !self.width.is_multiple_of(self.w_t) {
            return Err(format!(
                "W {} not divisible by W_T {}",
                self.width, self.w_t
            ));
        }
        if !(self.width * self.height).is_multiple_of(self.w_t) {
            return Err("tile pixels not divisible by W_T".into());
        }
        if !self.w_t.is_multiple_of(n) || !self.f_t.is_multiple_of(n) {
            return Err(format!("W_T and F_T must be divisible by vec_width {n}"));
        }
        let threads = self.threads();
        if threads == 0 || threads > 1024 {
            return Err(format!("{threads} threads per block is not launchable"));
        }
        if self.smem_bytes(k) > spec.max_smem_per_block {
            return Err(format!(
                "{} B of shared memory exceeds the per-block limit",
                self.smem_bytes(k)
            ));
        }
        if u64::from(self.regs_per_thread(k)) * threads as u64 > u64::from(spec.regs_per_sm) {
            return Err("register demand exceeds the SM file".into());
        }
        Ok(())
    }
}

impl Default for GeneralConfig {
    fn default() -> Self {
        GeneralConfig::table1_3x3()
    }
}

impl std::fmt::Display for GeneralConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "general W={} H={} F_TB={} W_T={} F_T={} C_SH={} n={}",
            self.width, self.height, self.f_tb, self.w_t, self.f_t, self.c_sh, self.vec_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_presets_validate() {
        let spec = GpuSpec::kepler_k40m();
        for k in [1, 3, 5, 7] {
            SpecialConfig::kepler_best().validate(&spec, k, 64).unwrap();
            SpecialConfig::kepler_unmatched()
                .validate(&spec, k, 64)
                .unwrap();
        }
    }

    #[test]
    fn special_threads_and_pitch() {
        let c = SpecialConfig::kepler_best();
        assert_eq!(c.threads(), 128);
        // K=3, n=2: pitch = W + K - 1 (already aligned-compatible) = 258.
        assert_eq!(c.smem_pitch(3), 258);
        // K=1: window rounds to 2, pitch = W = 256.
        assert_eq!(c.smem_pitch(1), 256);
        // n=4, K=3: window 6 -> 8, pitch = 256 - 4 + 8 = 260.
        let c4 = SpecialConfig { vec_width: 4, ..c };
        assert_eq!(c4.smem_pitch(3), 260);
    }

    #[test]
    fn special_rejects_bad_configs() {
        let spec = GpuSpec::kepler_k40m();
        let mut c = SpecialConfig::kepler_best();
        c.width = 255; // not divisible by n=2
        assert!(c.validate(&spec, 3, 8).is_err());
        let mut c = SpecialConfig::kepler_best();
        c.width = 4096; // 2048 threads
        assert!(c.validate(&spec, 3, 8).is_err());
        // Too many filters for constant memory.
        let c = SpecialConfig::kepler_best();
        assert!(c.validate(&spec, 7, 1024).is_err());
        assert!(c.validate(&spec, 7, 64).is_ok());
    }

    #[test]
    fn general_presets_validate() {
        let spec = GpuSpec::kepler_k40m();
        GeneralConfig::table1_3x3().validate(&spec, 3).unwrap();
        GeneralConfig::table1_5x5().validate(&spec, 5).unwrap();
        GeneralConfig::table1_7x7().validate(&spec, 7).unwrap();
    }

    #[test]
    fn general_thread_layout_matches_paper() {
        // 3x3: T_X = 64/4 = 16, T_Y = 32*4/16 = 8 -> 128 threads.
        let c = GeneralConfig::table1_3x3();
        assert_eq!((c.threads_x(), c.threads_y(), c.threads()), (16, 8, 128));
        // 5x5: T_X = 4, T_Y = 32 -> 128 threads.
        let c = GeneralConfig::table1_5x5();
        assert_eq!((c.threads_x(), c.threads_y(), c.threads()), (4, 32, 128));
        // 7x7: T_X = 4, T_Y = 32 -> 128 threads.
        let c = GeneralConfig::table1_7x7();
        assert_eq!((c.threads_x(), c.threads_y(), c.threads()), (4, 32, 128));
    }

    #[test]
    fn table1_lookup() {
        assert_eq!(GeneralConfig::table1(5), GeneralConfig::table1_5x5());
        assert_eq!(GeneralConfig::table1(7), GeneralConfig::table1_7x7());
        assert_eq!(GeneralConfig::table1(3), GeneralConfig::table1_3x3());
        assert_eq!(GeneralConfig::table1(9), GeneralConfig::table1_3x3());
    }

    #[test]
    fn general_rejects_bad_configs() {
        let spec = GpuSpec::kepler_k40m();
        let mut c = GeneralConfig::table1_3x3();
        c.f_t = 3; // not divisible by n, and F_TB % F_T != 0
        assert!(c.validate(&spec, 3).is_err());
        let mut c = GeneralConfig::table1_3x3();
        c.w_t = 5;
        assert!(c.validate(&spec, 3).is_err());
        let mut c = GeneralConfig::table1_3x3();
        c.c_sh = 32; // smem blowup
        assert!(c.validate(&spec, 3).is_err());
    }

    #[test]
    fn flt_pitch_is_padded_and_aligned() {
        let c = GeneralConfig::table1_3x3();
        assert_eq!(c.flt_pitch(), 66);
        let c5 = GeneralConfig::table1_5x5();
        assert_eq!(c5.flt_pitch(), 34);
    }

    #[test]
    fn for_problem_adapts_divisibility() {
        let spec = GpuSpec::kepler_k40m();
        // Canonical shapes keep the preset.
        assert_eq!(
            GeneralConfig::for_problem(&spec, 3, 64, 64),
            Some(GeneralConfig::table1_3x3())
        );
        // RGB input: C_SH drops to 1.
        let cfg = GeneralConfig::for_problem(&spec, 3, 3, 64).unwrap();
        assert_eq!(cfg.c_sh, 1);
        // F = 48: F_TB relaxes to 16.
        let cfg = GeneralConfig::for_problem(&spec, 5, 64, 48).unwrap();
        assert_eq!(48 % cfg.f_tb, 0);
        cfg.validate(&spec, 5).unwrap();
        // A prime filter count cannot be tiled.
        assert_eq!(GeneralConfig::for_problem(&spec, 3, 64, 7), None);
    }

    #[test]
    fn displays() {
        assert!(SpecialConfig::kepler_best().to_string().contains("W=256"));
        assert!(GeneralConfig::table1_5x5().to_string().contains("C_SH=1"));
    }

    #[test]
    fn defaults_are_presets() {
        assert_eq!(SpecialConfig::default(), SpecialConfig::kepler_best());
        assert_eq!(GeneralConfig::default(), GeneralConfig::table1_3x3());
    }

    #[test]
    fn matched_for_derives_n_from_bank_width() {
        // On the paper's machine the derived configs ARE the hand-tuned ones.
        let kepler = GpuSpec::kepler_k40m();
        assert_eq!(
            SpecialConfig::matched_for(&kepler),
            SpecialConfig::kepler_best()
        );
        assert_eq!(
            GeneralConfig::matched_for(&kepler, 3),
            GeneralConfig::table1_3x3()
        );
        // 4-byte banks drop to the scalar matched layout; everything else
        // keeps the Table 1 tiling, and the result still validates.
        for spec in [GpuSpec::maxwell_like(), GpuSpec::fermi_m2090()] {
            let s = SpecialConfig::matched_for(&spec);
            assert_eq!(s.vec_width, 1);
            s.validate(&spec, 3, 64).unwrap();
            for k in [3, 5, 7] {
                let g = GeneralConfig::matched_for(&spec, k);
                assert_eq!(g.vec_width, 1);
                g.validate(&spec, k).unwrap();
            }
        }
    }
}

//! Error type for the convolution kernels.

use kconv_sim::SimError;

/// Errors reported by the convolution kernels and baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// The simulator rejected an allocation, transfer or launch.
    Sim(SimError),
    /// A kernel configuration violates its internal constraints.
    Config(String),
    /// The problem shape is incompatible with the kernel or configuration.
    Shape(String),
}

impl std::fmt::Display for ConvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvError::Sim(e) => write!(f, "simulator error: {e}"),
            ConvError::Config(msg) => write!(f, "invalid kernel configuration: {msg}"),
            ConvError::Shape(msg) => write!(f, "incompatible problem shape: {msg}"),
        }
    }
}

impl std::error::Error for ConvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ConvError {
    fn from(e: SimError) -> Self {
        ConvError::Sim(e)
    }
}

/// How a retrying layer (a fallback chain, or a serving engine's retry
/// policy) should treat a [`ConvError`]. Every variant is classified by
/// an exhaustive match in [`ConvError::retry_class`] so adding a variant
/// forces a decision here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryClass {
    /// The failure is tied to this particular execution, not the
    /// (engine, problem) pair: a contained device fault. Retrying the
    /// *same* engine can succeed.
    Transient,
    /// The engine deterministically rejects this problem or
    /// configuration. Retrying the same engine is futile; a *different*
    /// engine in a fallback chain may accept it.
    Fallback,
    /// A host-side error (failed allocation, invalid launch, internal
    /// invariant): the call itself is misused or the simulator is
    /// broken. Neither retrying nor falling back helps.
    Fatal,
}

impl RetryClass {
    /// Whether a fallback chain may absorb this failure and try the next
    /// engine ([`Transient`](RetryClass::Transient) or
    /// [`Fallback`](RetryClass::Fallback)).
    pub fn recoverable(self) -> bool {
        !matches!(self, RetryClass::Fatal)
    }
}

impl ConvError {
    /// Classifies this error for retrying layers. The match is exhaustive
    /// over both [`ConvError`] and [`SimError`] variants on purpose: a new
    /// variant fails to compile until someone decides its class.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            ConvError::Sim(sim) => match sim {
                SimError::KernelFault(_) => RetryClass::Transient,
                SimError::AllocTooLarge { .. }
                | SimError::InvalidLaunch(_)
                | SimError::HostTransferOutOfBounds { .. }
                | SimError::Internal(_) => RetryClass::Fatal,
            },
            ConvError::Config(_) | ConvError::Shape(_) => RetryClass::Fallback,
        }
    }
}

/// Convenience alias for kernel results.
pub type Result<T> = std::result::Result<T, ConvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ConvError::from(SimError::InvalidLaunch("x".into()));
        assert!(e.to_string().contains("simulator"));
        assert!(e.source().is_some());
        let e = ConvError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e = ConvError::Shape("odd".into());
        assert!(e.to_string().contains("odd"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ConvError>();
    }
}

//! Error type for the convolution kernels.

use kconv_sim::SimError;

/// Errors reported by the convolution kernels and baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// The simulator rejected an allocation, transfer or launch.
    Sim(SimError),
    /// A kernel configuration violates its internal constraints.
    Config(String),
    /// The problem shape is incompatible with the kernel or configuration.
    Shape(String),
}

impl std::fmt::Display for ConvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvError::Sim(e) => write!(f, "simulator error: {e}"),
            ConvError::Config(msg) => write!(f, "invalid kernel configuration: {msg}"),
            ConvError::Shape(msg) => write!(f, "incompatible problem shape: {msg}"),
        }
    }
}

impl std::error::Error for ConvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ConvError {
    fn from(e: SimError) -> Self {
        ConvError::Sim(e)
    }
}

/// Convenience alias for kernel results.
pub type Result<T> = std::result::Result<T, ConvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ConvError::from(SimError::InvalidLaunch("x".into()));
        assert!(e.to_string().contains("simulator"));
        assert!(e.source().is_some());
        let e = ConvError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e = ConvError::Shape("odd".into());
        assert!(e.to_string().contains("odd"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ConvError>();
    }
}

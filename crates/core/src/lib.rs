//! # kconv-core — memory-efficient GPU convolution kernels
//!
//! A faithful reimplementation, on the [`kconv_sim`] Kepler-class
//! simulator, of *"Optimizing Memory Efficiency for Convolution Kernels on
//! Kepler GPUs"* (Chen, Chen, Chen, Hu — DAC 2017):
//!
//! * [`SpecialConv`] — the **communication-optimized special-case kernel**
//!   (one input channel, paper section 3 / Algorithm 1): filters in
//!   constant memory, rows streamed through shared memory with register
//!   prefetch, `n`-pixel vectorized accesses matching the bank width, and
//!   each tile pixel read from global memory exactly once.
//! * [`GeneralConv`] — the **communication-reduced general-case kernel**
//!   (paper section 4 / Algorithm 2): blocked-GEMM thread structure with
//!   contiguous outputs per thread, shared-memory staging of `C_SH`
//!   channels and transposed padded filters, and `F_T x W_T` register
//!   accumulators. The paper's Table 1 configurations ship as presets
//!   ([`GeneralConfig::table1`]); the exploration that produced them is in
//!   [`tune`].
//! * [`ImplicitGemmConv`] — the **cuDNN-like baseline** (implicit GEMM with
//!   on-the-fly `im2col` staging), and [`ExplicitGemmConv`] — the
//!   Caffe-like explicit `im2col` + SGEMM baseline.
//! * [`model`] — the paper's closed-form traffic model, cross-checked
//!   against simulator counters in tests.
//! * [`BandwidthProbe`] — the section-6 short-data-type extension:
//!   `fp16`/`int8` reintroduce the bank-width mismatch even on 4-byte-bank
//!   architectures.
//!
//! All implementations share the [`Convolution`] trait and validate their
//! outputs against the CPU reference ([`conv_reference`]).
//!
//! ## Quickstart
//!
//! ```
//! use kconv_core::{Convolution, SpecialConv, ImplicitGemmConv};
//! use kconv_sim::{Gpu, GpuSpec, SimMode};
//! use kconv_tensor::{random_maps, random_filters, ConvProblem};
//!
//! # fn main() -> Result<(), kconv_core::ConvError> {
//! // A 3x3 edge-detector bank over a 256x256 grayscale image.
//! let problem = ConvProblem::special(256, 8, 3);
//! let input = random_maps(1, 256, 256, 1);
//! let filters = random_filters(8, 1, 3, 2);
//!
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let ours = SpecialConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
//! let cudnn = ImplicitGemmConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
//!
//! // Same numbers...
//! ours.verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL).unwrap();
//! cudnn.verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL).unwrap();
//! // ...far less modeled time (the paper reports 5.16x on average).
//! assert!(ours.report.seconds() < cudnn.report.seconds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod config;
mod dtype;
mod error;
mod explicit_gemm;
mod general;
mod implicit_gemm;
pub mod model;
mod naive;
mod reference;
mod run;
mod shape;
mod special;
mod special_narrow;
pub mod tune;
pub mod winograd;

pub use batch::{run_batch, BatchRun};
pub use config::{GeneralConfig, SpecialConfig, FLT_PAD};
pub use dtype::{BandwidthProbe, DataType, ProbeResult};
pub use error::{ConvError, Result, RetryClass};
pub use explicit_gemm::ExplicitGemmConv;
pub use general::{GeneralConv, GeneralConvStrided};
pub use implicit_gemm::{ImplicitGemmConfig, ImplicitGemmConv};
pub use naive::NaiveConv;
pub use reference::{conv_reference, conv_reference_region, OutRegion};
pub use run::{run_verified, run_with_fallback, ConvRun, Convolution, FaultRecord};
pub use shape::KernelShape;
pub use special::{FusedBatchRun, SpecialConv, MAX_K};
pub use special_narrow::{
    i8_input_scale, i8_output_scale, quantize_filters_f16, quantize_maps, quantize_maps_f16,
    Encoding, SpecialConvF16, SpecialConvHalf2, SpecialConvI8, F16_TOL, I8_TOL,
};

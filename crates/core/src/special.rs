//! The communication-optimized special-case kernel (paper section 3).
//!
//! For single-channel input (`C = 1`) — the first layer of CNNs on
//! grayscale images and most classic image-processing workloads — the
//! filters fit in constant memory and every pixel a convolution needs can
//! live in registers. The kernel is built so that
//!
//! * each input pixel of a tile is read from global memory **exactly
//!   once** (the theoretical lower bound, up to tile halos);
//! * the shared memory provides *horizontal* (inter-thread) data sharing,
//!   one streamed row at a time, while a `K x (K + n - 1)` register window
//!   per thread provides *vertical* (intra-thread) sharing;
//! * every thread reads, computes and writes `n = W_SMB / W_CD` pixels as a
//!   single unit, matching the computation data width to the shared-memory
//!   bank width (`float2` on Kepler — [`SpecialConfig::vec_width`] = 2);
//! * all warps read each filter tap from constant memory at the same
//!   uniform address (the broadcast fast path), and the next image row is
//!   prefetched into registers while the current row is convolved
//!   (Algorithm 1 of the paper).
//!
//! Setting `vec_width = 1` yields the *unmatched* kernel of the paper's
//! Fig. 7b ablation.

use kconv_sim::{
    lane_addrs_from, lane_addrs_uniform, BlockCtx, GmBuf, Gpu, LaneMask, LaunchConfig, OverlapMode,
    SimMode, WARP_SIZE,
};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::config::{round_up, SpecialConfig};
use crate::dtype::DataType;
use crate::error::{ConvError, Result};
use crate::run::{executed_tile_regions, ConvRun, Convolution};
use crate::shape::KernelShape;

/// The special-case (`C = 1`) direct convolution kernel.
///
/// # Examples
///
/// ```
/// use kconv_core::{SpecialConv, Convolution};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::special(64, 4, 3);
/// let input = random_maps(1, 64, 64, 7);
/// let filters = random_filters(4, 1, 3, 8);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = SpecialConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// assert!(run
///     .verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL)
///     .is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecialConv {
    /// Tiling and vector-width configuration.
    pub config: SpecialConfig,
}

impl SpecialConv {
    /// Creates the kernel with the given configuration.
    pub fn new(config: SpecialConfig) -> Self {
        SpecialConv { config }
    }
}

/// Result of a fused-batch launch of the special kernel: all images in a
/// single grid of `batch x tiles` blocks.
#[derive(Debug, Clone)]
pub struct FusedBatchRun {
    /// Per-image outputs, in input order.
    pub outputs: Vec<FeatureMaps>,
    /// The single launch's counters and timing.
    pub report: kconv_sim::LaunchReport,
    /// Executed `(image, region)` pairs (clipped to the output).
    pub executed: Vec<(usize, crate::OutRegion)>,
}

impl FusedBatchRun {
    /// Validates every executed region of every image against the CPU
    /// reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching element.
    pub fn verify_executed(
        &self,
        problem: &ConvProblem,
        inputs: &[FeatureMaps],
        filters: &FilterSet,
        tol: f32,
    ) -> std::result::Result<(), String> {
        for &(img, region) in &self.executed {
            let want =
                crate::reference::conv_reference_region(problem, &inputs[img], filters, region);
            for f in 0..region.nf {
                for y in 0..region.h {
                    for x in 0..region.w {
                        let got =
                            self.outputs[img].get(region.f0 + f, region.y0 + y, region.x0 + x);
                        let e = kconv_tensor::combined_error(got, want.get(f, y, x));
                        if e > tol {
                            return Err(format!(
                                "image {img}, filter {}, output ({}, {}): got {got} want {} (error {e:.2e})",
                                region.f0 + f,
                                region.y0 + y,
                                region.x0 + x,
                                want.get(f, y, x)
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl SpecialConv {
    /// Runs a whole batch in **one launch**: the grid is `batch x tiles`
    /// blocks, so small images still fill the machine and the per-launch
    /// overhead is paid once (compare [`run_batch`](crate::run_batch),
    /// which launches per image).
    ///
    /// # Errors
    ///
    /// As [`Convolution::run`], plus [`ConvError::Shape`] for an empty or
    /// shape-mismatched batch.
    pub fn run_fused_batch(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        inputs: &[FeatureMaps],
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<FusedBatchRun> {
        if inputs.is_empty() {
            return Err(ConvError::Shape("empty batch".into()));
        }
        if problem.channels != 1 || problem.stride != 1 {
            return Err(ConvError::Shape(
                "fused batch requires the special case (C = 1, stride 1)".into(),
            ));
        }
        crate::run::require_dense(problem)?;
        for (i, input) in inputs.iter().enumerate() {
            if !problem.matches(input, filters) {
                return Err(ConvError::Shape(format!(
                    "batch image {i} does not match {problem}"
                )));
            }
        }
        let cfg = &self.config;
        cfg.validate(gpu.spec(), problem.k, problem.filters)
            .map_err(ConvError::Config)?;
        match cfg.vec_width {
            1 => run_fused::<1>(gpu, cfg, problem, inputs, filters, mode),
            2 => run_fused::<2>(gpu, cfg, problem, inputs, filters, mode),
            4 => run_fused::<4>(gpu, cfg, problem, inputs, filters, mode),
            n => Err(ConvError::Config(format!("unsupported vec_width {n}"))),
        }
    }
}

fn run_fused<const N: usize>(
    gpu: &mut Gpu,
    cfg: &SpecialConfig,
    problem: &ConvProblem,
    inputs: &[FeatureMaps],
    filters: &FilterSet,
    mode: SimMode,
) -> Result<FusedBatchRun> {
    let k = problem.k;
    let batch = inputs.len();
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let tiles_x = ow.div_ceil(cfg.width);
    let tiles_y = oh.div_ceil(cfg.height);
    let tiles = tiles_x * tiles_y;
    let row_len = cfg.width + k - 1;
    let in_pitch =
        (tiles_x * cfg.width + k - 1).max((tiles_x - 1) * cfg.width + round_up(row_len, N));
    let in_rows = tiles_y * cfg.height + k - 1;
    let out_pitch = tiles_x * cfg.width;
    let out_rows = tiles_y * cfg.height;

    // One allocation per tensor with per-image slots (256-byte aligned so
    // vectorized accesses stay aligned in every slot).
    let in_slot = round_up(in_rows * in_pitch * 4, 256);
    let out_slot = round_up(problem.filters * out_rows * out_pitch * 4, 256);
    let d_in_all = gpu.alloc_bytes((batch * in_slot) as u64)?;
    let d_out_all = gpu.alloc_bytes((batch * out_slot) as u64)?;
    for (i, input) in inputs.iter().enumerate() {
        let padded = input.channel(0).padded_to(in_rows, in_pitch);
        let view = d_in_all.subbuffer((i * in_slot) as u64, (in_rows * in_pitch * 4) as u64);
        gpu.upload_f32(view, padded.as_slice())?;
    }
    gpu.write_const_f32(0, filters.as_slice())?;

    let geom = Geom {
        k,
        f: problem.filters,
        tiles_x,
        tile_w: cfg.width,
        tile_h: cfg.height,
        in_pitch,
        out_pitch,
        out_rows,
        sm_pitch: cfg.smem_pitch(k),
        row_len,
        shape: KernelShape {
            dtype: DataType::F32,
            vec_width: cfg.vec_width,
        },
    };

    let launch = LaunchConfig::new(
        format!("special-batch{batch} K={k} n={N}"),
        batch * tiles,
        cfg.threads(),
    )
    .with_smem(cfg.smem_bytes(k))
    .with_regs(cfg.regs_per_thread(k))
    .with_overlap(OverlapMode::Prefetch);

    let report = gpu.launch(&launch, mode, |blk| {
        let img = blk.dims.block_id / tiles;
        let tile = blk.dims.block_id % tiles;
        let d_in = d_in_all.subbuffer((img * in_slot) as u64, (in_rows * in_pitch * 4) as u64);
        let d_out = d_out_all.subbuffer(
            (img * out_slot) as u64,
            (problem.filters * out_rows * out_pitch * 4) as u64,
        );
        // Rewrite the block id so the tile decoding inside the kernel body
        // sees a per-image grid.
        let mut dims = blk.dims;
        dims.block_id = tile;
        let saved = std::mem::replace(&mut blk.dims, dims);
        special_block::<N>(blk, &geom, d_in, d_out);
        blk.dims = saved;
    })?;

    // Collect outputs and executed regions per image.
    let mut outputs = Vec::with_capacity(batch);
    for i in 0..batch {
        let view = d_out_all.subbuffer(
            (i * out_slot) as u64,
            (problem.filters * out_rows * out_pitch * 4) as u64,
        );
        let flat = gpu.download_f32(view)?;
        let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
        let dst = output.as_mut_slice();
        for f in 0..problem.filters {
            for y in 0..oh {
                let src = (f * out_rows + y) * out_pitch;
                dst[(f * oh + y) * ow..(f * oh + y) * ow + ow]
                    .copy_from_slice(&flat[src..src + ow]);
            }
        }
        outputs.push(output);
    }
    let mut executed = Vec::new();
    for &b in &report.executed_blocks {
        let img = b / tiles;
        let tile = b % tiles;
        let ty = tile / tiles_x;
        let tx = tile % tiles_x;
        if let Some(r) = (crate::OutRegion {
            f0: 0,
            nf: problem.filters,
            y0: ty * cfg.height,
            x0: tx * cfg.width,
            h: cfg.height,
            w: cfg.width,
        })
        .clipped(problem)
        {
            executed.push((img, r));
        }
    }
    Ok(FusedBatchRun {
        outputs,
        report,
        executed,
    })
}

impl Convolution for SpecialConv {
    fn name(&self) -> String {
        let which = if self.config.vec_width > 1 {
            "matched"
        } else {
            "unmatched"
        };
        format!("special ({which}, n={})", self.config.vec_width)
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        if problem.channels != 1 {
            return Err(ConvError::Shape(format!(
                "special-case kernel requires C = 1, got C = {}",
                problem.channels
            )));
        }
        if problem.stride != 1 {
            return Err(ConvError::Shape(format!(
                "the paper's direct kernels are stride-1 only, got S = {} \
                 (use a GEMM baseline for strided problems)",
                problem.stride
            )));
        }
        crate::run::require_dense(problem)?;
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        self.config
            .validate(gpu.spec(), problem.k, problem.filters)
            .map_err(ConvError::Config)?;
        match self.config.vec_width {
            1 => run_special::<1>(gpu, &self.config, problem, input, filters, mode),
            2 => run_special::<2>(gpu, &self.config, problem, input, filters, mode),
            4 => run_special::<4>(gpu, &self.config, problem, input, filters, mode),
            n => Err(ConvError::Config(format!(
                "unsupported vec_width {n} (expected 1, 2 or 4)"
            ))),
        }
    }
}

/// Largest filter size the kernel supports (bounds its per-thread tap
/// buffer; 13x13 covers every filter the paper and the applications use).
pub const MAX_K: usize = 13;

/// Geometry shared by the setup code and the per-block closure. The
/// [`KernelShape`] is the generator-derived source of truth for the vector
/// factor and element width: every address, mask and pitch computed inside
/// the block body reads `shape` rather than a hard-wired constant, so the
/// same body serves the Kepler float2 layout, the 4-byte-bank scalar layout
/// and forced-`n` ablations.
struct Geom {
    k: usize,
    f: usize,
    tiles_x: usize,
    tile_w: usize,
    tile_h: usize,
    in_pitch: usize,
    out_pitch: usize,
    out_rows: usize,
    sm_pitch: usize,
    row_len: usize,
    shape: KernelShape,
}

fn run_special<const N: usize>(
    gpu: &mut Gpu,
    cfg: &SpecialConfig,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    mode: SimMode,
) -> Result<ConvRun> {
    let k = problem.k;
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let tiles_x = ow.div_ceil(cfg.width);
    let tiles_y = oh.div_ceil(cfg.height);
    // Row pitch: the tiled width plus halo, extended so the last tile's
    // full-vector tail loads stay inside the row (vectorized kernels load
    // whole vectors; the buffer provides the headroom, as on real CUDA).
    let row_len = cfg.width + k - 1;
    let in_pitch =
        (tiles_x * cfg.width + k - 1).max((tiles_x - 1) * cfg.width + round_up(row_len, N));
    let in_rows = tiles_y * cfg.height + k - 1;
    let out_pitch = tiles_x * cfg.width;
    let out_rows = tiles_y * cfg.height;

    // Device setup: padded image, padded output, filters in constant memory.
    let padded = input.channel(0).padded_to(in_rows, in_pitch);
    let d_in = gpu.alloc_f32((in_rows * in_pitch) as u64)?;
    gpu.upload_f32(d_in, padded.as_slice())?;
    let d_out = gpu.alloc_f32((problem.filters * out_rows * out_pitch) as u64)?;
    gpu.write_const_f32(0, filters.as_slice())?;

    let geom = Geom {
        k,
        f: problem.filters,
        tiles_x,
        tile_w: cfg.width,
        tile_h: cfg.height,
        in_pitch,
        out_pitch,
        out_rows,
        sm_pitch: cfg.smem_pitch(k),
        row_len,
        shape: KernelShape {
            dtype: DataType::F32,
            vec_width: cfg.vec_width,
        },
    };

    let launch = LaunchConfig::new(
        format!("special K={k} n={N}"),
        tiles_x * tiles_y,
        cfg.threads(),
    )
    .with_smem(cfg.smem_bytes(k))
    .with_regs(cfg.regs_per_thread(k))
    .with_overlap(OverlapMode::Prefetch);

    let report = gpu.launch(&launch, mode, |blk| {
        special_block::<N>(blk, &geom, d_in, d_out);
    })?;

    // Collect the output (zeros where tiles were not executed), row-wise.
    let flat = gpu.download_f32(d_out)?;
    let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
    let dst = output.as_mut_slice();
    for f in 0..problem.filters {
        for y in 0..oh {
            let src = (f * out_rows + y) * out_pitch;
            let at = (f * oh + y) * ow;
            dst[at..at + ow].copy_from_slice(&flat[src..src + ow]);
        }
    }
    let regions = executed_tile_regions(problem, &report, tiles_x, cfg.width, cfg.height, |b| {
        (b, 0, problem.filters)
    });
    Ok(ConvRun {
        output,
        report,
        executed_regions: regions,
        faults: Vec::new(),
    })
}

/// Algorithm 1 of the paper, executed by one thread block over one tile.
///
/// The vector factor `n` and the element width come from the geometry's
/// [`KernelShape`] at run time; the const parameter `N` only sizes the
/// per-lane value arrays the simulator's warp API requires and must agree
/// with the shape (the dispatchers guarantee it).
fn special_block<const N: usize>(blk: &mut BlockCtx<'_>, g: &Geom, d_in: GmBuf, d_out: GmBuf) {
    let k = g.k;
    let n = g.shape.vec_width;
    let eb = g.shape.elem_bytes();
    debug_assert_eq!(
        n, N,
        "shape vec_width must match the instantiated lane width"
    );
    let threads = blk.dims.threads;
    let bx = blk.dims.block_id % g.tiles_x;
    let by = blk.dims.block_id / g.tiles_x;
    let in_row0 = by * g.tile_h;
    let in_col0 = bx * g.tile_w;

    let win_w = round_up(k + n - 1, n);
    // Per-thread register window: K rows of the sliding K x (K+n-1) patch.
    let mut win = vec![0.0f32; threads * k * win_w];
    // Register staging for the prefetched row (the row content itself).
    let rounds = g.row_len.div_ceil(threads * n);
    let mut pf = vec![0.0f32; rounds * threads * n];

    // Reads one absolute tile row from global memory into `pf`.
    let gm_row_to_pf = |blk: &mut BlockCtx<'_>, pf: &mut [f32], row: usize| {
        for r in 0..rounds {
            blk.each_warp(|w| {
                let mask =
                    LaneMask::from_fn(|lane| (r * threads + w.thread_id(lane)) * n < g.row_len);
                let addrs = lane_addrs_from(|lane| {
                    let p = ((r * threads + w.thread_id(lane)) * n).min(g.row_len - 1);
                    d_in.f32_addr(((in_row0 + row) * g.in_pitch + in_col0 + p) as u64)
                });
                let vals = w.ld_global::<N>(&addrs, mask);
                for lane in mask.iter() {
                    let p = (r * threads + w.thread_id(lane)) * n;
                    pf[p..p + n].copy_from_slice(&vals[lane]);
                }
            });
        }
    };

    // Writes `pf` into shared-memory ring slot `slot`.
    let pf_to_smem = |blk: &mut BlockCtx<'_>, pf: &[f32], slot: usize| {
        for r in 0..rounds {
            blk.each_warp(|w| {
                let mask =
                    LaneMask::from_fn(|lane| (r * threads + w.thread_id(lane)) * n < g.row_len);
                let addrs = lane_addrs_from(|lane| {
                    let p = ((r * threads + w.thread_id(lane)) * n).min(g.row_len - 1);
                    ((slot * g.sm_pitch + p) * eb) as u64
                });
                let mut vals = [[0.0f32; N]; WARP_SIZE];
                for lane in mask.iter() {
                    let p = (r * threads + w.thread_id(lane)) * n;
                    vals[lane].copy_from_slice(&pf[p..p + n]);
                }
                w.st_shared::<N>(&addrs, &vals, mask);
            });
        }
    };

    // Loads shared-memory row `slot` into window row `wr` of every thread.
    let smem_to_window = |blk: &mut BlockCtx<'_>, win: &mut [f32], slot: usize, wr: usize| {
        for gv in 0..win_w / n {
            blk.each_warp(|w| {
                let addrs = lane_addrs_from(|lane| {
                    ((slot * g.sm_pitch + w.thread_id(lane) * n + gv * n) * eb) as u64
                });
                let vals = w.ld_shared::<N>(&addrs, LaneMask::ALL);
                for lane in w.population().iter() {
                    let t = w.thread_id(lane);
                    let at = (t * k + wr) * win_w + gv * n;
                    win[at..at + n].copy_from_slice(&vals[lane]);
                }
            });
        }
    };

    // Lines 1-2: the first K rows go straight to shared memory.
    for row in 0..k {
        gm_row_to_pf(blk, &mut pf, row);
        pf_to_smem(blk, &pf, row % k);
    }
    blk.sync();
    // Line 3: rows 0..K-1 into the register windows.
    for wr in 0..k - 1 {
        smem_to_window(blk, &mut win, wr % k, wr);
    }

    // Lines 4-11: stream the remaining rows.
    let total_rows = g.tile_h + k - 1;
    for k_row in (k - 1)..total_rows {
        // Line 5: prefetch the next row while this one is convolved.
        let next = k_row + 1;
        if next < total_rows {
            gm_row_to_pf(blk, &mut pf, next);
        }
        // Line 6: the latest row from shared memory into the window.
        smem_to_window(blk, &mut win, k_row % k, k - 1);

        // Lines 7-8: every filter, n convolutions per thread, written back.
        let out_row = k_row - (k - 1);
        for f in 0..g.f {
            blk.each_warp(|w| {
                // All lanes read each tap at the same address: the constant
                // memory broadcast fast path.
                let mut taps = [0.0f32; MAX_K * MAX_K];
                for i in 0..k {
                    for j in 0..k {
                        let addr = ((f * k * k + i * k + j) * 4) as u64;
                        let vals = w.ld_const(&lane_addrs_uniform(addr), LaneMask::ALL);
                        taps[i * k + j] = vals[0];
                    }
                }
                let pop = w.population();
                let mut acc = [[0.0f32; N]; WARP_SIZE];
                for lane in pop.iter() {
                    let t = w.thread_id(lane);
                    let base = t * k * win_w;
                    for (v, out) in acc[lane].iter_mut().enumerate().take(n) {
                        let mut s = 0.0f32;
                        for i in 0..k {
                            for j in 0..k {
                                s += win[base + i * win_w + j + v] * taps[i * k + j];
                            }
                        }
                        *out = s;
                    }
                }
                w.count_fma(pop.count() as u64 * (n * k * k) as u64);
                let addrs = lane_addrs_from(|lane| {
                    let t = w.thread_id(lane);
                    d_out.f32_addr(
                        ((f * g.out_rows + in_row0 + out_row) * g.out_pitch + in_col0 + t * n)
                            as u64,
                    )
                });
                w.st_global::<N>(&addrs, &acc, LaneMask::ALL);
            });
        }

        // Lines 9-11: commit the prefetched row to the ring slot it
        // replaces, then advance the window.
        blk.sync();
        if next < total_rows {
            pf_to_smem(blk, &pf, next % k);
        }
        blk.sync();
        for t in 0..threads {
            let base = t * k * win_w;
            for wr in 0..k - 1 {
                let (dst, src) = (base + wr * win_w, base + (wr + 1) * win_w);
                win.copy_within(src..src + win_w, dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn check(cfg: SpecialConfig, n: usize, f: usize, k: usize, mode: SimMode) -> ConvRun {
        let problem = ConvProblem::special(n, f, k);
        let input = random_maps(1, n, n, 11);
        let filters = random_filters(f, 1, k, 13);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, mode)
            .expect("launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("output mismatch");
        run
    }

    // Small tile configs keep Full-mode tests fast.
    fn small(vec_width: usize) -> SpecialConfig {
        SpecialConfig {
            width: 32,
            height: 4,
            vec_width,
        }
    }

    #[test]
    fn matched_3x3_exact_tiles() {
        // 66x66 input, K=3 -> 64x64 output = 2x2 tiles of 32x4... exact.
        let run = check(small(2), 66, 2, 3, SimMode::Full);
        assert_eq!(run.executed_regions.len(), (64 / 32) * (64 / 4));
    }

    #[test]
    fn matched_3x3_ragged_tiles() {
        // 50x50 input -> 48x48 output; 48 = 1.5 tiles wide: clipping path.
        check(small(2), 50, 2, 3, SimMode::Full);
    }

    #[test]
    fn matched_5x5() {
        check(small(2), 40, 3, 5, SimMode::Full);
    }

    #[test]
    fn matched_7x7() {
        check(small(2), 40, 2, 7, SimMode::Full);
    }

    #[test]
    fn matched_1x1() {
        check(small(2), 32, 4, 1, SimMode::Full);
    }

    #[test]
    fn unmatched_3x3() {
        check(small(1), 40, 2, 3, SimMode::Full);
    }

    #[test]
    fn vec4_3x3() {
        check(small(4), 40, 2, 3, SimMode::Full);
    }

    #[test]
    fn single_filter() {
        check(small(2), 40, 1, 3, SimMode::Full);
    }

    #[test]
    fn sampled_execution_verifies() {
        let run = check(small(2), 130, 2, 3, SimMode::Sampled(3));
        assert_eq!(run.executed_regions.len(), 3);
        assert!(run.report.stats.blocks_total > 3);
    }

    #[test]
    fn rejects_multichannel() {
        let problem = ConvProblem::general(32, 2, 2, 3);
        let input = random_maps(2, 32, 32, 1);
        let filters = random_filters(2, 2, 3, 2);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err = SpecialConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn rejects_strided_problems() {
        let problem = ConvProblem::special(32, 2, 3).with_stride(2);
        let input = random_maps(1, 32, 32, 1);
        let filters = random_filters(2, 1, 3, 2);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err = SpecialConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn rejects_mismatched_filters() {
        let problem = ConvProblem::special(32, 2, 3);
        let input = random_maps(1, 32, 32, 1);
        let filters = random_filters(2, 1, 5, 2); // wrong K
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err = SpecialConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn input_pixels_read_once() {
        // The communication-optimality claim: useful GM load bytes equal
        // the padded tile inputs — each pixel of each tile read exactly
        // once (halos excepted, counted per tile).
        let cfg = small(2);
        let problem = ConvProblem::special(66, 2, 3);
        let input = random_maps(1, 66, 66, 3);
        let filters = random_filters(2, 1, 3, 4);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        let tiles = (64 / 32) * (64 / 4);
        let per_tile = (cfg.width + 2) * (cfg.height + 2) * 4; // (W+K-1)(H+K-1)*4B
        assert_eq!(
            run.report.stats.gm_ld_bytes_useful,
            (tiles * per_tile) as u64
        );
    }

    #[test]
    fn fused_batch_is_correct_per_image() {
        let cfg = small(2);
        let problem = ConvProblem::special(40, 2, 3);
        let inputs: Vec<_> = (0..3).map(|i| random_maps(1, 40, 40, 500 + i)).collect();
        let filters = random_filters(2, 1, 3, 510);
        let mut gpu = Gpu::new(kconv_sim::GpuSpec::kepler_k40m());
        let run = SpecialConv::new(cfg)
            .run_fused_batch(&mut gpu, &problem, &inputs, &filters, SimMode::Full)
            .unwrap();
        assert_eq!(run.outputs.len(), 3);
        run.verify_executed(&problem, &inputs, &filters, kconv_tensor::CONV_TOL)
            .expect("fused batch mismatch");
        // Distinct inputs must give distinct outputs.
        assert_ne!(run.outputs[0].as_slice(), run.outputs[1].as_slice());
    }

    #[test]
    fn fused_batch_beats_per_image_launches_on_small_images() {
        // 8 small images: the fused grid fills all 15 SMs; per-image
        // launches leave most idle and pay 8 launch overheads.
        let cfg = SpecialConfig::kepler_best();
        let problem = ConvProblem::special(280, 8, 3);
        let inputs: Vec<_> = (0..8).map(|i| random_maps(1, 280, 280, 520 + i)).collect();
        let filters = random_filters(8, 1, 3, 530);
        let mut gpu = Gpu::new(kconv_sim::GpuSpec::kepler_k40m());
        let fused = SpecialConv::new(cfg)
            .run_fused_batch(&mut gpu, &problem, &inputs, &filters, SimMode::Sampled(4))
            .unwrap();
        let mut gpu = Gpu::new(kconv_sim::GpuSpec::kepler_k40m());
        let looped = crate::run_batch(
            &SpecialConv::new(cfg),
            &mut gpu,
            &problem,
            &inputs,
            &filters,
            SimMode::Sampled(4),
        )
        .unwrap();
        assert!(
            fused.report.seconds() < looped.total_seconds(),
            "fused {} vs looped {}",
            fused.report.seconds(),
            looped.total_seconds()
        );
    }

    #[test]
    fn fused_batch_validates_inputs() {
        let cfg = small(2);
        let problem = ConvProblem::special(40, 2, 3);
        let filters = random_filters(2, 1, 3, 1);
        let mut gpu = Gpu::new(kconv_sim::GpuSpec::kepler_k40m());
        let err =
            SpecialConv::new(cfg).run_fused_batch(&mut gpu, &problem, &[], &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
        let bad = vec![random_maps(1, 20, 20, 1)];
        let err = SpecialConv::new(cfg).run_fused_batch(
            &mut gpu,
            &problem,
            &bad,
            &filters,
            SimMode::Full,
        );
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn matched_beats_unmatched() {
        let t_matched = check(small(2), 66, 8, 3, SimMode::Full).report.seconds();
        let t_unmatched = check(small(1), 66, 8, 3, SimMode::Full).report.seconds();
        assert!(
            t_matched < t_unmatched,
            "matched {t_matched} vs unmatched {t_unmatched}"
        );
    }

    #[test]
    fn constant_memory_stays_on_broadcast_path() {
        let run = check(small(2), 40, 4, 3, SimMode::Full);
        // Every filter-tap read is warp-uniform: zero serialization cycles.
        assert!(run.report.stats.cm_requests > 0);
        assert_eq!(run.report.stats.cm_cycles, 0);
    }

    #[test]
    fn name_reflects_matching() {
        assert!(SpecialConv::default().name().contains("matched"));
        assert!(SpecialConv::new(SpecialConfig::kepler_unmatched())
            .name()
            .contains("unmatched"));
    }
}

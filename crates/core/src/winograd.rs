//! Winograd convolution F(2x2, 3x3) — the related-work comparison point.
//!
//! The paper's introduction weighs direct convolution against the Winograd
//! algorithm (its references [15, 16]): for 3x3 filters Winograd cuts the
//! multiplication count by 2.25x, "at the cost of increased memory usage
//! and filter size dependent specialized processing", and concludes direct
//! convolution is the general-purpose choice. This module substantiates
//! that discussion with a verified implementation and an arithmetic/memory
//! model:
//!
//! * [`winograd_conv_3x3`] — CPU F(2x2, 3x3) convolution, validated
//!   against the direct reference in tests;
//! * [`multiplication_counts`] — direct vs Winograd multiply counts
//!   (the 2.25x), and [`transformed_filter_bytes`] — the 16/9 filter
//!   memory blow-up;
//! * the `winograd_compare` harness in `kconv-bench` prints the trade-off
//!   for CNN-shaped problems.
//!
//! Only `K = 3` is supported — that *is* the related-work point: the
//! algorithm is filter-size-specialized where the paper's kernels are not.

// Matrix-style index loops mirror the transform definitions.
#![allow(clippy::needless_range_loop)]

use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};

/// Filter transform `G g G^T` for one 3x3 filter: returns the 4x4
/// transformed tile.
///
/// `G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]]`.
fn transform_filter(g: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    // Gg: 4x3.
    let mut gg = [[0.0f32; 3]; 4];
    for c in 0..3 {
        gg[0][c] = g[0][c];
        gg[1][c] = 0.5 * (g[0][c] + g[1][c] + g[2][c]);
        gg[2][c] = 0.5 * (g[0][c] - g[1][c] + g[2][c]);
        gg[3][c] = g[2][c];
    }
    // (Gg)G^T: 4x4.
    let mut out = [[0.0f32; 4]; 4];
    for r in 0..4 {
        out[r][0] = gg[r][0];
        out[r][1] = 0.5 * (gg[r][0] + gg[r][1] + gg[r][2]);
        out[r][2] = 0.5 * (gg[r][0] - gg[r][1] + gg[r][2]);
        out[r][3] = gg[r][2];
    }
    out
}

/// Input transform `B^T d B` for one 4x4 data tile.
///
/// `B^T = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]`.
fn transform_input(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    let mut bd = [[0.0f32; 4]; 4];
    for c in 0..4 {
        bd[0][c] = d[0][c] - d[2][c];
        bd[1][c] = d[1][c] + d[2][c];
        bd[2][c] = d[2][c] - d[1][c];
        bd[3][c] = d[1][c] - d[3][c];
    }
    let mut out = [[0.0f32; 4]; 4];
    for r in 0..4 {
        out[r][0] = bd[r][0] - bd[r][2];
        out[r][1] = bd[r][1] + bd[r][2];
        out[r][2] = bd[r][2] - bd[r][1];
        out[r][3] = bd[r][1] - bd[r][3];
    }
    out
}

/// Output transform `A^T m A` for one 4x4 elementwise-product tile:
/// returns the 2x2 output tile.
///
/// `A^T = [[1,1,1,0],[0,1,-1,-1]]`.
fn transform_output(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut am = [[0.0f32; 4]; 2];
    for c in 0..4 {
        am[0][c] = m[0][c] + m[1][c] + m[2][c];
        am[1][c] = m[1][c] - m[2][c] - m[3][c];
    }
    [
        [
            am[0][0] + am[0][1] + am[0][2],
            am[0][1] - am[0][2] - am[0][3],
        ],
        [
            am[1][0] + am[1][1] + am[1][2],
            am[1][1] - am[1][2] - am[1][3],
        ],
    ]
}

/// Winograd F(2x2, 3x3) "valid" convolution on the CPU.
///
/// Functionally identical to [`conv_reference`](crate::conv_reference) for
/// `K = 3` (up to fp rounding — the transforms reassociate heavily), with
/// 2.25x fewer multiplications.
///
/// # Errors
///
/// Returns [`ConvError::Shape`] unless `K == 3` and the shapes match.
pub fn winograd_conv_3x3(
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> Result<FeatureMaps> {
    if problem.k != 3 {
        return Err(ConvError::Shape(format!(
            "Winograd F(2x2, 3x3) requires K = 3, got K = {}",
            problem.k
        )));
    }
    crate::run::require_dense(problem)?;
    if !problem.matches(input, filters) {
        return Err(ConvError::Shape(format!(
            "input/filter shapes do not match {problem}"
        )));
    }
    let (oh, ow) = (problem.out_height(), problem.out_width());
    // Pad the output domain to 2x2 tiles; the input needs tile + halo.
    let th = oh.div_ceil(2);
    let tw = ow.div_ceil(2);
    let padded = input.padded_to(2 * th + 2, 2 * tw + 2);

    // Pre-transform every filter (the 16/9 memory increase).
    let mut u = vec![[[0.0f32; 4]; 4]; problem.filters * problem.channels];
    for f in 0..problem.filters {
        for c in 0..problem.channels {
            let mut g = [[0.0f32; 3]; 3];
            for i in 0..3 {
                for j in 0..3 {
                    g[i][j] = filters.get(f, c, i, j);
                }
            }
            u[f * problem.channels + c] = transform_filter(&g);
        }
    }

    let mut out = FeatureMaps::zeros(problem.filters, oh, ow);
    for ty in 0..th {
        for tx in 0..tw {
            // Transform the input tile once per channel, use for all F.
            let mut v = vec![[[0.0f32; 4]; 4]; problem.channels];
            for (c, vt) in v.iter_mut().enumerate() {
                let mut d = [[0.0f32; 4]; 4];
                for i in 0..4 {
                    for j in 0..4 {
                        d[i][j] = padded.get(c, 2 * ty + i, 2 * tx + j);
                    }
                }
                *vt = transform_input(&d);
            }
            for f in 0..problem.filters {
                // Elementwise products accumulated over channels: the
                // 16-multiplication core replacing 36 direct FMAs.
                let mut m = [[0.0f32; 4]; 4];
                for c in 0..problem.channels {
                    let uf = &u[f * problem.channels + c];
                    for i in 0..4 {
                        for j in 0..4 {
                            m[i][j] += uf[i][j] * v[c][i][j];
                        }
                    }
                }
                let y = transform_output(&m);
                for i in 0..2 {
                    for j in 0..2 {
                        let (oy, ox) = (2 * ty + i, 2 * tx + j);
                        if oy < oh && ox < ow {
                            out.set(f, oy, ox, y[i][j]);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Multiplications per output element: `(direct, winograd)` — the paper's
/// related-work arithmetic comparison. For `K = 3` the ratio is
/// `36 / 16 = 2.25` in the tile core (transform multiplies by constants
/// excluded, as in the literature).
pub fn multiplication_counts(problem: &ConvProblem) -> (u64, u64) {
    let tiles = (problem.out_height().div_ceil(2) * problem.out_width().div_ceil(2)) as u64;
    let per_tile_direct = 36u64; // 2x2 outputs x 9 taps
    let per_tile_wino = 16u64; // one elementwise 4x4 product
    let cf = (problem.channels * problem.filters) as u64;
    (tiles * cf * per_tile_direct, tiles * cf * per_tile_wino)
}

/// Bytes of filter storage: `(direct, winograd-transformed)` — the 16/9
/// increase the paper counts against the algorithm.
pub fn transformed_filter_bytes(problem: &ConvProblem) -> (u64, u64) {
    let cf = (problem.channels * problem.filters) as u64;
    (cf * 9 * 4, cf * 16 * 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv_reference;
    use kconv_tensor::{assert_close, random_filters, random_maps};

    #[test]
    fn matches_direct_reference_even_output() {
        let problem = ConvProblem::general(10, 2, 3, 3); // 8x8 output
        let input = random_maps(2, 10, 10, 91);
        let filters = random_filters(3, 2, 3, 93);
        let wino = winograd_conv_3x3(&problem, &input, &filters).unwrap();
        let direct = conv_reference(&problem, &input, &filters);
        assert_close(wino.as_slice(), direct.as_slice(), 1e-4, "winograd");
    }

    #[test]
    fn matches_direct_reference_odd_output() {
        let problem = ConvProblem::general(9, 1, 2, 3); // 7x7 output: ragged tiles
        let input = random_maps(1, 9, 9, 95);
        let filters = random_filters(2, 1, 3, 97);
        let wino = winograd_conv_3x3(&problem, &input, &filters).unwrap();
        let direct = conv_reference(&problem, &input, &filters);
        assert_close(wino.as_slice(), direct.as_slice(), 1e-4, "winograd odd");
    }

    #[test]
    fn identity_filter_passes_through() {
        let problem = ConvProblem::general(6, 1, 1, 3);
        let input = random_maps(1, 6, 6, 99);
        let mut filters = FilterSet::zeros(1, 1, 3);
        filters.set(0, 0, 1, 1, 1.0); // center tap
        let wino = winograd_conv_3x3(&problem, &input, &filters).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                let got = wino.get(0, y, x);
                let want = input.get(0, y + 1, x + 1);
                assert!((got - want).abs() < 1e-5, "({y},{x}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn rejects_non_3x3() {
        let problem = ConvProblem::general(10, 1, 1, 5);
        let input = random_maps(1, 10, 10, 1);
        let filters = random_filters(1, 1, 5, 2);
        assert!(matches!(
            winograd_conv_3x3(&problem, &input, &filters),
            Err(ConvError::Shape(_))
        ));
    }

    #[test]
    fn arithmetic_reduction_is_2_25x() {
        let problem = ConvProblem::general(66, 64, 64, 3);
        let (direct, wino) = multiplication_counts(&problem);
        assert!((direct as f64 / wino as f64 - 2.25).abs() < 1e-12);
    }

    #[test]
    fn filter_memory_grows_16_over_9() {
        let problem = ConvProblem::general(66, 8, 8, 3);
        let (direct, wino) = transformed_filter_bytes(&problem);
        assert_eq!(wino * 9, direct * 16);
    }

    #[test]
    fn filter_transform_of_ones() {
        // All-ones filter: G 1 G^T has known corners.
        let t = transform_filter(&[[1.0; 3]; 3]);
        assert_eq!(t[0][0], 1.0);
        assert_eq!(t[3][3], 1.0);
        assert_eq!(t[1][1], 2.25); // (3/2)^2
    }
}

//! Short-data-type extension (paper section 6).
//!
//! The paper's closing observation: with `fp16` or 8-bit fixed point, the
//! bank-width mismatch `n = W_SMB / W_CD` reappears even on 4-byte-bank
//! architectures (`n = 2` and `4` on Maxwell; `4` and `8` on Kepler). This
//! module provides a shared-memory bandwidth probe that demonstrates the
//! model: a kernel streams a buffer through shared memory accessing one
//! element per thread (*unmatched*) or one bank word per thread
//! (*matched*), and reports the measured fabric utilization, which equals
//! `W_CD / W_SMB` unmatched and 1 matched.

use kconv_sim::{lane_addrs, Gpu, LaneMask, LaunchConfig, OverlapMode, SimMode, WARP_SIZE};

use crate::error::Result;

/// Computation data types of the extension study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 4-byte single-precision float.
    F32,
    /// 2-byte half-precision float.
    F16,
    /// 1-byte fixed point.
    I8,
}

impl DataType {
    /// Width of the type in bytes (`W_CD`).
    pub fn bytes(self) -> usize {
        match self {
            DataType::F32 => 4,
            DataType::F16 => 2,
            DataType::I8 => 1,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::F32 => "f32",
            DataType::F16 => "fp16",
            DataType::I8 => "int8",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one bandwidth probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Useful bytes per shared-memory cycle over the fabric capacity.
    pub utilization: f64,
    /// The mismatch factor `n` the model predicts for this probe.
    pub predicted_n: u64,
}

/// A shared-memory bandwidth probe for one data type and access style.
///
/// # Examples
///
/// ```
/// use kconv_core::{BandwidthProbe, DataType};
/// use kconv_sim::{Gpu, GpuSpec};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let unmatched = BandwidthProbe::new(DataType::F16, false).run(&mut gpu)?;
/// let matched = BandwidthProbe::new(DataType::F16, true).run(&mut gpu)?;
/// // fp16 on 8-byte banks: n = 4 -> a quarter of the fabric unmatched.
/// assert!((unmatched.utilization - 0.25).abs() < 1e-9);
/// assert!((matched.utilization - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthProbe {
    /// The computation data type.
    pub dtype: DataType,
    /// Whether each thread accesses a full bank word (`true`) or a single
    /// element (`false`).
    pub matched: bool,
}

impl BandwidthProbe {
    /// Creates a probe.
    pub fn new(dtype: DataType, matched: bool) -> Self {
        BandwidthProbe { dtype, matched }
    }

    /// Bytes each lane moves per access under this probe on `gpu`.
    fn unit(&self, gpu: &Gpu) -> usize {
        if self.matched {
            gpu.spec().bank_width.bytes() as usize
        } else {
            self.dtype.bytes()
        }
    }

    /// Runs the probe: one block stores a test pattern into shared memory
    /// element-wise, then streams it back, and the fabric utilization is
    /// read off the counters. Data integrity is asserted on the way.
    ///
    /// # Errors
    ///
    /// Propagates simulator launch errors.
    pub fn run(&self, gpu: &mut Gpu) -> Result<ProbeResult> {
        let unit = self.unit(gpu);
        let rounds = 64usize;
        let threads = 256usize;
        let span = threads * unit; // bytes touched per sweep
        let cfg = LaunchConfig::new(
            format!(
                "smem probe {} {}",
                self.dtype,
                if self.matched { "matched" } else { "unmatched" }
            ),
            1,
            threads,
        )
        .with_smem(span as u32)
        .with_regs(16)
        .with_overlap(OverlapMode::Moderate);

        let predicted_n = gpu
            .spec()
            .bank_width
            .mismatch_factor(self.dtype.bytes() as u64);
        let report = gpu.launch(&cfg, SimMode::Full, |blk| {
            // Write the pattern once, then stream loads.
            blk.each_warp(|w| {
                let base = (w.warp_id() * WARP_SIZE * unit) as u64;
                let addrs = lane_addrs(base, unit as u64);
                match unit {
                    1 => {
                        let vals: [[u8; 1]; WARP_SIZE] = std::array::from_fn(|l| [l as u8]);
                        w.st_shared_bytes::<1>(&addrs, &vals, LaneMask::ALL);
                    }
                    2 => {
                        let vals: [[u8; 2]; WARP_SIZE] = std::array::from_fn(|l| [l as u8, 2]);
                        w.st_shared_bytes::<2>(&addrs, &vals, LaneMask::ALL);
                    }
                    4 => {
                        let vals: [[u8; 4]; WARP_SIZE] =
                            std::array::from_fn(|l| [l as u8, 4, 0, 0]);
                        w.st_shared_bytes::<4>(&addrs, &vals, LaneMask::ALL);
                    }
                    _ => {
                        let vals: [[u8; 8]; WARP_SIZE] =
                            std::array::from_fn(|l| [l as u8, 8, 0, 0, 0, 0, 0, 0]);
                        w.st_shared_bytes::<8>(&addrs, &vals, LaneMask::ALL);
                    }
                }
            });
            blk.sync();
            for _ in 0..rounds {
                blk.each_warp(|w| {
                    let base = (w.warp_id() * WARP_SIZE * unit) as u64;
                    let addrs = lane_addrs(base, unit as u64);
                    match unit {
                        1 => {
                            let v = w.ld_shared_bytes::<1>(&addrs, LaneMask::ALL);
                            assert_eq!(v[3][0], 3);
                        }
                        2 => {
                            let v = w.ld_shared_bytes::<2>(&addrs, LaneMask::ALL);
                            assert_eq!(v[3], [3, 2]);
                        }
                        4 => {
                            let v = w.ld_shared_bytes::<4>(&addrs, LaneMask::ALL);
                            assert_eq!(v[3][1], 4);
                        }
                        _ => {
                            let v = w.ld_shared_bytes::<8>(&addrs, LaneMask::ALL);
                            assert_eq!(v[3][1], 8);
                        }
                    }
                });
            }
        })?;

        let cap = gpu.spec().smem_bytes_per_cycle();
        // Utilization of the load stream only (exclude the setup stores).
        let load_bytes = report.stats.sm_bytes_useful - (threads * unit) as u64;
        let utilization = load_bytes as f64 / (report.stats.sm_ld_cycles as f64 * cap as f64);
        Ok(ProbeResult {
            utilization,
            predicted_n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;

    fn probe(spec: GpuSpec, dtype: DataType, matched: bool) -> ProbeResult {
        let mut gpu = Gpu::new(spec);
        BandwidthProbe::new(dtype, matched).run(&mut gpu).unwrap()
    }

    #[test]
    fn kepler_f32_unmatched_halves_bandwidth() {
        let r = probe(GpuSpec::kepler_k40m(), DataType::F32, false);
        assert!((r.utilization - 0.5).abs() < 1e-9, "{r:?}");
        assert_eq!(r.predicted_n, 2);
    }

    #[test]
    fn kepler_matched_saturates_for_every_type() {
        for dtype in [DataType::F32, DataType::F16, DataType::I8] {
            let r = probe(GpuSpec::kepler_k40m(), dtype, true);
            assert!((r.utilization - 1.0).abs() < 1e-9, "{dtype}: {r:?}");
        }
    }

    #[test]
    fn kepler_short_types_lose_proportionally() {
        let f16 = probe(GpuSpec::kepler_k40m(), DataType::F16, false);
        assert!((f16.utilization - 0.25).abs() < 1e-9);
        assert_eq!(f16.predicted_n, 4);
        let i8 = probe(GpuSpec::kepler_k40m(), DataType::I8, false);
        assert!((i8.utilization - 0.125).abs() < 1e-9);
        assert_eq!(i8.predicted_n, 8);
    }

    #[test]
    fn four_byte_banks_match_f32_but_not_short_types() {
        // The paper's section 6 point: on 4-byte-bank parts f32 is already
        // matched, but fp16/int8 reintroduce the mismatch.
        let f32 = probe(GpuSpec::maxwell_like(), DataType::F32, false);
        assert!((f32.utilization - 1.0).abs() < 1e-9);
        assert_eq!(f32.predicted_n, 1);
        let f16 = probe(GpuSpec::maxwell_like(), DataType::F16, false);
        assert!((f16.utilization - 0.5).abs() < 1e-9);
        let i8 = probe(GpuSpec::maxwell_like(), DataType::I8, false);
        assert!((i8.utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_equals_inverse_mismatch() {
        for spec in [GpuSpec::kepler_k40m(), GpuSpec::maxwell_like()] {
            for dtype in [DataType::F32, DataType::F16, DataType::I8] {
                let r = probe(spec.clone(), dtype, false);
                assert!(
                    (r.utilization - 1.0 / r.predicted_n as f64).abs() < 1e-9,
                    "{} {dtype}: {r:?}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn dtype_helpers() {
        assert_eq!(DataType::F16.bytes(), 2);
        assert_eq!(DataType::I8.to_string(), "int8");
    }
}

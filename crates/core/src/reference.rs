//! CPU reference convolution — the correctness oracle for every kernel in
//! this workspace.

use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

/// A box of the *output* domain: a slice of filters and a spatial
/// rectangle, in output coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutRegion {
    /// First filter (output channel) covered.
    pub f0: usize,
    /// Number of filters covered.
    pub nf: usize,
    /// First output row.
    pub y0: usize,
    /// First output column.
    pub x0: usize,
    /// Rows in the region.
    pub h: usize,
    /// Columns in the region.
    pub w: usize,
}

impl OutRegion {
    /// The full output of `problem`.
    pub fn full(problem: &ConvProblem) -> Self {
        OutRegion {
            f0: 0,
            nf: problem.filters,
            y0: 0,
            x0: 0,
            h: problem.out_height(),
            w: problem.out_width(),
        }
    }

    /// Clips the region to the output bounds of `problem`; returns `None`
    /// when nothing remains.
    pub fn clipped(&self, problem: &ConvProblem) -> Option<OutRegion> {
        let (oh, ow) = (problem.out_height(), problem.out_width());
        if self.y0 >= oh || self.x0 >= ow || self.f0 >= problem.filters {
            return None;
        }
        Some(OutRegion {
            f0: self.f0,
            nf: self.nf.min(problem.filters - self.f0),
            y0: self.y0,
            x0: self.x0,
            h: self.h.min(oh - self.y0),
            w: self.w.min(ow - self.x0),
        })
    }
}

/// Direct "valid" convolution on the CPU, `f64` accumulation:
///
/// `out[f][y][x] = sum over (c, i, j) of in[c][y*S+i*D][x*S+j*D] * flt[f][c][i][j]`
/// (stride `S` and dilation `D` from the problem). For a depthwise
/// problem the channel sum collapses to the single channel `f`, read from
/// filter channel slot 0.
///
/// # Panics
///
/// Panics if the shapes do not match `problem`.
pub fn conv_reference(
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> FeatureMaps {
    conv_reference_region(problem, input, filters, OutRegion::full(problem))
}

/// Direct convolution restricted to an output region — cheap validation of
/// sampled kernel executions. The result has shape
/// `region.nf x region.h x region.w` (filter `f0 + f` in slot `f`).
///
/// # Panics
///
/// Panics if the shapes do not match `problem` or the region exceeds the
/// output.
pub fn conv_reference_region(
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    region: OutRegion,
) -> FeatureMaps {
    assert!(
        problem.matches(input, filters),
        "input/filter shapes do not match {problem}"
    );
    assert!(
        region.y0 + region.h <= problem.out_height()
            && region.x0 + region.w <= problem.out_width()
            && region.f0 + region.nf <= problem.filters,
        "region exceeds output"
    );
    let k = problem.k;
    let d = problem.dilation;
    let mut out = FeatureMaps::zeros(region.nf, region.h, region.w);
    for f in 0..region.nf {
        for y in 0..region.h {
            for x in 0..region.w {
                let mut acc = 0.0f64;
                let (iy, ix) = (
                    (region.y0 + y) * problem.stride,
                    (region.x0 + x) * problem.stride,
                );
                // Depthwise: output channel f reads only input channel f,
                // from the filter's single channel slot.
                let channels = if problem.depthwise {
                    (region.f0 + f)..(region.f0 + f + 1)
                } else {
                    0..problem.channels
                };
                for c in channels {
                    let fc = if problem.depthwise { 0 } else { c };
                    for i in 0..k {
                        for j in 0..k {
                            acc += input.get(c, iy + i * d, ix + j * d) as f64
                                * filters.get(region.f0 + f, fc, i, j) as f64;
                        }
                    }
                }
                out.set(f, y, x, acc as f32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_tensor::{random_filters, random_maps};

    #[test]
    fn identity_one_by_one() {
        let p = ConvProblem::general(4, 1, 1, 1);
        let input = FeatureMaps::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let filters = FilterSet::from_vec(1, 1, 1, vec![1.0]);
        let out = conv_reference(&p, &input, &filters);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_patch() {
        let p = ConvProblem::general(3, 1, 1, 3);
        let input = FeatureMaps::from_fn(1, 3, 3, |_, _, _| 1.0);
        let filters = FilterSet::from_vec(1, 1, 3, vec![1.0; 9]);
        let out = conv_reference(&p, &input, &filters);
        assert_eq!(out.get(0, 0, 0), 9.0);
    }

    #[test]
    fn channels_accumulate() {
        let p = ConvProblem::general(2, 3, 1, 1);
        let input = FeatureMaps::from_fn(3, 2, 2, |c, _, _| (c + 1) as f32);
        let filters = FilterSet::from_fn(1, 3, 1, |_, c, _, _| (c + 1) as f32);
        let out = conv_reference(&p, &input, &filters);
        // 1*1 + 2*2 + 3*3 = 14
        assert_eq!(out.get(0, 1, 1), 14.0);
    }

    #[test]
    fn cross_correlation_orientation() {
        // Filter that picks the bottom-right tap: out(0,0) = in(1,1).
        let p = ConvProblem::general(2, 1, 1, 2);
        let input = FeatureMaps::from_fn(1, 2, 2, |_, y, x| (10 * y + x) as f32);
        let mut filters = FilterSet::zeros(1, 1, 2);
        filters.set(0, 0, 1, 1, 1.0);
        let out = conv_reference(&p, &input, &filters);
        assert_eq!(out.get(0, 0, 0), 11.0);
    }

    #[test]
    fn region_matches_full() {
        let p = ConvProblem::general(10, 2, 3, 3);
        let input = random_maps(2, 10, 10, 1);
        let filters = random_filters(3, 2, 3, 2);
        let full = conv_reference(&p, &input, &filters);
        let region = OutRegion {
            f0: 1,
            nf: 2,
            y0: 2,
            x0: 3,
            h: 4,
            w: 5,
        };
        let part = conv_reference_region(&p, &input, &filters, region);
        for f in 0..2 {
            for y in 0..4 {
                for x in 0..5 {
                    assert_eq!(part.get(f, y, x), full.get(1 + f, 2 + y, 3 + x));
                }
            }
        }
    }

    #[test]
    fn strided_reference_subsamples() {
        let p = ConvProblem::general(7, 1, 1, 3).with_stride(2);
        let input = FeatureMaps::from_fn(1, 7, 7, |_, y, x| (y * 7 + x) as f32);
        let mut filters = FilterSet::zeros(1, 1, 3);
        filters.set(0, 0, 0, 0, 1.0); // pick the window origin
        let out = conv_reference(&p, &input, &filters);
        assert_eq!(out.height(), 3);
        assert_eq!(out.get(0, 0, 0), 0.0);
        assert_eq!(out.get(0, 1, 1), (2 * 7 + 2) as f32);
        assert_eq!(out.get(0, 2, 2), (4 * 7 + 4) as f32);
    }

    #[test]
    fn dilated_reference_spreads_taps() {
        // Dilation 2 with a tap at (1, 1) picks in[y + 2][x + 2].
        let p = ConvProblem::general(7, 1, 1, 3).with_dilation(2);
        let input = FeatureMaps::from_fn(1, 7, 7, |_, y, x| (y * 7 + x) as f32);
        let mut filters = FilterSet::zeros(1, 1, 3);
        filters.set(0, 0, 1, 1, 1.0);
        let out = conv_reference(&p, &input, &filters);
        assert_eq!(out.height(), 3);
        assert_eq!(out.get(0, 0, 0), (2 * 7 + 2) as f32);
        assert_eq!(out.get(0, 2, 1), (4 * 7 + 3) as f32);
    }

    #[test]
    fn depthwise_reference_keeps_channels_separate() {
        let p = ConvProblem::general(4, 2, 2, 3).depthwise();
        // Channel c holds the constant c + 1; filter c is a box of c + 1.
        let input = FeatureMaps::from_fn(2, 4, 4, |c, _, _| (c + 1) as f32);
        let filters = FilterSet::from_fn(2, 1, 3, |f, _, _, _| (f + 1) as f32);
        let out = conv_reference(&p, &input, &filters);
        // out[f] = 9 * (f+1)^2 — no cross-channel accumulation.
        assert_eq!(out.get(0, 0, 0), 9.0);
        assert_eq!(out.get(1, 1, 1), 36.0);
    }

    #[test]
    fn depthwise_region_offsets_pick_the_right_channel() {
        let p = ConvProblem::general(6, 3, 3, 3).depthwise();
        let input = random_maps(3, 6, 6, 7);
        let filters = random_filters(3, 1, 3, 9);
        let full = conv_reference(&p, &input, &filters);
        let region = OutRegion {
            f0: 1,
            nf: 2,
            y0: 1,
            x0: 0,
            h: 2,
            w: 3,
        };
        let part = conv_reference_region(&p, &input, &filters, region);
        for f in 0..2 {
            for y in 0..2 {
                for x in 0..3 {
                    assert_eq!(part.get(f, y, x), full.get(1 + f, 1 + y, x));
                }
            }
        }
    }

    #[test]
    fn clipping() {
        let p = ConvProblem::special(10, 1, 3); // 8x8 output
        let r = OutRegion {
            f0: 0,
            nf: 5,
            y0: 6,
            x0: 0,
            h: 4,
            w: 12,
        };
        let c = r.clipped(&p).unwrap();
        assert_eq!((c.h, c.w, c.nf), (2, 8, 1));
        let gone = OutRegion {
            f0: 0,
            nf: 1,
            y0: 8,
            x0: 0,
            h: 1,
            w: 1,
        };
        assert!(gone.clipped(&p).is_none());
        assert_eq!(
            OutRegion::full(&p),
            OutRegion {
                f0: 0,
                nf: 1,
                y0: 0,
                x0: 0,
                h: 8,
                w: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "region exceeds output")]
    fn region_bounds_checked() {
        let p = ConvProblem::special(4, 1, 3);
        let input = FeatureMaps::zeros(1, 4, 4);
        let filters = FilterSet::zeros(1, 1, 3);
        conv_reference_region(
            &p,
            &input,
            &filters,
            OutRegion {
                f0: 0,
                nf: 1,
                y0: 0,
                x0: 0,
                h: 3,
                w: 2,
            },
        );
    }
}

//! Naive direct convolution on the GPU — the related-work strawman.
//!
//! One thread per output pixel, reading every needed pixel and filter tap
//! straight from global memory: the baseline the paper's category-(2)
//! related work ([9-11]) improves upon, and the cleanest demonstration of
//! *why* the paper's data-sharing machinery exists. Against
//! [`SpecialConv`](crate::SpecialConv) / [`GeneralConv`](crate::GeneralConv)
//! this kernel re-reads each input pixel up to `K * K * F` times from DRAM
//! (the exact reuse factor the paper's section 2.2 derives), mitigated
//! only by the read-only cache when enabled.

use kconv_sim::{lane_addrs_from, Gpu, LaneMask, LaunchConfig, OverlapMode, SimMode, WARP_SIZE};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};
use crate::reference::OutRegion;
use crate::run::{ConvRun, Convolution};

/// The naive one-thread-per-output direct kernel.
///
/// # Examples
///
/// ```
/// use kconv_core::{NaiveConv, Convolution};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::general(16, 2, 3, 3);
/// let input = random_maps(2, 16, 16, 1);
/// let filters = random_filters(3, 2, 3, 2);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = NaiveConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// run.verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL).unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NaiveConv {
    /// Threads per block (a 1D launch over output pixels).
    pub block_threads: usize,
    /// Whether input reads go through the read-only cache (filter reads
    /// always do — they are warp-uniform).
    pub texture: bool,
}

impl Default for NaiveConv {
    fn default() -> Self {
        NaiveConv {
            block_threads: 256,
            texture: true,
        }
    }
}

impl Convolution for NaiveConv {
    fn name(&self) -> String {
        "naive direct (1 thread/output)".into()
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        if self.block_threads == 0 || self.block_threads > 1024 {
            return Err(ConvError::Config(format!(
                "{} threads per block",
                self.block_threads
            )));
        }
        let (oh, ow) = (problem.out_height(), problem.out_width());
        let np = oh * ow;
        // One thread per (filter, output pixel).
        let total = problem.filters * np;
        let threads = self.block_threads;
        let blocks = total.div_ceil(threads);

        let d_in = gpu.alloc_f32(input.as_slice().len() as u64)?;
        gpu.upload_f32(d_in, input.as_slice())?;
        let d_flt = gpu.alloc_f32(filters.len() as u64)?;
        gpu.upload_f32(d_flt, filters.as_slice())?;
        let d_out = gpu.alloc_f32(total as u64)?;

        let p = *problem;
        let texture = self.texture;
        let launch = LaunchConfig::new(format!("naive K={}", p.k), blocks, threads)
            .with_regs(24)
            .with_overlap(OverlapMode::Serial);
        let report = gpu.launch(&launch, mode, |blk| {
            let base = blk.dims.block_id * threads;
            let kk = p.k * p.k;
            blk.each_warp(|w| {
                let pop = w.population();
                let mask = LaneMask::from_fn(|lane| {
                    pop.is_active(lane) && base + w.thread_id(lane) < total
                });
                if mask.is_empty() {
                    return;
                }
                let mut acc = [0.0f32; WARP_SIZE];
                let cg = p.channels_per_group();
                for c in 0..cg {
                    for i in 0..p.k {
                        for j in 0..p.k {
                            // Input pixel for each lane's output position;
                            // a depthwise lane reads its own filter's
                            // channel, taps sit `dilation` apart.
                            let gaddrs = lane_addrs_from(|lane| {
                                let t = (base + w.thread_id(lane)).min(total - 1);
                                let px = t % np;
                                let (oy, ox) = (px / ow, px % ow);
                                let ci = if p.depthwise { t / np } else { c };
                                d_in.f32_addr(
                                    ((ci * p.height + oy * p.stride + i * p.dilation) * p.width
                                        + ox * p.stride
                                        + j * p.dilation)
                                        as u64,
                                )
                            });
                            let pix = if texture {
                                w.ld_global_ro::<1>(&gaddrs, mask)
                            } else {
                                w.ld_global::<1>(&gaddrs, mask)
                            };
                            // Filter tap: warp lanes share a filter only if
                            // they compute the same map; in general the
                            // addresses diverge (counted as-is).
                            let faddrs = lane_addrs_from(|lane| {
                                let t = (base + w.thread_id(lane)).min(total - 1);
                                let f = t / np;
                                d_flt.f32_addr(((f * cg + c) * kk + i * p.k + j) as u64)
                            });
                            let tap = w.ld_global_ro::<1>(&faddrs, mask);
                            for lane in mask.iter() {
                                acc[lane] += pix[lane][0] * tap[lane][0];
                            }
                        }
                    }
                }
                w.count_fma(mask.count() as u64 * (cg * kk) as u64);
                let oaddrs = lane_addrs_from(|lane| {
                    let t = (base + w.thread_id(lane)).min(total - 1);
                    d_out.f32_addr(t as u64)
                });
                let vals: [[f32; 1]; WARP_SIZE] = std::array::from_fn(|l| [acc[l]]);
                w.st_global::<1>(&oaddrs, &vals, mask);
            });
        })?;

        let flat = gpu.download_f32(d_out)?;
        let output = FeatureMaps::from_vec(problem.filters, oh, ow, flat);

        // Executed regions: the pixel rows each executed block covered.
        let mut regions = Vec::new();
        for &b in &report.executed_blocks {
            let mut t = b * threads;
            let t_end = ((b + 1) * threads).min(total);
            while t < t_end {
                let f = t / np;
                let px = t % np;
                let (y, x) = (px / ow, px % ow);
                let w_run = (ow - x).min(t_end - t);
                regions.push(OutRegion {
                    f0: f,
                    nf: 1,
                    y0: y,
                    x0: x,
                    h: 1,
                    w: w_run,
                });
                t += w_run;
            }
        }
        Ok(ConvRun {
            output,
            report,
            executed_regions: regions,
            faults: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn check(n: usize, c: usize, f: usize, k: usize, mode: SimMode) -> ConvRun {
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, 301);
        let filters = random_filters(f, c, k, 303);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = NaiveConv::default()
            .run(&mut gpu, &problem, &input, &filters, mode)
            .expect("launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("output mismatch");
        run
    }

    #[test]
    fn correct_on_small_problems() {
        check(12, 2, 3, 3, SimMode::Full);
        check(10, 1, 1, 5, SimMode::Full);
        check(9, 3, 2, 1, SimMode::Full);
    }

    #[test]
    fn sampled_execution_verifies() {
        let run = check(32, 2, 4, 3, SimMode::Sampled(2));
        assert!(!run.executed_regions.is_empty());
    }

    #[test]
    fn strided_convolutions_are_supported() {
        let problem = ConvProblem::general(13, 1, 2, 3).with_stride(2);
        let input = random_maps(1, 13, 13, 371);
        let filters = random_filters(2, 1, 3, 373);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = NaiveConv::default()
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("strided naive");
    }

    #[test]
    fn workload_matrix_matches_reference() {
        // Differential grid over (stride, dilation, groups): the naive
        // kernel against the f64 CPU oracle, seeded per cell.
        let mut seed = 9000u64;
        for &stride in &[1usize, 2] {
            for &dilation in &[1usize, 2] {
                for &depthwise in &[false, true] {
                    seed += 17;
                    let c = 3;
                    let f = if depthwise { c } else { 2 };
                    let n = 13;
                    let mut problem = ConvProblem::general(n, c, f, 3)
                        .with_stride(stride)
                        .with_dilation(dilation);
                    if depthwise {
                        problem = problem.depthwise();
                    }
                    let input = random_maps(c, n, n, seed);
                    let filters = random_filters(f, problem.channels_per_group(), 3, seed + 1);
                    let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
                    let run = NaiveConv::default()
                        .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                        .unwrap_or_else(|e| panic!("{problem}: {e}"));
                    run.verify_executed(&problem, &input, &filters, CONV_TOL)
                        .unwrap_or_else(|e| panic!("{problem}: {e}"));
                }
            }
        }
    }

    #[test]
    fn rereads_input_k_squared_f_times_without_texture() {
        // Paper section 2.2: an input pixel can be used up to K*K*F times;
        // the naive kernel pays that in useful load traffic.
        let problem = ConvProblem::general(20, 1, 4, 3);
        let input = random_maps(1, 20, 20, 305);
        let filters = random_filters(4, 1, 3, 307);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let naive = NaiveConv {
            texture: false,
            ..NaiveConv::default()
        };
        let run = naive
            .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .unwrap();
        // Pixel loads: np * K*K * F; tap loads the same count.
        let np = 18 * 18;
        let expected_pixel_bytes = (np * 9 * 4 * 4) as u64;
        assert!(run.report.stats.gm_ld_bytes_useful >= expected_pixel_bytes);
    }

    #[test]
    fn tiled_kernels_crush_it() {
        let problem = ConvProblem::general(66, 16, 64, 3);
        let input = random_maps(16, 66, 66, 309);
        let filters = random_filters(64, 16, 3, 311);
        let secs = |conv: &dyn Convolution| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Sampled(2))
                .unwrap()
                .report
                .seconds()
        };
        let naive = secs(&NaiveConv::default());
        let ours = secs(&crate::GeneralConv::table1(3));
        assert!(
            naive > 2.0 * ours,
            "naive {naive} should be far slower than tiled {ours}"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let problem = ConvProblem::general(12, 1, 1, 3);
        let input = random_maps(1, 12, 12, 1);
        let filters = random_filters(1, 1, 3, 2);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let bad = NaiveConv {
            block_threads: 0,
            texture: true,
        };
        assert!(matches!(
            bad.run(&mut gpu, &problem, &input, &filters, SimMode::Full),
            Err(ConvError::Config(_))
        ));
    }
}

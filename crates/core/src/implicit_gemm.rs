//! The cuDNN-like implicit-GEMM baseline.
//!
//! cuDNN's GEMM convolution path (the comparator in the paper's Figs. 7
//! and 8; Chetlur et al., the paper's reference [8]) treats convolution as
//! the matrix product
//!
//! ```text
//! output[F x (OH*OW)] = filters[F x (C*K*K)] * im2col(input)[(C*K*K) x (OH*OW)]
//! ```
//!
//! without materializing `im2col`: sub-blocks of the patch matrix are
//! *constructed in shared memory at run time* from the input tensor. That
//! design pays three costs a direct kernel avoids, all of which this
//! implementation incurs honestly:
//!
//! * **duplicated global-memory traffic** — each input pixel is an element
//!   of up to `K*K` patch-matrix rows, and every staged element is a fresh
//!   global-memory read (no cross-row reuse);
//! * **index-decoding arithmetic** — every staged element decodes its
//!   unrolled `(channel, dy, dx, oy, ox)` coordinates (counted as ALU
//!   lane-ops, which share issue slots with FMAs);
//! * **scalar shared-memory fragments** (`vec_width = 1` by default) — the
//!   pre-Kepler-tuning access width, wasting half the 8-byte-bank
//!   bandwidth.
//!
//! Unlike the tiled direct kernels, arbitrary `F`, output sizes **and
//! strides** are supported (as cuDNN must) — the flexibility/efficiency
//! trade-off the paper's specialization buys its speed with.

use kconv_sim::{
    lane_addrs_from, BlockCtx, GmBuf, Gpu, LaneMask, LaunchConfig, OverlapMode, SimMode, WARP_SIZE,
};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};
use crate::reference::OutRegion;
use crate::run::{ConvRun, Convolution};

/// Shared-memory padding for the transposed filter tile.
const PAD: usize = 2;

/// Blocking configuration of the implicit-GEMM convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplicitGemmConfig {
    /// Filters per thread block (GEMM `M` tile).
    pub tile_m: usize,
    /// Output pixels per thread block (GEMM `N` tile).
    pub tile_n: usize,
    /// Patch-matrix depth staged per step (GEMM `K` tile).
    pub tile_k: usize,
    /// Filters per thread.
    pub thread_m: usize,
    /// Output pixels per thread.
    pub thread_n: usize,
    /// Shared-memory fragment width in `f32` elements.
    pub vec_width: usize,
    /// Whether operand staging streams through the read-only (texture)
    /// cache path. Modern cuDNN does; the 2016-era kernels the paper
    /// measured largely did not, so harnesses report both variants.
    pub texture: bool,
}

impl ImplicitGemmConfig {
    /// Picks a blocking for `filters` output maps, mirroring how cuDNN
    /// selects smaller tiles for skinny problems. The special case `F = 1`
    /// (a 1-row GEMM) gets the degenerate tile that makes it so slow.
    pub fn for_filters(filters: usize) -> Self {
        if filters >= 64 {
            ImplicitGemmConfig {
                tile_m: 64,
                tile_n: 64,
                tile_k: 8,
                thread_m: 8,
                thread_n: 8,
                vec_width: 1,
                texture: true,
            }
        } else if filters >= 32 {
            ImplicitGemmConfig {
                tile_m: 32,
                tile_n: 64,
                tile_k: 8,
                thread_m: 4,
                thread_n: 8,
                vec_width: 1,
                texture: true,
            }
        } else if filters >= 8 {
            ImplicitGemmConfig {
                tile_m: 8,
                tile_n: 64,
                tile_k: 8,
                thread_m: 2,
                thread_n: 4,
                vec_width: 1,
                texture: true,
            }
        } else {
            ImplicitGemmConfig {
                tile_m: 1,
                tile_n: 64,
                tile_k: 8,
                thread_m: 1,
                thread_n: 4,
                vec_width: 1,
                texture: true,
            }
        }
    }

    /// The same blocking with the read-only cache path disabled — the
    /// 2016-era baseline the paper measured against.
    pub fn without_texture(mut self) -> Self {
        self.texture = false;
        self
    }

    /// Threads along the filter dimension.
    pub fn threads_x(&self) -> usize {
        self.tile_m / self.thread_m
    }

    /// Threads along the pixel dimension.
    pub fn threads_y(&self) -> usize {
        self.tile_n / self.thread_n
    }

    /// Total threads per block.
    pub fn threads(&self) -> usize {
        self.threads_x() * self.threads_y()
    }

    /// Shared-memory bytes per block.
    pub fn smem_bytes(&self) -> u32 {
        ((self.tile_k * (self.tile_m + PAD) + self.tile_k * self.tile_n) * 4) as u32
    }

    /// Register estimate per thread.
    pub fn regs_per_thread(&self) -> u32 {
        (self.thread_m * self.thread_n + self.thread_m + self.thread_n + 18) as u32
    }

    /// Validates divisibility and launchability.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(ConvError::Config(msg));
        if self.vec_width != 1 && self.vec_width != 2 {
            return bad(format!("vec_width {} must be 1 or 2", self.vec_width));
        }
        if !self.thread_m.is_multiple_of(self.vec_width) && self.thread_m != 1 {
            return bad("thread_m must be divisible by vec_width".into());
        }
        if !self.thread_n.is_multiple_of(self.vec_width) {
            return bad("thread_n must be divisible by vec_width".into());
        }
        if !self.tile_m.is_multiple_of(self.thread_m) || !self.tile_n.is_multiple_of(self.thread_n)
        {
            return bad("tiles must be divisible by thread tiles".into());
        }
        if self.threads() == 0 || self.threads() > 1024 {
            return bad(format!("{} threads per block", self.threads()));
        }
        Ok(())
    }
}

/// The cuDNN-like implicit-GEMM convolution baseline.
///
/// # Examples
///
/// ```
/// use kconv_core::{ImplicitGemmConv, Convolution};
/// use kconv_sim::{Gpu, GpuSpec, SimMode};
/// use kconv_tensor::{random_maps, random_filters, ConvProblem};
///
/// # fn main() -> Result<(), kconv_core::ConvError> {
/// let problem = ConvProblem::general(20, 3, 5, 3);
/// let input = random_maps(3, 20, 20, 1);
/// let filters = random_filters(5, 3, 3, 2);
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let run = ImplicitGemmConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full)?;
/// assert!(run
///     .verify_executed(&problem, &input, &filters, kconv_tensor::CONV_TOL)
///     .is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ImplicitGemmConv {
    /// Explicit blocking; `None` picks [`ImplicitGemmConfig::for_filters`]
    /// per problem.
    pub config: Option<ImplicitGemmConfig>,
}

impl ImplicitGemmConv {
    /// Baseline with an explicit blocking.
    pub fn new(config: ImplicitGemmConfig) -> Self {
        ImplicitGemmConv {
            config: Some(config),
        }
    }

    /// The 2016-era variant: per-problem blocking with the read-only
    /// cache path disabled (matching the cuDNN v5.1 kernels the paper
    /// measured).
    pub fn era2016(problem: &kconv_tensor::ConvProblem) -> Self {
        ImplicitGemmConv::new(ImplicitGemmConfig::for_filters(problem.filters).without_texture())
    }
}

impl Convolution for ImplicitGemmConv {
    fn name(&self) -> String {
        match self.config {
            Some(c) if !c.texture => "cuDNN-like implicit GEMM (no texture)".into(),
            _ => "cuDNN-like implicit GEMM".into(),
        }
    }

    fn run(
        &self,
        gpu: &mut Gpu,
        problem: &ConvProblem,
        input: &FeatureMaps,
        filters: &FilterSet,
        mode: SimMode,
    ) -> Result<ConvRun> {
        crate::run::require_dense(problem)?;
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "input/filter shapes do not match {problem}"
            )));
        }
        let cfg = self
            .config
            .unwrap_or_else(|| ImplicitGemmConfig::for_filters(problem.filters));
        cfg.validate()?;

        let (oh, ow) = (problem.out_height(), problem.out_width());
        let np = oh * ow; // GEMM N
        let kd = problem.channels * problem.k * problem.k; // GEMM K
        let tiles_m = problem.filters.div_ceil(cfg.tile_m);
        let tiles_n = np.div_ceil(cfg.tile_n);

        let d_in = gpu.alloc_f32(input.as_slice().len() as u64)?;
        gpu.upload_f32(d_in, input.as_slice())?;
        let d_flt = gpu.alloc_f32(filters.len() as u64)?;
        gpu.upload_f32(d_flt, filters.as_slice())?;
        let d_out = gpu.alloc_f32((problem.filters * np) as u64)?;

        let launch = LaunchConfig::new(
            format!("implicit-gemm K={}", problem.k),
            tiles_m * tiles_n,
            cfg.threads(),
        )
        .with_smem(cfg.smem_bytes())
        .with_regs(cfg.regs_per_thread())
        .with_overlap(OverlapMode::Moderate);

        let p = *problem;
        let report = gpu.launch(&launch, mode, |blk| {
            implicit_block(blk, &cfg, &p, kd, np, tiles_n, d_in, d_flt, d_out);
        })?;

        let flat = gpu.download_f32(d_out)?;
        let mut output = FeatureMaps::zeros(problem.filters, oh, ow);
        output.as_mut_slice().copy_from_slice(&flat);

        // Executed pixel ranges become row segments for verification.
        let mut regions = Vec::new();
        for &b in &report.executed_blocks {
            let bm = b / tiles_n;
            let bn = b % tiles_n;
            let f0 = bm * cfg.tile_m;
            let nf = cfg.tile_m.min(problem.filters - f0);
            let px0 = bn * cfg.tile_n;
            let px1 = (px0 + cfg.tile_n).min(np);
            let mut px = px0;
            while px < px1 {
                let y = px / ow;
                let x = px % ow;
                let w = (ow - x).min(px1 - px);
                regions.push(OutRegion {
                    f0,
                    nf,
                    y0: y,
                    x0: x,
                    h: 1,
                    w,
                });
                px += w;
            }
        }
        Ok(ConvRun {
            output,
            report,
            executed_regions: regions,
            faults: Vec::new(),
        })
    }
}

/// ALU lane-ops charged per staged patch-matrix element: the unrolled-index
/// divisions/modulos for `(c, dy, dx)` and `(oy, ox)` plus the address
/// computation and the bounds predicate.
const DECODE_ALU: u64 = 10;

#[allow(clippy::too_many_arguments)]
fn implicit_block(
    blk: &mut BlockCtx<'_>,
    cfg: &ImplicitGemmConfig,
    p: &ConvProblem,
    kd: usize,
    np: usize,
    tiles_n: usize,
    d_in: GmBuf,
    d_flt: GmBuf,
    d_out: GmBuf,
) {
    let (tm, tn, tk) = (cfg.tile_m, cfg.tile_n, cfg.tile_k);
    let (rm, rn, vw) = (cfg.thread_m, cfg.thread_n, cfg.vec_width);
    let tx_count = cfg.threads_x();
    let ty_count = cfg.threads_y();
    let threads = cfg.threads();
    let kk = p.k * p.k;
    let ow = p.out_width();

    let bm = blk.dims.block_id / tiles_n;
    let bn = blk.dims.block_id % tiles_n;
    let f_base = bm * tm;
    let px_base = bn * tn;

    let a_pitch = tm + PAD;
    let bs_base = (tk * a_pitch * 4) as u64;

    let mut acc = vec![0.0f32; threads * rm * rn];

    let mut k0 = 0usize;
    while k0 < kd {
        let kslice = tk.min(kd - k0);
        // Stage the filter slice, transposed: As[kq][f].
        let a_elems = tm * kslice;
        let mut e0 = 0usize;
        while e0 < a_elems {
            blk.each_warp(|w| {
                let valid = LaneMask::from_fn(|lane| {
                    let e = e0 + w.thread_id(lane);
                    e < a_elems && f_base + e / kslice < p.filters
                });
                // Every in-tile slot gets stored — slots past the last
                // filter as zeros — so the compute phase below never reads
                // undefined shared memory in tail blocks.
                let staged = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < a_elems);
                let gaddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(a_elems - 1);
                    let f = (f_base + e / kslice).min(p.filters - 1);
                    d_flt.f32_addr((f * kd + k0 + e % kslice) as u64)
                });
                // Filters also stream through the read-only path (when
                // enabled): one 128-byte line covers several K-slices of a
                // filter row, so successive slices hit the cache.
                let vals = if cfg.texture {
                    w.ld_global_ro::<1>(&gaddrs, valid)
                } else {
                    w.ld_global::<1>(&gaddrs, valid)
                };
                let saddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(a_elems - 1);
                    (((e % kslice) * a_pitch + e / kslice) * 4) as u64
                });
                w.st_shared::<1>(&saddrs, &vals, staged);
            });
            e0 += threads;
        }
        // Stage the patch-matrix slice, building it on the fly from the
        // input tensor (the "implicit" im2col).
        let b_elems = kslice * tn;
        let mut e0 = 0usize;
        while e0 < b_elems {
            blk.each_warp(|w| {
                let valid = LaneMask::from_fn(|lane| {
                    let e = e0 + w.thread_id(lane);
                    e < b_elems && px_base + e % tn < np
                });
                // As above: stage zeros for out-of-range pixels.
                let staged = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < b_elems);
                let gaddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(b_elems - 1);
                    let kq = k0 + e / tn;
                    let px = (px_base + e % tn).min(np - 1);
                    let (c, q) = (kq / kk, kq % kk);
                    let (dy, dx) = (q / p.k, q % p.k);
                    let (oy, ox) = (px / ow, px % ow);
                    d_in.f32_addr(
                        ((c * p.height + oy * p.stride + dy) * p.width + ox * p.stride + dx) as u64,
                    )
                });
                w.count_alu(valid.count() as u64 * DECODE_ALU);
                // Modern cuDNN streams the patch matrix through the
                // read-only (texture) path so its K*K-fold overlap is
                // cache-served.
                let vals = if cfg.texture {
                    w.ld_global_ro::<1>(&gaddrs, valid)
                } else {
                    w.ld_global::<1>(&gaddrs, valid)
                };
                let saddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(b_elems - 1);
                    bs_base + (e * 4) as u64
                });
                w.st_shared::<1>(&saddrs, &vals, staged);
            });
            e0 += threads;
        }
        blk.sync();

        for kq in 0..kslice {
            blk.each_warp(|w| {
                let wid = w.warp_id();
                let mut a_frag = [[0.0f32; 16]; WARP_SIZE];
                let mut b_frag = [[0.0f32; 16]; WARP_SIZE];
                for g in 0..rm.div_ceil(vw) {
                    let width = vw.min(rm);
                    let addrs = lane_addrs_from(|lane| {
                        let tx = (wid * WARP_SIZE + lane) % tx_count;
                        ((kq * a_pitch + width * tx + g * width * tx_count) * 4) as u64
                    });
                    if width == 2 {
                        let vals = w.ld_shared::<2>(&addrs, LaneMask::ALL);
                        for lane in 0..WARP_SIZE {
                            a_frag[lane][g * 2..g * 2 + 2].copy_from_slice(&vals[lane]);
                        }
                    } else {
                        let vals = w.ld_shared::<1>(&addrs, LaneMask::ALL);
                        for lane in 0..WARP_SIZE {
                            a_frag[lane][g] = vals[lane][0];
                        }
                    }
                }
                for g in 0..rn / vw {
                    let addrs = lane_addrs_from(|lane| {
                        let ty = (wid * WARP_SIZE + lane) / tx_count;
                        bs_base + ((kq * tn + vw * ty + g * vw * ty_count) * 4) as u64
                    });
                    if vw == 2 {
                        let vals = w.ld_shared::<2>(&addrs, LaneMask::ALL);
                        for lane in 0..WARP_SIZE {
                            b_frag[lane][g * 2..g * 2 + 2].copy_from_slice(&vals[lane]);
                        }
                    } else {
                        let vals = w.ld_shared::<1>(&addrs, LaneMask::ALL);
                        for lane in 0..WARP_SIZE {
                            b_frag[lane][g] = vals[lane][0];
                        }
                    }
                }
                let pop = w.population();
                for lane in pop.iter() {
                    let t = w.thread_id(lane);
                    let base = t * rm * rn;
                    for i in 0..rm {
                        for j in 0..rn {
                            acc[base + i * rn + j] += a_frag[lane][i] * b_frag[lane][j];
                        }
                    }
                }
                w.count_fma(pop.count() as u64 * (rm * rn) as u64);
            });
        }
        blk.sync();
        k0 += tk;
    }

    // Write back: contiguous threads hold different output maps, so the
    // stores scatter across `F` rows of the output matrix.
    for i in 0..rm {
        for j in 0..rn {
            blk.each_warp(|w| {
                let wid = w.warp_id();
                let fw = if rm == 1 { 1 } else { vw };
                let mask = LaneMask::from_fn(|lane| {
                    let t = wid * WARP_SIZE + lane;
                    if t >= threads {
                        return false;
                    }
                    let (tx, ty) = (t % tx_count, t / tx_count);
                    let f = f_base + fw * tx + (i / fw) * fw * tx_count + i % fw;
                    let px = px_base + vw * ty + (j / vw) * vw * ty_count + j % vw;
                    f < p.filters && px < np
                });
                let addrs = lane_addrs_from(|lane| {
                    let t = (wid * WARP_SIZE + lane).min(threads - 1);
                    let (tx, ty) = (t % tx_count, t / tx_count);
                    let f =
                        (f_base + fw * tx + (i / fw) * fw * tx_count + i % fw).min(p.filters - 1);
                    let px = (px_base + vw * ty + (j / vw) * vw * ty_count + j % vw).min(np - 1);
                    d_out.f32_addr((f * np + px) as u64)
                });
                let mut vals = [[0.0f32; 1]; WARP_SIZE];
                for (lane, v) in vals.iter_mut().enumerate() {
                    let t = wid * WARP_SIZE + lane;
                    if t < threads {
                        v[0] = acc[t * rm * rn + i * rn + j];
                    }
                }
                w.st_global::<1>(&addrs, &vals, mask);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::GpuSpec;
    use kconv_tensor::{random_filters, random_maps, CONV_TOL};

    fn check(n: usize, c: usize, f: usize, k: usize, mode: SimMode) -> ConvRun {
        let problem = ConvProblem::general(n, c, f, k);
        let input = random_maps(c, n, n, 31);
        let filters = random_filters(f, c, k, 33);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let run = ImplicitGemmConv::default()
            .run(&mut gpu, &problem, &input, &filters, mode)
            .expect("launch");
        run.verify_executed(&problem, &input, &filters, CONV_TOL)
            .expect("output mismatch");
        run
    }

    #[test]
    fn big_filter_count_path() {
        check(14, 2, 32, 3, SimMode::Full);
    }

    #[test]
    fn medium_filter_count_path() {
        check(14, 2, 8, 3, SimMode::Full);
    }

    #[test]
    fn degenerate_single_filter_path() {
        check(14, 1, 1, 3, SimMode::Full);
    }

    #[test]
    fn non_divisible_filters_are_masked() {
        check(12, 2, 5, 3, SimMode::Full); // F=5 under tile_m=1? -> for_filters picks 1
        check(12, 2, 33, 3, SimMode::Full); // 33 filters under tile_m=32
    }

    #[test]
    fn non_divisible_pixels_are_masked() {
        // 10x10 output = 100 pixels vs tile_n = 64.
        check(12, 2, 8, 3, SimMode::Full);
    }

    #[test]
    fn one_by_one_filter() {
        check(12, 3, 8, 1, SimMode::Full);
    }

    #[test]
    fn five_by_five_filter() {
        check(16, 2, 8, 5, SimMode::Full);
    }

    #[test]
    fn kd_not_divisible_by_tile_k() {
        // C*K*K = 2*9 = 18, tile_k = 8: last slice is short.
        check(12, 2, 8, 3, SimMode::Full);
    }

    #[test]
    fn sampled_row_segment_regions() {
        let run = check(40, 2, 8, 3, SimMode::Sampled(2));
        assert!(!run.executed_regions.is_empty());
        assert!(run.executed_regions.iter().all(|r| r.h == 1));
    }

    #[test]
    fn strided_convolutions_are_supported() {
        for stride in [2usize, 3] {
            let problem = ConvProblem::general(15, 2, 8, 3).with_stride(stride);
            let input = random_maps(2, 15, 15, 351);
            let filters = random_filters(8, 2, 3, 353);
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
            let run = ImplicitGemmConv::default()
                .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
                .unwrap();
            run.verify_executed(&problem, &input, &filters, CONV_TOL)
                .unwrap_or_else(|e| panic!("stride {stride}: {e}"));
        }
    }

    #[test]
    fn index_decode_alu_is_charged() {
        let run = check(14, 2, 32, 3, SimMode::Full);
        assert!(run.report.stats.alu_lane_ops > 0);
        // Roughly DECODE_ALU per staged B element: kd * np staged once
        // per M-tile.
        let staged = 18u64 * 144; // kd=18, np=144, one M tile
        assert!(run.report.stats.alu_lane_ops >= staged * DECODE_ALU);
    }

    #[test]
    fn duplicated_gm_traffic_vs_direct() {
        // The im2col duplication: B staging reads ~K*K times the input.
        let run = check(30, 4, 32, 3, SimMode::Full);
        let input_bytes = (4 * 30 * 30 * 4) as u64;
        assert!(
            run.report.stats.gm_ld_bytes_useful > 5 * input_bytes,
            "useful {} vs input {}",
            run.report.stats.gm_ld_bytes_useful,
            input_bytes
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let problem = ConvProblem::general(12, 2, 4, 3);
        let input = random_maps(3, 12, 12, 1);
        let filters = random_filters(4, 3, 3, 1);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err =
            ImplicitGemmConv::default().run(&mut gpu, &problem, &input, &filters, SimMode::Full);
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn config_validation() {
        let mut cfg = ImplicitGemmConfig::for_filters(64);
        cfg.validate().unwrap();
        cfg.vec_width = 3;
        assert!(cfg.validate().is_err());
        let cfg = ImplicitGemmConfig::for_filters(1);
        assert_eq!(cfg.tile_m, 1);
        cfg.validate().unwrap();
    }
}

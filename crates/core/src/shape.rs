//! Architecture-derived kernel shapes (paper eq. 1 in reverse).
//!
//! The paper derives the mismatch factor `n = W_SMB / W_CD` (eq. 1) and then
//! *hard-wires* the Kepler conclusion (`n = 2` for `float`, hence the float2
//! layout) into its kernels. This module runs the equation the other way:
//! given any [`GpuSpec`] and a computation [`DataType`], it derives the
//! vectorization factor a matched kernel must use on that part, clamped to
//! the factors the kernel templates can actually instantiate. The
//! `kconv-arch` generator builds on this to emit matched variants for
//! 4-byte-bank parts (Fermi/Maxwell, `n = 1` for `f32`) and for short data
//! types (`fp16`/half2, `n = 2` on 4-byte banks) without any per-architecture
//! hand tuning.

use kconv_sim::GpuSpec;

use crate::dtype::DataType;

/// The vectorization shape of a generated kernel: which data type each lane
/// computes on and how many elements each thread moves as one unit through
/// shared memory.
///
/// A shape is *matched* for a spec when `vec_width * dtype.bytes()` equals
/// the shared-memory bank width, so one thread's access covers exactly one
/// bank word and the conventional-layout serialization of eq. 1 disappears.
///
/// # Examples
///
/// ```
/// use kconv_core::{DataType, KernelShape};
/// use kconv_sim::GpuSpec;
///
/// // float2 on Kepler's 8-byte banks — the paper's hand-derived layout.
/// let kepler = KernelShape::matched(&GpuSpec::kepler_k40m(), DataType::F32);
/// assert_eq!(kepler.vec_width, 2);
///
/// // Plain float on 4-byte-bank Maxwell: already matched at n = 1.
/// let maxwell = KernelShape::matched(&GpuSpec::maxwell_like(), DataType::F32);
/// assert_eq!(maxwell.vec_width, 1);
///
/// // half2 on 4-byte banks: the mismatch reappears and n = 2 removes it.
/// let half2 = KernelShape::matched(&GpuSpec::maxwell_like(), DataType::F16);
/// assert_eq!(half2.vec_width, 2);
/// assert_eq!(half2.lane_bytes(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelShape {
    /// Computation data type of one element (`W_CD = dtype.bytes()`).
    pub dtype: DataType,
    /// Elements each thread accesses as one vectorized unit (`n`).
    pub vec_width: usize,
}

impl KernelShape {
    /// Vector factors the kernel templates can instantiate for a data type.
    ///
    /// The special/general f32 kernels dispatch over `n ∈ {1, 2, 4}`; the
    /// narrow-storage kernels dispatch over lane widths of 1..=8 bytes, which
    /// bounds `fp16` to `n ∈ {1, 2, 4}` and `int8` to `n ∈ {1, 2, 4, 8}`.
    pub fn supported_factors(dtype: DataType) -> &'static [usize] {
        match dtype {
            DataType::F32 => &[1, 2, 4],
            DataType::F16 => &[1, 2, 4],
            DataType::I8 => &[1, 2, 4, 8],
        }
    }

    /// Applies eq. 1 in reverse: the vector factor that matches `dtype` to
    /// `spec`'s shared-memory bank width, i.e. `W_SMB / W_CD` clamped to the
    /// largest factor in [`supported_factors`](Self::supported_factors) that
    /// does not exceed it (and at least 1).
    pub fn derive_n(spec: &GpuSpec, dtype: DataType) -> usize {
        let ideal = (spec.bank_width.bytes() as usize / dtype.bytes()).max(1);
        Self::supported_factors(dtype)
            .iter()
            .copied()
            .filter(|&f| f <= ideal)
            .max()
            .unwrap_or(1)
    }

    /// The matched shape for `dtype` on `spec`:
    /// `vec_width = derive_n(spec, dtype)`.
    pub fn matched(spec: &GpuSpec, dtype: DataType) -> Self {
        KernelShape {
            dtype,
            vec_width: Self::derive_n(spec, dtype),
        }
    }

    /// A shape with an explicitly forced vector factor — the knob the `arch`
    /// harness uses to reproduce the paper's wrong-`n` serialization on
    /// purpose. Returns `None` if `n` is not an instantiable factor for
    /// `dtype`.
    pub fn forced(dtype: DataType, n: usize) -> Option<Self> {
        Self::supported_factors(dtype)
            .contains(&n)
            .then_some(KernelShape {
                dtype,
                vec_width: n,
            })
    }

    /// Bytes of one element (`W_CD`).
    pub fn elem_bytes(&self) -> usize {
        self.dtype.bytes()
    }

    /// Bytes one thread moves per vectorized access
    /// (`vec_width * elem_bytes`).
    pub fn lane_bytes(&self) -> usize {
        self.vec_width * self.elem_bytes()
    }

    /// Whether this shape saturates `spec`'s shared-memory fabric: its lane
    /// width covers a whole bank word, or the bank is narrower than one
    /// element (in which case no factor can help and `n = 1` is optimal).
    pub fn is_matched_for(&self, spec: &GpuSpec) -> bool {
        let bank = spec.bank_width.bytes() as usize;
        self.lane_bytes() == bank || (self.elem_bytes() >= bank && self.vec_width == 1)
    }

    /// The serialization factor eq. 1 predicts for this shape on `spec`:
    /// how many shared-memory cycles a conventional request takes relative
    /// to a matched one. 1 when matched; `W_SMB / (n * W_CD)` otherwise.
    pub fn predicted_waste(&self, spec: &GpuSpec) -> u64 {
        let bank = spec.bank_width.bytes();
        let lane = self.lane_bytes() as u64;
        if lane >= bank {
            1
        } else {
            bank / lane
        }
    }
}

impl std::fmt::Display for KernelShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} n={}", self.dtype, self.vec_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_n_reproduces_the_papers_table() {
        let kepler = GpuSpec::kepler_k40m();
        let maxwell = GpuSpec::maxwell_like();
        // f32: float2 on Kepler's 8B banks, scalar on 4B banks.
        assert_eq!(KernelShape::derive_n(&kepler, DataType::F32), 2);
        assert_eq!(KernelShape::derive_n(&maxwell, DataType::F32), 1);
        // fp16: n = 4 on Kepler, half2 (n = 2) on 4B banks.
        assert_eq!(KernelShape::derive_n(&kepler, DataType::F16), 4);
        assert_eq!(KernelShape::derive_n(&maxwell, DataType::F16), 2);
        // int8: n = 8 on Kepler, n = 4 on 4B banks.
        assert_eq!(KernelShape::derive_n(&kepler, DataType::I8), 8);
        assert_eq!(KernelShape::derive_n(&maxwell, DataType::I8), 4);
    }

    #[test]
    fn matched_shapes_cover_one_bank_word() {
        for spec in GpuSpec::presets_all() {
            for dtype in [DataType::F32, DataType::F16, DataType::I8] {
                let shape = KernelShape::matched(&spec, dtype);
                assert!(shape.is_matched_for(&spec), "{shape} on {}", spec.name);
                assert_eq!(shape.predicted_waste(&spec), 1);
                assert_eq!(shape.lane_bytes() as u64, spec.bank_width.bytes());
            }
        }
    }

    #[test]
    fn forced_rejects_uninstantiable_factors() {
        assert!(KernelShape::forced(DataType::F32, 2).is_some());
        assert!(KernelShape::forced(DataType::F32, 3).is_none());
        assert!(KernelShape::forced(DataType::F32, 8).is_none());
        assert!(KernelShape::forced(DataType::I8, 8).is_some());
        assert_eq!(
            KernelShape::forced(DataType::F16, 1).unwrap().lane_bytes(),
            2
        );
    }

    #[test]
    fn wrong_n_predicts_the_papers_serialization() {
        let kepler = GpuSpec::kepler_k40m();
        let scalar = KernelShape::forced(DataType::F32, 1).unwrap();
        assert_eq!(scalar.predicted_waste(&kepler), 2);
        let maxwell = GpuSpec::maxwell_like();
        let half1 = KernelShape::forced(DataType::F16, 1).unwrap();
        assert_eq!(half1.predicted_waste(&maxwell), 2);
        // Overshooting the bank width never serializes.
        let quad = KernelShape::forced(DataType::F32, 4).unwrap();
        assert_eq!(quad.predicted_waste(&maxwell), 1);
    }

    #[test]
    fn display_names_dtype_and_factor() {
        let s = KernelShape::matched(&GpuSpec::kepler_k40m(), DataType::F16);
        assert_eq!(format!("{s}"), "fp16 n=4");
    }
}

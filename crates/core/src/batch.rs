//! Batched convolution.
//!
//! The paper's kernels process one image per launch (batch appears in its
//! related-work discussion only — FFT-based methods *need* large batches
//! to amortize filter transforms; direct kernels do not). For CNN
//! inference over a batch this module runs one launch per image and
//! aggregates the statistics; the per-launch overhead
//! ([`LAUNCH_OVERHEAD_S`](kconv_sim::timing::LAUNCH_OVERHEAD_S), ~4 us)
//! is the price relative to a fused batch grid, and
//! [`BatchRun::launch_overhead_share`] reports exactly how much that is —
//! negligible for the image sizes of Figs. 7-8.

use kconv_sim::{Gpu, SimMode};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

use crate::error::{ConvError, Result};
use crate::run::{ConvRun, Convolution};

/// Result of a batched run.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-image runs, in input order.
    pub runs: Vec<ConvRun>,
}

impl BatchRun {
    /// Total modeled time across the batch.
    pub fn total_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.report.seconds()).sum()
    }

    /// Aggregate algorithmic throughput of the batch.
    pub fn effective_gflops(&self, problem: &ConvProblem) -> f64 {
        let flops = problem.flops() as f64 * self.runs.len() as f64;
        flops / self.total_seconds() / 1e9
    }

    /// Fraction of the total time spent in per-launch overhead — what a
    /// fused batch grid would recover.
    pub fn launch_overhead_share(&self) -> f64 {
        let overhead = kconv_sim::timing::LAUNCH_OVERHEAD_S * self.runs.len() as f64;
        overhead / self.total_seconds()
    }

    /// The outputs, in input order.
    pub fn outputs(&self) -> impl Iterator<Item = &FeatureMaps> {
        self.runs.iter().map(|r| &r.output)
    }
}

/// Runs `conv` over every image of a batch (one launch each, shared
/// filters), validating shapes up front. Each launch honors the caller's
/// [`Gpu::parallelism`] setting — batch drivers typically opt in with
/// [`kconv_sim::Parallelism::env_or_auto`], which is bit-identical to
/// serial execution.
///
/// # Errors
///
/// Returns [`ConvError::Shape`] if any image mismatches `problem`, and
/// propagates kernel errors.
pub fn run_batch(
    conv: &dyn Convolution,
    gpu: &mut Gpu,
    problem: &ConvProblem,
    inputs: &[FeatureMaps],
    filters: &FilterSet,
    mode: SimMode,
) -> Result<BatchRun> {
    if inputs.is_empty() {
        return Err(ConvError::Shape("empty batch".into()));
    }
    for (i, input) in inputs.iter().enumerate() {
        if !problem.matches(input, filters) {
            return Err(ConvError::Shape(format!(
                "batch image {i} does not match {problem}"
            )));
        }
    }
    let mut runs = Vec::with_capacity(inputs.len());
    for input in inputs {
        runs.push(conv.run(gpu, problem, input, filters, mode.clone())?);
    }
    Ok(BatchRun { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv_reference, SpecialConv};
    use kconv_sim::GpuSpec;
    use kconv_tensor::{assert_close, random_filters, random_maps, CONV_TOL};

    fn batch(n: usize) -> (ConvProblem, Vec<FeatureMaps>, FilterSet) {
        let problem = ConvProblem::special(40, 2, 3);
        let inputs = (0..n)
            .map(|i| random_maps(1, 40, 40, 100 + i as u64))
            .collect();
        let filters = random_filters(2, 1, 3, 200);
        (problem, inputs, filters)
    }

    #[test]
    fn every_image_is_correct() {
        let (problem, inputs, filters) = batch(3);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let result = run_batch(
            &SpecialConv::default(),
            &mut gpu,
            &problem,
            &inputs,
            &filters,
            SimMode::Full,
        )
        .unwrap();
        assert_eq!(result.runs.len(), 3);
        for (input, output) in inputs.iter().zip(result.outputs()) {
            let want = conv_reference(&problem, input, &filters);
            assert_close(output.as_slice(), want.as_slice(), CONV_TOL, "batch image");
        }
    }

    #[test]
    fn totals_aggregate() {
        let (problem, inputs, filters) = batch(4);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let result = run_batch(
            &SpecialConv::default(),
            &mut gpu,
            &problem,
            &inputs,
            &filters,
            SimMode::Full,
        )
        .unwrap();
        let sum: f64 = result.runs.iter().map(|r| r.report.seconds()).sum();
        assert!((result.total_seconds() - sum).abs() < 1e-15);
        assert!(result.effective_gflops(&problem) > 0.0);
        let share = result.launch_overhead_share();
        assert!(share > 0.0 && share < 1.0, "overhead share {share}");
    }

    #[test]
    fn empty_batch_rejected() {
        let (problem, _, filters) = batch(1);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err = run_batch(
            &SpecialConv::default(),
            &mut gpu,
            &problem,
            &[],
            &filters,
            SimMode::Full,
        );
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }

    #[test]
    fn mismatched_image_rejected_before_any_launch() {
        let (problem, mut inputs, filters) = batch(2);
        inputs[1] = random_maps(1, 20, 20, 3); // wrong size
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let err = run_batch(
            &SpecialConv::default(),
            &mut gpu,
            &problem,
            &inputs,
            &filters,
            SimMode::Full,
        );
        assert!(matches!(err, Err(ConvError::Shape(_))));
    }
}

//! # kconv-arch — architecture-adaptive kernel generation, verified by replay
//!
//! The paper derives the bank-width mismatch factor `n = W_SMB / W_CD`
//! (eq. 1) by hand for one machine — `n = 2` for `float` on Kepler's
//! 8-byte shared-memory banks — and hard-wires that conclusion into its
//! kernels as the float2 layout. This crate runs eq. 1 the other way, as a
//! *generator*: given any [`GpuSpec`] and a computation [`DataType`], it
//! derives the matched vector factor via [`KernelShape::derive_n`] and
//! instantiates the kernel variant that saturates that machine's
//! shared-memory fabric:
//!
//! * `f32` on 8-byte banks (Kepler) → the paper's float2 kernel (`n = 2`);
//! * `f32` on 4-byte banks (Fermi/Maxwell-class) → the scalar variant
//!   (`n = 1`) — vectorization would buy nothing and costs registers;
//! * `fp16` on 4-byte banks → the half2 variant (`n = 2`, two binary16
//!   taps per constant-memory word) — the mismatch *reappears* for short
//!   types exactly as section 6 predicts, and pairing removes it;
//! * `int8` → `n = 4` or `8` depending on the bank width.
//!
//! The claim that a generated variant is actually matched is not taken
//! from the formula: [`capture`] records the variant's full warp-level
//! address trace (KTRC) on its target spec, and the replay metrics
//! ([`conflict_factor`], [`full_warp_waste`]) re-price that trace under
//! any spec with [`kconv_replay`]. A matched variant replays to a
//! full-warp waste of exactly 1.0 on its own machine; forcing the wrong
//! `n` via [`generate_forced`] reproduces the paper's n-fold
//! serialization, cycle-exactly. The `arch` harness binary turns those
//! replays into CI gates.
//!
//! ```
//! use kconv_arch::{generate, full_warp_waste, capture};
//! use kconv_core::DataType;
//! use kconv_sim::GpuSpec;
//! use kconv_tensor::ConvProblem;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // fp16 on a 4-byte-bank part: the generator picks half2 (n = 2)...
//! let spec = GpuSpec::maxwell_like();
//! let variant = generate(&spec, DataType::F16);
//! assert_eq!(variant.shape.vec_width, 2);
//!
//! // ...and replaying its captured trace on its own spec proves the
//! // shared-memory fabric is saturated: full-warp waste exactly 1.0.
//! let cap = capture(&variant, &ConvProblem::special(64, 2, 3))?;
//! assert_eq!(full_warp_waste(&cap.bytes, &spec, variant.shape.lane_bytes())?, 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use kconv_core::{
    i8_input_scale, i8_output_scale, quantize_filters_f16, quantize_maps, quantize_maps_f16,
    ConvError, ConvRun, Convolution, DataType, Encoding, GeneralConfig, GeneralConv, KernelShape,
    SpecialConfig, SpecialConv, SpecialConvHalf2, SpecialConvI8, F16_TOL, I8_TOL,
};
use kconv_replay::{replay, ReplayError, TargetSpec};
use kconv_sim::{Gpu, GpuSpec, LaunchReport, SanitizerMode, SimMode};
use kconv_sim::{TraceOp, WARP_SIZE};
use kconv_systolic::{PipelineConfig, SystolicConv};
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet, CONV_TOL};
use kconv_trace::{SharedBuffer, TraceWriter};

/// Input seed shared by every [`capture`] (and the `arch` harness).
pub const INPUT_SEED: u64 = 307;
/// Filter seed shared by every [`capture`].
pub const FILTER_SEED: u64 = 311;

/// One generator output: a concrete kernel instance plus the shape and
/// target it was derived for.
pub struct GeneratedVariant {
    /// The architecture the variant was generated for.
    pub spec: GpuSpec,
    /// The derived (or forced) vectorization shape.
    pub shape: KernelShape,
    /// Whether `shape` is the matched shape for `spec` (false for
    /// [`generate_forced`] ablations with a deliberately wrong `n`).
    pub matched: bool,
    /// The instantiated kernel.
    pub conv: Box<dyn Convolution>,
}

impl std::fmt::Debug for GeneratedVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratedVariant")
            .field("spec", &self.spec.name)
            .field("shape", &self.shape)
            .field("matched", &self.matched)
            .field("kernel", &self.conv.name())
            .finish()
    }
}

impl GeneratedVariant {
    /// Short display label, e.g. `"fp16 n=2 on Maxwell-class"`.
    pub fn label(&self) -> String {
        format!("{} on {}", self.shape, self.spec.name)
    }
}

/// Instantiates the special-case kernel template for `shape`.
fn instantiate(shape: KernelShape) -> Box<dyn Convolution> {
    let config = SpecialConfig::with_vec_width(shape.vec_width);
    match shape.dtype {
        DataType::F32 => Box::new(SpecialConv::new(config)),
        DataType::F16 => Box::new(SpecialConvHalf2::new(config)),
        DataType::I8 => Box::new(SpecialConvI8::new(config)),
    }
}

/// Generates the matched special-case kernel variant for `dtype` on
/// `spec`: eq. 1 in reverse (see [`KernelShape::derive_n`]), then template
/// instantiation. The result's replayed full-warp waste on `spec` is
/// exactly 1.0 — the property the `arch` harness re-proves from traces.
pub fn generate(spec: &GpuSpec, dtype: DataType) -> GeneratedVariant {
    let shape = KernelShape::matched(spec, dtype);
    GeneratedVariant {
        spec: spec.clone(),
        shape,
        matched: true,
        conv: instantiate(shape),
    }
}

/// Generates a variant with an explicitly forced vector factor — the
/// wrong-`n` ablation knob that reproduces the paper's serialization on
/// purpose. Returns `None` if `n` is not an instantiable factor for
/// `dtype` (see [`KernelShape::supported_factors`]).
pub fn generate_forced(spec: &GpuSpec, dtype: DataType, n: usize) -> Option<GeneratedVariant> {
    let shape = KernelShape::forced(dtype, n)?;
    Some(GeneratedVariant {
        spec: spec.clone(),
        shape,
        matched: shape.is_matched_for(spec),
        conv: instantiate(shape),
    })
}

/// Generates the matched variant for every data type on `spec` (one per
/// [`DataType`], in declaration order).
pub fn generate_all(spec: &GpuSpec) -> Vec<GeneratedVariant> {
    [DataType::F32, DataType::F16, DataType::I8]
        .into_iter()
        .map(|dtype| generate(spec, dtype))
        .collect()
}

/// Generates the matched general-case (multi-channel) configuration for
/// filter size `k` on `spec` — the paper's Table 1 tile with the vector
/// factor re-derived from the bank width. The general kernel computes in
/// `f32` only, so this is the one dtype the general template instantiates.
pub fn generate_general(spec: &GpuSpec, k: usize) -> GeneratedVariant {
    let shape = KernelShape::matched(spec, DataType::F32);
    GeneratedVariant {
        spec: spec.clone(),
        shape,
        matched: true,
        conv: Box::new(GeneralConv::new(GeneralConfig::matched_for(spec, k))),
    }
}

/// Generates the pipelined systolic variant for `spec`: the matched `f32`
/// staging shape (eq. 1 in reverse, like [`generate_general`]) wrapped in
/// the double-buffered executor at the given pipeline `depth` (1 = the
/// stage/compute alternation baseline, 2 = ping/pong). This is how the
/// generator's dtype/vector-factor derivation and the staging pipeline
/// compose: the same [`KernelShape`] drives both the bank-matched access
/// width and the pipelined schedule.
pub fn generate_systolic(spec: &GpuSpec, depth: usize) -> GeneratedVariant {
    let shape = KernelShape::matched(spec, DataType::F32);
    GeneratedVariant {
        spec: spec.clone(),
        shape,
        matched: true,
        conv: Box::new(SystolicConv::new(PipelineConfig {
            depth,
            shape,
            ..PipelineConfig::default()
        })),
    }
}

/// The reference oracle for a generated variant: what input and filters
/// the kernel *effectively* convolves (after storage quantization) and
/// the tolerance its output must meet against
/// [`kconv_core::conv_reference`] on them.
///
/// * `f32` — the data untouched, within [`CONV_TOL`] (the kernels
///   accumulate in a different order than the f64 reference);
/// * `fp16` — input **and** filters quantized through binary16
///   ([`quantize_maps_f16`], [`quantize_filters_f16`] — the half2 variant
///   stores taps as packed halves too), within [`F16_TOL`];
/// * `int8` — input quantized through the data-derived symmetric scales,
///   within [`I8_TOL`] (output quantization adds its own noise).
pub fn reference_oracle(
    dtype: DataType,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> (FeatureMaps, FilterSet, f32) {
    match dtype {
        DataType::F32 => (input.clone(), filters.clone(), CONV_TOL),
        DataType::F16 => (
            quantize_maps_f16(input),
            quantize_filters_f16(filters),
            F16_TOL,
        ),
        DataType::I8 => {
            let enc = Encoding::I8 {
                scale_in: i8_input_scale(input),
                scale_out: i8_output_scale(input, filters),
            };
            (quantize_maps(input, enc), filters.clone(), I8_TOL)
        }
    }
}

/// Runs `variant` on its own spec and validates the output against the
/// CPU reference through [`reference_oracle`].
///
/// # Errors
///
/// Returns the launch error, or a description of the first mismatching
/// output element.
pub fn run_verified(
    variant: &GeneratedVariant,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> Result<ConvRun, String> {
    let mut gpu = Gpu::new(variant.spec.clone());
    let run = variant
        .conv
        .run(&mut gpu, problem, input, filters, SimMode::Full)
        .map_err(|e| format!("{}: {e}", variant.label()))?;
    let (ref_input, ref_filters, tol) = reference_oracle(variant.shape.dtype, input, filters);
    run.verify_executed(problem, &ref_input, &ref_filters, tol)
        .map_err(|e| format!("{}: {e}", variant.label()))?;
    Ok(run)
}

/// One captured variant execution: the KTRC bytes plus the live report
/// they must replay back to.
#[derive(Debug)]
pub struct ArchCapture {
    /// The kernel's self-reported name.
    pub kernel: String,
    /// The raw KTRC byte stream.
    pub bytes: Vec<u8>,
    /// The live launch the trace was captured from.
    pub live: LaunchReport,
}

/// Runs `variant` once on its own spec with a trace writer attached,
/// using the crate's fixed seeds ([`INPUT_SEED`], [`FILTER_SEED`]).
/// The sanitizer is off during capture (sanitized runs are a separate
/// gate — see the `arch` harness).
///
/// # Errors
///
/// Propagates the launch error.
pub fn capture(
    variant: &GeneratedVariant,
    problem: &ConvProblem,
) -> Result<ArchCapture, ConvError> {
    let input = random_maps(problem.channels, problem.height, problem.width, INPUT_SEED);
    let filters = random_filters(problem.filters, problem.channels, problem.k, FILTER_SEED);
    let mut gpu = Gpu::new(variant.spec.clone()).with_sanitizer(SanitizerMode::Off);
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = variant
        .conv
        .run(&mut gpu, problem, &input, &filters, SimMode::Full);
    gpu.set_trace_sink(None);
    let run = run?;
    Ok(ArchCapture {
        kernel: variant.conv.name(),
        bytes: buf.take(),
        live: run.report,
    })
}

/// Re-prices a captured trace under `target` and returns the
/// shared-memory bandwidth waste factor, combined across all launches in
/// the trace (bytes the SM pipeline moved per byte the lanes requested;
/// 1.0 means every cycle's full bank row carried useful data).
///
/// # Errors
///
/// Propagates trace decode/replay errors.
pub fn replayed_sm_waste(bytes: &[u8], target: &GpuSpec) -> Result<f64, ReplayError> {
    let reports = replay(bytes, &TargetSpec::Spec(target.clone()))?;
    let cycles: u64 = reports.iter().map(|r| r.sm_cycles()).sum();
    let useful: u64 = reports.iter().map(|r| r.stats.sm_bytes_useful).sum();
    if useful == 0 {
        return Ok(0.0);
    }
    Ok((cycles * target.smem_bytes_per_cycle()) as f64 / useful as f64)
}

/// Re-prices a captured trace under `target` and returns the
/// shared-memory **bank-conflict serialization factor**: replay cycles
/// per warp access instruction, over all SM loads and stores in the
/// trace. Exactly 1.0 means no access serialized on any bank (0.0 when
/// the trace touched no shared memory).
///
/// # Errors
///
/// Propagates trace decode/replay errors.
pub fn conflict_factor(bytes: &[u8], target: &GpuSpec) -> Result<f64, ReplayError> {
    let reports = replay(bytes, &TargetSpec::Spec(target.clone()))?;
    let (mut cycles, mut events) = (0u64, 0u64);
    for r in &reports {
        for op in [TraceOp::SmLd, TraceOp::SmSt] {
            cycles += r.op(op).cycles;
            events += r.op(op).events;
        }
    }
    if events == 0 {
        return Ok(0.0);
    }
    Ok(cycles as f64 / events as f64)
}

/// Re-prices a captured trace under `target` and returns the
/// **full-warp-normalized** shared-memory waste: bytes the SM pipeline
/// moved per byte a *fully occupied* warp would have requested
/// (`cycles x bank-row width` over `events x 32 x lane_bytes`). Unlike
/// [`replayed_sm_waste`] this strips the tile-edge lane-masking overhead
/// of real kernels, leaving the pure architectural quantity of eq. 1:
/// exactly 1.0 when every access fills a bank row conflict-free, exactly
/// `W_SMB / (n * W_CD)` when the lane under-fills it.
///
/// `lane_bytes` must be the per-lane access width of the traced kernel's
/// SM ops (uniform for the special-kernel family:
/// [`KernelShape::lane_bytes`]).
///
/// # Errors
///
/// Propagates trace decode/replay errors.
pub fn full_warp_waste(
    bytes: &[u8],
    target: &GpuSpec,
    lane_bytes: usize,
) -> Result<f64, ReplayError> {
    let reports = replay(bytes, &TargetSpec::Spec(target.clone()))?;
    let (mut cycles, mut events) = (0u64, 0u64);
    for r in &reports {
        for op in [TraceOp::SmLd, TraceOp::SmSt] {
            cycles += r.op(op).cycles;
            events += r.op(op).events;
        }
    }
    if events == 0 {
        return Ok(0.0);
    }
    Ok((cycles * target.smem_bytes_per_cycle()) as f64
        / (events * WARP_SIZE as u64 * lane_bytes as u64) as f64)
}

/// Measures eq. 1's mismatch factor for `dtype` at vector factor `n` on
/// `spec`, from a trace: the forced variant is captured on `problem` and
/// its [`full_warp_waste`] replayed on `spec`. For lanes that do not
/// overshoot the bank word (`n * dtype.bytes() <= W_SMB`) this is exactly
/// `W_SMB / (n * W_CD)` — e.g. 2.0 for scalar fp16 on 4-byte banks, 1.0
/// at the derived `n` — matching [`KernelShape::predicted_waste`] from
/// measured addresses rather than from the formula.
///
/// # Errors
///
/// Returns a description of an uninstantiable `n` or a failed
/// capture/replay.
pub fn measured_mismatch(
    spec: &GpuSpec,
    dtype: DataType,
    n: usize,
    problem: &ConvProblem,
) -> Result<f64, String> {
    let variant = generate_forced(spec, dtype, n)
        .ok_or_else(|| format!("n={n} is not instantiable for {dtype}"))?;
    let cap = capture(&variant, problem).map_err(|e| format!("{}: {e}", variant.label()))?;
    full_warp_waste(&cap.bytes, spec, variant.shape.lane_bytes())
        .map_err(|e| format!("{}: {e}", variant.label()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_reproduces_the_papers_kepler_kernels() {
        let kepler = GpuSpec::kepler_k40m();
        let v = generate(&kepler, DataType::F32);
        assert_eq!(v.shape.vec_width, 2);
        assert!(v.matched);
        assert!(v.conv.name().contains("n=2"), "{}", v.conv.name());
        // The hand-tuned preset and the generated config agree.
        assert_eq!(
            SpecialConfig::matched_for(&kepler).vec_width,
            v.shape.vec_width
        );
    }

    #[test]
    fn derived_n_is_always_bank_over_dtype_clamped() {
        // Property over the full spec grid: derive_n == bank/dtype bytes,
        // clamped to the template-instantiable factors.
        let grid = GpuSpec::kepler_k40m()
            .grid()
            .bank_widths(&[kconv_sim::BankWidth::B4, kconv_sim::BankWidth::B8])
            .line_sizes(&[64, 128])
            .ro_cache_bytes(&[24 * 1024, 48 * 1024])
            .sm_counts(&[8, 15])
            .build()
            .expect("grid axes valid");
        assert_eq!(grid.len(), 16);
        for spec in &grid {
            for dtype in [DataType::F32, DataType::F16, DataType::I8] {
                let n = KernelShape::derive_n(spec, dtype);
                let ideal = (spec.bank_width.bytes() as usize / dtype.bytes()).max(1);
                let clamped = KernelShape::supported_factors(dtype)
                    .iter()
                    .copied()
                    .filter(|&f| f <= ideal)
                    .max()
                    .unwrap_or(1);
                assert_eq!(n, clamped, "{dtype:?} on {}", spec.name);
                // Every supported dtype's ideal factor is instantiable, so
                // the clamp is exact: n * dtype bytes == bank width.
                assert_eq!(
                    n * dtype.bytes(),
                    spec.bank_width.bytes() as usize,
                    "{dtype:?} on {}",
                    spec.name
                );
                let v = generate(spec, dtype);
                assert_eq!(v.shape.vec_width, n);
                assert!(v.matched);
            }
        }
    }

    #[test]
    fn forced_variants_know_when_they_mismatch() {
        let kepler = GpuSpec::kepler_k40m();
        let wrong = generate_forced(&kepler, DataType::F32, 1).expect("n=1 instantiable");
        assert!(!wrong.matched);
        assert_eq!(wrong.shape.predicted_waste(&kepler), 2);
        assert!(generate_forced(&kepler, DataType::F32, 3).is_none());
        let right = generate_forced(&kepler, DataType::F32, 2).expect("n=2 instantiable");
        assert!(right.matched);
    }

    #[test]
    fn generate_all_covers_every_dtype() {
        let variants = generate_all(&GpuSpec::maxwell_like());
        let dtypes: Vec<DataType> = variants.iter().map(|v| v.shape.dtype).collect();
        assert_eq!(dtypes, [DataType::F32, DataType::F16, DataType::I8]);
        assert_eq!(
            variants
                .iter()
                .map(|v| v.shape.vec_width)
                .collect::<Vec<_>>(),
            [1, 2, 4]
        );
    }

    #[test]
    fn generated_variants_match_the_reference_on_table1_shapes() {
        // Differential gate: every generated special variant, on both bank
        // widths, against the CPU reference through its oracle. Problems
        // are Table-1-sized filter banks on a small image.
        for spec in [GpuSpec::kepler_k40m(), GpuSpec::maxwell_like()] {
            for k in [3, 5] {
                let problem = ConvProblem::special(64, 4, k);
                let input = random_maps(1, 64, 64, INPUT_SEED);
                let filters = random_filters(4, 1, k, FILTER_SEED);
                for variant in generate_all(&spec) {
                    run_verified(&variant, &problem, &input, &filters)
                        .unwrap_or_else(|e| panic!("k={k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn generated_general_variant_matches_the_reference() {
        for spec in [GpuSpec::kepler_k40m(), GpuSpec::maxwell_like()] {
            let variant = generate_general(&spec, 3);
            let problem = ConvProblem::general(34, 4, 64, 3);
            let input = random_maps(4, 34, 34, INPUT_SEED);
            let filters = random_filters(64, 4, 3, FILTER_SEED);
            run_verified(&variant, &problem, &input, &filters)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn generated_systolic_variants_match_the_reference_at_both_depths() {
        // The generator's derived staging width composes with the pipeline:
        // on each bank width, both schedules verify against the CPU
        // reference and the derived n flows into the staging stream.
        for spec in [GpuSpec::kepler_k40m(), GpuSpec::maxwell_like()] {
            let problem = ConvProblem::general(34, 4, 4, 3).with_stride(2);
            let input = random_maps(4, 34, 34, INPUT_SEED);
            let filters = random_filters(4, 4, 3, FILTER_SEED);
            for depth in [1, 2] {
                let variant = generate_systolic(&spec, depth);
                assert_eq!(
                    variant.shape.vec_width,
                    KernelShape::derive_n(&spec, DataType::F32)
                );
                assert!(
                    variant.conv.name().contains(&format!("d{depth}")),
                    "{}",
                    variant.conv.name()
                );
                run_verified(&variant, &problem, &input, &filters)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn systolic_capture_replays_with_barrier_events() {
        // A depth-2 capture carries v4 Bar events; replay grafts the live
        // barrier counters and prices the events at zero memory cost.
        let spec = GpuSpec::kepler_k40m();
        let variant = generate_systolic(&spec, 2);
        let problem = ConvProblem::general(20, 4, 2, 3);
        let cap = capture(&variant, &problem).expect("capture");
        let reports = replay(&cap.bytes, &TargetSpec::Spec(spec.clone())).expect("replay");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].stats.barriers, cap.live.stats.barriers);
        assert_eq!(reports[0].stats.bar_syncs, cap.live.stats.bar_syncs);
        assert_eq!(
            reports[0].stats.gm_ld_bytes_bus,
            cap.live.stats.gm_ld_bytes_bus
        );
    }

    #[test]
    fn matched_variants_never_serialize_on_their_own_banks() {
        // Every generated variant, on every preset: the conflict factor
        // (replay cycles per SM access) and the full-warp waste are both
        // exactly 1.0 on its own spec — conflict-free AND bank-row-filling.
        for spec in GpuSpec::presets_all() {
            for variant in generate_all(&spec) {
                let cap = capture(&variant, &ConvProblem::special(64, 2, 3)).expect("capture");
                let factor = conflict_factor(&cap.bytes, &spec).expect("replay");
                assert_eq!(factor, 1.0, "{}", variant.label());
                let waste =
                    full_warp_waste(&cap.bytes, &spec, variant.shape.lane_bytes()).expect("replay");
                assert_eq!(waste, 1.0, "{}", variant.label());
            }
        }
    }

    #[test]
    fn half2_mismatch_factor_is_exactly_two_then_gone() {
        // fp16 on 4B banks: eq. 1's factor at forced n=1 is exactly 2
        // (relative to the structurally identical f32 kernel), and the
        // derived n=2 eliminates it exactly.
        let spec = GpuSpec::maxwell_like();
        let problem = ConvProblem::special(64, 2, 3);
        assert_eq!(
            measured_mismatch(&spec, DataType::F16, 1, &problem).expect("measures"),
            2.0
        );
        assert_eq!(
            measured_mismatch(&spec, DataType::F16, 2, &problem).expect("measures"),
            1.0
        );
        // The same reappearance on 8B banks: half2's 4-byte unit fills
        // only half a Kepler bank word; n=4 is the derived cure.
        let kepler = GpuSpec::kepler_k40m();
        assert_eq!(
            measured_mismatch(&kepler, DataType::F16, 2, &problem).expect("measures"),
            2.0
        );
    }

    #[test]
    fn generated_serialization_never_exceeds_the_hardwired_kernels() {
        // The generator's f32 variant, captured and replayed on each
        // preset, never serializes more than the paper's hand-tuned
        // Kepler kernel's trace replayed on that preset — and strictly
        // less on 4-byte-bank presets, where the hard-wired 8-byte lane
        // needs two bank-row cycles per access.
        let problem = ConvProblem::special(64, 2, 3);
        let hardwired = generate_forced(&GpuSpec::kepler_k40m(), DataType::F32, 2).unwrap();
        let hard_cap = capture(&hardwired, &problem).expect("capture");
        for spec in GpuSpec::presets_all() {
            let hard_factor = conflict_factor(&hard_cap.bytes, &spec).expect("replay");
            let gen = generate(&spec, DataType::F32);
            let gen_cap = capture(&gen, &problem).expect("capture");
            let gen_factor = conflict_factor(&gen_cap.bytes, &spec).expect("replay");
            assert!(
                gen_factor <= hard_factor,
                "{}: generated {gen_factor} > hardwired {hard_factor}",
                spec.name
            );
            if spec.bank_width.bytes() == 4 {
                assert!(
                    gen_factor < hard_factor,
                    "{}: expected strict win, got {gen_factor} vs {hard_factor}",
                    spec.name
                );
            }
        }
    }
}

//! # kconv-gemm — blocked SGEMM kernels on the kconv GPU simulator
//!
//! Three single-precision GEMM kernels reproducing the paper's Fig. 2
//! motivation experiment:
//!
//! * [`GemmConfig::kepler_tuned`] — a cuBLAS-like kernel with large tiles
//!   and `float2` (bank-width-matched) shared-memory fragment accesses;
//! * [`GemmConfig::fermi_tuned`] — the MAGMA kernel of the paper's
//!   reference \[19\], tuned for Fermi's 4-byte banks: scalar fragment
//!   accesses that waste half of Kepler's 8-byte-bank bandwidth;
//! * [`GemmConfig::fermi_tuned_matched`] — the paper's "MAGMA mod.": the
//!   same kernel with its computation data width matched to the bank width.
//!
//! The explicit-GEMM convolution baseline in `kconv-core` also builds on
//! [`launch_gemm`].
//!
//! ## Example
//!
//! ```
//! use kconv_gemm::{launch_gemm, gemm_ref, GemmConfig, GemmShape};
//! use kconv_sim::{Gpu, GpuSpec, SimMode};
//!
//! # fn main() -> Result<(), kconv_sim::SimError> {
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let shape = GemmShape::square(128);
//! let av = vec![0.5f32; 128 * 128];
//! let bv = vec![2.0f32; 128 * 128];
//! let a = gpu.alloc_f32((128 * 128) as u64)?;
//! let b = gpu.alloc_f32((128 * 128) as u64)?;
//! let c = gpu.alloc_f32((128 * 128) as u64)?;
//! gpu.upload_f32(a, &av)?;
//! gpu.upload_f32(b, &bv)?;
//!
//! let report = launch_gemm(
//!     &mut gpu, &GemmConfig::kepler_tuned(), shape, a, b, c, SimMode::Full)?;
//! let got = gpu.download_f32(c)?;
//! assert_eq!(got[0], gemm_ref(&av, &bv, 128, 128, 128)[0]);
//! assert!(report.gflops() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod host;
mod kernel;

pub use config::{GemmConfig, SMEM_PAD};
pub use host::{gemm_ref, gemm_ref_tile};
pub use kernel::{block_tile, launch_gemm, GemmShape};

//! Blocked-GEMM configurations.
//!
//! A [`GemmConfig`] describes the classic three-level blocking of a GPU
//! SGEMM (the paper's reference \[19\], Nath/Tomov/Dongarra's MAGMA kernel):
//! a thread block computes a `tile_m x tile_n` tile of `C`, staging
//! `tile_k`-deep slices of `A` and `B` in shared memory, and each thread
//! accumulates a `thread_m x thread_n` register sub-block.
//!
//! The knob the paper turns is [`GemmConfig::vec_width`]: with `1`, threads
//! read their fragments from shared memory one `float` at a time (the
//! Fermi-tuned MAGMA pattern — *unmatched* on Kepler's 8-byte banks); with
//! `2`, fragments are read as `float2` (*matched*, the "MAGMA mod." of the
//! paper's Fig. 2 and the cuBLAS-like pattern).

/// Shared-memory row padding (in `f32` elements) applied to the transposed
/// `A` tile to keep its strided stores conflict-free.
pub const SMEM_PAD: usize = 2;

/// Configuration of a blocked SGEMM kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    /// Display name (used in reports and Fig. 2 output).
    pub name: &'static str,
    /// Rows of `C` per thread block.
    pub tile_m: usize,
    /// Columns of `C` per thread block.
    pub tile_n: usize,
    /// Depth of the shared-memory staging slice.
    pub tile_k: usize,
    /// Rows of `C` per thread.
    pub thread_m: usize,
    /// Columns of `C` per thread.
    pub thread_n: usize,
    /// Shared-memory fragment access width in `f32` elements (1 = scalar,
    /// 2 = `float2`).
    pub vec_width: usize,
}

impl GemmConfig {
    /// A Kepler-tuned kernel in the spirit of cuBLAS on the K40m: large
    /// 128x128 tiles, 8x8 register blocks (high FMA density per fragment
    /// load), matched (`float2`) shared-memory accesses.
    pub fn kepler_tuned() -> Self {
        GemmConfig {
            name: "cuBLAS-like (Kepler-tuned)",
            tile_m: 128,
            tile_n: 128,
            tile_k: 8,
            thread_m: 8,
            thread_n: 8,
            vec_width: 2,
        }
    }

    /// The Fermi-tuned MAGMA kernel of the paper's reference \[19\]: smaller
    /// 64x64 tiles and scalar (`float`) shared-memory accesses — *unmatched*
    /// on Kepler, wasting half the shared-memory bandwidth.
    pub fn fermi_tuned() -> Self {
        GemmConfig {
            name: "MAGMA (Fermi-tuned)",
            tile_m: 64,
            tile_n: 64,
            tile_k: 16,
            thread_m: 4,
            thread_n: 4,
            vec_width: 1,
        }
    }

    /// The paper's "MAGMA mod.": the Fermi kernel with its computation data
    /// width matched to Kepler's bank width (`float2` fragments), nothing
    /// else changed.
    pub fn fermi_tuned_matched() -> Self {
        GemmConfig {
            name: "MAGMA mod. (matched)",
            tile_m: 64,
            tile_n: 64,
            tile_k: 16,
            thread_m: 4,
            thread_n: 4,
            vec_width: 2,
        }
    }

    /// Threads along the `M` dimension of the tile.
    pub fn threads_x(&self) -> usize {
        self.tile_m / self.thread_m
    }

    /// Threads along the `N` dimension of the tile.
    pub fn threads_y(&self) -> usize {
        self.tile_n / self.thread_n
    }

    /// Total threads per block.
    pub fn threads(&self) -> usize {
        self.threads_x() * self.threads_y()
    }

    /// Shared-memory bytes per block: padded transposed `A` tile plus `B`
    /// tile.
    pub fn smem_bytes(&self) -> u32 {
        let a = self.tile_k * (self.tile_m + SMEM_PAD);
        let b = self.tile_k * self.tile_n;
        ((a + b) * 4) as u32
    }

    /// Architectural register estimate per thread: the accumulator block,
    /// both fragments, and ~16 for addresses and loop state.
    pub fn regs_per_thread(&self) -> u32 {
        (self.thread_m * self.thread_n + self.thread_m + self.thread_n + 16) as u32
    }

    /// Validates the internal divisibility constraints.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vec_width != 1 && self.vec_width != 2 {
            return Err(format!("vec_width {} must be 1 or 2", self.vec_width));
        }
        if !self.thread_m.is_multiple_of(self.vec_width)
            || !self.thread_n.is_multiple_of(self.vec_width)
        {
            return Err("thread tile must be divisible by vec_width".into());
        }
        if !self.tile_m.is_multiple_of(self.thread_m) || !self.tile_n.is_multiple_of(self.thread_n)
        {
            return Err("block tile must be divisible by thread tile".into());
        }
        if self.threads() == 0 || self.threads() > 1024 {
            return Err(format!(
                "{} threads per block is not launchable",
                self.threads()
            ));
        }
        if !self.threads().is_multiple_of(32) {
            return Err("thread count must be a multiple of the warp size".into());
        }
        if self.tile_k == 0 {
            return Err("tile_k must be positive".into());
        }
        Ok(())
    }
}

impl std::fmt::Display for GemmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}x{}x{} tiles, {}x{} per thread, {}-wide smem",
            self.name,
            self.tile_m,
            self.tile_n,
            self.tile_k,
            self.thread_m,
            self.thread_n,
            self.vec_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GemmConfig::kepler_tuned().validate().unwrap();
        GemmConfig::fermi_tuned().validate().unwrap();
        GemmConfig::fermi_tuned_matched().validate().unwrap();
    }

    #[test]
    fn preset_thread_counts() {
        assert_eq!(GemmConfig::kepler_tuned().threads(), 256);
        assert_eq!(GemmConfig::fermi_tuned().threads(), 256);
    }

    #[test]
    fn magma_mod_differs_only_in_width() {
        let a = GemmConfig::fermi_tuned();
        let b = GemmConfig::fermi_tuned_matched();
        assert_eq!(a.tile_m, b.tile_m);
        assert_eq!(a.thread_m, b.thread_m);
        assert_ne!(a.vec_width, b.vec_width);
    }

    #[test]
    fn smem_accounting() {
        let c = GemmConfig::fermi_tuned();
        // (16*(64+2) + 16*64) * 4
        assert_eq!(c.smem_bytes(), (16 * 66 + 16 * 64) as u32 * 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = GemmConfig::kepler_tuned();
        c.vec_width = 3;
        assert!(c.validate().is_err());
        let mut c = GemmConfig::kepler_tuned();
        c.thread_m = 3; // not divisible by vec_width 2
        assert!(c.validate().is_err());
        let mut c = GemmConfig::kepler_tuned();
        c.tile_m = 100; // not divisible by thread_m
        assert!(c.validate().is_err());
        let mut c = GemmConfig::kepler_tuned();
        c.thread_m = 1;
        c.thread_n = 1;
        c.vec_width = 1; // 128*64 threads
        assert!(c.validate().is_err());
        let mut c = GemmConfig::kepler_tuned();
        c.tile_k = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_mentions_name() {
        assert!(GemmConfig::fermi_tuned().to_string().contains("MAGMA"));
    }
}

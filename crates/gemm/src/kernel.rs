//! The blocked SGEMM device kernel.
//!
//! One thread block computes a `tile_m x tile_n` tile of `C`. The `K`
//! dimension is walked in `tile_k` slices: both operand slices are staged in
//! shared memory (the `A` slice transposed, with padded pitch so its strided
//! stores are conflict-free), then every thread accumulates its
//! `thread_m x thread_n` register block, reading operand *fragments* from
//! shared memory in [`GemmConfig::vec_width`]-wide units.
//!
//! Fragment rows/columns are **interleaved** across the thread grid in
//! `vec_width`-element groups (the MAGMA layout): thread `tx` owns rows
//! `{vw*tx + g*vw*TX + u}`, so a warp's fragment read is a contiguous,
//! conflict-free sweep — one bank word per lane when `vw` matches the bank
//! width (Kepler `float2`), half the fabric when it does not (scalar
//! `float`, the Fermi pattern). That difference in *useful bytes per
//! shared-memory cycle* is exactly the effect the paper's Fig. 2 measures.

use kconv_sim::{
    lane_addrs_from, BlockCtx, GmBuf, Gpu, LaneMask, LaunchConfig, LaunchReport, OverlapMode,
    Result, SimError, SimMode, WarpCtx, WARP_SIZE,
};

use crate::config::{GemmConfig, SMEM_PAD};

/// Dimensions of a `C[m x n] = A[m x k] * B[k x n]` product (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape descriptor.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// A square `d x d x d` product.
    pub fn square(d: usize) -> Self {
        GemmShape { m: d, n: d, k: d }
    }

    /// Floating-point operations of the product (`2mnk`).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Launches `C = A * B` on the simulator with the given blocking.
///
/// `a`, `b`, `c` are device buffers holding row-major `f32` matrices of the
/// shapes in `shape`.
///
/// # Errors
///
/// Returns [`SimError::InvalidLaunch`] if the config is internally invalid,
/// the shape is not divisible by the tiling, or the launch does not fit the
/// architecture.
///
/// # Panics
///
/// Panics if the buffers are smaller than the shapes imply (device fault).
pub fn launch_gemm(
    gpu: &mut Gpu,
    cfg: &GemmConfig,
    shape: GemmShape,
    a: GmBuf,
    b: GmBuf,
    c: GmBuf,
    mode: SimMode,
) -> Result<LaunchReport> {
    cfg.validate().map_err(SimError::InvalidLaunch)?;
    let (m, n, k) = (shape.m, shape.n, shape.k);
    if m % cfg.tile_m != 0 || n % cfg.tile_n != 0 || k % cfg.tile_k != 0 {
        return Err(SimError::InvalidLaunch(format!(
            "shape {m}x{n}x{k} not divisible by tiles {}x{}x{}",
            cfg.tile_m, cfg.tile_n, cfg.tile_k
        )));
    }
    let blocks_x = n / cfg.tile_n;
    let blocks_y = m / cfg.tile_m;
    let launch = LaunchConfig::new(cfg.name, blocks_x * blocks_y, cfg.threads())
        .with_smem(cfg.smem_bytes())
        .with_regs(cfg.regs_per_thread())
        .with_overlap(OverlapMode::Prefetch);

    let cfg = cfg.clone();
    gpu.launch(&launch, mode, move |blk| {
        gemm_block(blk, &cfg, shape, a, b, c, blocks_x);
    })
}

/// Loads one fragment of `len` elements in `vw`-wide pieces from shared
/// memory into `frag`, with per-lane base addresses produced by `base`.
fn load_fragment(
    w: &mut WarpCtx<'_, '_>,
    vw: usize,
    len: usize,
    stride_elems: usize,
    base: impl Fn(usize, usize) -> u64,
    frag: &mut [[f32; 16]; WARP_SIZE],
) {
    for g in 0..len / vw {
        let addrs = lane_addrs_from(|lane| base(lane, g * vw * stride_elems));
        if vw == 2 {
            let vals = w.ld_shared::<2>(&addrs, LaneMask::ALL);
            for lane in 0..WARP_SIZE {
                frag[lane][g * 2] = vals[lane][0];
                frag[lane][g * 2 + 1] = vals[lane][1];
            }
        } else {
            let vals = w.ld_shared::<1>(&addrs, LaneMask::ALL);
            for lane in 0..WARP_SIZE {
                frag[lane][g] = vals[lane][0];
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_block(
    blk: &mut BlockCtx<'_>,
    cfg: &GemmConfig,
    shape: GemmShape,
    a: GmBuf,
    b: GmBuf,
    c: GmBuf,
    blocks_x: usize,
) {
    let (n, k) = (shape.n, shape.k);
    let (tm, tn, tk) = (cfg.tile_m, cfg.tile_n, cfg.tile_k);
    let (rm, rn, vw) = (cfg.thread_m, cfg.thread_n, cfg.vec_width);
    let tx_count = cfg.threads_x();
    let ty_count = cfg.threads_y();
    let threads = cfg.threads();
    let bx = blk.dims.block_id % blocks_x;
    let by = blk.dims.block_id / blocks_x;
    let row0 = by * tm;
    let col0 = bx * tn;

    // Shared-memory layout: transposed padded A tile, then B tile.
    let a_pitch = tm + SMEM_PAD;
    let bs_base = (tk * a_pitch * 4) as u64;

    // Per-thread accumulators, flat [thread][rm][rn].
    let mut acc = vec![0.0f32; threads * rm * rn];

    let mut k0 = 0usize;
    while k0 < k {
        // Stage the A slice (transposed: As[kk][row]) cooperatively.
        let a_elems = tm * tk;
        let mut e0 = 0usize;
        while e0 < a_elems {
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < a_elems);
                let gaddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(a_elems - 1);
                    let (r, cc) = (e / tk, e % tk);
                    a.f32_addr(((row0 + r) * k + k0 + cc) as u64)
                });
                let vals = w.ld_global::<1>(&gaddrs, mask);
                let saddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(a_elems - 1);
                    let (r, cc) = (e / tk, e % tk);
                    ((cc * a_pitch + r) * 4) as u64
                });
                w.st_shared::<1>(&saddrs, &vals, mask);
            });
            e0 += threads;
        }
        // Stage the B slice (natural layout: Bs[kk][col]).
        let b_elems = tk * tn;
        let mut e0 = 0usize;
        while e0 < b_elems {
            blk.each_warp(|w| {
                let mask = LaneMask::from_fn(|lane| e0 + w.thread_id(lane) < b_elems);
                let gaddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(b_elems - 1);
                    let (r, cc) = (e / tn, e % tn);
                    b.f32_addr(((k0 + r) * n + col0 + cc) as u64)
                });
                let vals = w.ld_global::<1>(&gaddrs, mask);
                let saddrs = lane_addrs_from(|lane| {
                    let e = (e0 + w.thread_id(lane)).min(b_elems - 1);
                    bs_base + (e * 4) as u64
                });
                w.st_shared::<1>(&saddrs, &vals, mask);
            });
            e0 += threads;
        }
        blk.sync();

        // Accumulate over the staged slice.
        for kk in 0..tk {
            blk.each_warp(|w| {
                let wid = w.warp_id();
                let mut a_frag = [[0.0f32; 16]; WARP_SIZE];
                let mut b_frag = [[0.0f32; 16]; WARP_SIZE];
                load_fragment(
                    w,
                    vw,
                    rm,
                    tx_count,
                    |lane, off| {
                        let tx = (wid * WARP_SIZE + lane) % tx_count;
                        ((kk * a_pitch + vw * tx + off) * 4) as u64
                    },
                    &mut a_frag,
                );
                load_fragment(
                    w,
                    vw,
                    rn,
                    ty_count,
                    |lane, off| {
                        let ty = (wid * WARP_SIZE + lane) / tx_count;
                        bs_base + ((kk * tn + vw * ty + off) * 4) as u64
                    },
                    &mut b_frag,
                );
                for lane in 0..WARP_SIZE {
                    let t = w.thread_id(lane);
                    let base = t * rm * rn;
                    for i in 0..rm {
                        for j in 0..rn {
                            acc[base + i * rn + j] += a_frag[lane][i] * b_frag[lane][j];
                        }
                    }
                }
                w.count_fma((WARP_SIZE * rm * rn) as u64);
            });
        }
        blk.sync();
        k0 += tk;
    }

    // Write the register blocks back, vw columns at a time.
    for i in 0..rm {
        for h in 0..rn / vw {
            blk.each_warp(|w| {
                let addrs = lane_addrs_from(|lane| {
                    let t = w.thread_id(lane);
                    let (tx, ty) = (t % tx_count, t / tx_count);
                    let row = row0 + vw * tx + (i / vw) * vw * tx_count + i % vw;
                    let col = col0 + vw * ty + h * vw * ty_count;
                    c.f32_addr((row * n + col) as u64)
                });
                if vw == 2 {
                    let mut vals = [[0.0f32; 2]; WARP_SIZE];
                    for (lane, v) in vals.iter_mut().enumerate() {
                        let t = w.thread_id(lane);
                        let base = t * rm * rn;
                        v[0] = acc[base + i * rn + h * 2];
                        v[1] = acc[base + i * rn + h * 2 + 1];
                    }
                    w.st_global::<2>(&addrs, &vals, LaneMask::ALL);
                } else {
                    let mut vals = [[0.0f32; 1]; WARP_SIZE];
                    for (lane, v) in vals.iter_mut().enumerate() {
                        let t = w.thread_id(lane);
                        v[0] = acc[t * rm * rn + i * rn + h];
                    }
                    w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
                }
            });
        }
    }
}

/// Rows/columns of `C` computed by block `block_id` under `cfg` — used by
/// harnesses to validate sampled blocks against [`gemm_ref_tile`].
///
/// Returns `(row0, rows, col0, cols)`.
///
/// [`gemm_ref_tile`]: crate::gemm_ref_tile
pub fn block_tile(
    cfg: &GemmConfig,
    shape: GemmShape,
    block_id: usize,
) -> (usize, usize, usize, usize) {
    let blocks_x = shape.n / cfg.tile_n;
    let bx = block_id % blocks_x;
    let by = block_id / blocks_x;
    (by * cfg.tile_m, cfg.tile_m, bx * cfg.tile_n, cfg.tile_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{gemm_ref, gemm_ref_tile};
    use kconv_sim::GpuSpec;

    fn device_with(
        m: usize,
        n: usize,
        k: usize,
        seed_a: u64,
        seed_b: u64,
    ) -> (Gpu, GmBuf, GmBuf, GmBuf, Vec<f32>, Vec<f32>) {
        use kconv_tensor::rng::StdRng;
        let mut rng_a = StdRng::seed_from_u64(seed_a);
        let mut rng_b = StdRng::seed_from_u64(seed_b);
        let av: Vec<f32> = (0..m * k).map(|_| rng_a.gen_range_f32(-1.0, 1.0)).collect();
        let bv: Vec<f32> = (0..k * n).map(|_| rng_b.gen_range_f32(-1.0, 1.0)).collect();
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let a = gpu.alloc_f32((m * k) as u64).unwrap();
        let b = gpu.alloc_f32((k * n) as u64).unwrap();
        let c = gpu.alloc_f32((m * n) as u64).unwrap();
        gpu.upload_f32(a, &av).unwrap();
        gpu.upload_f32(b, &bv).unwrap();
        (gpu, a, b, c, av, bv)
    }

    fn check_full(cfg: &GemmConfig, m: usize, n: usize, k: usize) {
        let (mut gpu, a, b, c, av, bv) = device_with(m, n, k, 1, 2);
        let shape = GemmShape::new(m, n, k);
        let report = launch_gemm(&mut gpu, cfg, shape, a, b, c, SimMode::Full).unwrap();
        let got = gpu.download_f32(c).unwrap();
        let want = gemm_ref(&av, &bv, m, n, k);
        kconv_tensor_assert(&got, &want);
        assert_eq!(report.stats.fma_lane_ops, shape.flops() / 2);
    }

    // Local approximate comparison (kconv-tensor is not a dependency here).
    fn kconv_tensor_assert(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let err = (g - w).abs() / g.abs().max(w.abs()).max(1.0);
            assert!(err < 1e-4, "element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn kepler_tuned_matches_reference() {
        check_full(&GemmConfig::kepler_tuned(), 256, 128, 32);
    }

    #[test]
    fn fermi_tuned_matches_reference() {
        check_full(&GemmConfig::fermi_tuned(), 128, 128, 64);
    }

    #[test]
    fn fermi_matched_matches_reference() {
        check_full(&GemmConfig::fermi_tuned_matched(), 128, 128, 32);
    }

    #[test]
    fn sampled_block_output_is_correct() {
        let (m, n, k) = (256, 256, 64);
        let cfg = GemmConfig::fermi_tuned_matched();
        let (mut gpu, a, b, c, av, bv) = device_with(m, n, k, 3, 4);
        let shape = GemmShape::new(m, n, k);
        let report = launch_gemm(&mut gpu, &cfg, shape, a, b, c, SimMode::Sampled(3)).unwrap();
        for &blk in &report.executed_blocks {
            let (r0, rs, c0, cs) = block_tile(&cfg, shape, blk);
            let want = gemm_ref_tile(&av, &bv, m, n, k, r0, rs, c0, cs);
            let mut got = Vec::new();
            for r in 0..rs {
                got.extend(
                    gpu.download_f32_at(c, ((r0 + r) * n + c0) as u64, cs)
                        .unwrap(),
                );
            }
            kconv_tensor_assert(&got, &want);
        }
    }

    #[test]
    fn matched_halves_smem_requests() {
        let (m, n, k) = (64, 64, 32);
        let shape = GemmShape::new(m, n, k);
        let run = |cfg: &GemmConfig| {
            let (mut gpu, a, b, c, _, _) = device_with(m, n, k, 5, 6);
            launch_gemm(&mut gpu, cfg, shape, a, b, c, SimMode::Full).unwrap()
        };
        let unmatched = run(&GemmConfig::fermi_tuned());
        let matched = run(&GemmConfig::fermi_tuned_matched());
        // Same useful bytes, ~half the fragment-load requests (tile staging
        // is identical, so the ratio is below 2 but well above 1).
        assert_eq!(
            unmatched.stats.sm_bytes_useful,
            matched.stats.sm_bytes_useful
        );
        assert!(unmatched.stats.sm_ld_requests > matched.stats.sm_ld_requests);
        // The matched kernel is strictly faster under the model.
        assert!(matched.seconds() < unmatched.seconds());
    }

    #[test]
    fn fragment_reads_are_conflict_free() {
        let (m, n, k) = (64, 64, 16);
        let shape = GemmShape::new(m, n, k);
        for cfg in [GemmConfig::fermi_tuned(), GemmConfig::fermi_tuned_matched()] {
            let (mut gpu, a, b, c, _, _) = device_with(m, n, k, 7, 8);
            let rep = launch_gemm(&mut gpu, &cfg, shape, a, b, c, SimMode::Full).unwrap();
            // Replay factor stays near 1: padding + interleaving worked.
            assert!(
                rep.stats.sm_replay_factor() < 1.05,
                "{}: replay {}",
                cfg.name,
                rep.stats.sm_replay_factor()
            );
        }
    }

    #[test]
    fn indivisible_shapes_are_rejected() {
        let (mut gpu, a, b, c, _, _) = device_with(128, 64, 16, 9, 10);
        let cfg = GemmConfig::kepler_tuned();
        let err = launch_gemm(
            &mut gpu,
            &cfg,
            GemmShape::new(100, 64, 16),
            a,
            b,
            c,
            SimMode::Full,
        );
        assert!(matches!(err, Err(SimError::InvalidLaunch(_))));
    }

    #[test]
    fn random_shapes_match_reference() {
        // A light fuzz over tile-aligned shapes and all three presets.
        use kconv_tensor::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..6 {
            let cfg = match rng.gen_range(0..3) {
                0 => GemmConfig::kepler_tuned(),
                1 => GemmConfig::fermi_tuned(),
                _ => GemmConfig::fermi_tuned_matched(),
            };
            let m = cfg.tile_m * rng.gen_range(1..3);
            let n = cfg.tile_n * rng.gen_range(1..3);
            let k = cfg.tile_k * rng.gen_range(1..5);
            let (seed_a, seed_b) = (rng.next_u64(), rng.next_u64());
            let (mut gpu, a, b, c, av, bv) = device_with(m, n, k, seed_a, seed_b);
            let shape = GemmShape::new(m, n, k);
            launch_gemm(&mut gpu, &cfg, shape, a, b, c, SimMode::Full).unwrap();
            let got = gpu.download_f32(c).unwrap();
            let want = gemm_ref(&av, &bv, m, n, k);
            kconv_tensor_assert(&got, &want);
        }
    }

    #[test]
    fn shape_helpers() {
        let s = GemmShape::square(64);
        assert_eq!(s.flops(), 2 * 64 * 64 * 64);
        assert_eq!(
            block_tile(&GemmConfig::fermi_tuned(), GemmShape::square(128), 3),
            (64, 64, 64, 64)
        );
    }
}

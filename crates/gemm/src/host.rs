//! CPU reference GEMM used to validate the simulated kernels.

/// Computes the full `C = A * B` on the host (`A` is `m x k`, `B` is
/// `k x n`, all row-major). Accumulates in `f64` so the reference is more
/// accurate than any evaluation order of the device kernels.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn gemm_ref(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    gemm_ref_tile(a, b, m, n, k, 0, m, 0, n)
}

/// Computes the `rows x cols` sub-tile of `C = A * B` whose top-left corner
/// is `(row0, col0)` — enough to validate a sampled thread block without
/// paying for the whole product.
///
/// # Panics
///
/// Panics if the tile exceeds the output or the slices are too short.
#[allow(clippy::too_many_arguments)] // a tile is naturally eight scalars
pub fn gemm_ref_tile(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    row0: usize,
    rows: usize,
    col0: usize,
    cols: usize,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert!(row0 + rows <= m && col0 + cols <= n, "tile exceeds output");
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let arow = &a[(row0 + r) * k..(row0 + r + 1) * k];
        for c in 0..cols {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += arow[kk] as f64 * b[kk * n + col0 + c] as f64;
            }
            out[r * cols + c] = acc as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let c = gemm_ref(&a, &b, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        // 1x3 * 3x2
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let c = gemm_ref(&a, &b, 1, 2, 3);
        assert_eq!(c, vec![4.0, 5.0]);
    }

    #[test]
    fn tile_matches_full() {
        let m = 6;
        let n = 5;
        let k = 4;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let full = gemm_ref(&a, &b, m, n, k);
        let tile = gemm_ref_tile(&a, &b, m, n, k, 2, 3, 1, 2);
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(tile[r * 2 + c], full[(2 + r) * n + 1 + c]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "tile exceeds output")]
    fn tile_bounds_checked() {
        gemm_ref_tile(&[0.0; 4], &[0.0; 4], 2, 2, 2, 1, 2, 0, 1);
    }
}

//! Floating-point comparison helpers for validating kernel outputs against
//! CPU references.
//!
//! Kernel and reference accumulate in different orders, so results differ by
//! rounding; comparisons use a combined absolute/relative tolerance.

/// Summary of an elementwise comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mismatch {
    /// Index of the worst-mismatching element.
    pub index: usize,
    /// Value in the first slice.
    pub lhs: f32,
    /// Value in the second slice.
    pub rhs: f32,
    /// The combined error metric at that element.
    pub error: f32,
}

/// Combined absolute/relative error of a pair:
/// `|a - b| / max(1, |a|, |b|)`.
pub fn combined_error(a: f32, b: f32) -> f32 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Returns the worst mismatch beyond `tol`, or `None` when the slices agree.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn worst_mismatch(lhs: &[f32], rhs: &[f32], tol: f32) -> Option<Mismatch> {
    assert_eq!(
        lhs.len(),
        rhs.len(),
        "length mismatch: {} vs {}",
        lhs.len(),
        rhs.len()
    );
    let mut worst: Option<Mismatch> = None;
    for (i, (&a, &b)) in lhs.iter().zip(rhs).enumerate() {
        let e = combined_error(a, b);
        if e > tol && worst.is_none_or(|w| e > w.error) {
            worst = Some(Mismatch {
                index: i,
                lhs: a,
                rhs: b,
                error: e,
            });
        }
    }
    worst
}

/// Whether two slices agree elementwise within `tol`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn all_close(lhs: &[f32], rhs: &[f32], tol: f32) -> bool {
    worst_mismatch(lhs, rhs, tol).is_none()
}

/// Default tolerance for f32 convolution comparisons: generous enough for
/// any reassociation over the reduction depths in this workspace.
pub const CONV_TOL: f32 = 1e-4;

/// Tolerance for convolutions with half-precision (binary16) storage,
/// compared against an f32 reference run on the fp16-quantized operands:
/// each stored value carries up to `2^-11` relative rounding error, and
/// output re-quantization adds one more half-ulp, so `2e-3` bounds the
/// combined error with comfortable margin for reassociation noise.
pub const F16_TOL: f32 = 2e-3;

/// Asserts elementwise agreement, printing the worst offender on failure.
///
/// # Panics
///
/// Panics (with diagnostics) if any element differs by more than `tol`, or
/// if lengths differ.
pub fn assert_close(lhs: &[f32], rhs: &[f32], tol: f32, context: &str) {
    if let Some(m) = worst_mismatch(lhs, rhs, tol) {
        panic!(
            "{context}: element {} differs: {} vs {} (error {:.3e} > tol {:.1e})",
            m.index, m.lhs, m.rhs, m.error, tol
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_are_close() {
        let v = vec![1.0, -2.0, 3.0e10];
        assert!(all_close(&v, &v, 0.0));
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        // 1e6 vs 1e6+50: relative error 5e-5.
        assert!(all_close(&[1.0e6], &[1.0e6 + 50.0], 1e-4));
        assert!(!all_close(&[1.0e6], &[1.0e6 + 500.0], 1e-4));
    }

    #[test]
    fn absolute_floor_for_tiny_values() {
        // Near zero the metric is absolute.
        assert!(all_close(&[0.0], &[5e-5], 1e-4));
        assert!(!all_close(&[0.0], &[5e-3], 1e-4));
    }

    #[test]
    fn worst_mismatch_finds_the_biggest() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.1];
        let m = worst_mismatch(&a, &b, 1e-6).unwrap();
        assert_eq!(m.index, 1);
        assert_eq!(m.rhs, 2.5);
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn assert_close_panics_with_context() {
        assert_close(&[1.0, 1.0], &[1.0, 2.0], 1e-4, "unit");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        all_close(&[1.0], &[1.0, 2.0], 0.1);
    }
}

//! IEEE 754 half-precision (binary16) conversions.
//!
//! The paper's section 6 points at `fp16` workloads as the place where the
//! bank-width mismatch reappears on every architecture. The simulator moves
//! raw bytes, so all that is needed host-side is a faithful `f32 <-> f16`
//! conversion pair (storage in half, arithmetic in single — the standard
//! "fp16 storage" scheme of the era).

/// Converts an `f32` to binary16 bits, round-to-nearest-even, with
/// overflow to infinity and gradual underflow to subnormals.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a NaN payload bit if any.
        return sign | 0x7c00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, rebased to half's bias (15).
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;
    if half_exp >= 0x1f {
        return sign | 0x7c00; // overflow -> inf
    }
    if half_exp <= 0 {
        // Subnormal half (or zero): shift the (implicit-1) mantissa right.
        if half_exp < -10 {
            return sign; // underflow to zero
        }
        let mant = frac | 0x0080_0000; // implicit 1
        let shift = (14 - half_exp) as u32; // into 10-bit field
        let halfway = 1u32 << (shift - 1);
        let rounded = (mant >> shift)
            + u32::from(
                (mant & (halfway | ((1 << (shift - 1)) - 1))) > halfway
                    || (mant & halfway != 0 && (mant >> shift) & 1 == 1),
            );
        return sign | rounded as u16;
    }
    // Normal: round the 23-bit fraction to 10 bits, to nearest even.
    let mant = frac >> 13;
    let rem = frac & 0x1fff;
    let mut out = ((half_exp as u32) << 10) | mant;
    if rem > 0x1000 || (rem == 0x1000 && mant & 1 == 1) {
        out += 1; // may carry into the exponent: that is correct rounding
    }
    sign | out as u16
}

/// Converts binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let frac = u32::from(bits & 0x03ff);
    let out = match exp {
        0 => {
            if frac == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = frac * 2^-24.
                let v = frac as f32 * (-24f32).exp2();
                return if sign != 0 { -v } else { v };
            }
        }
        0x1f => sign | 0x7f80_0000 | (frac << 13), // inf / nan
        _ => sign | ((u32::from(exp) + 112) << 23) | (frac << 13),
    };
    f32::from_bits(out)
}

/// Quantizes an `f32` through half precision (`f32 -> f16 -> f32`) — what
/// a value looks like after a round trip through fp16 storage.
pub fn f16_roundtrip(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Encodes a slice of `f32`s as little-endian half-precision bytes.
pub fn encode_f16_le(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
    }
    out
}

/// Decodes little-endian half-precision bytes to `f32`s.
///
/// # Panics
///
/// Panics if `bytes` has odd length.
pub fn decode_f16_le(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "half-precision data must be even-length"
    );
    bytes
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
        .collect()
}

/// Packs a pair of `f32`s into one 32-bit `__half2`-style word: `lo` in the
/// low 16 bits, `hi` in the high 16 bits, each rounded to binary16. This is
/// the layout of CUDA's `__half2` and the unit the half2 kernel broadcasts
/// from constant memory (two filter taps per 4-byte word).
pub fn pack_f16x2(lo: f32, hi: f32) -> u32 {
    u32::from(f32_to_f16_bits(lo)) | (u32::from(f32_to_f16_bits(hi)) << 16)
}

/// Unpacks a `__half2`-style word into its `(lo, hi)` pair of `f32`s.
pub fn unpack_f16x2(word: u32) -> (f32, f32) {
    (
        f16_bits_to_f32(word as u16),
        f16_bits_to_f32((word >> 16) as u16),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(f16_roundtrip(v), v, "{v}");
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_are_gradual() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = (-24f32).exp2();
        assert_eq!(f16_roundtrip(tiny), tiny);
        // Below half of it rounds to zero.
        assert_eq!(f16_roundtrip(tiny / 4.0), 0.0);
        // Largest subnormal.
        let sub_max = 1023.0 * (-24f32).exp2();
        assert_eq!(f16_roundtrip(sub_max), sub_max);
    }

    #[test]
    fn rounding_is_to_nearest() {
        // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
        // ties to even -> 1.0.
        let v = 1.0 + (-11f32).exp2();
        assert_eq!(f16_roundtrip(v), 1.0);
        // Slightly above the tie rounds up.
        let v = 1.0 + (-11f32).exp2() * 1.01;
        assert_eq!(f16_roundtrip(v), 1.0 + (-10f32).exp2());
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        // Relative error of normal halves is at most 2^-11.
        let mut x = 0.001f32;
        while x < 60000.0 {
            let r = f16_roundtrip(x);
            assert!(((r - x) / x).abs() <= (-11f32).exp2(), "{x} -> {r}");
            x *= 1.37;
        }
    }

    #[test]
    fn slice_encode_decode() {
        let vals = [0.5f32, -1.25, 3.0, 0.0];
        let bytes = encode_f16_le(&vals);
        assert_eq!(bytes.len(), 8);
        assert_eq!(decode_f16_le(&bytes), vals);
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn odd_length_rejected() {
        decode_f16_le(&[1, 2, 3]);
    }

    #[test]
    fn half2_pack_unpack_round_trips() {
        let word = pack_f16x2(1.5, -0.25);
        assert_eq!(unpack_f16x2(word), (1.5, -0.25));
        // Low half occupies the low 16 bits, as in CUDA's __half2.
        assert_eq!(word & 0xffff, u32::from(f32_to_f16_bits(1.5)));
        assert_eq!(pack_f16x2(0.0, 0.0), 0);
        // Packing quantizes exactly like a scalar f16 round trip.
        let (lo, hi) = unpack_f16x2(pack_f16x2(0.1, 1e-6));
        assert_eq!(lo, f16_roundtrip(0.1));
        assert_eq!(hi, f16_roundtrip(1e-6));
    }
}

//! A small, self-contained deterministic PRNG.
//!
//! The workspace builds in fully offline environments, so it cannot depend
//! on the `rand` crate. Everything that needs pseudo-random data — the
//! synthetic workloads in `crate::fill`, randomized tests, fuzz loops —
//! uses this xoshiro256++ generator instead. It is seeded through SplitMix64
//! (the reference recommendation), so consecutive integer seeds produce
//! decorrelated streams.
//!
//! The generator is *stable by contract*: changing its output sequence
//! changes every seeded synthetic workload in the workspace, which would
//! invalidate recorded experiment numbers. Treat the algorithm as frozen.

/// A seedable xoshiro256++ generator.
///
/// The name mirrors `rand::rngs::StdRng` so call sites read the same as
/// they would with the `rand` crate.
///
/// # Examples
///
/// ```
/// use kconv_tensor::rng::StdRng;
/// let mut a = StdRng::seed_from_u64(7);
/// let mut b = StdRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform `f32` in `[0, 1)` (24 bits of precision).
    pub fn gen_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.gen_f32() * (hi - lo)
    }

    /// A uniform integer in `[lo, hi)` (Lemire-style unbiased-enough
    /// multiply-shift reduction; exact uniformity is irrelevant for test
    /// data but determinism is not).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, r: std::ops::Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range {}..{}", r.start, r.end);
        let span = (r.end - r.start) as u64;
        r.start + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }

    /// A uniform draw from a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }

    /// A boolean that is `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_f32();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(10..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reached: {seen:?}");
    }

    #[test]
    fn range_f32_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_range_f32(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(3..3);
    }

    #[test]
    fn choose_and_bool_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        for _ in 0..32 {
            assert_eq!(a.choose(&items), b.choose(&items));
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
    }

    #[test]
    fn frozen_sequence() {
        // Guards the stable-by-contract promise: the first outputs for seed
        // 42 must never change (xoshiro256++ seeded via SplitMix64).
        let mut r = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = StdRng::seed_from_u64(42);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(got, again);
        assert!(got.windows(2).any(|w| w[0] != w[1]));
    }
}

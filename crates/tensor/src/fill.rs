//! Deterministic synthetic workloads.
//!
//! The paper's kernels are data-oblivious — performance depends only on
//! shapes — so experiments run on seeded pseudo-random data, which also
//! makes every correctness comparison reproducible.

use crate::filters::FilterSet;
use crate::image::Image;
use crate::maps::FeatureMaps;
use crate::rng::StdRng;

/// Fills a slice with uniform values in `[-1, 1)` from a seeded generator.
pub fn fill_uniform(data: &mut [f32], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for v in data {
        *v = rng.gen_range_f32(-1.0, 1.0);
    }
}

/// A seeded random image.
pub fn random_image(height: usize, width: usize, seed: u64) -> Image {
    let mut img = Image::zeros(height, width);
    fill_uniform(img.as_mut_slice(), seed);
    img
}

/// Seeded random feature maps.
pub fn random_maps(channels: usize, height: usize, width: usize, seed: u64) -> FeatureMaps {
    let mut maps = FeatureMaps::zeros(channels, height, width);
    fill_uniform(maps.as_mut_slice(), seed);
    maps
}

/// A seeded random filter bank.
pub fn random_filters(count: usize, channels: usize, k: usize, seed: u64) -> FilterSet {
    let mut filters = FilterSet::zeros(count, channels, k);
    fill_uniform(filters.as_mut_slice(), seed);
    filters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_data() {
        let a = random_image(8, 8, 42);
        let b = random_image(8, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_data() {
        let a = random_image(8, 8, 1);
        let b = random_image(8, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn values_in_range() {
        let maps = random_maps(2, 4, 4, 7);
        assert!(maps.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn filters_are_seeded() {
        let a = random_filters(2, 3, 3, 5);
        let b = random_filters(2, 3, 3, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2 * 3 * 9);
    }
}

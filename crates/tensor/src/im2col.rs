//! Host-side `im2col` lowering — the transformation behind GEMM-based
//! convolution (the paper's reference [7], Caffe's default path).
//!
//! `im2col` unrolls every `K x K x C` input patch into a column, turning
//! convolution into the matrix product
//!
//! ```text
//! output[F x P] = filters[F x (C*K*K)] * patches[(C*K*K) x P]
//! ```
//!
//! with `P = out_h * out_w` output positions. Each input pixel is duplicated
//! up to `K * K` times — the extra memory (and the extra global-memory
//! traffic when done on the fly) that the paper's direct kernels avoid.

use crate::maps::FeatureMaps;
use crate::problem::ConvProblem;

/// A dense row-major matrix, the host currency of the GEMM baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Lowers `input` to the `(C*K*K) x (out_h*out_w)` patch matrix of
/// `problem`.
///
/// Row `(c*K + i)*K + j`, column `y*out_w + x` holds
/// `input[c][y*S + i][x*S + j]` (stride `S` from the problem).
///
/// # Panics
///
/// Panics if `input` does not match the problem shape.
pub fn im2col(problem: &ConvProblem, input: &FeatureMaps) -> Matrix {
    assert_eq!(input.channels(), problem.channels, "channel mismatch");
    assert_eq!(input.height(), problem.height, "height mismatch");
    assert_eq!(input.width(), problem.width, "width mismatch");
    let k = problem.k;
    let (oh, ow) = (problem.out_height(), problem.out_width());
    let mut m = Matrix::zeros(problem.channels * k * k, oh * ow);
    for c in 0..problem.channels {
        for i in 0..k {
            for j in 0..k {
                let row = (c * k + i) * k + j;
                for y in 0..oh {
                    for x in 0..ow {
                        m.set(
                            row,
                            y * ow + x,
                            input.get(c, y * problem.stride + i, x * problem.stride + j),
                        );
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_basics() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 4.0);
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_bounds() {
        Matrix::zeros(2, 2).get(0, 2);
    }

    #[test]
    fn im2col_identity_filter_layout() {
        // 1 channel, 3x3 image, K=2: 4 rows x 4 columns.
        let input = FeatureMaps::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32);
        let p = ConvProblem::new(1, 3, 3, 1, 2);
        let m = im2col(&p, &input);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        // Column 0 = patch at (0,0): pixels 0,1,3,4.
        assert_eq!(
            (0..4).map(|r| m.get(r, 0)).collect::<Vec<_>>(),
            vec![0.0, 1.0, 3.0, 4.0]
        );
        // Column 3 = patch at (1,1): pixels 4,5,7,8.
        assert_eq!(
            (0..4).map(|r| m.get(r, 3)).collect::<Vec<_>>(),
            vec![4.0, 5.0, 7.0, 8.0]
        );
    }

    #[test]
    fn im2col_duplicates_pixels_k_squared_times() {
        let input = FeatureMaps::from_fn(1, 5, 5, |_, y, x| (y * 5 + x) as f32);
        let p = ConvProblem::new(1, 5, 5, 1, 3);
        let m = im2col(&p, &input);
        // Center pixel 12 appears in all 9 rows (once per offset).
        let occurrences = m.as_slice().iter().filter(|&&v| v == 12.0).count();
        assert_eq!(occurrences, 9);
    }

    #[test]
    fn im2col_multichannel_rows() {
        let input = FeatureMaps::from_fn(2, 2, 2, |c, y, x| (c * 10 + y * 2 + x) as f32);
        let p = ConvProblem::new(2, 2, 2, 1, 2);
        let m = im2col(&p, &input);
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 1);
        assert_eq!(
            (0..8).map(|r| m.get(r, 0)).collect::<Vec<_>>(),
            vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]
        );
    }

    #[test]
    fn im2col_honours_stride() {
        let input = FeatureMaps::from_fn(1, 5, 5, |_, y, x| (y * 5 + x) as f32);
        let p = ConvProblem::new(1, 5, 5, 1, 3).with_stride(2);
        let m = im2col(&p, &input);
        assert_eq!(m.cols(), 4); // 2x2 strided output
                                 // Column 3 = patch at output (1,1) = input origin (2,2).
        assert_eq!(m.get(0, 3), 12.0);
        assert_eq!(m.get(8, 3), 24.0);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn im2col_validates_shapes() {
        let input = FeatureMaps::zeros(1, 4, 4);
        let p = ConvProblem::new(2, 4, 4, 1, 3);
        im2col(&p, &input);
    }
}

//! # kconv-tensor — host-side data structures for the kconv kernels
//!
//! Images, feature maps (CHW), filter banks (FCHW), convolution problem
//! descriptors, deterministic synthetic workloads, the `im2col` lowering
//! used by the GEMM baselines, and floating-point comparison helpers.
//!
//! Everything here is plain host memory; device buffers live in
//! `kconv-sim` and the kernels in `kconv-core` copy between the two.
//!
//! ## Example
//!
//! ```
//! use kconv_tensor::{random_maps, random_filters, ConvProblem};
//!
//! let problem = ConvProblem::general(32, 16, 8, 3);
//! let input = random_maps(16, 32, 32, 1);
//! let filters = random_filters(8, 16, 3, 2);
//! assert!(problem.matches(&input, &filters));
//! assert_eq!(problem.out_pixels(), 30 * 30);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod approx;
mod fill;
mod filters;
mod half;
mod im2col;
mod image;
mod maps;
mod problem;
pub mod rng;

pub use approx::{
    all_close, assert_close, combined_error, worst_mismatch, Mismatch, CONV_TOL, F16_TOL,
};
pub use fill::{fill_uniform, random_filters, random_image, random_maps};
pub use filters::FilterSet;
pub use half::{
    decode_f16_le, encode_f16_le, f16_bits_to_f32, f16_roundtrip, f32_to_f16_bits, pack_f16x2,
    unpack_f16x2,
};
pub use im2col::{im2col, Matrix};
pub use image::Image;
pub use maps::FeatureMaps;
pub use problem::ConvProblem;

//! Filter banks: `F` filters of `C` channels and spatial size `K x K`.

/// A bank of `count x channels x k x k` convolution filters, stored
/// filter-major (`FCHW`): element `(f, c, i, j)` lives at
/// `((f*C + c)*K + i)*K + j`.
///
/// # Examples
///
/// ```
/// use kconv_tensor::FilterSet;
/// let sobel_x = FilterSet::from_vec(1, 1, 3, vec![
///     -1.0, 0.0, 1.0,
///     -2.0, 0.0, 2.0,
///     -1.0, 0.0, 1.0,
/// ]);
/// assert_eq!(sobel_x.get(0, 0, 1, 2), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSet {
    count: usize,
    channels: usize,
    k: usize,
    data: Vec<f32>,
}

impl FilterSet {
    /// Creates a zero-filled filter bank.
    pub fn zeros(count: usize, channels: usize, k: usize) -> Self {
        FilterSet {
            count,
            channels,
            k,
            data: vec![0.0; count * channels * k * k],
        }
    }

    /// Creates a bank from FCHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != count * channels * k * k`.
    pub fn from_vec(count: usize, channels: usize, k: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            count * channels * k * k,
            "filter data length {} does not match {count}x{channels}x{k}x{k}",
            data.len()
        );
        FilterSet {
            count,
            channels,
            k,
            data,
        }
    }

    /// Creates a bank from a per-tap function of `(filter, channel, i, j)`.
    pub fn from_fn(
        count: usize,
        channels: usize,
        k: usize,
        f: impl Fn(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(count * channels * k * k);
        for fi in 0..count {
            for c in 0..channels {
                for i in 0..k {
                    for j in 0..k {
                        data.push(f(fi, c, i, j));
                    }
                }
            }
        }
        FilterSet {
            count,
            channels,
            k,
            data,
        }
    }

    /// Number of filters `F`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Channels per filter `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Linear FCHW index of `(f, c, i, j)`.
    pub fn index(&self, f: usize, c: usize, i: usize, j: usize) -> usize {
        debug_assert!(f < self.count && c < self.channels && i < self.k && j < self.k);
        ((f * self.channels + c) * self.k + i) * self.k + j
    }

    /// Tap value at `(f, c, i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, f: usize, c: usize, i: usize, j: usize) -> f32 {
        assert!(
            f < self.count && c < self.channels && i < self.k && j < self.k,
            "tap ({f},{c},{i},{j}) out of bounds"
        );
        self.data[self.index(f, c, i, j)]
    }

    /// Sets the tap value at `(f, c, i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, f: usize, c: usize, i: usize, j: usize, value: f32) {
        assert!(
            f < self.count && c < self.channels && i < self.k && j < self.k,
            "tap ({f},{c},{i},{j}) out of bounds"
        );
        let idx = self.index(f, c, i, j);
        self.data[idx] = value;
    }

    /// FCHW data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable FCHW data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total taps (`F * C * K * K`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the bank has no taps.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_fchw() {
        let f = FilterSet::from_fn(2, 2, 2, |f, c, i, j| {
            (f * 1000 + c * 100 + i * 10 + j) as f32
        });
        assert_eq!(f.index(1, 1, 1, 1), 15);
        assert_eq!(f.get(1, 0, 1, 0), 1010.0);
        assert_eq!(f.as_slice()[15], 1111.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = FilterSet::zeros(1, 3, 5);
        f.set(0, 2, 4, 4, 3.5);
        assert_eq!(f.get(0, 2, 4, 4), 3.5);
        assert_eq!(f.len(), 75);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        FilterSet::zeros(1, 1, 3).get(0, 0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates() {
        FilterSet::from_vec(1, 1, 3, vec![0.0; 8]);
    }
}

//! Single-channel images — the input type of the paper's special-case
//! kernel and of the image-processing applications.

/// A single-channel `height x width` image of `f32` pixels, row-major.
///
/// # Examples
///
/// ```
/// use kconv_tensor::Image;
/// let mut img = Image::zeros(2, 3);
/// img.set(1, 2, 5.0);
/// assert_eq!(img.get(1, 2), 5.0);
/// assert_eq!(img.as_slice().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a zero-filled image.
    pub fn zeros(height: usize, width: usize) -> Self {
        Image {
            height,
            width,
            data: vec![0.0; height * width],
        }
    }

    /// Creates an image from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != height * width`.
    pub fn from_vec(height: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            height * width,
            "image data length {} does not match {height}x{width}",
            data.len()
        );
        Image {
            height,
            width,
            data,
        }
    }

    /// Creates an image from a per-pixel function of `(row, col)`.
    pub fn from_fn(height: usize, width: usize, f: impl Fn(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(height * width);
        for y in 0..height {
            for x in 0..width {
                data.push(f(y, x));
            }
        }
        Image {
            height,
            width,
            data,
        }
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.height && col < self.width,
            "pixel ({row},{col}) out of bounds"
        );
        self.data[row * self.width + col]
    }

    /// Sets the pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.height && col < self.width,
            "pixel ({row},{col}) out of bounds"
        );
        self.data[row * self.width + col] = value;
    }

    /// Row-major pixel data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major pixel data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `row >= height`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.height, "row {row} out of bounds");
        &self.data[row * self.width..(row + 1) * self.width]
    }

    /// Returns a copy zero-padded (bottom/right) to `height x width` —
    /// the layout the tiled kernels consume so that every tile, including
    /// boundary tiles, has a full halo to read.
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the image.
    pub fn padded_to(&self, height: usize, width: usize) -> Image {
        assert!(
            height >= self.height && width >= self.width,
            "padded size {height}x{width} smaller than image {}x{}",
            self.height,
            self.width
        );
        let mut out = Image::zeros(height, width);
        for y in 0..self.height {
            out.data[y * width..y * width + self.width].copy_from_slice(self.row(y));
        }
        out
    }

    /// Returns a copy surrounded by a zero border (`top`/`bottom` rows,
    /// `left`/`right` columns) — the "same"-convolution preparation: pad by
    /// `(K-1)/2` on each side and the valid convolution returns the
    /// original geometry.
    pub fn padded_border(&self, top: usize, bottom: usize, left: usize, right: usize) -> Image {
        let mut out = Image::zeros(self.height + top + bottom, self.width + left + right);
        for y in 0..self.height {
            let dst = (y + top) * out.width + left;
            out.data[dst..dst + self.width].copy_from_slice(self.row(y));
        }
        out
    }

    /// Extracts the `rows x cols` top-left window (inverse of
    /// [`Image::padded_to`]).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the image.
    pub fn cropped_to(&self, rows: usize, cols: usize) -> Image {
        assert!(
            rows <= self.height && cols <= self.width,
            "crop exceeds image"
        );
        Image::from_fn(rows, cols, |y, x| self.get(y, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut img = Image::zeros(4, 5);
        assert_eq!(img.height(), 4);
        assert_eq!(img.width(), 5);
        img.set(3, 4, 2.0);
        assert_eq!(img.get(3, 4), 2.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let img = Image::from_fn(2, 3, |y, x| (y * 10 + x) as f32);
        assert_eq!(img.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(img.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates_len() {
        Image::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        Image::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn padding_roundtrip() {
        let img = Image::from_fn(3, 3, |y, x| (y + x) as f32);
        let padded = img.padded_to(5, 6);
        assert_eq!(padded.get(2, 2), 4.0);
        assert_eq!(padded.get(4, 5), 0.0);
        assert_eq!(padded.cropped_to(3, 3), img);
    }

    #[test]
    #[should_panic(expected = "smaller than image")]
    fn padding_cannot_shrink() {
        Image::zeros(4, 4).padded_to(3, 4);
    }

    #[test]
    fn border_padding_centers_the_image() {
        let img = Image::from_fn(2, 2, |y, x| (y * 2 + x + 1) as f32);
        let p = img.padded_border(1, 1, 1, 1);
        assert_eq!(p.height(), 4);
        assert_eq!(p.width(), 4);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(1, 1), 1.0);
        assert_eq!(p.get(2, 2), 4.0);
        assert_eq!(p.get(3, 3), 0.0);
    }

    #[test]
    fn into_vec_returns_data() {
        let img = Image::from_fn(1, 3, |_, x| x as f32);
        assert_eq!(img.into_vec(), vec![0.0, 1.0, 2.0]);
    }
}

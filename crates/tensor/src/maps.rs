//! Multi-channel feature maps (CHW layout) — the input/output type of the
//! general-case kernel and the CNN layer stacks.

use crate::image::Image;

/// A `channels x height x width` stack of feature maps, channel-major
/// (CHW): element `(c, y, x)` lives at `c*H*W + y*W + x`.
///
/// This is the layout the paper assumes (Fig. 3a); batch is handled by the
/// callers as an outer loop / extra grid dimension.
///
/// # Examples
///
/// ```
/// use kconv_tensor::FeatureMaps;
/// let mut maps = FeatureMaps::zeros(2, 3, 4);
/// maps.set(1, 2, 3, 9.0);
/// assert_eq!(maps.get(1, 2, 3), 9.0);
/// assert_eq!(maps.as_slice().len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMaps {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl FeatureMaps {
    /// Creates zero-filled maps.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        FeatureMaps {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates maps from CHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            channels * height * width,
            "data length {} does not match {channels}x{height}x{width}",
            data.len()
        );
        FeatureMaps {
            channels,
            height,
            width,
            data,
        }
    }

    /// Creates maps from a per-element function of `(channel, row, col)`.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        f: impl Fn(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(channels * height * width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    data.push(f(c, y, x));
                }
            }
        }
        FeatureMaps {
            channels,
            height,
            width,
            data,
        }
    }

    /// Wraps a single image as a one-channel map stack.
    pub fn from_image(image: Image) -> Self {
        let (h, w) = (image.height(), image.width());
        FeatureMaps {
            channels: 1,
            height: h,
            width: w,
            data: image.into_vec(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Linear CHW index of `(c, y, x)`.
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "element ({c},{y},{x}) out of bounds"
        );
        self.data[self.index(c, y, x)]
    }

    /// Sets the element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "element ({c},{y},{x}) out of bounds"
        );
        let i = self.index(c, y, x);
        self.data[i] = value;
    }

    /// CHW data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable CHW data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One channel as an [`Image`] copy.
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn channel(&self, c: usize) -> Image {
        assert!(c < self.channels, "channel {c} out of bounds");
        let start = c * self.height * self.width;
        Image::from_vec(
            self.height,
            self.width,
            self.data[start..start + self.height * self.width].to_vec(),
        )
    }

    /// Returns a copy with every channel surrounded by a zero border — the
    /// "same"-convolution preparation (see [`Image::padded_border`]).
    pub fn padded_border(
        &self,
        top: usize,
        bottom: usize,
        left: usize,
        right: usize,
    ) -> FeatureMaps {
        let mut out = FeatureMaps::zeros(
            self.channels,
            self.height + top + bottom,
            self.width + left + right,
        );
        for c in 0..self.channels {
            for y in 0..self.height {
                let src = self.index(c, y, 0);
                let dst = out.index(c, y + top, left);
                out.data[dst..dst + self.width].copy_from_slice(&self.data[src..src + self.width]);
            }
        }
        out
    }

    /// Returns a copy with every channel zero-padded (bottom/right) to
    /// `height x width` (see [`Image::padded_to`]).
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the maps.
    pub fn padded_to(&self, height: usize, width: usize) -> FeatureMaps {
        assert!(
            height >= self.height && width >= self.width,
            "padded size smaller than maps"
        );
        let mut out = FeatureMaps::zeros(self.channels, height, width);
        for c in 0..self.channels {
            for y in 0..self.height {
                let src = self.index(c, y, 0);
                let dst = out.index(c, y, 0);
                out.data[dst..dst + self.width].copy_from_slice(&self.data[src..src + self.width]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_chw() {
        let maps = FeatureMaps::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(
            maps.as_slice(),
            &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]
        );
        assert_eq!(maps.index(1, 1, 0), 6);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut maps = FeatureMaps::zeros(3, 4, 5);
        maps.set(2, 3, 4, -1.5);
        assert_eq!(maps.get(2, 3, 4), -1.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        FeatureMaps::zeros(1, 1, 1).get(1, 0, 0);
    }

    #[test]
    fn channel_extraction() {
        let maps = FeatureMaps::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let ch1 = maps.channel(1);
        assert_eq!(ch1.get(1, 1), 111.0);
    }

    #[test]
    fn from_image_is_single_channel() {
        let img = Image::from_fn(2, 2, |y, x| (y + x) as f32);
        let maps = FeatureMaps::from_image(img.clone());
        assert_eq!(maps.channels(), 1);
        assert_eq!(maps.channel(0), img);
    }

    #[test]
    fn padding_pads_every_channel() {
        let maps = FeatureMaps::from_fn(2, 2, 2, |c, _, _| c as f32 + 1.0);
        let padded = maps.padded_to(3, 4);
        assert_eq!(padded.get(1, 1, 1), 2.0);
        assert_eq!(padded.get(1, 2, 3), 0.0);
        assert_eq!(padded.get(0, 0, 3), 0.0);
    }

    #[test]
    fn border_padding_every_channel() {
        let maps = FeatureMaps::from_fn(2, 1, 1, |c, _, _| c as f32 + 1.0);
        let p = maps.padded_border(1, 0, 1, 0);
        assert_eq!((p.height(), p.width()), (2, 2));
        assert_eq!(p.get(0, 1, 1), 1.0);
        assert_eq!(p.get(1, 1, 1), 2.0);
        assert_eq!(p.get(1, 0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_validates() {
        FeatureMaps::from_vec(2, 2, 2, vec![0.0; 7]);
    }
}

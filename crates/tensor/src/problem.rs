//! Convolution problem descriptors.

use crate::filters::FilterSet;
use crate::maps::FeatureMaps;

/// Shape of a direct-convolution problem: `C` input channels of
/// `H x W` pixels, `F` filters of size `K x K`, "valid" semantics
/// (no implicit padding; output is `(H-K)/S+1 x (W-K)/S+1` for stride
/// `S`, which defaults to 1 — the only stride the paper's direct kernels
/// support; the GEMM baselines handle any stride).
///
/// The paper's figures sweep `(N, K, F)` for the special case (`C` = 1,
/// `N x N` images) and `(N, K, C, F)` for the general case.
///
/// # Examples
///
/// ```
/// use kconv_tensor::ConvProblem;
/// let p = ConvProblem::new(64, 128, 128, 32, 3);
/// assert_eq!(p.out_height(), 126);
/// assert_eq!(p.flops(), 2 * 64 * 9 * 32 * 126 * 126);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvProblem {
    /// Input channels `C`.
    pub channels: usize,
    /// Input height `H`.
    pub height: usize,
    /// Input width `W`.
    pub width: usize,
    /// Number of filters `F` (output channels).
    pub filters: usize,
    /// Filter spatial size `K`.
    pub k: usize,
    /// Spatial stride `S` (1 unless set via [`ConvProblem::with_stride`]).
    pub stride: usize,
}

impl ConvProblem {
    /// Creates a problem descriptor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the filter exceeds the image.
    pub fn new(channels: usize, height: usize, width: usize, filters: usize, k: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0 && filters > 0 && k > 0,
            "all problem dimensions must be positive"
        );
        assert!(
            k <= height && k <= width,
            "filter size {k} exceeds image {height}x{width}"
        );
        ConvProblem {
            channels,
            height,
            width,
            filters,
            k,
            stride: 1,
        }
    }

    /// Returns the problem with spatial stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Special-case problem: one channel, square `n x n` image.
    pub fn special(n: usize, filters: usize, k: usize) -> Self {
        ConvProblem::new(1, n, n, filters, k)
    }

    /// General-case problem: square `n x n` image.
    pub fn general(n: usize, channels: usize, filters: usize, k: usize) -> Self {
        ConvProblem::new(channels, n, n, filters, k)
    }

    /// Output height `(H - K) / S + 1`.
    pub fn out_height(&self) -> usize {
        (self.height - self.k) / self.stride + 1
    }

    /// Output width `(W - K) / S + 1`.
    pub fn out_width(&self) -> usize {
        (self.width - self.k) / self.stride + 1
    }

    /// Output elements per filter.
    pub fn out_pixels(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Floating-point operations of the direct algorithm
    /// (`2 * C * K^2` per output element per filter).
    pub fn flops(&self) -> u64 {
        2 * self.channels as u64
            * (self.k * self.k) as u64
            * self.filters as u64
            * self.out_pixels() as u64
    }

    /// Whether `input` and `filters` match this problem's shapes.
    pub fn matches(&self, input: &FeatureMaps, filters: &FilterSet) -> bool {
        input.channels() == self.channels
            && input.height() == self.height
            && input.width() == self.width
            && filters.count() == self.filters
            && filters.channels() == self.channels
            && filters.k() == self.k
    }
}

impl std::fmt::Display for ConvProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv C={} {}x{} K={} F={} S={}",
            self.channels, self.height, self.width, self.k, self.filters, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_are_valid_convolution() {
        let p = ConvProblem::special(32, 4, 5);
        assert_eq!(p.out_height(), 28);
        assert_eq!(p.out_width(), 28);
        assert_eq!(p.out_pixels(), 784);
    }

    #[test]
    fn flops_formula() {
        let p = ConvProblem::general(10, 3, 2, 3);
        // 2 * 3 * 9 * 2 * 8 * 8
        assert_eq!(p.flops(), 6912);
    }

    #[test]
    fn one_by_one_filter_is_identity_shape() {
        let p = ConvProblem::special(16, 8, 1);
        assert_eq!(p.out_height(), 16);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        ConvProblem::new(0, 4, 4, 1, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn oversized_filter_rejected() {
        ConvProblem::new(1, 2, 2, 1, 3);
    }

    #[test]
    fn matches_checks_all_shapes() {
        let p = ConvProblem::general(8, 2, 3, 3);
        let input = FeatureMaps::zeros(2, 8, 8);
        let filters = FilterSet::zeros(3, 2, 3);
        assert!(p.matches(&input, &filters));
        assert!(!p.matches(&FeatureMaps::zeros(1, 8, 8), &filters));
        assert!(!p.matches(&input, &FilterSet::zeros(3, 2, 5)));
    }

    #[test]
    fn stride_shrinks_output() {
        let p = ConvProblem::special(11, 1, 3).with_stride(2);
        assert_eq!(p.out_height(), 5);
        assert_eq!(p.out_width(), 5);
        // Non-exact division truncates (the last window that fits).
        let p = ConvProblem::special(12, 1, 3).with_stride(2);
        assert_eq!(p.out_height(), 5);
        // Default stride is 1.
        assert_eq!(ConvProblem::special(11, 1, 3).stride, 1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        ConvProblem::special(8, 1, 3).with_stride(0);
    }

    #[test]
    fn display_format() {
        let s = ConvProblem::general(8, 2, 3, 3).to_string();
        assert!(s.contains("C=2") && s.contains("K=3") && s.contains("F=3") && s.contains("S=1"));
    }
}

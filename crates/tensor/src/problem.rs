//! Convolution problem descriptors.

use crate::filters::FilterSet;
use crate::maps::FeatureMaps;

/// Shape of a direct-convolution problem: `C` input channels of
/// `H x W` pixels, `F` filters of size `K x K`, "valid" semantics
/// (no implicit padding; output is `(H-K)/S+1 x (W-K)/S+1` for stride
/// `S`, which defaults to 1 — the only stride the paper's direct kernels
/// support; the GEMM baselines handle any stride).
///
/// The paper's figures sweep `(N, K, F)` for the special case (`C` = 1,
/// `N x N` images) and `(N, K, C, F)` for the general case.
///
/// # Examples
///
/// ```
/// use kconv_tensor::ConvProblem;
/// let p = ConvProblem::new(64, 128, 128, 32, 3);
/// assert_eq!(p.out_height(), 126);
/// assert_eq!(p.flops(), 2 * 64 * 9 * 32 * 126 * 126);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvProblem {
    /// Input channels `C`.
    pub channels: usize,
    /// Input height `H`.
    pub height: usize,
    /// Input width `W`.
    pub width: usize,
    /// Number of filters `F` (output channels).
    pub filters: usize,
    /// Filter spatial size `K`.
    pub k: usize,
    /// Spatial stride `S` (1 unless set via [`ConvProblem::with_stride`]).
    pub stride: usize,
    /// Spatial dilation `D`: taps sample `i * D` apart (1 unless set via
    /// [`ConvProblem::with_dilation`]).
    pub dilation: usize,
    /// Depthwise convolution (`groups == channels`): filter `f` convolves
    /// only input channel `f`, so `filters == channels` and each filter
    /// carries a single channel. Set via [`ConvProblem::depthwise`].
    pub depthwise: bool,
}

impl ConvProblem {
    /// Creates a problem descriptor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the filter exceeds the image.
    pub fn new(channels: usize, height: usize, width: usize, filters: usize, k: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0 && filters > 0 && k > 0,
            "all problem dimensions must be positive"
        );
        assert!(
            k <= height && k <= width,
            "filter size {k} exceeds image {height}x{width}"
        );
        ConvProblem {
            channels,
            height,
            width,
            filters,
            k,
            stride: 1,
            dilation: 1,
            depthwise: false,
        }
    }

    /// Returns the problem with spatial stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Returns the problem with spatial dilation `dilation`: filter tap
    /// `(i, j)` samples the input at offset `(i * D, j * D)`, so the
    /// receptive field grows to `(K-1)*D + 1` without more taps.
    ///
    /// # Panics
    ///
    /// Panics if `dilation` is zero or the dilated receptive field exceeds
    /// the image.
    pub fn with_dilation(mut self, dilation: usize) -> Self {
        assert!(dilation > 0, "dilation must be positive");
        self.dilation = dilation;
        let span = self.k_span();
        assert!(
            span <= self.height && span <= self.width,
            "dilated filter span {span} exceeds image {}x{}",
            self.height,
            self.width
        );
        self
    }

    /// Returns the problem as a depthwise convolution: `groups ==
    /// channels`, filter `f` convolving only input channel `f`. The
    /// filter bank carries one channel per filter
    /// (`FilterSet::zeros(C, 1, K)` shapes).
    ///
    /// # Panics
    ///
    /// Panics if `filters != channels` — depthwise requires one filter
    /// per input channel.
    pub fn depthwise(mut self) -> Self {
        assert!(
            self.filters == self.channels,
            "depthwise requires filters == channels, got F={} C={}",
            self.filters,
            self.channels
        );
        self.depthwise = true;
        self
    }

    /// The dilated receptive-field extent `(K-1)*D + 1` (equals `K` for
    /// dilation 1).
    pub fn k_span(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    /// Whether this is the dense, undilated case every paper kernel
    /// supports (dilation 1, not depthwise). Strides are checked
    /// separately — the GEMM baselines accept them.
    pub fn is_dense(&self) -> bool {
        self.dilation == 1 && !self.depthwise
    }

    /// Channels accumulated into one output element: `C` for dense
    /// convolution, 1 per group for depthwise.
    pub fn channels_per_group(&self) -> usize {
        if self.depthwise {
            1
        } else {
            self.channels
        }
    }

    /// Special-case problem: one channel, square `n x n` image.
    pub fn special(n: usize, filters: usize, k: usize) -> Self {
        ConvProblem::new(1, n, n, filters, k)
    }

    /// General-case problem: square `n x n` image.
    pub fn general(n: usize, channels: usize, filters: usize, k: usize) -> Self {
        ConvProblem::new(channels, n, n, filters, k)
    }

    /// Output height `(H - ((K-1)*D + 1)) / S + 1`.
    pub fn out_height(&self) -> usize {
        (self.height - self.k_span()) / self.stride + 1
    }

    /// Output width `(W - ((K-1)*D + 1)) / S + 1`.
    pub fn out_width(&self) -> usize {
        (self.width - self.k_span()) / self.stride + 1
    }

    /// Output elements per filter.
    pub fn out_pixels(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Floating-point operations of the direct algorithm
    /// (`2 * C * K^2` per output element per filter; depthwise
    /// accumulates a single channel per output).
    pub fn flops(&self) -> u64 {
        2 * self.channels_per_group() as u64
            * (self.k * self.k) as u64
            * self.filters as u64
            * self.out_pixels() as u64
    }

    /// Whether `input` and `filters` match this problem's shapes. A
    /// depthwise problem expects one filter channel per filter.
    pub fn matches(&self, input: &FeatureMaps, filters: &FilterSet) -> bool {
        input.channels() == self.channels
            && input.height() == self.height
            && input.width() == self.width
            && filters.count() == self.filters
            && filters.channels() == self.channels_per_group()
            && filters.k() == self.k
    }
}

impl std::fmt::Display for ConvProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv C={} {}x{} K={} F={} S={}",
            self.channels, self.height, self.width, self.k, self.filters, self.stride
        )?;
        // Markers only for the non-default axes, so dense problem names
        // (plan-cache keys, trace names, farm corpus entries) are
        // byte-stable across this extension.
        if self.dilation != 1 {
            write!(f, " D={}", self.dilation)?;
        }
        if self.depthwise {
            write!(f, " dw")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_are_valid_convolution() {
        let p = ConvProblem::special(32, 4, 5);
        assert_eq!(p.out_height(), 28);
        assert_eq!(p.out_width(), 28);
        assert_eq!(p.out_pixels(), 784);
    }

    #[test]
    fn flops_formula() {
        let p = ConvProblem::general(10, 3, 2, 3);
        // 2 * 3 * 9 * 2 * 8 * 8
        assert_eq!(p.flops(), 6912);
    }

    #[test]
    fn one_by_one_filter_is_identity_shape() {
        let p = ConvProblem::special(16, 8, 1);
        assert_eq!(p.out_height(), 16);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        ConvProblem::new(0, 4, 4, 1, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn oversized_filter_rejected() {
        ConvProblem::new(1, 2, 2, 1, 3);
    }

    #[test]
    fn matches_checks_all_shapes() {
        let p = ConvProblem::general(8, 2, 3, 3);
        let input = FeatureMaps::zeros(2, 8, 8);
        let filters = FilterSet::zeros(3, 2, 3);
        assert!(p.matches(&input, &filters));
        assert!(!p.matches(&FeatureMaps::zeros(1, 8, 8), &filters));
        assert!(!p.matches(&input, &FilterSet::zeros(3, 2, 5)));
    }

    #[test]
    fn stride_shrinks_output() {
        let p = ConvProblem::special(11, 1, 3).with_stride(2);
        assert_eq!(p.out_height(), 5);
        assert_eq!(p.out_width(), 5);
        // Non-exact division truncates (the last window that fits).
        let p = ConvProblem::special(12, 1, 3).with_stride(2);
        assert_eq!(p.out_height(), 5);
        // Default stride is 1.
        assert_eq!(ConvProblem::special(11, 1, 3).stride, 1);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        ConvProblem::special(8, 1, 3).with_stride(0);
    }

    #[test]
    fn display_format() {
        let s = ConvProblem::general(8, 2, 3, 3).to_string();
        assert!(s.contains("C=2") && s.contains("K=3") && s.contains("F=3") && s.contains("S=1"));
        // Dense problems display exactly as before the dilation/depthwise
        // axes existed (plan-cache keys and corpus names depend on this).
        assert_eq!(s, "conv C=2 8x8 K=3 F=3 S=1");
        let d = ConvProblem::general(9, 1, 1, 3)
            .with_dilation(2)
            .to_string();
        assert!(d.ends_with("D=2"));
        let dw = ConvProblem::general(8, 4, 4, 3).depthwise().to_string();
        assert!(dw.ends_with("dw"));
    }

    #[test]
    fn dilation_shrinks_output_by_span() {
        let p = ConvProblem::special(9, 1, 3).with_dilation(2);
        assert_eq!(p.k_span(), 5);
        assert_eq!(p.out_height(), 5);
        assert_eq!(p.out_width(), 5);
        // Combined with stride.
        let p = ConvProblem::special(9, 1, 3)
            .with_dilation(2)
            .with_stride(2);
        assert_eq!(p.out_height(), 3);
        // Default dilation is 1 and leaves the dense dims unchanged.
        let p = ConvProblem::special(9, 1, 3);
        assert_eq!(p.dilation, 1);
        assert_eq!(p.k_span(), 3);
        assert!(p.is_dense());
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn zero_dilation_rejected() {
        ConvProblem::special(8, 1, 3).with_dilation(0);
    }

    #[test]
    #[should_panic(expected = "exceeds image")]
    fn oversized_dilated_span_rejected() {
        ConvProblem::special(5, 1, 3).with_dilation(3); // span 7 > 5
    }

    #[test]
    fn depthwise_matches_single_channel_filters() {
        let p = ConvProblem::general(8, 4, 4, 3).depthwise();
        assert!(p.depthwise && !p.is_dense());
        assert_eq!(p.channels_per_group(), 1);
        let input = FeatureMaps::zeros(4, 8, 8);
        assert!(p.matches(&input, &FilterSet::zeros(4, 1, 3)));
        assert!(!p.matches(&input, &FilterSet::zeros(4, 4, 3)));
        // Depthwise flops drop the channel accumulation factor.
        let dense = ConvProblem::general(8, 4, 4, 3);
        assert_eq!(p.flops() * 4, dense.flops());
    }

    #[test]
    #[should_panic(expected = "filters == channels")]
    fn depthwise_requires_matching_filter_count() {
        ConvProblem::general(8, 4, 2, 3).depthwise();
    }
}

//! Wall-clock farm bench: what decode-once buys at corpus scale.
//!
//! Runs the same code path as the `farm` binary with more timing
//! iterations, so `BENCH_farm.json` carries best-of-3 numbers for the two
//! wall-clock comparisons:
//!
//! * `sweep`: serial vs scoped-thread-pool pricing of the full
//!   trace × spec grid (only a scaling result when `valid_scaling`);
//! * `decode_once`: replays/s when every spec re-decodes the KTRC byte
//!   stream vs when each trace is decoded once and re-priced N times —
//!   the amortization the decoded [`kconv_trace::Trace`] slabs exist for.
//!
//! Usage: `cargo bench -p kconv-bench --bench farm`

fn main() {
    let c = kconv_bench::farm::run(3);
    assert_eq!(c.failures, 0, "farm self-checks failed");
}

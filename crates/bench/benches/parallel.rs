//! Serial vs parallel launch-path wall-clock comparison on a Fig. 8 layer.
//!
//! Runs the general-case 3x3 kernel (Table 1 configuration) over a full
//! `N' = 64, C = 64, F = 64` grid twice — once with
//! [`Parallelism::Serial`], once with the auto thread count — and writes
//! the measurement to `BENCH_parallel.json` in the workspace root:
//!
//! ```json
//! { "serial_seconds": ..., "parallel_seconds": ..., "speedup": ...,
//!   "threads": ..., "host_cores": ..., "valid_scaling": ... }
//! ```
//!
//! `valid_scaling` is `false` when the host exposes fewer than two cores:
//! the speedup column then measures scheduler noise, not the launch path,
//! and downstream tooling must not read it as a scaling result.
//!
//! Counters and outputs are bit-identical between the two runs (asserted
//! here; proven more broadly by `tests/simulator_invariants.rs`), so the
//! only thing that changes is wall-clock time. The speedup scales with
//! physical cores; on a single-core host the launcher stays on the serial
//! path (one worker) and the recorded speedup is honestly ~1.
//!
//! A second measurement runs the same layer serially with the device-side
//! sanitizer off and fully on, writing `BENCH_sanitizer.json`:
//!
//! ```json
//! { "off_seconds": ..., "full_seconds": ..., "overhead": ... }
//! ```
//!
//! `SanitizerMode::Off` is the default path (the tools are opt-in and cost
//! nothing when disabled); `overhead` is the wall-clock factor the full
//! memcheck + racecheck + synccheck suite pays for its shadow state.
//!
//! Usage: `cargo bench -p kconv-bench --bench parallel`

use std::time::Instant;

use kconv_bench::fig8;
use kconv_core::Convolution;
use kconv_sim::{Gpu, GpuSpec, LaunchReport, Parallelism, SanitizerMode, SimMode};
use kconv_tensor::{ConvProblem, FeatureMaps, FilterSet};

const ITERS: usize = 3;

fn run_once(
    parallelism: Parallelism,
    sanitizer: SanitizerMode,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> (f64, LaunchReport) {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(parallelism)
        .with_sanitizer(sanitizer);
    let conv = fig8::conv();
    let t = Instant::now();
    let run = conv
        .run(&mut gpu, problem, input, filters, SimMode::Full)
        .expect("fig8 layer launches");
    (t.elapsed().as_secs_f64(), run.report)
}

/// Best-of-N wall time plus the report of the last run (for the
/// bit-identity check).
fn measure(
    parallelism: Parallelism,
    sanitizer: SanitizerMode,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> (f64, LaunchReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..ITERS {
        let (secs, report) = run_once(parallelism, sanitizer, problem, input, filters);
        best = best.min(secs);
        last = Some(report);
    }
    (best, last.expect("at least one iteration"))
}

fn main() {
    let (problem, input, filters) = fig8::workload();

    // Worker count comes from the host (or the KCONV_THREADS override),
    // never from a hard-coded floor: oversubscribing a small host measures
    // scheduler noise, not the launch path. On a single-core host one
    // worker degrades to the serial path by design and the recorded
    // speedup is honestly ~1.
    let threads = Parallelism::env_or_auto().worker_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let valid_scaling = host_cores >= 2;
    if !valid_scaling {
        eprintln!(
            "WARNING: only {host_cores} host core(s) visible — the parallel/serial \
             speedup below measures scheduler noise, not scaling. \
             BENCH_parallel.json will carry \"valid_scaling\": false."
        );
    }

    println!("fig8_general 3x3 (N'=64 C=64 F=64), SimMode::Full, best of {ITERS}");
    let (serial_s, serial_r) = measure(
        Parallelism::Serial,
        SanitizerMode::Off,
        &problem,
        &input,
        &filters,
    );
    println!("  serial:              {serial_s:.3} s");
    let (par_s, par_r) = measure(
        Parallelism::Threads(threads),
        SanitizerMode::Off,
        &problem,
        &input,
        &filters,
    );
    println!("  parallel ({threads} threads): {par_s:.3} s");
    let speedup = serial_s / par_s;
    println!("  speedup:             {speedup:.2}x on {host_cores} host core(s)");

    assert_eq!(
        serial_r.stats, par_r.stats,
        "parallel counters must be bit-identical to serial"
    );

    let json = format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"serial_seconds\": {serial_s:.6},\n  \"parallel_seconds\": {par_s:.6},\n  \"speedup\": {speedup:.4},\n  \"threads\": {threads},\n  \"host_cores\": {host_cores},\n  \"valid_scaling\": {valid_scaling},\n  \"iters\": {ITERS}\n}}\n"
    );
    let path = fig8::workspace_file("BENCH_parallel.json");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("wrote {path}");

    // Sanitizer overhead on the same layer, serial path. `Off` is the
    // exact configuration measured above; `Full` adds shadow-bitmap and
    // race/barrier bookkeeping on every access.
    println!("sanitizer overhead, serial, best of {ITERS}");
    let (off_s, off_r) = measure(
        Parallelism::Serial,
        SanitizerMode::Off,
        &problem,
        &input,
        &filters,
    );
    println!("  sanitizer off:       {off_s:.3} s");
    let (full_s, full_r) = measure(
        Parallelism::Serial,
        SanitizerMode::Full,
        &problem,
        &input,
        &filters,
    );
    println!("  sanitizer full:      {full_s:.3} s");
    let overhead = full_s / off_s;
    println!("  overhead:            {overhead:.2}x");
    assert_eq!(
        off_r.stats, full_r.stats,
        "the sanitizer must not change modeled counters"
    );

    let json = format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"off_seconds\": {off_s:.6},\n  \"full_seconds\": {full_s:.6},\n  \"overhead\": {overhead:.4},\n  \"iters\": {ITERS}\n}}\n"
    );
    let path = fig8::workspace_file("BENCH_sanitizer.json");
    std::fs::write(&path, &json).expect("write BENCH_sanitizer.json");
    println!("wrote {path}");
}

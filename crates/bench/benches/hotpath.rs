//! Single-thread hot-path speedup on a Fig. 8 layer.
//!
//! Runs the general-case 3x3 kernel (Table 1 configuration) over a full
//! `N' = 64, C = 64, F = 64` grid serially with the sanitizer off — the
//! exact configuration of the committed pre-overhaul baseline — and writes
//! the measurement to `BENCH_hotpath.json` in the workspace root:
//!
//! ```json
//! { "bench": "fig8_general_3x3_full", "baseline_seconds": ...,
//!   "current_seconds": ..., "speedup": ..., "iters": ... }
//! ```
//!
//! The baseline is the `off_seconds` value `BENCH_sanitizer.json` carried
//! immediately before the allocation-free hot-path overhaul (paged write
//! journal, bitmap dedup in the bank-conflict and coalescing models,
//! hoisted sanitizer checks), measured on the same reference host. Like
//! every wall-clock number in this workspace it is host-specific: treat
//! the ratio as meaningful on comparable hardware and regenerate the JSON
//! when the reference host changes. Counter exactness is *not* this
//! harness's job — `bench_smoke` pins all fig8 counters to
//! `GOLDEN_fig8.json`.
//!
//! Usage: `cargo bench -p kconv-bench --bench hotpath`

use std::time::Instant;

use kconv_bench::fig8;
use kconv_core::Convolution;
use kconv_sim::{Gpu, GpuSpec, Parallelism, SanitizerMode, SimMode};

/// Serial sanitizer-off wall time of this layer on the reference host
/// before the hot-path overhaul (see the module docs).
const BASELINE_SECONDS: f64 = 0.377588;

const ITERS: usize = 5;

fn main() {
    let (problem, input, filters) = fig8::workload();
    let conv = fig8::conv();

    println!("fig8_general 3x3 (N'=64 C=64 F=64), serial, sanitizer off, best of {ITERS}");
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
            .with_parallelism(Parallelism::Serial)
            .with_sanitizer(SanitizerMode::Off);
        let t = Instant::now();
        conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("fig8 layer launches");
        best = best.min(t.elapsed().as_secs_f64());
    }
    let speedup = BASELINE_SECONDS / best;
    println!("  baseline: {BASELINE_SECONDS:.3} s (pre-overhaul, reference host)");
    println!("  current:  {best:.3} s");
    println!("  speedup:  {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"baseline_seconds\": {BASELINE_SECONDS:.6},\n  \"current_seconds\": {best:.6},\n  \"speedup\": {speedup:.4},\n  \"iters\": {ITERS}\n}}\n"
    );
    let path = fig8::workspace_file("BENCH_hotpath.json");
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {path}");
}

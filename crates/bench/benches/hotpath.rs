//! Single-thread hot-path speedup on a Fig. 8 layer, per lane backend.
//!
//! Runs the general-case 3x3 kernel (Table 1 configuration) over a full
//! `N' = 64, C = 64, F = 64` grid serially with the sanitizer off — the
//! exact configuration of the committed pre-overhaul baseline — once per
//! lane-engine backend (`scalar`, `swar`, and `simd` when the host has
//! AVX2), plus a per-access microbenchmark that times the pricing
//! primitives themselves (`segment_count`, `bank_conflict_cycles`) over a
//! fixed basket of representative warp patterns. Everything goes to
//! `BENCH_hotpath.json` in the workspace root:
//!
//! ```json
//! { "bench": "fig8_general_3x3_full", "baseline_seconds": ...,
//!   "current_seconds": ..., "speedup": ..., "iters": ...,
//!   "host_cores": ..., "valid_scaling": ..., "lane_backend": "simd",
//!   "backends": { "scalar": {"fig8_seconds": ..., "peraccess_seconds": ...}, ... } }
//! ```
//!
//! `current_seconds` / `speedup` stay what they always were — the
//! dispatched (auto) configuration against the committed pre-overhaul
//! baseline (`off_seconds` from `BENCH_sanitizer.json` on the same
//! reference host). The per-backend numbers are measured in-process by
//! re-pointing the engine's cached dispatch (`lanes::force`), which the
//! bit-exactness contract makes safe at any time. Like every wall-clock
//! number in this workspace these are host-specific; regenerate the JSON
//! when the reference host changes. Counter exactness is *not* this
//! harness's job — `bench_smoke` pins all fig8 counters to
//! `GOLDEN_fig8.json`.
//!
//! Usage: `cargo bench -p kconv-bench --bench hotpath`

use std::time::Instant;

use kconv_bench::fig8;
use kconv_core::Convolution;
use kconv_sim::mem::lanes::{self, Backend};
use kconv_sim::pricing::{bank_conflict_cycles, segment_count};
use kconv_sim::{
    lane_addrs, lane_addrs_from, lane_addrs_uniform, BankWidth, Gpu, GpuSpec, LaneMask,
    Parallelism, SanitizerMode, SimMode, WarpAddrs,
};

/// Serial sanitizer-off wall time of this layer on the reference host
/// before the hot-path overhaul (see the module docs).
const BASELINE_SECONDS: f64 = 0.377588;

const ITERS: usize = 5;

/// Pricing calls per microbench pattern and iteration.
const MICRO_ROUNDS: usize = 60_000;

/// The per-access basket: the warp shapes the interpreter actually prices,
/// from best case (coalesced float) through the paper's conventional and
/// optimized shared-memory patterns to misaligned and scattered accesses.
fn micro_patterns() -> Vec<(WarpAddrs, u64, LaneMask)> {
    vec![
        // Coalesced float load: one 128 B transaction.
        (lane_addrs(0, 4), 4, LaneMask::ALL),
        // Coalesced float2 (the paper's optimized GM/SM width).
        (lane_addrs(0, 8), 8, LaneMask::ALL),
        // float4, half-warp active.
        (lane_addrs(0, 16), 16, LaneMask(0xFFFF)),
        // Uniform broadcast (constant-memory shape).
        (lane_addrs_uniform(4096), 4, LaneMask::ALL),
        // Row-strided shared-memory pattern (bank-conflict heavy).
        (lane_addrs(0, 32 * 8), 4, LaneMask::ALL),
        // Misaligned float2: every lane spans two words.
        (lane_addrs_from(|l| l as u64 * 8 + 4), 8, LaneMask::ALL),
        // Strided scatter: one segment per lane.
        (lane_addrs(64, 256), 4, LaneMask::ALL),
        // Sparse diverged mask.
        (lane_addrs(0, 128), 8, LaneMask(0x1111_1111)),
    ]
}

/// Best-of-5 wall time of `MICRO_ROUNDS` passes over the basket, pricing
/// each pattern as global (128 B and 32 B segments) and shared (32 banks ×
/// 8 B) memory. The checksum keeps the calls observable.
fn peraccess_seconds(patterns: &[(WarpAddrs, u64, LaneMask)]) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sum = 0u64;
    for _ in 0..5 {
        sum = 0;
        let t = Instant::now();
        for _ in 0..MICRO_ROUNDS {
            for (addrs, width, mask) in patterns {
                sum = sum.wrapping_add(segment_count(addrs, *width, *mask, 128));
                sum = sum.wrapping_add(segment_count(addrs, *width, *mask, 32));
                sum = sum.wrapping_add(
                    bank_conflict_cycles(addrs, *width, *mask, 32, BankWidth::B8).cycles,
                );
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sum)
}

/// Best-of-`ITERS` serial fig8 wall time under the currently forced
/// backend.
fn fig8_seconds() -> f64 {
    let (problem, input, filters) = fig8::workload();
    let conv = fig8::conv();
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
            .with_parallelism(Parallelism::Serial)
            .with_sanitizer(SanitizerMode::Off);
        let t = Instant::now();
        conv.run(&mut gpu, &problem, &input, &filters, SimMode::Full)
            .expect("fig8 layer launches");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let auto = lanes::active();
    let backends = Backend::available();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let valid_scaling = host_cores >= 2;
    let patterns = micro_patterns();

    println!(
        "fig8_general 3x3 (N'=64 C=64 F=64), serial, sanitizer off, best of {ITERS}; \
         dispatched lane backend: {}",
        auto.name()
    );
    let mut fig8_by: Vec<(Backend, f64)> = Vec::new();
    let mut micro_by: Vec<(Backend, f64)> = Vec::new();
    let mut checksum = None;
    for &backend in &backends {
        lanes::force(backend);
        let fig8_s = fig8_seconds();
        let (micro_s, sum) = peraccess_seconds(&patterns);
        // The microbench checksum must not depend on the backend — a cheap
        // in-bench restatement of the bit-exactness contract.
        match checksum {
            None => checksum = Some(sum),
            Some(c) => assert_eq!(c, sum, "{backend:?} priced differently from scalar"),
        }
        println!(
            "  {:<7} fig8: {fig8_s:.3} s   per-access basket: {micro_s:.3} s",
            backend.name()
        );
        fig8_by.push((backend, fig8_s));
        micro_by.push((backend, micro_s));
    }
    lanes::force(auto);

    let time_of =
        |list: &[(Backend, f64)], b: Backend| list.iter().find(|(x, _)| *x == b).map(|(_, s)| *s);
    let current = time_of(&fig8_by, auto).expect("auto backend was measured");
    let speedup = BASELINE_SECONDS / current;
    let scalar_micro = time_of(&micro_by, Backend::Scalar).expect("scalar is always available");
    println!("  baseline: {BASELINE_SECONDS:.3} s (pre-overhaul, reference host)");
    println!("  current:  {current:.3} s ({})", auto.name());
    println!("  speedup:  {speedup:.2}x");
    for &(backend, micro_s) in &micro_by {
        if backend != Backend::Scalar {
            println!(
                "  per-access {:<5} vs scalar: {:.2}x",
                backend.name(),
                scalar_micro / micro_s
            );
        }
    }

    let mut backends_json = String::new();
    for (i, &(backend, fig8_s)) in fig8_by.iter().enumerate() {
        let micro_s = time_of(&micro_by, backend).unwrap();
        backends_json.push_str(&format!(
            "    \"{}\": {{\"fig8_seconds\": {fig8_s:.6}, \"peraccess_seconds\": {micro_s:.6}, \"peraccess_speedup_vs_scalar\": {:.4}}}{}\n",
            backend.name(),
            scalar_micro / micro_s,
            if i + 1 < fig8_by.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"baseline_seconds\": {BASELINE_SECONDS:.6},\n  \"current_seconds\": {current:.6},\n  \"speedup\": {speedup:.4},\n  \"iters\": {ITERS},\n  \"host_cores\": {host_cores},\n  \"valid_scaling\": {valid_scaling},\n  \"lane_backend\": \"{}\",\n  \"peraccess_rounds\": {MICRO_ROUNDS},\n  \"backends\": {{\n{backends_json}  }}\n}}\n",
        auto.name(),
    );
    let path = fig8::workspace_file("BENCH_hotpath.json");
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {path}");
}

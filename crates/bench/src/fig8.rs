//! The Fig. 8 reference workload shared by every harness that measures it.
//!
//! `bench_smoke` (counter golden), the `hotpath` and `parallel` benches
//! (wall clock) and `trace_report` (trace-level checks) all run the same
//! layer: the general-case 3x3 kernel in its Table 1 configuration over a
//! full `N' = 64, C = 64, F = 64` grid, with fixed input/filter seeds.
//! This module is the single definition of that workload, its canonical
//! `KernelStats` JSON rendering, and the golden-file paths — so the
//! harnesses cannot drift apart on seeds or shapes.

use kconv_core::GeneralConv;
use kconv_sim::KernelStats;
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet};

/// Input seed every fig8 harness uses.
pub const INPUT_SEED: u64 = 201;
/// Filter seed every fig8 harness uses.
pub const FILTER_SEED: u64 = 203;

/// The Fig. 8 3x3 layer: `N' = 64, C = 64, F = 64, K = 3`.
pub fn problem() -> ConvProblem {
    ConvProblem::general(64 + 2, 64, 64, 3)
}

/// The layer plus its seeded input and filters.
pub fn workload() -> (ConvProblem, FeatureMaps, FilterSet) {
    let problem = problem();
    let input = random_maps(problem.channels, problem.height, problem.width, INPUT_SEED);
    let filters = random_filters(problem.filters, problem.channels, problem.k, FILTER_SEED);
    (problem, input, filters)
}

/// The kernel under test: the Table 1 3x3 configuration.
pub fn conv() -> GeneralConv {
    GeneralConv::table1(3)
}

/// Absolute path of `name` in the workspace root (where the golden and
/// bench JSON files live).
pub fn workspace_file(name: &str) -> String {
    format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Canonical JSON rendering of every counter, one line per field, so a
/// drift shows up as a readable diff.
pub fn stats_json(s: &KernelStats) -> String {
    let h = s.sm_conflict_histogram;
    format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"fma_lane_ops\": {},\n  \"alu_lane_ops\": {},\n  \"gm_ld_requests\": {},\n  \"gm_st_requests\": {},\n  \"gm_ld_transactions\": {},\n  \"gm_st_transactions\": {},\n  \"gm_ld_bytes_bus\": {},\n  \"gm_st_bytes_bus\": {},\n  \"gm_ld_bytes_useful\": {},\n  \"gm_st_bytes_useful\": {},\n  \"gm_ro_hits\": {},\n  \"sm_ld_requests\": {},\n  \"sm_st_requests\": {},\n  \"sm_ld_cycles\": {},\n  \"sm_st_cycles\": {},\n  \"sm_bytes_useful\": {},\n  \"sm_broadcasts\": {},\n  \"sm_conflict_histogram\": [{}, {}, {}, {}, {}, {}],\n  \"cm_requests\": {},\n  \"cm_cycles\": {},\n  \"cm_misses\": {},\n  \"barriers\": {},\n  \"blocks_executed\": {},\n  \"blocks_total\": {}\n}}\n",
        s.fma_lane_ops,
        s.alu_lane_ops,
        s.gm_ld_requests,
        s.gm_st_requests,
        s.gm_ld_transactions,
        s.gm_st_transactions,
        s.gm_ld_bytes_bus,
        s.gm_st_bytes_bus,
        s.gm_ld_bytes_useful,
        s.gm_st_bytes_useful,
        s.gm_ro_hits,
        s.sm_ld_requests,
        s.sm_st_requests,
        s.sm_ld_cycles,
        s.sm_st_cycles,
        s.sm_bytes_useful,
        s.sm_broadcasts,
        h[0],
        h[1],
        h[2],
        h[3],
        h[4],
        h[5],
        s.cm_requests,
        s.cm_cycles,
        s.cm_misses,
        s.barriers,
        s.blocks_executed,
        s.blocks_total,
    )
}

/// Prints the mismatching lines of two canonical JSON renderings to
/// stderr, one golden/current pair per drifted field.
pub fn print_json_diff(golden: &str, current: &str) {
    for (g, c) in golden.lines().zip(current.lines()) {
        if g != c {
            eprintln!("  golden:  {}", g.trim());
            eprintln!("  current: {}", c.trim());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_the_fig8_layer() {
        let (p, input, filters) = workload();
        assert_eq!((p.channels, p.filters, p.k), (64, 64, 3));
        assert_eq!((p.out_height(), p.out_width()), (64, 64));
        assert_eq!(input.as_slice().len(), 64 * 66 * 66);
        assert_eq!(filters.len(), 64 * 64 * 3 * 3);
        // Seeds are fixed: the same call yields the same bits.
        let (_, input2, filters2) = workload();
        assert_eq!(input.as_slice(), input2.as_slice());
        assert_eq!(filters.as_slice(), filters2.as_slice());
    }

    #[test]
    fn stats_json_is_line_per_field() {
        let json = stats_json(&KernelStats::default());
        assert!(json.lines().count() > 20);
        assert!(json.contains("\"gm_ld_transactions\": 0"));
    }
}

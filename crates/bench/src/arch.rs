//! The `arch` harness: the kernel generator's claims, proven from traces.
//!
//! For every [`GpuSpec`] preset and every computation [`DataType`], the
//! generator ([`kconv_arch::generate`]) derives the matched vector factor
//! `n = W_SMB / W_CD` (paper eq. 1 in reverse) and instantiates the
//! kernel variant. This harness captures each generated variant's KTRC
//! trace on its own spec and gates four claims with replay:
//!
//! * **saturation** — every matched variant replays to a bank-conflict
//!   serialization factor of exactly 1.0 *and* a full-warp shared-memory
//!   waste of exactly 1.0 on its own machine;
//! * **never worse than hand-tuning** — the generated `f32` variant's
//!   serialization factor never exceeds the paper's hard-wired Kepler
//!   float2 kernel replayed on the same preset, and is strictly lower on
//!   4-byte-bank parts;
//! * **fp16 mismatch, exactly** — on 4-byte banks the half kernel forced
//!   to `n = 1` measures eq. 1's factor as exactly 2.0, and the derived
//!   half2 pairing (`n = 2`) eliminates it exactly; on Kepler's 8-byte
//!   banks the mismatch reappears at `n = 2` and `n = 4` is the cure;
//! * **clean execution** — every generated variant runs sanitizer-clean
//!   under [`SanitizerMode::Full`], matches the CPU reference through its
//!   quantization oracle, and is bit-identical between serial and
//!   threaded block execution.
//!
//! [`run`] is the single code path behind the `arch` binary (`--check`
//! gating). It writes `BENCH_arch.json` to the workspace root either way.

use kconv_arch::{
    capture, conflict_factor, full_warp_waste, generate_all, generate_forced, measured_mismatch,
    reference_oracle, GeneratedVariant, FILTER_SEED, INPUT_SEED,
};
use kconv_core::{ConvRun, DataType, KernelShape};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SanitizerMode, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

use crate::{fig8, print_table, Checker};

/// The harness problem: one Table-1-sized special layer, small enough
/// that the full preset × dtype × gate matrix stays fast.
pub fn problem() -> ConvProblem {
    ConvProblem::special(64, 2, 3)
}

/// One generated-variant measurement row (feeds the table and the JSON).
#[derive(Debug)]
pub struct VariantRow {
    /// Preset the variant was generated for.
    pub spec: GpuSpec,
    /// The derived shape.
    pub shape: KernelShape,
    /// The instantiated kernel's self-reported name.
    pub kernel: String,
    /// KTRC size of the capture.
    pub trace_bytes: usize,
    /// Replayed serialization factor on the variant's own spec.
    pub conflict: f64,
    /// Replayed full-warp waste on the variant's own spec.
    pub waste: f64,
    /// Whether the sanitizer-clean + deterministic + reference gate held.
    pub clean: bool,
}

/// Runs `variant` on its own spec with the full sanitizer and the given
/// block-level parallelism, using the harness seeds.
fn run_sanitized(
    variant: &GeneratedVariant,
    problem: &ConvProblem,
    parallelism: Parallelism,
) -> Result<ConvRun, String> {
    let input = random_maps(problem.channels, problem.height, problem.width, INPUT_SEED);
    let filters = random_filters(problem.filters, problem.channels, problem.k, FILTER_SEED);
    let mut gpu = Gpu::new(variant.spec.clone())
        .with_sanitizer(SanitizerMode::Full)
        .with_parallelism(parallelism);
    variant
        .conv
        .run(&mut gpu, problem, &input, &filters, SimMode::Full)
        .map_err(|e| format!("{}: {e}", variant.label()))
}

/// The sanitizer/determinism/reference gate for one variant: a serial
/// [`SanitizerMode::Full`] run must finish fault-free and match the CPU
/// reference through the variant's quantization oracle, and a threaded
/// run must reproduce it bit for bit (stats and output).
fn clean_execution(variant: &GeneratedVariant, problem: &ConvProblem, c: &mut Checker) -> bool {
    let label = variant.label();
    let serial = match run_sanitized(variant, problem, Parallelism::Serial) {
        Ok(run) => run,
        Err(e) => {
            c.check(&format!("{label}: sanitizer-clean"), false, &e);
            return false;
        }
    };
    let input = random_maps(problem.channels, problem.height, problem.width, INPUT_SEED);
    let filters = random_filters(problem.filters, problem.channels, problem.k, FILTER_SEED);
    let (ref_input, ref_filters, tol) = reference_oracle(variant.shape.dtype, &input, &filters);
    let reference = serial
        .verify_executed(problem, &ref_input, &ref_filters, tol)
        .map_err(|e| e.to_string());
    c.check(
        &format!("{label}: sanitizer-clean + reference"),
        serial.faults.is_empty() && reference.is_ok(),
        &format!(
            "KCONV_SANITIZE=full, {} faults, reference {}",
            serial.faults.len(),
            reference.as_ref().map_or_else(|e| e.as_str(), |_| "ok"),
        ),
    );
    let threaded = match run_sanitized(variant, problem, Parallelism::Threads(4)) {
        Ok(run) => run,
        Err(e) => {
            c.check(&format!("{label}: serial == threaded"), false, &e);
            return false;
        }
    };
    let identical =
        serial.report.stats == threaded.report.stats && serial.output == threaded.output;
    c.check(
        &format!("{label}: serial == threaded"),
        identical,
        "KernelStats + output, bit-exact, 4 workers",
    );
    serial.faults.is_empty() && reference.is_ok() && identical
}

/// Captures the corpus, replays every gate, and writes `BENCH_arch.json`
/// to the workspace root. Returns the tally for the caller's `--check`
/// gate.
pub fn run() -> Checker {
    let mut c = Checker::default();
    let problem = problem();
    let presets = GpuSpec::presets_all();

    // --- Generate: derive n for every preset × dtype, capture each ---
    println!(
        "arch — generated variants across {} presets (problem: {}x{} image, {} filters, k={})\n",
        presets.len(),
        problem.height,
        problem.width,
        problem.filters,
        problem.k
    );
    let mut rows: Vec<VariantRow> = Vec::new();
    for spec in &presets {
        for variant in generate_all(spec) {
            let cap = capture(&variant, &problem)
                .unwrap_or_else(|e| panic!("{} captures: {e}", variant.label()));
            let conflict = conflict_factor(&cap.bytes, spec)
                .unwrap_or_else(|e| panic!("{} replays: {e}", variant.label()));
            let waste = full_warp_waste(&cap.bytes, spec, variant.shape.lane_bytes())
                .unwrap_or_else(|e| panic!("{} replays: {e}", variant.label()));
            rows.push(VariantRow {
                spec: spec.clone(),
                shape: variant.shape,
                kernel: cap.kernel.clone(),
                trace_bytes: cap.bytes.len(),
                conflict,
                waste,
                clean: false,
            });
        }
    }
    print_table(
        &[
            "preset", "banks", "dtype", "n", "kernel", "conflict", "fw-waste",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.spec.name.to_string(),
                    format!("{}B", r.spec.bank_width.bytes()),
                    r.shape.dtype.name().to_string(),
                    r.shape.vec_width.to_string(),
                    r.kernel.clone(),
                    format!("{:.3}", r.conflict),
                    format!("{:.3}", r.waste),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- Gate: matched variants saturate their own fabric, exactly ---
    println!(
        "\n[gate] matched variants replay conflict-free and bank-row-filling on their own spec"
    );
    for r in &rows {
        c.eq_f64(
            &format!("{} on {}: conflict factor", r.shape, r.spec.name),
            r.conflict,
            1.0,
        );
        c.eq_f64(
            &format!("{} on {}: full-warp waste", r.shape, r.spec.name),
            r.waste,
            1.0,
        );
    }

    // --- Gate: generated f32 never serializes more than the paper's ---
    println!("\n[gate] generated f32 <= hard-wired Kepler float2, per preset (strict on 4B banks)");
    let hardwired = generate_forced(&GpuSpec::kepler_k40m(), DataType::F32, 2)
        .expect("the paper's float2 kernel is instantiable");
    let hard_cap = capture(&hardwired, &problem).expect("hard-wired kernel captures");
    let mut hardwired_rows: Vec<(String, f64, f64)> = Vec::new();
    for spec in &presets {
        let hard = conflict_factor(&hard_cap.bytes, spec).expect("hard-wired trace replays");
        let generated = rows
            .iter()
            .find(|r| r.spec.name == spec.name && r.shape.dtype == DataType::F32)
            .expect("every preset has an f32 row");
        let strict = spec.bank_width.bytes() == 4;
        let ok = if strict {
            generated.conflict < hard
        } else {
            generated.conflict <= hard
        };
        c.check(
            &format!(
                "{}: generated {} hard-wired",
                spec.name,
                if strict { "<" } else { "<=" }
            ),
            ok,
            &format!(
                "generated {:.4}, hard-wired float2 {hard:.4}",
                generated.conflict
            ),
        );
        hardwired_rows.push((spec.name.to_string(), hard, generated.conflict));
    }

    // --- Gate: eq. 1's fp16 mismatch factor, measured exactly ---
    println!("\n[gate] fp16 mismatch factor from traces: 2.0 at the wrong n, 1.0 at the derived n");
    let mut mismatch_rows: Vec<(String, usize, f64, f64)> = Vec::new();
    for (spec, n, expected) in [
        (GpuSpec::maxwell_like(), 1, 2.0),
        (GpuSpec::maxwell_like(), 2, 1.0),
        (GpuSpec::kepler_k40m_4b(), 1, 2.0),
        (GpuSpec::kepler_k40m_4b(), 2, 1.0),
        (GpuSpec::kepler_k40m(), 2, 2.0),
        (GpuSpec::kepler_k40m(), 4, 1.0),
    ] {
        let measured = measured_mismatch(&spec, DataType::F16, n, &problem)
            .unwrap_or_else(|e| panic!("fp16 n={n} on {} measures: {e}", spec.name));
        c.eq_f64(
            &format!(
                "fp16 n={n} on {} ({}B banks)",
                spec.name,
                spec.bank_width.bytes()
            ),
            measured,
            expected,
        );
        mismatch_rows.push((spec.name.to_string(), n, measured, expected));
    }

    // --- Gate: sanitizer-clean, reference-exact, deterministic ---
    println!("\n[gate] every variant sanitizer-clean, reference-verified, serial == threaded");
    for spec in &presets {
        for variant in generate_all(spec) {
            let clean = clean_execution(&variant, &problem, &mut c);
            if let Some(r) = rows
                .iter_mut()
                .find(|r| r.spec.name == spec.name && r.shape.dtype == variant.shape.dtype)
            {
                r.clean = clean;
            }
        }
    }

    // --- JSON artifact ---
    let mut variants_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        variants_json.push_str(&format!(
            "    {{\"spec\": \"{}\", \"bank_bytes\": {}, \"dtype\": \"{}\", \"n\": {}, \"kernel\": \"{}\", \"trace_bytes\": {}, \"conflict_factor\": {:.6}, \"full_warp_waste\": {:.6}, \"clean\": {}}}{}\n",
            r.spec.name,
            r.spec.bank_width.bytes(),
            r.shape.dtype.name(),
            r.shape.vec_width,
            r.kernel,
            r.trace_bytes,
            r.conflict,
            r.waste,
            r.clean,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let mut hardwired_json = String::new();
    for (i, (name, hard, generated)) in hardwired_rows.iter().enumerate() {
        hardwired_json.push_str(&format!(
            "    {{\"spec\": \"{name}\", \"hardwired_conflict_factor\": {hard:.6}, \"generated_conflict_factor\": {generated:.6}}}{}\n",
            if i + 1 < hardwired_rows.len() { "," } else { "" },
        ));
    }
    let mut mismatch_json = String::new();
    for (i, (name, n, measured, expected)) in mismatch_rows.iter().enumerate() {
        mismatch_json.push_str(&format!(
            "    {{\"spec\": \"{name}\", \"dtype\": \"fp16\", \"n\": {n}, \"measured\": {measured:.6}, \"expected\": {expected:.6}}}{}\n",
            if i + 1 < mismatch_rows.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"arch\",\n  \"problem\": \"special {}x{} image, {} filters, k={}\",\n  \"presets\": {},\n  \"variants\": [\n{variants_json}  ],\n  \"hardwired_baseline\": [\n{hardwired_json}  ],\n  \"fp16_mismatch\": [\n{mismatch_json}  ],\n  \"checks\": {},\n  \"failures\": {}\n}}\n",
        problem.height,
        problem.width,
        problem.filters,
        problem.k,
        presets.len(),
        c.checks,
        c.failures,
    );
    let path = fig8::workspace_file("BENCH_arch.json");
    if let Err(e) = std::fs::write(&path, &json) {
        c.check("BENCH_arch.json written", false, &format!("{path}: {e}"));
    } else {
        println!("\nwrote {path}");
    }

    c.summary();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_arch::generate;

    #[test]
    fn harness_problem_is_special_shaped() {
        let p = problem();
        assert_eq!(p.k, 3);
        assert_eq!(p.channels, 1);
    }

    #[test]
    fn clean_execution_holds_for_the_kepler_f32_variant() {
        let mut c = Checker::default();
        let variant = generate(&GpuSpec::kepler_k40m(), DataType::F32);
        assert!(clean_execution(&variant, &problem(), &mut c));
        assert_eq!(c.failures, 0);
    }
}

//! The `systolic` harness: the double-buffered pipeline's claims, proven
//! from captured KTRC traces.
//!
//! For every preset of the extended workload matrix (dense, strided,
//! dilated, depthwise, and a strided+dilated 5x5), the harness captures
//! the systolic kernel at pipeline depth 1 (the classic stage/sync/
//! compute/sync alternation) and depth 2 (double-buffered ping/pong
//! staging) and gates five claims:
//!
//! * **barrier halving** — the traces show every block running exactly
//!   `2R` barriers at depth 1 and `R + 1` at depth 2 (`R` staging
//!   rounds), i.e. `(d2 - 1) * 2 == d1`, with uniform per-block counts
//!   and trace arrivals equal to the live `bar_syncs` counter;
//! * **traffic bit-identity** — every GM, SM and CM counter (requests,
//!   transactions, bus and useful bytes, cycles, broadcasts, misses) and
//!   the FMA count are bit-identical between the two depths, and so is
//!   the output tensor: the pipeline reorders *time*, not *traffic*;
//! * **modeled speedup** — depth 2 strictly improves the modeled launch
//!   time on every preset (fewer barrier waits, same everything else);
//! * **replay** — each capture re-priced by `kconv-replay` under its own
//!   spec reproduces the live `KernelStats` and timing bit for bit;
//! * **clean execution** — both depths run sanitizer-clean under
//!   [`SanitizerMode::Full`], match the CPU reference, and are
//!   bit-identical between serial and threaded block execution.
//!
//! A final gate drives the tuner: the depth axis ranks the
//! double-buffered schedule first on a probe problem, and a config whose
//! doubled staging buffer exceeds the block's shared-memory capacity
//! comes back as a recorded `TuneSkip`, not a launch failure.
//!
//! [`run`] is the single code path behind the `systolic` binary
//! (`--check` gating). It writes `BENCH_systolic.json` to the workspace
//! root either way.

use kconv_core::{ConvRun, Convolution};
use kconv_replay::{replay, TargetSpec};
use kconv_sim::{Gpu, GpuSpec, KernelStats, Parallelism, SanitizerMode, SimMode, WARP_SIZE};
use kconv_systolic::{
    barrier_halving, depth_axis, explore_pipeline_recorded, PipelineConfig, SystolicConv,
};
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet, CONV_TOL};
use kconv_trace::{SharedBuffer, TraceSummary, TraceWriter};

use crate::{fig8, print_table, Checker};

/// Input seed shared by every harness capture.
pub const INPUT_SEED: u64 = 401;
/// Filter seed shared by every harness capture.
pub const FILTER_SEED: u64 = 409;

/// One workload-matrix preset: a named layer shape the pipeline runs at
/// both depths.
#[derive(Debug)]
pub struct Preset {
    /// Stable short name (keys the JSON rows).
    pub name: &'static str,
    /// The layer shape.
    pub problem: ConvProblem,
}

/// The harness workload matrix: every axis the systolic kernel extends
/// the repo's coverage by — stride, dilation, depthwise grouping and
/// their combination — next to the dense anchor. Channel counts exceed
/// `c_sh` so every preset runs several staging rounds (`R >= 2`; the
/// single-round case degenerates to `2 == 2` and proves nothing).
pub fn presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "dense-3x3",
            problem: ConvProblem::general(34, 8, 8, 3),
        },
        Preset {
            name: "strided-3x3",
            problem: ConvProblem::general(34, 8, 8, 3).with_stride(2),
        },
        Preset {
            name: "dilated-3x3",
            problem: ConvProblem::general(34, 8, 8, 3).with_dilation(2),
        },
        Preset {
            name: "depthwise-3x3",
            problem: ConvProblem::general(34, 8, 8, 3).depthwise(),
        },
        Preset {
            name: "strided-dilated-5x5",
            problem: ConvProblem::general(38, 6, 4, 5)
                .with_stride(2)
                .with_dilation(2),
        },
    ]
}

/// The seeded workload for one preset.
fn workload(problem: &ConvProblem) -> (FeatureMaps, FilterSet) {
    let input = random_maps(problem.channels, problem.height, problem.width, INPUT_SEED);
    let filters = random_filters(
        problem.filters,
        problem.channels_per_group(),
        problem.k,
        FILTER_SEED,
    );
    (input, filters)
}

/// One captured depth: the live run plus its KTRC bytes.
struct Capture {
    run: ConvRun,
    bytes: Vec<u8>,
    summary: TraceSummary,
}

/// Runs `cfg` on the Kepler anchor with a trace writer attached.
fn capture(cfg: PipelineConfig, problem: &ConvProblem) -> Capture {
    let (input, filters) = workload(problem);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_sanitizer(SanitizerMode::Off);
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = SystolicConv::new(cfg)
        .run(&mut gpu, problem, &input, &filters, SimMode::Full)
        .unwrap_or_else(|e| panic!("systolic d{} on {problem}: {e}", cfg.depth));
    gpu.set_trace_sink(None);
    let bytes = buf.take();
    let summary = TraceSummary::from_bytes(&bytes)
        .expect("systolic capture decodes")
        .remove(0);
    Capture {
        run,
        bytes,
        summary,
    }
}

/// Memory-traffic counters that must be bit-identical across depths —
/// everything except the barrier group and the derived timing.
fn traffic(s: &KernelStats) -> Vec<u64> {
    vec![
        s.fma_lane_ops,
        s.gm_ld_requests,
        s.gm_st_requests,
        s.gm_ld_transactions,
        s.gm_st_transactions,
        s.gm_ld_bytes_bus,
        s.gm_st_bytes_bus,
        s.gm_ld_bytes_useful,
        s.gm_st_bytes_useful,
        s.gm_ro_hits,
        s.sm_ld_requests,
        s.sm_st_requests,
        s.sm_ld_cycles,
        s.sm_st_cycles,
        s.sm_bytes_useful,
        s.sm_broadcasts,
        s.cm_requests,
        s.cm_cycles,
        s.cm_misses,
    ]
}

/// The sanitizer/reference/determinism gate for one depth: a serial
/// [`SanitizerMode::Full`] run must finish fault-free and match the CPU
/// reference, and a threaded run must reproduce it bit for bit.
fn clean_execution(
    cfg: PipelineConfig,
    problem: &ConvProblem,
    label: &str,
    c: &mut Checker,
) -> bool {
    let (input, filters) = workload(problem);
    let run_at = |parallelism: Parallelism| {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
            .with_sanitizer(SanitizerMode::Full)
            .with_parallelism(parallelism);
        SystolicConv::new(cfg)
            .run(&mut gpu, problem, &input, &filters, SimMode::Full)
            .map_err(|e| format!("{label}: {e}"))
    };
    let serial = match run_at(Parallelism::Serial) {
        Ok(run) => run,
        Err(e) => {
            c.check(&format!("{label}: sanitizer-clean"), false, &e);
            return false;
        }
    };
    let reference = serial
        .verify_executed(problem, &input, &filters, CONV_TOL)
        .map_err(|e| e.to_string());
    c.check(
        &format!("{label}: sanitizer-clean + reference"),
        serial.faults.is_empty() && reference.is_ok(),
        &format!(
            "KCONV_SANITIZE=full, {} faults, reference {}",
            serial.faults.len(),
            reference.as_ref().map_or_else(|e| e.as_str(), |_| "ok"),
        ),
    );
    let threaded = match run_at(Parallelism::Threads(4)) {
        Ok(run) => run,
        Err(e) => {
            c.check(&format!("{label}: serial == threaded"), false, &e);
            return false;
        }
    };
    let identical =
        serial.report.stats == threaded.report.stats && serial.output == threaded.output;
    c.check(
        &format!("{label}: serial == threaded"),
        identical,
        "KernelStats + output, bit-exact, 4 workers",
    );
    serial.faults.is_empty() && reference.is_ok() && identical
}

/// One measured preset row (feeds the table and the JSON).
struct PresetRow {
    name: &'static str,
    problem: ConvProblem,
    rounds: u64,
    blocks: u64,
    d1_bars: u64,
    d2_bars: u64,
    d1_ms: f64,
    d2_ms: f64,
    trace_bytes: usize,
    clean: bool,
}

/// Captures both depths of every preset, replays every gate, and writes
/// `BENCH_systolic.json` to the workspace root. Returns the tally for the
/// caller's `--check` gate.
pub fn run() -> Checker {
    let mut c = Checker::default();
    let spec = GpuSpec::kepler_k40m();
    let base = PipelineConfig::matched_for(&spec);
    let warps = base.tile_w.div_ceil(WARP_SIZE) as u64;

    println!(
        "systolic — double-buffered pipeline vs baseline alternation on {} (tile_w {}, c_sh {}, n {})\n",
        spec.name, base.tile_w, base.c_sh, base.shape.vec_width
    );

    let mut rows: Vec<PresetRow> = Vec::new();
    for preset in presets() {
        let problem = &preset.problem;
        let d1_cfg = base.with_depth(1);
        let d2_cfg = base.with_depth(2);
        for cfg in [d1_cfg, d2_cfg] {
            cfg.validate(&spec, problem)
                .unwrap_or_else(|e| panic!("{} d{} invalid: {e}", preset.name, cfg.depth));
        }
        let d1 = capture(d1_cfg, problem);
        let d2 = capture(d2_cfg, problem);
        let rounds = base.rounds(problem) as u64;
        let blocks = d1.run.report.executed_blocks.len() as u64;

        // --- Gate: per-block barrier counts from the trace ---
        let uniform = d1.summary.block_bar_min == d1.summary.block_bar_max
            && d2.summary.block_bar_min == d2.summary.block_bar_max;
        c.check(
            &format!("{}: per-block barrier counts uniform", preset.name),
            uniform,
            &format!(
                "d1 [{}, {}], d2 [{}, {}] warp arrivals",
                d1.summary.block_bar_min,
                d1.summary.block_bar_max,
                d2.summary.block_bar_min,
                d2.summary.block_bar_max
            ),
        );
        c.eq_u64(
            &format!("{}: trace bar arrivals == live bar_syncs (d1)", preset.name),
            d1.summary.bar_arrivals(),
            d1.run.report.stats.bar_syncs,
        );
        c.eq_u64(
            &format!("{}: trace bar arrivals == live bar_syncs (d2)", preset.name),
            d2.summary.bar_arrivals(),
            d2.run.report.stats.bar_syncs,
        );
        let d1_bars = d1.summary.block_bar_max / warps;
        let d2_bars = d2.summary.block_bar_max / warps;
        c.eq_u64(
            &format!("{}: d1 runs 2R barriers per block", preset.name),
            d1_bars,
            2 * rounds,
        );
        c.eq_u64(
            &format!("{}: d2 runs R + 1 barriers per block", preset.name),
            d2_bars,
            rounds + 1,
        );
        c.check(
            &format!("{}: depth 2 halves the barrier rounds", preset.name),
            barrier_halving(d1_bars, d2_bars),
            &format!("(d2 {d2_bars} - 1) * 2 == d1 {d1_bars}, R = {rounds}"),
        );

        // --- Gate: traffic and output bit-identical across depths ---
        c.check(
            &format!("{}: GM/SM/CM traffic bit-identical", preset.name),
            traffic(&d1.run.report.stats) == traffic(&d2.run.report.stats),
            "19 counters compared, barriers excluded",
        );
        c.check(
            &format!("{}: outputs bit-identical", preset.name),
            d1.run.output == d2.run.output,
            "same FMA order, same bits",
        );

        // --- Gate: the saved barriers show up in the modeled time ---
        let d1_ms = d1.run.report.timing.t_total * 1e3;
        let d2_ms = d2.run.report.timing.t_total * 1e3;
        c.check(
            &format!("{}: modeled time strictly improves", preset.name),
            d2_ms < d1_ms,
            &format!("d1 {d1_ms:.4} ms -> d2 {d2_ms:.4} ms"),
        );

        // --- Gate: the captures replay to the live counters ---
        for (depth, cap) in [(1usize, &d1), (2, &d2)] {
            let r = &replay(&cap.bytes, &TargetSpec::Capture).expect("systolic capture replays")[0];
            c.check(
                &format!("{}: replay(capture) == live (d{depth})", preset.name),
                r.stats == cap.run.report.stats && r.timing == Some(cap.run.report.timing),
                "KernelStats + timing, bit-exact",
            );
        }

        // --- Gate: sanitizer-clean, reference-exact, deterministic ---
        let clean = [1usize, 2].iter().all(|&depth| {
            clean_execution(
                base.with_depth(depth),
                problem,
                &format!("{} d{depth}", preset.name),
                &mut c,
            )
        });

        rows.push(PresetRow {
            name: preset.name,
            problem: *problem,
            rounds,
            blocks,
            d1_bars,
            d2_bars,
            d1_ms,
            d2_ms,
            trace_bytes: d1.bytes.len() + d2.bytes.len(),
            clean,
        });
    }

    println!();
    print_table(
        &[
            "preset", "R", "blocks", "d1 bars", "d2 bars", "d1 (ms)", "d2 (ms)", "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    r.rounds.to_string(),
                    r.blocks.to_string(),
                    r.d1_bars.to_string(),
                    r.d2_bars.to_string(),
                    format!("{:.4}", r.d1_ms),
                    format!("{:.4}", r.d2_ms),
                    format!("{:.3}x", r.d1_ms / r.d2_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- Gate: the tuner ranks the depth axis and records skips ---
    println!("\n[gate] tuner: depth axis ranked, oversized staging recorded as a skip");
    let probe = ConvProblem::general(34, 8, 8, 3);
    let (results, skips) = explore_pipeline_recorded(&spec, &probe, &depth_axis(base), 4)
        .expect("depth axis explores");
    c.check(
        "tuner ranks the double-buffered schedule first",
        results.len() == 2 && skips.is_empty() && results[0].config.depth == 2,
        &format!(
            "{} results, {} skips, best depth {}",
            results.len(),
            skips.len(),
            results.first().map_or(0, |r| r.config.depth)
        ),
    );
    let oversized = PipelineConfig {
        c_sh: 64,
        tile_w: 512,
        ..base
    };
    let (fit, skipped) = explore_pipeline_recorded(&spec, &probe, &depth_axis(oversized), 4)
        .expect("oversized axis explores without launching");
    c.check(
        "oversized depth-2 staging becomes a TuneSkip",
        fit.len() < 2 && skipped.iter().any(|s| s.config.depth == 2),
        &skipped
            .iter()
            .map(|s| format!("d{}: {}", s.config.depth, s.reason))
            .collect::<Vec<_>>()
            .join("; "),
    );

    // --- JSON artifact ---
    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        rows_json.push_str(&format!(
            "    {{\"preset\": \"{}\", \"problem\": \"{}\", \"rounds\": {}, \"blocks\": {}, \"warps\": {warps}, \"d1_barriers_per_block\": {}, \"d2_barriers_per_block\": {}, \"d1_t_total_ms\": {:.6}, \"d2_t_total_ms\": {:.6}, \"modeled_speedup\": {:.6}, \"trace_bytes\": {}, \"clean\": {}}}{}\n",
            r.name,
            r.problem,
            r.rounds,
            r.blocks,
            r.d1_bars,
            r.d2_bars,
            r.d1_ms,
            r.d2_ms,
            r.d1_ms / r.d2_ms,
            r.trace_bytes,
            r.clean,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"systolic\",\n  \"spec\": \"{}\",\n  \"tile_w\": {},\n  \"c_sh\": {},\n  \"vec_width\": {},\n  \"presets\": [\n{rows_json}  ],\n  \"checks\": {},\n  \"failures\": {}\n}}\n",
        spec.name, base.tile_w, base.c_sh, base.shape.vec_width, c.checks, c.failures,
    );
    let path = fig8::workspace_file("BENCH_systolic.json");
    if let Err(e) = std::fs::write(&path, &json) {
        c.check(
            "BENCH_systolic.json written",
            false,
            &format!("{path}: {e}"),
        );
    } else {
        println!("\nwrote {path}");
    }

    c.summary();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_extended_workload_matrix() {
        let presets = presets();
        assert!(presets.iter().any(|p| p.problem.stride > 1));
        assert!(presets.iter().any(|p| p.problem.dilation > 1));
        assert!(presets.iter().any(|p| p.problem.depthwise));
        assert!(presets.iter().any(|p| p.problem.is_dense()));
        // Every preset runs at least two staging rounds; a single-round
        // pipeline satisfies the halving identity trivially (2 == 2).
        let base = PipelineConfig::matched_for(&GpuSpec::kepler_k40m());
        for p in &presets {
            assert!(base.rounds(&p.problem) >= 2, "{} degenerate", p.name);
        }
    }

    #[test]
    fn clean_execution_holds_for_the_dense_preset_at_depth_two() {
        let mut c = Checker::default();
        let base = PipelineConfig::matched_for(&GpuSpec::kepler_k40m());
        let problem = ConvProblem::general(34, 8, 8, 3);
        assert!(clean_execution(base, &problem, "dense d2", &mut c));
        assert_eq!(c.failures, 0);
    }
}

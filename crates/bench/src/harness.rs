//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds in fully offline environments, so it cannot depend
//! on `criterion`; the bench targets (which set `harness = false`) drive
//! this instead. It keeps the parts that matter for tracking the
//! reproduction pipeline — warm-up, automatic iteration calibration, a
//! name filter from the command line — and none of the statistics
//! machinery.

use std::time::{Duration, Instant};

/// Runs named benchmarks, skipping those that do not match the optional
/// command-line filter (`cargo bench -- <substring>`).
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    min_time: Duration,
}

impl Harness {
    /// Builds a harness from `std::env::args`, treating the first
    /// non-flag argument as a substring filter on benchmark names.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Harness {
            filter,
            min_time: Duration::from_millis(300),
        }
    }

    /// Overrides the minimum measurement window.
    pub fn with_min_time(mut self, min_time: Duration) -> Self {
        self.min_time = min_time;
        self
    }

    /// Times `f`, printing the mean per-iteration wall time.
    ///
    /// Returns the mean iteration time, or `None` if the benchmark was
    /// filtered out.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Option<Duration> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        // Warm-up and calibration: grow the iteration count until one
        // timed batch fills the measurement window.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_time {
                break elapsed / iters.max(1) as u32;
            }
            let target = self.min_time.as_secs_f64() * 1.2;
            let scale = if elapsed.is_zero() {
                16.0
            } else {
                (target / elapsed.as_secs_f64()).clamp(2.0, 1024.0)
            };
            iters = ((iters as f64) * scale).ceil() as u64;
        };
        println!(
            "{name:<40} {:>12} /iter  (n={iters})",
            fmt_duration(per_iter)
        );
        Some(per_iter)
    }
}

/// Formats a duration with an SI prefix matched to its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_out_benchmarks_are_skipped() {
        let h = Harness {
            filter: Some("other".into()),
            min_time: Duration::from_millis(1),
        };
        assert!(h.bench("this_name", || 1 + 1).is_none());
    }

    #[test]
    fn matching_benchmarks_report_a_time() {
        let h = Harness {
            filter: None,
            min_time: Duration::from_millis(1),
        };
        let t = h.bench("tiny", || std::hint::black_box(3u64).pow(2));
        assert!(t.is_some());
    }

    #[test]
    fn durations_format_with_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(150)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(150)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(15)).ends_with(" s"));
    }
}

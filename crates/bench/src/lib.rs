//! # kconv-bench — experiment harnesses for the DAC'17 reproduction
//!
//! One binary per paper artifact (see `DESIGN.md` for the index):
//!
//! | Binary | Artifact |
//! |--------|----------|
//! | `fig2_gemm` | Fig. 2 — SGEMM: cuBLAS-like vs MAGMA vs MAGMA-mod |
//! | `fig7_special` | Fig. 7 — special-case convolution vs cuDNN-like |
//! | `table1_tune` | Table 1 — general-case design-space exploration |
//! | `fig8_general` | Fig. 8 — general-case convolution vs cuDNN-like |
//! | `ablation_dtype` | Section 6 — short-data-type bank mismatch |
//! | `ablation_overlap` | prefetch/overlap contribution |
//!
//! This library holds the small shared pieces: table rendering and
//! geometric-mean helpers.

#![warn(missing_docs)]

pub mod fig8;
pub mod harness;

/// Renders a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a table with a header, separator and rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&head, &widths));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }

    #[test]
    fn row_is_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "  a   bb");
    }
}

//! # kconv-bench — experiment harnesses for the DAC'17 reproduction
//!
//! One binary per paper artifact (see `DESIGN.md` for the index):
//!
//! | Binary | Artifact |
//! |--------|----------|
//! | `fig2_gemm` | Fig. 2 — SGEMM: cuBLAS-like vs MAGMA vs MAGMA-mod |
//! | `fig7_special` | Fig. 7 — special-case convolution vs cuDNN-like |
//! | `table1_tune` | Table 1 — general-case design-space exploration |
//! | `fig8_general` | Fig. 8 — general-case convolution vs cuDNN-like |
//! | `ablation_dtype` | Section 6 — short-data-type bank mismatch |
//! | `ablation_overlap` | prefetch/overlap contribution |
//!
//! This library holds the small shared pieces: table rendering,
//! geometric-mean helpers, the PASS/FAIL [`Checker`] driving the
//! `--check` harnesses, and the replay-farm corpus ([`farm`]).

#![warn(missing_docs)]

pub mod arch;
pub mod farm;
pub mod fig8;
pub mod harness;
pub mod serve;
pub mod systolic;

/// Prints one `error:` line to stderr and exits with status 2 — the
/// harness binaries' uniform answer to bad invocations and unusable
/// inputs (unknown flags or presets, unreadable paths, malformed
/// traces). Never panics, so operator mistakes produce a one-line
/// diagnostic instead of a backtrace.
pub fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Rejects unrecognized command-line arguments: every argument must be
/// listed in `allowed` (flags taking a value name the value slot via
/// `takes_value`). Calls [`bail`] with a usage line on the first unknown.
pub fn reject_unknown_args(bin: &str, allowed: &[(&str, bool)]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match allowed.iter().find(|(name, _)| *name == arg) {
            Some((_, takes_value)) => i += 1 + usize::from(*takes_value),
            None => {
                let usage: Vec<String> = allowed
                    .iter()
                    .map(|(name, takes_value)| {
                        if *takes_value {
                            format!("[{name} <value>]")
                        } else {
                            format!("[{name}]")
                        }
                    })
                    .collect();
                bail(&format!(
                    "unknown argument {arg:?} (usage: {bin} {})",
                    usage.join(" ")
                ));
            }
        }
    }
}

/// Running PASS/FAIL tally for the self-checking harnesses (`whatif`,
/// `farm`): every check prints one line, and `--check` runs exit non-zero
/// when any failed.
#[derive(Debug, Default)]
pub struct Checker {
    /// Checks recorded so far.
    pub checks: usize,
    /// Checks that failed.
    pub failures: usize,
}

impl Checker {
    /// Records one named check, printing a `PASS`/`FAIL` line.
    pub fn check(&mut self, name: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("  PASS {name}: {detail}");
        } else {
            self.failures += 1;
            println!("  FAIL {name}: {detail}");
        }
    }

    /// Checks an exact `u64` measurement against its expected value.
    pub fn eq_u64(&mut self, name: &str, measured: u64, expected: u64) {
        self.check(
            name,
            measured == expected,
            &format!("measured {measured}, expected {expected}"),
        );
    }

    /// Checks an exact `f64` measurement against its expected value.
    pub fn eq_f64(&mut self, name: &str, measured: f64, expected: f64) {
        self.check(
            name,
            measured == expected,
            &format!("measured {measured}, expected {expected}"),
        );
    }

    /// Prints the closing `passed/total` summary line.
    pub fn summary(&self) {
        println!(
            "\n{}/{} checks passed{}",
            self.checks - self.failures,
            self.checks,
            if self.failures > 0 {
                " — FAILURES ABOVE"
            } else {
                ""
            }
        );
    }
}

/// Renders a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a table with a header, separator and rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&head, &widths));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }

    #[test]
    fn row_is_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "  a   bb");
    }
}

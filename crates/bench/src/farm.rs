//! The replay farm: a corpus of KTRC captures swept over a spec grid.
//!
//! One simulated run per kernel/shape/dtype is captured as a binary KTRC
//! trace; everything after that is trace-driven. Each trace is decoded
//! **once** into [`Trace`] slabs and re-priced under every cell of a
//! Kepler-anchored [`GpuSpec`] grid (bank width × line size × read-only
//! cache size × SM count) by [`kconv_replay::sweep`], fanning the
//! trace×spec cells over a scoped thread pool. The output — per-cell
//! counters, modeled time and bandwidth-waste factors — is the paper's
//! what-if analysis at corpus scale: `BENCH_farm.json` is a small Pareto
//! surface of architectures over the paper's kernels.
//!
//! [`run`] is the single code path behind both the `farm` binary
//! (`--check` gating, one timing iteration) and the `farm` bench target
//! (more iterations for stabler wall-clock numbers). It self-checks:
//!
//! * replaying each capture under its own spec reproduces the live
//!   launch's `KernelStats` and timing bit for bit;
//! * the serial and threaded sweeps produce bit-identical cells in the
//!   same deterministic `(trace, spec, launch)` order;
//! * the decode-once path prices every cell exactly as the
//!   byte-stream path that re-decodes per spec — while decoding each
//!   trace `1` time instead of `specs.len()` times.

use std::time::Instant;

use kconv_core::{
    Convolution, GeneralConfig, GeneralConv, GeneralConvStrided, ImplicitGemmConv, SpecialConfig,
    SpecialConv, SpecialConvF16, SpecialConvHalf2, SpecialConvI8,
};
use kconv_replay::{replay, replay_decoded, sweep, SweepCell, TargetSpec};
use kconv_sim::mem::lanes;
use kconv_sim::{BankWidth, Gpu, GpuSpec, LaunchReport, Parallelism, SanitizerMode, SimMode};
use kconv_systolic::{PipelineConfig, SystolicConv};
use kconv_tensor::{random_filters, random_maps, ConvProblem};
use kconv_trace::{SharedBuffer, Trace, TraceWriter};

use crate::{fig8, Checker};

/// Input seed shared by every corpus capture.
pub const INPUT_SEED: u64 = 211;
/// Filter seed shared by every corpus capture.
pub const FILTER_SEED: u64 = 223;

/// One corpus member: a kernel and the problem it runs on.
pub struct CorpusEntry {
    /// Stable short name (keys the JSON rows).
    pub name: &'static str,
    /// The kernel under capture.
    pub conv: Box<dyn Convolution>,
    /// The layer shape it runs.
    pub problem: ConvProblem,
}

impl std::fmt::Debug for CorpusEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusEntry")
            .field("name", &self.name)
            .field("problem", &self.problem)
            .finish_non_exhaustive()
    }
}

/// The farm's capture corpus: the paper's kernels across filter sizes
/// (K ∈ {3, 5, 7}), layouts (blocked vs strided outputs), algorithms
/// (direct vs implicit GEMM) and data types (f32, fp16, int8). Shapes are
/// kept small — the value of a trace corpus is breadth, not grid size.
pub fn corpus() -> Vec<CorpusEntry> {
    fn entry(name: &'static str, conv: Box<dyn Convolution>, problem: ConvProblem) -> CorpusEntry {
        CorpusEntry {
            name,
            conv,
            problem,
        }
    }
    vec![
        entry(
            "special-3x3",
            Box::new(SpecialConv::default()),
            ConvProblem::special(130, 16, 3),
        ),
        entry(
            "special-5x5",
            Box::new(SpecialConv::default()),
            ConvProblem::special(130, 16, 5),
        ),
        entry(
            "special-7x7",
            Box::new(SpecialConv::default()),
            ConvProblem::special(130, 16, 7),
        ),
        entry(
            "general-3x3",
            Box::new(GeneralConv::table1(3)),
            ConvProblem::general(34, 4, 64, 3),
        ),
        entry(
            "general-5x5",
            Box::new(GeneralConv::table1(5)),
            ConvProblem::general(36, 4, 32, 5),
        ),
        entry(
            "general-7x7",
            Box::new(GeneralConv::table1(7)),
            ConvProblem::general(38, 2, 32, 7),
        ),
        entry(
            "general-3x3-strided",
            Box::new(GeneralConvStrided::new(GeneralConfig::table1(3))),
            ConvProblem::general(34, 4, 64, 3),
        ),
        entry(
            "implicit-gemm-3x3",
            Box::new(ImplicitGemmConv::default()),
            ConvProblem::general(34, 4, 64, 3),
        ),
        entry(
            "special-3x3-fp16",
            Box::new(SpecialConvF16::kepler_matched()),
            ConvProblem::special(66, 16, 3),
        ),
        entry(
            "special-3x3-int8",
            Box::new(SpecialConvI8::kepler_matched()),
            ConvProblem::special(66, 16, 3),
        ),
        // The generator's (kconv-arch) outputs, appended after the
        // original ten so their captures stay byte-stable: the scalar
        // f32 variant derived for 4-byte-bank parts, and the half2
        // fp16 variant. Swept over the grid they flip roles with the
        // hard-wired Kepler entries — matched on the 4B cells, the
        // mismatch case on the 8B cells.
        entry(
            "special-3x3-n1",
            Box::new(SpecialConv::new(SpecialConfig::with_vec_width(1))),
            ConvProblem::special(130, 16, 3),
        ),
        entry(
            "special-3x3-half2",
            Box::new(SpecialConvHalf2::default()),
            ConvProblem::special(66, 16, 3),
        ),
        // The systolic pipeline's captures, appended after the original
        // twelve so every earlier capture stays byte-stable: the
        // double-buffered (depth 2) schedule on the dense anchor, and
        // the same pipeline over the extended workload matrix (strided
        // and depthwise). Their v4 traces carry Bar events, so the
        // sweep also prices barrier-bound launches across the grid.
        entry(
            "systolic-3x3-d2",
            Box::new(SystolicConv::new(PipelineConfig::matched_for(
                &GpuSpec::kepler_k40m(),
            ))),
            ConvProblem::general(34, 8, 8, 3),
        ),
        entry(
            "systolic-3x3-strided",
            Box::new(SystolicConv::new(PipelineConfig::matched_for(
                &GpuSpec::kepler_k40m(),
            ))),
            ConvProblem::general(34, 8, 8, 3).with_stride(2),
        ),
        entry(
            "systolic-3x3-depthwise",
            Box::new(SystolicConv::new(PipelineConfig::matched_for(
                &GpuSpec::kepler_k40m(),
            ))),
            ConvProblem::general(34, 8, 8, 3).depthwise(),
        ),
    ]
}

/// One captured corpus member: the KTRC bytes plus the live report they
/// must replay back to.
#[derive(Debug)]
pub struct Capture {
    /// Corpus entry name.
    pub name: &'static str,
    /// The kernel's self-reported name.
    pub kernel: String,
    /// The raw KTRC byte stream.
    pub bytes: Vec<u8>,
    /// The live launch the trace was captured from.
    pub live: LaunchReport,
}

/// Runs every corpus entry once on the capture spec (Kepler K40m) with a
/// trace writer attached.
pub fn capture_corpus() -> Vec<Capture> {
    corpus()
        .into_iter()
        .map(|e| {
            let input = random_maps(
                e.problem.channels,
                e.problem.height,
                e.problem.width,
                INPUT_SEED,
            );
            // `channels_per_group` collapses to `channels` on every dense
            // entry, so the original captures' filter bytes are unchanged;
            // the depthwise entry gets its one-channel-per-group filters.
            let filters = random_filters(
                e.problem.filters,
                e.problem.channels_per_group(),
                e.problem.k,
                FILTER_SEED,
            );
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_sanitizer(SanitizerMode::Off);
            let buf = SharedBuffer::new();
            gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
            let run = e
                .conv
                .run(&mut gpu, &e.problem, &input, &filters, SimMode::Full)
                .unwrap_or_else(|err| panic!("corpus entry {} runs: {err}", e.name));
            gpu.set_trace_sink(None);
            Capture {
                name: e.name,
                kernel: e.conv.name(),
                bytes: buf.take(),
                live: run.report,
            }
        })
        .collect()
}

/// The farm's what-if grid: the Kepler anchor with every combination of
/// bank width (4 B vs 8 B), load-line size (64 B vs 128 B), read-only
/// cache capacity (24 KiB vs 48 KiB) and SM count (8 vs the K40m's 15) —
/// 16 specs in the deterministic nested order `SpecGrid` guarantees.
pub fn spec_grid() -> Vec<GpuSpec> {
    GpuSpec::kepler_k40m()
        .grid()
        .bank_widths(&[BankWidth::B4, BankWidth::B8])
        .line_sizes(&[64, 128])
        .ro_cache_bytes(&[24 * 1024, 48 * 1024])
        .sm_counts(&[8, 15])
        .build()
        .expect("farm grid axes are valid")
}

/// Cells priced per wall-clock second, the farm's throughput unit.
fn cells_per_s(cells: usize, seconds: f64) -> f64 {
    cells as f64 / seconds.max(1e-12)
}

/// Renders one sweep cell as a JSON object line.
fn cell_json(captures: &[Capture], specs: &[GpuSpec], cell: &SweepCell, last: bool) -> String {
    let spec = &specs[cell.spec];
    let axes = format!(
        "\"trace\": \"{}\", \"launch\": {}, \"bank_bytes\": {}, \"line_bytes\": {}, \"ro_cache_bytes\": {}, \"sm_count\": {}",
        captures[cell.trace].name,
        cell.launch,
        spec.bank_width.bytes(),
        spec.gm_transaction_bytes,
        spec.ro_cache_bytes,
        spec.sm_count,
    );
    let body = match &cell.report {
        Ok(r) => {
            let gm_useful = r.stats.gm_ld_bytes_useful + r.stats.gm_st_bytes_useful;
            let gm_bus = r.stats.gm_ld_bytes_bus + r.stats.gm_st_bytes_bus;
            let gm_waste = if gm_useful == 0 {
                0.0
            } else {
                gm_bus as f64 / gm_useful as f64
            };
            format!(
                "\"sm_cycles\": {}, \"sm_waste\": {:.6}, \"gm_transactions\": {}, \"gm_waste\": {:.6}, \"ro_hits\": {}, \"t_total_ms\": {}, \"bottleneck\": \"{}\"",
                r.sm_cycles(),
                r.sm_waste(),
                r.gm_transactions(),
                gm_waste,
                r.stats.gm_ro_hits,
                r.timing
                    .map_or("null".into(), |t| format!("{:.6}", t.t_total * 1e3)),
                r.timing.map_or("", |t| t.bottleneck()),
            )
        }
        Err(e) => format!("\"error\": \"{e}\""),
    };
    format!("    {{{axes}, {body}}}{}\n", if last { "" } else { "," })
}

/// Checks that two sweeps produced bit-identical cells in the same order.
fn sweeps_identical(a: &[SweepCell], b: &[SweepCell]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            (x.trace, x.spec, x.launch) == (y.trace, y.spec, y.launch)
                && match (&x.report, &y.report) {
                    (Ok(rx), Ok(ry)) => rx == ry,
                    _ => false,
                }
        })
}

/// Captures the corpus, sweeps it over [`spec_grid`], runs every
/// self-check, and writes `BENCH_farm.json` to the workspace root.
/// `iters` controls how many times the timed phases repeat (best-of);
/// the binary passes 1, the bench target more. Returns the tally for the
/// caller's `--check` gate.
pub fn run(iters: usize) -> Checker {
    assert!(iters >= 1, "at least one timing iteration");
    let mut c = Checker::default();

    // --- Capture: one live run per corpus entry, trace attached ---
    let captures = capture_corpus();
    let corpus_bytes: usize = captures.iter().map(|cap| cap.bytes.len()).sum();
    println!(
        "farm — {} captures, {} B of KTRC traces",
        captures.len(),
        corpus_bytes
    );
    for cap in &captures {
        println!(
            "  {:<22} {:<28} {:>9} B",
            cap.name,
            cap.kernel,
            cap.bytes.len()
        );
    }

    // --- Gate: decode-once replay under the capture spec == live ---
    println!("\n[gate] replay(capture spec) must equal the live launch, bit for bit");
    let t0 = Instant::now();
    let traces: Vec<Trace> = captures
        .iter()
        .map(|cap| Trace::decode(&cap.bytes).expect("corpus trace decodes"))
        .collect();
    let decode_s = t0.elapsed().as_secs_f64();
    for (cap, trace) in captures.iter().zip(&traces) {
        let reports = replay_decoded(trace, &TargetSpec::Capture).expect("capture spec embedded");
        let ok = reports.len() == 1
            && reports[0].stats == cap.live.stats
            && reports[0].timing == Some(cap.live.timing);
        c.check(
            &format!("{}: replay(capture) == live", cap.name),
            ok,
            "KernelStats + timing, bit-exact",
        );
    }

    // --- Sweep: every trace × every grid spec, serial then threaded ---
    let specs = spec_grid();
    // A 1-core host degrades `env_or_auto` to one worker, which would turn
    // the serial ≡ threaded check into a tautology — so the threaded sweep
    // always runs at least two workers. Its wall time is only a scaling
    // measurement when `valid_scaling` below says so.
    let threads = Parallelism::env_or_auto().worker_threads().max(2);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let valid_scaling = host_cores >= 2;
    let mut serial_s = f64::INFINITY;
    let mut threaded_s = f64::INFINITY;
    let mut cells = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        cells = sweep(&traces, &specs, Parallelism::Serial);
        serial_s = serial_s.min(t0.elapsed().as_secs_f64());
    }
    let mut threaded = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        threaded = sweep(&traces, &specs, Parallelism::Threads(threads));
        threaded_s = threaded_s.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "\n[sweep] {} traces × {} specs = {} cells",
        traces.len(),
        specs.len(),
        cells.len()
    );
    println!(
        "  serial:               {serial_s:.3} s  ({:.0} cells/s)",
        cells_per_s(cells.len(), serial_s)
    );
    println!(
        "  threaded ({threads} workers):  {threaded_s:.3} s  ({:.0} cells/s)",
        cells_per_s(threaded.len(), threaded_s)
    );
    if !valid_scaling {
        println!(
            "  NOTE: only {host_cores} host core(s) — the wall-clock ratio measures \
             scheduler noise, not scaling (valid_scaling: false)"
        );
    }
    let launches: usize = traces.iter().map(|t| t.launches().len()).sum();
    c.eq_u64(
        "sweep covers every (trace, spec, launch) cell",
        cells.len() as u64,
        (launches * specs.len()) as u64,
    );
    c.check(
        "serial and threaded sweeps bit-identical",
        sweeps_identical(&cells, &threaded),
        &format!("{} cells, {threads} workers", cells.len()),
    );
    c.check(
        "every cell priced",
        cells.iter().all(|cell| cell.report.is_ok()),
        "no replay errors across the grid",
    );

    // --- Decode-once amortization: byte path re-decodes per spec ---
    let mut byte_s = f64::INFINITY;
    let mut decoded_s = f64::INFINITY;
    let mut byte_reports = Vec::new();
    let mut decoded_reports = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        byte_reports = captures
            .iter()
            .flat_map(|cap| {
                specs.iter().map(|s| {
                    replay(&cap.bytes, &TargetSpec::Spec(s.clone())).expect("byte path replays")
                })
            })
            .collect();
        byte_s = byte_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        decoded_reports = captures
            .iter()
            .flat_map(|cap| {
                let trace = Trace::decode(&cap.bytes).expect("corpus trace decodes");
                specs
                    .iter()
                    .map(|s| {
                        replay_decoded(&trace, &TargetSpec::Spec(s.clone()))
                            .expect("decoded path replays")
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        decoded_s = decoded_s.min(t0.elapsed().as_secs_f64());
    }
    let speedup = byte_s / decoded_s;
    println!(
        "\n[decode-once] {} replays across the grid, best of {iters}",
        byte_reports.len()
    );
    println!(
        "  decode per spec:      {byte_s:.3} s  ({:.0} replays/s)",
        cells_per_s(byte_reports.len(), byte_s)
    );
    println!(
        "  decode once:          {decoded_s:.3} s  ({:.0} replays/s)",
        cells_per_s(decoded_reports.len(), decoded_s)
    );
    println!(
        "  speedup:              {speedup:.2}x (one-time decode of the corpus: {decode_s:.3} s)"
    );
    c.check(
        "decode-once path prices exactly as the byte path",
        byte_reports == decoded_reports,
        &format!("{} replays compared", byte_reports.len()),
    );

    // --- Lane backends: the same serial sweep under each engine ---
    // The engine's bit-exactness contract makes in-process backend
    // switching safe; the assert restates it per sweep (the full gate is
    // the CI lanes matrix plus the sim crate's differential suite).
    let lane_auto = lanes::active();
    let mut lane_sweeps: Vec<(lanes::Backend, f64)> = Vec::new();
    println!(
        "\n[lanes] serial sweep per lane backend (dispatched: {})",
        lane_auto.name()
    );
    for backend in lanes::Backend::available() {
        lanes::force(backend);
        let mut lane_s = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            let lane_cells = sweep(&traces, &specs, Parallelism::Serial);
            lane_s = lane_s.min(t0.elapsed().as_secs_f64());
            assert!(
                sweeps_identical(&cells, &lane_cells),
                "lane backend {backend:?} diverged from the dispatched sweep"
            );
        }
        println!(
            "  {:<7} {lane_s:.3} s  ({:.0} cells/s)",
            backend.name(),
            cells_per_s(cells.len(), lane_s)
        );
        lane_sweeps.push((backend, lane_s));
    }
    lanes::force(lane_auto);

    // --- JSON artifact ---
    let mut corpus_json = String::new();
    for (i, cap) in captures.iter().enumerate() {
        corpus_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"kernel\": \"{}\", \"trace_bytes\": {}, \"launches\": {}}}{}\n",
            cap.name,
            cap.kernel,
            cap.bytes.len(),
            traces[i].launches().len(),
            if i + 1 < captures.len() { "," } else { "" },
        ));
    }
    let mut cells_json = String::new();
    for (i, cell) in cells.iter().enumerate() {
        cells_json.push_str(&cell_json(&captures, &specs, cell, i + 1 == cells.len()));
    }
    let lane_json = lane_sweeps
        .iter()
        .map(|(b, s)| format!("\"{}\": {s:.6}", b.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"replay_farm\",\n  \"corpus_trace_bytes\": {corpus_bytes},\n  \"grid_specs\": {},\n  \"corpus\": [\n{corpus_json}  ],\n  \"cells\": [\n{cells_json}  ],\n  \"sweep\": {{\"serial_seconds\": {serial_s:.6}, \"threaded_seconds\": {threaded_s:.6}, \"threads\": {threads}, \"bit_identical\": {}}},\n  \"decode_once\": {{\"decode_per_spec_seconds\": {byte_s:.6}, \"decode_once_seconds\": {decoded_s:.6}, \"speedup\": {speedup:.4}, \"corpus_decode_seconds\": {decode_s:.6}}},\n  \"lane_backend\": \"{}\",\n  \"lane_sweep_serial_seconds\": {{{lane_json}}},\n  \"host_cores\": {host_cores},\n  \"valid_scaling\": {valid_scaling},\n  \"iters\": {iters},\n  \"checks\": {},\n  \"failures\": {}\n}}\n",
        specs.len(),
        sweeps_identical(&cells, &threaded),
        lane_auto.name(),
        c.checks,
        c.failures,
    );
    let path = fig8::workspace_file("BENCH_farm.json");
    if let Err(e) = std::fs::write(&path, &json) {
        c.check("BENCH_farm.json written", false, &format!("{path}: {e}"));
    } else {
        println!("\nwrote {path}");
    }

    c.summary();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_sixteen_kepler_anchored_specs() {
        let specs = spec_grid();
        assert_eq!(specs.len(), 16);
        assert!(specs.iter().all(|s| s.name == "Kepler K40m"));
        // Every axis actually varies across the grid.
        for f in [
            |s: &GpuSpec| s.bank_width.bytes(),
            |s: &GpuSpec| s.gm_transaction_bytes,
            |s: &GpuSpec| s.ro_cache_bytes,
            |s: &GpuSpec| s.sm_count as u64,
        ] {
            let first = f(&specs[0]);
            assert!(specs.iter().any(|s| f(s) != first));
        }
    }

    #[test]
    fn corpus_covers_kernels_shapes_and_dtypes() {
        let entries = corpus();
        assert!(entries.len() >= 15);
        let names: Vec<_> = entries.iter().map(|e| e.name).collect();
        for required in [
            "special-5x5",
            "special-7x7",
            "general-3x3-strided",
            "implicit-gemm-3x3",
            "special-3x3-fp16",
            "special-3x3-int8",
            "special-3x3-n1",
            "special-3x3-half2",
            "systolic-3x3-d2",
            "systolic-3x3-strided",
            "systolic-3x3-depthwise",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        // The corpus is append-only: the systolic entries land after the
        // original twelve, so every earlier capture stays byte-stable
        // across releases.
        for (i, required) in [
            "special-3x3",
            "special-5x5",
            "special-7x7",
            "general-3x3",
            "general-5x5",
            "general-7x7",
            "general-3x3-strided",
            "implicit-gemm-3x3",
            "special-3x3-fp16",
            "special-3x3-int8",
            "special-3x3-n1",
            "special-3x3-half2",
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(names[i], *required, "corpus prefix reordered at {i}");
        }
        // The appended entries exercise the extended workload matrix.
        assert!(entries.iter().any(|e| e.problem.stride > 1));
        assert!(entries.iter().any(|e| e.problem.depthwise));
        // Names are unique: they key the JSON rows.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}

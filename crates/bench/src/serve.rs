//! The serving chaos harness: a mixed Table-1 workload pushed through the
//! [`ServeEngine`] with and without a seeded chaos plan, gated by the
//! resilience invariants.
//!
//! [`run`] is the single code path behind the `serve` binary (`--check`
//! gating) and writes `BENCH_serve.json` (requests/s and p50/p99 modeled
//! latency, chaos off vs. on). The invariants:
//!
//! * every submitted request reaches **exactly one** terminal state
//!   (completed / rejected / deadline-exceeded / failed), chaos or not;
//! * chaos-off serves every well-formed request cleanly and the f32
//!   outputs match the CPU reference;
//! * requests served **cleanly under chaos** produce outputs bit-identical
//!   to the chaos-off run;
//! * the seeded fault schedule provably trips a circuit breaker and a
//!   later half-open probe recovers it;
//! * a poisoned batch re-enqueues its batchmates and they still complete;
//! * admission control sheds a burst with typed rejections, tight
//!   deadlines produce typed deadline misses;
//! * the whole chaos scenario is bit-deterministic: running it twice gives
//!   identical resolutions, latencies and metrics.

use std::time::Instant;

use kconv_core::conv_reference;
use kconv_serve::{
    ChaosConfig, ConvRequest, DType, Outcome, Resolution, ServeConfig, ServeEngine, ServeError,
    ServeEvent, ServeMetrics,
};
use kconv_sim::{FaultSchedule, GpuSpec};
use kconv_tensor::{all_close, random_filters, random_maps, ConvProblem, CONV_TOL};

use crate::{fig8, Checker};

/// Input seed base for the workload.
pub const INPUT_SEED: u64 = 401;
/// Filter seed base for the workload.
pub const FILTER_SEED: u64 = 409;

/// Builds one request for `problem` with per-request seeded data.
fn request(problem: ConvProblem, salt: u64) -> ConvRequest {
    let input = random_maps(
        problem.channels,
        problem.height,
        problem.width,
        INPUT_SEED + salt,
    );
    let filters = random_filters(
        problem.filters,
        problem.channels,
        problem.k,
        FILTER_SEED + salt,
    );
    ConvRequest::new(problem, input, filters)
}

/// The mixed Table-1 workload: the paper's K ∈ {3, 5, 7} general shapes,
/// the special-case shape (which the chaos plan targets), narrow dtypes,
/// two malformed requests and one hopeless deadline. Deterministic.
pub fn workload() -> Vec<ConvRequest> {
    let special = ConvProblem::special(66, 8, 3);
    let g3 = ConvProblem::general(34, 4, 64, 3);
    let g5 = ConvProblem::general(36, 4, 32, 5);
    let g7 = ConvProblem::general(38, 2, 32, 7);
    let narrow = ConvProblem::special(66, 4, 3);

    let mut reqs = Vec::new();
    // The chaos plan faults the first three launches: this same-instant
    // trio forms the poisoned batch (member 0 eats the faults, members 1
    // and 2 are re-enqueued).
    for salt in 0..3 {
        reqs.push(request(special, salt).at(0.0));
    }
    // A mixed stream of general shapes while the breaker is open.
    for (i, &p) in [g3, g5, g7, g3, g5, g3].iter().enumerate() {
        reqs.push(request(p, 10 + i as u64).at(1e-4 * (i + 1) as f64));
    }
    // Narrow dtypes ride along.
    reqs.push(request(narrow, 20).with_dtype(DType::F16).at(4e-4));
    reqs.push(request(narrow, 21).with_dtype(DType::I8).at(5e-4));
    // Malformed: data that does not match the declared problem, and a
    // narrow dtype on a multi-channel shape.
    let mut bad_data = request(special, 30).at(6e-4);
    bad_data.input = random_maps(1, 20, 20, 999);
    reqs.push(bad_data);
    reqs.push(request(g3, 31).with_dtype(DType::F16).at(7e-4));
    // A deadline nothing can meet (typed miss), and a generous one.
    reqs.push(request(g5, 40).at(2e-3).with_deadline(2e-3 + 1e-9));
    reqs.push(request(g7, 41).at(2.1e-3).with_deadline(1.0));
    // The recovery probe: same shape as the poisoned trio, arriving well
    // after the breaker cooldown so it half-opens and closes the breaker.
    reqs.push(request(special, 50).at(8e-3));
    reqs
}

/// The harness serving configuration: 4 streams, small batches, a breaker
/// that cools down fast enough for the probe to recover it within the
/// modeled run.
pub fn config() -> ServeConfig {
    ServeConfig {
        breaker: kconv_serve::BreakerConfig {
            trip_after: 3,
            cooldown_s: 1e-3,
        },
        ..ServeConfig::default()
    }
}

/// The seeded chaos plan: fault every one of the first three launches
/// (deterministically poisoning the first batch and tripping the primary
/// breaker), plus latency spikes at ~20% of launches.
pub fn chaos() -> ChaosConfig {
    ChaosConfig::new(77, FaultSchedule::new(77, 1_000_000, "").with_window(0, 3))
        .with_spikes(200_000, 3e-4)
}

/// Modeled completion latencies (seconds) of completed requests, sorted.
fn latencies(res: &[Resolution]) -> Vec<f64> {
    let mut l: Vec<f64> = res
        .iter()
        .filter_map(|r| r.outcome.completion())
        .map(|c| c.latency)
        .collect();
    l.sort_by(f64::total_cmp);
    l
}

/// The `p`-th percentile of sorted samples (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Exactly one terminal state per request, ids in submission order.
fn one_terminal_each(res: &[Resolution], n: usize) -> bool {
    res.len() == n && res.iter().enumerate().all(|(i, r)| r.id.0 == i as u64)
}

/// Terminal-state accounting matches the metrics counters.
fn accounted(m: &ServeMetrics) -> bool {
    m.completed + m.rejected + m.deadline_exceeded + m.failed == m.submitted
}

/// Runs one scenario and returns its resolutions, metrics, events and
/// wall-clock seconds.
fn scenario(
    cfg: ServeConfig,
    chaos: Option<ChaosConfig>,
    reqs: Vec<ConvRequest>,
) -> (Vec<Resolution>, ServeMetrics, Vec<ServeEvent>, f64) {
    let mut engine = ServeEngine::new(GpuSpec::kepler_k40m(), cfg);
    if let Some(c) = chaos {
        engine = engine.with_chaos(c);
    }
    let t0 = Instant::now();
    let res = engine.run(reqs);
    let wall = t0.elapsed().as_secs_f64();
    (res, *engine.metrics(), engine.events().to_vec(), wall)
}

/// Serves the workload chaos-off and chaos-on, runs every invariant
/// check, and writes `BENCH_serve.json` to the workspace root. `iters`
/// controls how many times the timed baseline repeats (best-of). Returns
/// the tally for the caller's `--check` gate.
pub fn run(iters: usize) -> Checker {
    assert!(iters >= 1, "at least one timing iteration");
    let mut c = Checker::default();
    let n = workload().len();
    println!("serve — {n} mixed Table-1 requests, 4 streams, chaos off vs on\n");

    // --- Baseline: chaos off ---
    let mut baseline = None;
    let mut base_wall = f64::INFINITY;
    for _ in 0..iters {
        let (res, m, ev, wall) = scenario(config(), None, workload());
        base_wall = base_wall.min(wall);
        baseline = Some((res, m, ev));
    }
    let (base_res, base_m, _) = baseline.expect("at least one iteration");
    println!(
        "[baseline] completed {} / rejected {} / deadline {} / failed {} — makespan {:.3} ms",
        base_m.completed,
        base_m.rejected,
        base_m.deadline_exceeded,
        base_m.failed,
        base_m.makespan * 1e3
    );
    c.check(
        "baseline: exactly one terminal state per request",
        one_terminal_each(&base_res, n) && accounted(&base_m),
        &format!("{} requests, counters add up", n),
    );
    c.eq_u64(
        "baseline: malformed requests rejected (typed)",
        base_res
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected(ServeError::Malformed(_))))
            .count() as u64,
        2,
    );
    c.eq_u64(
        "baseline: hopeless deadline misses (typed)",
        base_m.deadline_exceeded,
        1,
    );
    c.eq_u64(
        "baseline: everything else completes",
        base_m.completed,
        n as u64 - 3,
    );
    c.check(
        "baseline: zero faults, zero retries, all clean",
        base_m.retries == 0
            && base_res
                .iter()
                .filter_map(|r| r.outcome.completion())
                .all(|cm| cm.clean()),
        "no chaos, no fallbacks",
    );
    let workload_now = workload();
    let verified = base_res
        .iter()
        .filter_map(|r| {
            let cm = r.outcome.completion()?;
            let req = &workload_now[r.id.0 as usize];
            (req.dtype == DType::F32).then_some((req, cm))
        })
        .all(|(req, cm)| {
            let want = conv_reference(&req.problem, &req.input, &req.filters);
            all_close(cm.output.as_slice(), want.as_slice(), CONV_TOL)
        });
    c.check(
        "baseline: completed f32 outputs match the CPU reference",
        verified,
        "worst element within CONV_TOL",
    );
    c.check(
        "baseline: plan cache shared across same-shape requests",
        base_m.plan_hits > 0 && base_m.plan_misses < base_m.completed,
        &format!(
            "{} hits, {} distinct resolutions",
            base_m.plan_hits, base_m.plan_misses
        ),
    );

    // --- Stream overlap: a same-instant burst of distinct shapes forms
    // several batches; with 4 streams the next batch's H2D copy hides
    // under the previous batch's compute, with 1 stream everything
    // serializes in-order.
    let overlap_work = || -> Vec<ConvRequest> {
        [
            ConvProblem::special(66, 8, 3),
            ConvProblem::general(34, 4, 64, 3),
            ConvProblem::general(36, 4, 32, 5),
            ConvProblem::general(38, 2, 32, 7),
        ]
        .into_iter()
        .enumerate()
        .flat_map(|(i, p)| (0..2).map(move |j| request(p, 70 + 2 * i as u64 + j).at(0.0)))
        .collect()
    };
    let (_, four_m, _, _) = scenario(config(), None, overlap_work());
    let (_, one_m, _, _) = scenario(
        ServeConfig {
            streams: 1,
            ..config()
        },
        None,
        overlap_work(),
    );
    println!(
        "[streams] burst makespan 1-stream {:.3} ms vs 4-stream {:.3} ms",
        one_m.makespan * 1e3,
        four_m.makespan * 1e3
    );
    c.check(
        "streams: 4-stream pipeline beats 1 stream",
        four_m.completed == one_m.completed && four_m.makespan < one_m.makespan,
        &format!(
            "copies overlap compute: {:.3} ms < {:.3} ms",
            four_m.makespan * 1e3,
            one_m.makespan * 1e3
        ),
    );

    // --- Chaos on ---
    let (chaos_res, chaos_m, chaos_ev, _) = scenario(config(), Some(chaos()), workload());
    println!(
        "[chaos]    completed {} / rejected {} / deadline {} / failed {} — {} retries, {} re-enqueued, {} trips, {} recoveries",
        chaos_m.completed,
        chaos_m.rejected,
        chaos_m.deadline_exceeded,
        chaos_m.failed,
        chaos_m.retries,
        chaos_m.re_enqueued,
        chaos_m.breaker_trips,
        chaos_m.breaker_recoveries
    );
    c.check(
        "chaos: exactly one terminal state per request",
        one_terminal_each(&chaos_res, n) && accounted(&chaos_m),
        &format!("{} requests, counters add up", n),
    );
    c.check(
        "chaos: injected faults were retried",
        chaos_m.retries >= 2,
        &format!("{} same-engine retries", chaos_m.retries),
    );
    c.check(
        "chaos: poisoned batch isolated, batchmates re-enqueued",
        chaos_m.re_enqueued >= 2
            && chaos_ev.iter().any(
                |e| matches!(e, ServeEvent::BatchPoisoned { re_enqueued, .. } if *re_enqueued >= 2),
            ),
        &format!("{} re-enqueued", chaos_m.re_enqueued),
    );
    c.check(
        "chaos: re-enqueued batchmates still complete",
        chaos_res[1].outcome.completion().is_some() && chaos_res[2].outcome.completion().is_some(),
        &format!(
            "req#1 {}, req#2 {}",
            chaos_res[1].outcome.label(),
            chaos_res[2].outcome.label()
        ),
    );
    c.check(
        "chaos: circuit breaker trips under the fault schedule",
        chaos_m.breaker_trips >= 1
            && chaos_ev
                .iter()
                .any(|e| matches!(e, ServeEvent::BreakerOpened { .. })),
        &format!("{} trips", chaos_m.breaker_trips),
    );
    c.check(
        "chaos: breaker half-opens and the probe recovers it",
        chaos_m.breaker_recoveries >= 1
            && chaos_ev
                .iter()
                .any(|e| matches!(e, ServeEvent::BreakerHalfOpened { .. }))
            && chaos_ev
                .iter()
                .any(|e| matches!(e, ServeEvent::BreakerClosed { .. })),
        &format!("{} recoveries", chaos_m.breaker_recoveries),
    );
    let clean_ids: Vec<u64> = chaos_res
        .iter()
        .filter(|r| r.outcome.completion().is_some_and(|cm| cm.clean()))
        .map(|r| r.id.0)
        .collect();
    let identical = clean_ids.iter().all(|&id| {
        let a = chaos_res[id as usize].outcome.completion().expect("clean");
        match base_res[id as usize].outcome.completion() {
            Some(b) => a.output.as_slice() == b.output.as_slice() && a.engine == b.engine,
            None => false,
        }
    });
    c.check(
        "chaos: clean-request outputs bit-identical to chaos-off",
        !clean_ids.is_empty() && identical,
        &format!("{} clean requests compared bitwise", clean_ids.len()),
    );
    c.check(
        "chaos: every served request still completes or fails typed",
        accounted(&chaos_m) && chaos_m.completed >= base_m.completed - chaos_m.failed,
        &format!("{} completed under chaos", chaos_m.completed),
    );

    // --- Determinism: the chaos scenario twice, bit for bit ---
    let (res_a, m_a, ev_a, _) = scenario(config(), Some(chaos()), workload());
    let same = res_a.len() == chaos_res.len()
        && res_a.iter().zip(&chaos_res).all(|(x, y)| {
            x.id == y.id
                && x.outcome.label() == y.outcome.label()
                && match (x.outcome.completion(), y.outcome.completion()) {
                    (Some(a), Some(b)) => {
                        a.latency == b.latency && a.output.as_slice() == b.output.as_slice()
                    }
                    (None, None) => true,
                    _ => false,
                }
        })
        && m_a == chaos_m
        && ev_a == chaos_ev;
    c.check(
        "chaos: rerun with the same seeds is bit-identical",
        same,
        "resolutions, latencies, metrics and events",
    );

    // --- Admission control: a same-instant burst sheds typed ---
    let burst_cfg = ServeConfig {
        queue_capacity: 4,
        ..config()
    };
    let burst: Vec<ConvRequest> = (0..12)
        .map(|i| request(ConvProblem::special(34, 4, 3), 60 + i))
        .collect();
    let (burst_res, burst_m, _, _) = scenario(burst_cfg, None, burst);
    let shed = burst_res
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Rejected(ServeError::QueueFull { .. })))
        .count();
    c.eq_u64(
        "admission: burst above the high-water mark sheds typed",
        shed as u64,
        8,
    );
    c.check(
        "admission: shed + served accounts for the whole burst",
        accounted(&burst_m) && burst_m.completed == 4,
        &format!("{} completed, {shed} shed", burst_m.completed),
    );

    // --- Latency + throughput report ---
    let base_lat = latencies(&base_res);
    let chaos_lat = latencies(&chaos_res);
    let (p50, p99) = (percentile(&base_lat, 50.0), percentile(&base_lat, 99.0));
    let (c50, c99) = (percentile(&chaos_lat, 50.0), percentile(&chaos_lat, 99.0));
    let modeled_rps = base_m.completed as f64 / base_m.makespan.max(1e-12);
    let chaos_rps = chaos_m.completed as f64 / chaos_m.makespan.max(1e-12);
    let wall_rps = base_m.completed as f64 / base_wall.max(1e-12);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n[latency]  chaos off: p50 {:.3} ms, p99 {:.3} ms",
        p50 * 1e3,
        p99 * 1e3
    );
    println!(
        "           chaos on:  p50 {:.3} ms, p99 {:.3} ms",
        c50 * 1e3,
        c99 * 1e3
    );
    println!(
        "[thruput]  modeled {modeled_rps:.0} req/s (chaos {chaos_rps:.0}), wall {wall_rps:.0} req/s (best of {iters})"
    );
    c.check(
        "latency percentiles well-formed",
        p50 > 0.0 && p99 >= p50 && c99 >= c50 && c50 > 0.0,
        &format!(
            "off p50/p99 {:.3}/{:.3} ms, on {:.3}/{:.3} ms",
            p50 * 1e3,
            p99 * 1e3,
            c50 * 1e3,
            c99 * 1e3
        ),
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests\": {n},\n  \"streams\": {},\n  \"chaos_off\": {{\"completed\": {}, \"rejected\": {}, \"deadline_exceeded\": {}, \"failed\": {}, \"makespan_ms\": {:.6}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"modeled_rps\": {:.1}}},\n  \"chaos_on\": {{\"completed\": {}, \"rejected\": {}, \"deadline_exceeded\": {}, \"failed\": {}, \"retries\": {}, \"re_enqueued\": {}, \"breaker_trips\": {}, \"breaker_recoveries\": {}, \"makespan_ms\": {:.6}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"modeled_rps\": {:.1}}},\n  \"one_stream_makespan_ms\": {:.6},\n  \"wall_seconds\": {:.6},\n  \"wall_rps\": {:.1},\n  \"host_cores\": {host_cores},\n  \"iters\": {iters},\n  \"checks\": {},\n  \"failures\": {}\n}}\n",
        config().streams,
        base_m.completed,
        base_m.rejected,
        base_m.deadline_exceeded,
        base_m.failed,
        base_m.makespan * 1e3,
        p50 * 1e3,
        p99 * 1e3,
        modeled_rps,
        chaos_m.completed,
        chaos_m.rejected,
        chaos_m.deadline_exceeded,
        chaos_m.failed,
        chaos_m.retries,
        chaos_m.re_enqueued,
        chaos_m.breaker_trips,
        chaos_m.breaker_recoveries,
        chaos_m.makespan * 1e3,
        c50 * 1e3,
        c99 * 1e3,
        chaos_rps,
        one_m.makespan * 1e3,
        base_wall,
        wall_rps,
        c.checks,
        c.failures,
    );
    let path = fig8::workspace_file("BENCH_serve.json");
    if let Err(e) = std::fs::write(&path, &json) {
        c.check("BENCH_serve.json written", false, &format!("{path}: {e}"));
    } else {
        println!("\nwrote {path}");
        c.check("BENCH_serve.json written", true, &path);
    }

    c.summary();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_mixed_and_deterministic() {
        let w = workload();
        assert!(w.len() >= 15);
        let k3 = w.iter().filter(|r| r.problem.k == 3).count();
        let k5 = w.iter().filter(|r| r.problem.k == 5).count();
        let k7 = w.iter().filter(|r| r.problem.k == 7).count();
        assert!(
            k3 >= 3 && k5 >= 2 && k7 >= 2,
            "Table-1 K mix: {k3}/{k5}/{k7}"
        );
        assert!(w.iter().any(|r| r.dtype == DType::F16));
        assert!(w.iter().any(|r| r.dtype == DType::I8));
        assert!(w.iter().any(|r| r.deadline.is_finite()));
        let again = workload();
        for (a, b) in w.iter().zip(&again) {
            assert_eq!(a.input.as_slice(), b.input.as_slice());
            assert_eq!(a.arrival, b.arrival);
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }
}

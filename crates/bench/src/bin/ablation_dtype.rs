//! Section 6 extension — shared-memory bandwidth vs computation data width.
//!
//! The paper closes by noting that short data types (`fp16`, `int8`)
//! reintroduce the bank-width mismatch even on 4-byte-bank architectures.
//! This ablation runs the shared-memory bandwidth probe for every
//! (architecture, data type, access style) combination and checks the
//! measured fabric utilization against the model `1/n`, `n = W_SMB / W_CD`.
//!
//! Usage: `cargo run --release -p kconv-bench --bin ablation_dtype`

use kconv_bench::print_table;
use kconv_core::{BandwidthProbe, DataType};
use kconv_sim::{Gpu, GpuSpec, Parallelism};

fn main() {
    println!("Section 6 — shared-memory fabric utilization by data width\n");
    let mut rows = Vec::new();
    for spec in [GpuSpec::kepler_k40m(), GpuSpec::maxwell_like()] {
        for dtype in [DataType::F32, DataType::F16, DataType::I8] {
            let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
            let un = BandwidthProbe::new(dtype, false)
                .run(&mut gpu)
                .expect("probe");
            let ma = BandwidthProbe::new(dtype, true)
                .run(&mut gpu)
                .expect("probe");
            rows.push(vec![
                spec.name.to_string(),
                format!("{}", spec.bank_width),
                dtype.to_string(),
                un.predicted_n.to_string(),
                format!("{:.1}%", 100.0 * un.utilization),
                format!("{:.1}%", 100.0 * ma.utilization),
                format!("{:.2}x", ma.utilization / un.utilization),
            ]);
        }
    }
    print_table(
        &[
            "architecture",
            "bank",
            "type",
            "n",
            "unmatched util",
            "matched util",
            "gain",
        ],
        &rows,
    );
    println!(
        "\nThe gain column equals n = W_SMB / W_CD exactly: vectorizing each\n\
         thread's accesses to the bank width recovers the whole fabric, for\n\
         every data type, on both bank widths — the paper's closing claim."
    );
}

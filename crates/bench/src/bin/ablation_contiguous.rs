//! Ablation — contiguous outputs per thread vs the blocked-GEMM layout
//! (the general kernel's "major difference" from the paper's reference
//! \[19\], section 4.2).
//!
//! The paper's general kernel assigns each thread `W_T` *contiguous*
//! output pixels so that one `W_T + K - 1` register row serves `K` FMA
//! rounds; blocked GEMM assigns contiguous outputs to contiguous
//! *threads*. This harness runs both layouts (same staging, same register
//! blocking, same arithmetic) and reports the shared-memory traffic ratio
//! against the paper's `(W_T + K - 1) / (W_T * K)` formula, plus the
//! modeled time.
//!
//! Usage: `cargo run --release -p kconv-bench --bin ablation_contiguous`

use kconv_bench::print_table;
use kconv_core::model::general_sm_reduction;
use kconv_core::{Convolution, GeneralConfig, GeneralConv, GeneralConvStrided};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn main() {
    println!("Ablation — contiguous vs strided (blocked-GEMM) thread outputs\n");
    let mut rows = Vec::new();
    for k in [3usize, 5, 7] {
        let cfg = GeneralConfig::table1(k);
        let problem = ConvProblem::general(64 + k - 1, 64, cfg.f_tb, k);
        let input = random_maps(64, 64 + k - 1, 64 + k - 1, 701);
        let filters = random_filters(cfg.f_tb, 64, k, 703);
        let run = |conv: &dyn Convolution| {
            let mut gpu =
                Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
            conv.run(&mut gpu, &problem, &input, &filters, SimMode::Sampled(2))
                .unwrap_or_else(|e| panic!("{}: {e}", conv.name()))
                .report
        };
        let ours = run(&GeneralConv::new(cfg));
        let gemm = run(&GeneralConvStrided::new(cfg));
        let predicted = 1.0 / general_sm_reduction(&cfg, k);
        rows.push(vec![
            format!("{k}x{k} (W_T={})", cfg.w_t),
            format!("{:.2}x", predicted),
            format!(
                "{:.2}x",
                gemm.stats.sm_bytes_useful as f64 / ours.stats.sm_bytes_useful as f64
            ),
            format!(
                "{:.2}x",
                gemm.stats.sm_cycles() as f64 / ours.stats.sm_cycles() as f64
            ),
            format!("{:.0}", problem.flops() as f64 / ours.seconds() / 1e9),
            format!("{:.0}", problem.flops() as f64 / gemm.seconds() / 1e9),
        ]);
    }
    print_table(
        &[
            "K (config)",
            "paper formula",
            "SM bytes ratio",
            "SM cycles ratio",
            "contiguous GF/s",
            "strided GF/s",
        ],
        &rows,
    );
    println!(
        "\nThe SM-traffic ratio includes the (identical) filter reads and\n\
         staging, so it sits below the image-only formula; the cycle ratio\n\
         exceeds it because the strided layout also forfeits the matched\n\
         (float2) access width — both of the paper's section 4 design\n\
         choices, isolated."
    );
}

//! Ablation — the contribution of prefetch/overlap (Algorithm 1 lines 5/10,
//! Algorithm 2 lines 8-9/17-18).
//!
//! Both kernels prefetch the next tile/row into registers while the current
//! one is convolved. The simulator's counters are overlap-independent, so
//! this ablation re-evaluates the same counted execution under the three
//! overlap models — prefetched, naturally scheduled, and fully serialized —
//! to isolate how much of the performance the software pipelining buys.
//!
//! Usage: `cargo run --release -p kconv-bench --bin ablation_overlap`

use kconv_bench::print_table;
use kconv_core::{Convolution, GeneralConfig, GeneralConv, SpecialConfig, SpecialConv};
use kconv_sim::{timing, Gpu, GpuSpec, LaunchConfig, OverlapMode, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn main() {
    println!("Ablation — overlap model vs achieved GFlop/s (K = 3x3)\n");
    let spec = GpuSpec::kepler_k40m();
    let mut rows = Vec::new();

    // Special case.
    {
        let problem = ConvProblem::special(1024, 32, 3);
        let input = random_maps(1, 1024, 1024, 401);
        let filters = random_filters(32, 1, 3, 403);
        let cfg = SpecialConfig::kepler_best();
        let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
        let run = SpecialConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Sampled(2))
            .expect("special run");
        let blocks = run.report.stats.blocks_total as usize;
        for overlap in [
            OverlapMode::Prefetch,
            OverlapMode::Moderate,
            OverlapMode::Serial,
        ] {
            let launch = LaunchConfig::new("special", blocks, cfg.threads())
                .with_smem(cfg.smem_bytes(3))
                .with_regs(cfg.regs_per_thread(3))
                .with_overlap(overlap);
            let t = timing::evaluate(&spec, &launch, &run.report.stats).expect("timing");
            rows.push(vec![
                "special N=1024 F=32".into(),
                format!("{overlap:?}"),
                format!("{:.3}", t.t_total * 1e3),
                format!("{:.0}", problem.flops() as f64 / t.t_total / 1e9),
            ]);
        }
    }

    // General case.
    {
        let problem = ConvProblem::general(130, 64, 64, 3);
        let input = random_maps(64, 130, 130, 405);
        let filters = random_filters(64, 64, 3, 407);
        let cfg = GeneralConfig::table1_3x3();
        let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
        let run = GeneralConv::new(cfg)
            .run(&mut gpu, &problem, &input, &filters, SimMode::Sampled(2))
            .expect("general run");
        let blocks = run.report.stats.blocks_total as usize;
        for overlap in [
            OverlapMode::Prefetch,
            OverlapMode::Moderate,
            OverlapMode::Serial,
        ] {
            let launch = LaunchConfig::new("general", blocks, cfg.threads())
                .with_smem(cfg.smem_bytes(3))
                .with_regs(cfg.regs_per_thread(3))
                .with_overlap(overlap);
            let t = timing::evaluate(&spec, &launch, &run.report.stats).expect("timing");
            rows.push(vec![
                "general N'=128 C=64 F=64".into(),
                format!("{overlap:?}"),
                format!("{:.3}", t.t_total * 1e3),
                format!("{:.0}", problem.flops() as f64 / t.t_total / 1e9),
            ]);
        }
    }

    print_table(&["kernel", "overlap", "time (ms)", "GFlop/s"], &rows);
    println!(
        "\nPrefetch-vs-Serial is the modeled value of the register\n\
         double-buffering in Algorithms 1 and 2; the paper attributes its\n\
         F = 1 slowdown to exactly this overlap being unavailable."
    );
}

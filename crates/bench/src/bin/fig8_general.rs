//! Fig. 8 — general-case (multi-channel) convolution vs the cuDNN-like
//! baseline, on the simulated K40m.
//!
//! The paper sweeps `(N, K, C, F)` for `K` in {3, 5, 7}, using its Table 1
//! configurations, and reports 30.5% / 45.3% / 30.8% average improvements
//! over cuDNN (35.5% overall), with a small loss only at 32x32 images; the
//! best absolute rate is 2020 GFlop/s (47% of peak).
//!
//! Usage: `cargo run --release -p kconv-bench --bin fig8_general -- [--filter K] [--quick]`

use kconv_bench::{geomean, print_table};
use kconv_core::{Convolution, GeneralConv, ImplicitGemmConv};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem, CONV_TOL};

struct Point {
    n: usize,
    c: usize,
    f: usize,
    ours: f64,
    cudnn16: f64,
    cudnn_tex: f64,
}

fn run_conv(conv: &dyn Convolution, problem: &ConvProblem, verify: bool) -> f64 {
    let input = random_maps(problem.channels, problem.height, problem.width, 201);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 203);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
    let run = conv
        .run(&mut gpu, problem, &input, &filters, SimMode::Sampled(2))
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    if verify {
        run.verify_executed(problem, &input, &filters, CONV_TOL)
            .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    }
    run.effective_gflops(problem)
}

fn sweep(k: usize, quick: bool) -> Vec<Point> {
    // Input sizes are chosen so the output (N-K+1) is the canonical CNN
    // feature-map size N' listed here (as in CNN layer shapes).
    let (ns, cfs): (Vec<usize>, Vec<(usize, usize)>) = if quick {
        (vec![32, 64], vec![(64, 64)])
    } else {
        (
            vec![32, 64, 128, 256],
            vec![(32, 64), (64, 64), (128, 128), (256, 128)],
        )
    };
    let mut points = Vec::new();
    for &n in &ns {
        for &(c, f) in &cfs {
            let problem = ConvProblem::general(n + k - 1, c, f, k);
            let verify = n <= 64 && c <= 64;
            let ours = run_conv(&GeneralConv::table1(k), &problem, verify);
            let cudnn16 = run_conv(&ImplicitGemmConv::era2016(&problem), &problem, verify);
            let cudnn_tex = run_conv(&ImplicitGemmConv::default(), &problem, verify);
            points.push(Point {
                n,
                c,
                f,
                ours,
                cudnn16,
                cudnn_tex,
            });
        }
    }
    points
}

fn report(k: usize, points: &[Point]) {
    println!("\nFig. 8 (K = {k}x{k}) — GFlop/s, simulated K40m, Table 1 config\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.c.to_string(),
                p.f.to_string(),
                format!("{:.1}", p.cudnn16),
                format!("{:.1}", p.cudnn_tex),
                format!("{:.1}", p.ours),
                format!("{:+.1}%", 100.0 * (p.ours / p.cudnn_tex - 1.0)),
            ]
        })
        .collect();
    print_table(
        &[
            "N'",
            "C",
            "F",
            "cuDNN-v5-like",
            "cuDNN+tex",
            "our kernel",
            "improvement",
        ],
        &rows,
    );

    let ratios: Vec<f64> = points.iter().map(|p| p.ours / p.cudnn_tex).collect();
    let ratios16: Vec<f64> = points.iter().map(|p| p.ours / p.cudnn16).collect();
    let paper = match k {
        3 => "30.5%",
        5 => "45.3%",
        7 => "30.8%",
        _ => "n/a",
    };
    println!(
        "\ngeomean improvement over the texture-path baseline: {:+.1}%   (paper average for {k}x{k}: +{paper})",
        100.0 * (geomean(&ratios) - 1.0)
    );
    println!(
        "geomean improvement over the 2016-era baseline: {:+.1}%",
        100.0 * (geomean(&ratios16) - 1.0)
    );
    let best = points.iter().map(|p| p.ours).fold(0.0f64, f64::max);
    println!(
        "best absolute rate: {best:.0} GFlop/s = {:.0}% of peak   (paper: 2020 GFlop/s, 47%)",
        100.0 * best / GpuSpec::kepler_k40m().peak_gflops()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Option<usize> = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let ks: Vec<usize> = filter.map_or_else(|| vec![3, 5, 7], |k| vec![k]);
    println!(
        "Fig. 8 — general-case convolution on simulated {}",
        GpuSpec::kepler_k40m()
    );
    for k in ks {
        let points = sweep(k, quick);
        report(k, &points);
    }
}

//! What-if replay: re-price the captured Fig. 8 kernel under other GPUs.
//!
//! Captures one KTRC trace of the Fig. 8 general 3x3 layer on the Kepler
//! K40m spec, then uses `kconv-replay` to answer two questions without
//! ever re-running the kernel:
//!
//! 1. **Differential gate** — replaying the trace under its own capture
//!    spec must reproduce the live launch's `KernelStats` and timing bit
//!    for bit, for both the serial and `Threads(4)` captures (whose byte
//!    streams must themselves be identical). This proves the replay
//!    engine charges with exactly the live pricing functions.
//! 2. **Spec sweep** — the same trace re-priced under every preset
//!    ([`GpuSpec::presets_all`]): coalesced GM transactions, SM conflict
//!    cycles, bandwidth waste and modeled time per architecture, with
//!    drift guards against embedded expected values. The KTRC byte
//!    stream is decoded **once** into [`Trace`] slabs; the gate and
//!    every sweep preset re-price the same decoded form.
//!
//! A second, synthetic pair of traces isolates the paper's eq. 1 claim:
//! full-warp unvectorized `float` loads (stride 4 B) replayed on 8-byte
//! banks waste exactly the mismatch factor `n = W_SMB / W_CD = 2` of the
//! SM bandwidth, and the waste vanishes (1.0) on 4-byte banks; the
//! `float2` pattern (stride 8 B) is matched on both, trading exactly 2x
//! the replay cycles on 4-byte banks.
//!
//! A closing section runs eq. 1 the other way: the vector factor
//! [`KernelShape::derive_n`] derives for `f32` on each preset must equal
//! the mismatch factor the scalar-float pattern *measures* on that
//! preset — the generator (`kconv-arch`) and the replay engine agree on
//! the same formula from opposite directions.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin whatif            # report
//!   cargo run --release -p kconv-bench --bin whatif -- --check # exit 1 on FAIL
//!
//! Writes `BENCH_whatif.json` to the workspace root either way.

use kconv_bench::{fig8, Checker};
use kconv_core::{Convolution, DataType, KernelShape};
use kconv_replay::{replay_decoded, ReplayReport, TargetSpec};
use kconv_sim::{
    Gpu, GpuSpec, KernelStats, LaneMask, LaunchReport, OverlapMode, Parallelism, SanitizerMode,
    SimMode, TraceEvent, TraceLaunch, TraceOp, TraceSink, WARP_SIZE,
};
use kconv_trace::{SharedBuffer, Trace, TraceWriter};

/// Expected replayed SM cycles (ld + st) of the Fig. 8 trace per sweep
/// preset (keyed by `GpuSpec::name`) — drift guards for `--check`. These
/// move only when the kernel, the workload seeds, or the bank-conflict
/// model change.
const EXPECT_SM_CYCLES: [(&str, u64); 4] = [
    ("Kepler K40m", 450_560),
    ("Kepler K40m (4B banks)", 602_112),
    ("Fermi M2090", 602_112),
    ("Maxwell-like", 602_112),
];

/// Expected replayed GM transactions (ld + st) per sweep preset. All four
/// presets share 128 B load / 32 B store segments, so the capture's
/// coalescing carries over unchanged.
const EXPECT_GM_TRANSACTIONS: [(&str, u64); 4] = [
    ("Kepler K40m", 293_888),
    ("Kepler K40m (4B banks)", 293_888),
    ("Fermi M2090", 293_888),
    ("Maxwell-like", 293_888),
];

/// Runs the Fig. 8 workload with a trace writer attached.
fn captured_fig8(parallelism: Parallelism) -> (LaunchReport, Vec<u8>) {
    let (problem, input, filters) = fig8::workload();
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(parallelism)
        .with_sanitizer(SanitizerMode::Off);
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = fig8::conv()
        .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
        .expect("fig8 workload runs");
    gpu.set_trace_sink(None);
    (run.report, buf.take())
}

/// Builds a synthetic one-block trace of full-mask shared-memory loads
/// with the given per-lane width and byte stride — the paper's Fig. 1
/// access patterns distilled to their addresses.
fn sm_pattern_trace(name: &str, lane_bytes: u32, stride: u64, events: usize) -> Vec<u8> {
    let spec = GpuSpec::kepler_k40m();
    let buf = SharedBuffer::new();
    let mut w = TraceWriter::new(buf.clone());
    w.launch_begin(&TraceLaunch {
        kernel: name,
        grid_blocks: 1,
        executed_blocks: 1,
        threads_per_block: 256,
        smem_bytes: 4096,
        regs_per_thread: 32,
        overlap: OverlapMode::Prefetch,
        spec: &spec,
    });
    let evs: Vec<TraceEvent> = (0..events)
        .map(|_| {
            let mut addrs = [0u64; WARP_SIZE];
            for (lane, a) in addrs.iter_mut().enumerate() {
                *a = lane as u64 * stride;
            }
            TraceEvent {
                op: TraceOp::SmLd,
                warp: 0,
                mask: LaneMask::ALL,
                lane_bytes,
                transactions: 0,
                cycles: 1,
                addrs,
            }
        })
        .collect();
    w.block_events(0, &evs);
    w.launch_end(&KernelStats::default());
    buf.take()
}

/// One sweep row rendered for the report and the JSON file.
struct Row {
    spec_name: String,
    bank_bytes: u64,
    report: ReplayReport,
}

fn sweep_fig8(trace: &Trace) -> Vec<Row> {
    GpuSpec::presets_all()
        .into_iter()
        .map(|spec| {
            let report = replay_decoded(trace, &TargetSpec::Spec(spec.clone()))
                .expect("fig8 trace replays")
                .remove(0);
            Row {
                spec_name: spec.name.to_string(),
                bank_bytes: spec.bank_width.bytes(),
                report,
            }
        })
        .collect()
}

fn expect_for(table: &[(&str, u64)], name: &str) -> u64 {
    table
        .iter()
        .find(|(a, _)| *a == name)
        .map(|(_, v)| *v)
        .expect("preset name in expectation table")
}

fn main() {
    kconv_bench::reject_unknown_args("whatif", &[("--check", false)]);
    let check = std::env::args().any(|a| a == "--check");
    println!(
        "whatif — trace-driven replay of the Fig. 8 layer under {} target specs",
        GpuSpec::presets_all().len()
    );
    let mut c = Checker::default();

    // --- Differential gate: replay(capture spec) == live, bit for bit ---
    let (live, bytes) = captured_fig8(Parallelism::Serial);
    let (live_par, bytes_par) = captured_fig8(Parallelism::Threads(4));
    println!("\n[gate] capture: {} B of KTRC trace", bytes.len());
    c.check(
        "serial and threaded captures byte-identical",
        bytes == bytes_par,
        &format!("{} B each", bytes.len()),
    );
    c.check(
        "serial and threaded live stats bit-identical",
        live.stats == live_par.stats,
        "KernelStats compared field-wise",
    );
    // Decode the byte stream exactly once; the gate and every sweep
    // preset re-price the same decoded slabs.
    let trace = Trace::decode(&bytes).expect("fig8 trace decodes");
    let under_capture = &replay_decoded(&trace, &TargetSpec::Capture).expect("replayable")[0];
    c.check(
        "replay(capture spec) == live KernelStats",
        under_capture.stats == live.stats,
        "all 23 counters + histogram, bit-exact",
    );
    c.check(
        "replay(capture spec) == live timing",
        under_capture.timing == Some(live.timing),
        &format!(
            "replayed {:.3} ms",
            under_capture.timing.map_or(f64::NAN, |t| t.t_total * 1e3)
        ),
    );

    // --- Spec sweep over the same decoded trace ---
    let rows = sweep_fig8(&trace);
    println!(
        "\n[sweep] fig8 general 3x3, one capture, {} re-pricings",
        rows.len()
    );
    println!(
        "  {:<22} {:>5} {:>12} {:>9} {:>12} {:>10}  bottleneck",
        "spec", "bank", "sm cycles", "waste", "gm txns", "t (ms)"
    );
    for row in &rows {
        let r = &row.report;
        println!(
            "  {:<22} {:>4}B {:>12} {:>9.3} {:>12} {:>10}  {}",
            row.spec_name,
            row.bank_bytes,
            r.sm_cycles(),
            r.sm_waste(),
            r.gm_transactions(),
            r.timing
                .map_or("n/a".into(), |t| format!("{:.3}", t.t_total * 1e3)),
            r.timing.map_or_else(
                || r.timing_error.clone().unwrap_or_default(),
                |t| t.bottleneck().to_string()
            ),
        );
    }
    for row in &rows {
        let name = row.spec_name.as_str();
        let r = &row.report;
        c.eq_u64(
            &format!("{name}: replayed SM cycles match expectation"),
            r.sm_cycles(),
            expect_for(&EXPECT_SM_CYCLES, name),
        );
        c.eq_u64(
            &format!("{name}: replayed GM transactions match expectation"),
            r.gm_transactions(),
            expect_for(&EXPECT_GM_TRANSACTIONS, name),
        );
        // Useful bytes are trace facts, invariant under any target spec.
        c.check(
            &format!("{name}: useful bytes invariant"),
            r.stats.sm_bytes_useful == live.stats.sm_bytes_useful
                && r.stats.gm_ld_bytes_useful == live.stats.gm_ld_bytes_useful
                && r.stats.gm_st_bytes_useful == live.stats.gm_st_bytes_useful,
            "sm/gm.ld/gm.st useful bytes equal the capture's",
        );
    }

    // --- Synthetic patterns: the eq. 1 mismatch factor, exactly ---
    println!("\n[patterns] full-warp SmLd, 10 events each; waste = moved/useful bytes");
    let b8 = TargetSpec::Spec(GpuSpec::kepler_k40m());
    let b4 = TargetSpec::Spec(GpuSpec::kepler_k40m_4b());
    let float_trace =
        Trace::decode(&sm_pattern_trace("float-stride4", 4, 4, 10)).expect("pattern trace decodes");
    let float2_trace = Trace::decode(&sm_pattern_trace("float2-stride8", 8, 8, 10))
        .expect("pattern trace decodes");
    let f_b8 = &replay_decoded(&float_trace, &b8).expect("pattern replays")[0];
    let f_b4 = &replay_decoded(&float_trace, &b4).expect("pattern replays")[0];
    let v_b8 = &replay_decoded(&float2_trace, &b8).expect("pattern replays")[0];
    let v_b4 = &replay_decoded(&float2_trace, &b4).expect("pattern replays")[0];
    println!(
        "  float  stride 4: waste {} on 8B banks, {} on 4B banks (cycles {} / {})",
        f_b8.sm_waste(),
        f_b4.sm_waste(),
        f_b8.sm_cycles(),
        f_b4.sm_cycles()
    );
    println!(
        "  float2 stride 8: waste {} on 8B banks, {} on 4B banks (cycles {} / {})",
        v_b8.sm_waste(),
        v_b4.sm_waste(),
        v_b8.sm_cycles(),
        v_b4.sm_cycles()
    );
    let n = GpuSpec::kepler_k40m().mismatch_factor(4) as f64;
    c.eq_f64(
        "float pattern wastes n = W_SMB/W_CD on 8B banks",
        f_b8.sm_waste(),
        n,
    );
    c.eq_f64(
        "float pattern waste vanishes on 4B banks",
        f_b4.sm_waste(),
        1.0,
    );
    c.eq_f64("float2 pattern matched on 8B banks", v_b8.sm_waste(), 1.0);
    c.eq_f64("float2 pattern matched on 4B banks", v_b4.sm_waste(), 1.0);
    c.eq_u64(
        "float2 pattern: 4B-bank cycles exactly n x 8B-bank cycles",
        v_b4.sm_cycles(),
        n as u64 * v_b8.sm_cycles(),
    );

    // --- Derived n: eq. 1 in reverse, cross-checked per preset ---
    // The scalar-float pattern's replayed waste on a preset IS eq. 1's
    // mismatch factor for f32 on that machine; the generator's derived
    // vector factor must equal it (the factor it exists to cancel).
    println!("\n[derive] n = W_SMB / W_CD per preset vs the measured scalar-float mismatch");
    let mut derived_rows: Vec<(String, usize, f64)> = Vec::new();
    for spec in GpuSpec::presets_all() {
        let derived = KernelShape::derive_n(&spec, DataType::F32);
        let measured = replay_decoded(&float_trace, &TargetSpec::Spec(spec.clone()))
            .expect("pattern replays")[0]
            .sm_waste();
        println!(
            "  {:<22} {:>4}B banks  derived n={derived}  measured mismatch {measured}",
            spec.name,
            spec.bank_width.bytes()
        );
        c.eq_f64(
            &format!("{}: derived n == measured f32 mismatch factor", spec.name),
            measured,
            derived as f64,
        );
        derived_rows.push((spec.name.to_string(), derived, measured));
    }

    // --- JSON artifact ---
    let mut derived_json = String::new();
    for (i, (name, derived, measured)) in derived_rows.iter().enumerate() {
        derived_json.push_str(&format!(
            "    {{\"spec\": \"{name}\", \"derived_n\": {derived}, \"measured_mismatch\": {measured}}}{}\n",
            if i + 1 < derived_rows.len() { "," } else { "" },
        ));
    }
    let mut sweep_json = String::new();
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        sweep_json.push_str(&format!(
            "    {{\"spec\": \"{}\", \"bank_bytes\": {}, \"sm_cycles\": {}, \"sm_waste\": {:.6}, \"gm_transactions\": {}, \"t_total_ms\": {}, \"bottleneck\": \"{}\"}}{}\n",
            row.spec_name,
            row.bank_bytes,
            r.sm_cycles(),
            r.sm_waste(),
            r.gm_transactions(),
            r.timing
                .map_or("null".into(), |t| format!("{:.6}", t.t_total * 1e3)),
            r.timing.map_or("", |t| t.bottleneck()),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"whatif_fig8_replay\",\n  \"trace_bytes\": {},\n  \"gate_bit_identical\": {},\n  \"sweep\": [\n{}  ],\n  \"patterns\": {{\n    \"mismatch_factor\": {n},\n    \"float_waste_8b\": {},\n    \"float_waste_4b\": {},\n    \"float2_waste_8b\": {},\n    \"float2_waste_4b\": {},\n    \"float2_cycles_ratio_4b_over_8b\": {}\n  }},\n  \"derived_n\": [\n{derived_json}  ],\n  \"checks\": {},\n  \"failures\": {}\n}}\n",
        bytes.len(),
        under_capture.stats == live.stats,
        sweep_json,
        f_b8.sm_waste(),
        f_b4.sm_waste(),
        v_b8.sm_waste(),
        v_b4.sm_waste(),
        v_b4.sm_cycles() as f64 / v_b8.sm_cycles() as f64,
        c.checks,
        c.failures,
    );
    let path = fig8::workspace_file("BENCH_whatif.json");
    if let Err(e) = std::fs::write(&path, &json) {
        c.check("BENCH_whatif.json written", false, &format!("{path}: {e}"));
    } else {
        println!("\nwrote {path}");
    }

    c.summary();
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

//! Fig. 7 — special-case (single-channel) convolution vs the cuDNN-like
//! baseline, on the simulated K40m.
//!
//! The paper sweeps image size `N`, filter size `K` in {1, 3, 5} and filter
//! count `F`, reporting GFlop/s for its kernel and cuDNN (GEMM path), plus
//! the bank-width-unmatched kernel for `K = 3` (Fig. 7b).
//!
//! Paper-reported shape: average gains of 6.16x (K=1), 6.43x (K=3) and
//! 2.90x (K=5), 5.16x overall; more than 10x when `F = 1`; the unmatched
//! kernel loses ~19% on average for K=3.
//!
//! Usage: `cargo run --release -p kconv-bench --bin fig7_special -- [--filter K] [--quick]`

use kconv_bench::{geomean, print_table};
use kconv_core::{Convolution, ImplicitGemmConv, SpecialConfig, SpecialConv};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem, CONV_TOL};

struct Point {
    n: usize,
    f: usize,
    ours: f64,
    cudnn16: f64,
    cudnn_tex: f64,
    unmatched: Option<f64>,
}

fn run_conv(conv: &dyn Convolution, problem: &ConvProblem, verify: bool) -> f64 {
    let input = random_maps(1, problem.height, problem.width, 101);
    let filters = random_filters(problem.filters, 1, problem.k, 103);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
    let run = conv
        .run(&mut gpu, problem, &input, &filters, SimMode::Sampled(2))
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    if verify {
        run.verify_executed(problem, &input, &filters, CONV_TOL)
            .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    }
    run.effective_gflops(problem)
}

fn sweep(k: usize, quick: bool) -> Vec<Point> {
    let (ns, fs): (Vec<usize>, Vec<usize>) = if quick {
        (vec![512, 1024], vec![1, 32])
    } else {
        (vec![512, 1024, 2048], vec![1, 8, 32, 64])
    };
    let mut points = Vec::new();
    for &n in &ns {
        for &f in &fs {
            let problem = ConvProblem::special(n, f, k);
            let verify = n <= 1024;
            let ours = run_conv(&SpecialConv::default(), &problem, verify);
            let cudnn16 = run_conv(&ImplicitGemmConv::era2016(&problem), &problem, verify);
            let cudnn_tex = run_conv(&ImplicitGemmConv::default(), &problem, verify);
            let unmatched = (k == 3).then(|| {
                run_conv(
                    &SpecialConv::new(SpecialConfig::kepler_unmatched()),
                    &problem,
                    verify,
                )
            });
            points.push(Point {
                n,
                f,
                ours,
                cudnn16,
                cudnn_tex,
                unmatched,
            });
        }
    }
    points
}

fn report(k: usize, points: &[Point]) {
    println!("\nFig. 7 (K = {k}x{k}) — GFlop/s, simulated K40m\n");
    let with_unmatched = points.iter().any(|p| p.unmatched.is_some());
    let mut header = vec![
        "N",
        "F",
        "cuDNN-v5-like",
        "cuDNN+tex",
        "our kernel",
        "speedup(v5)",
    ];
    if with_unmatched {
        header.push("unmatched");
        header.push("unmatched loss");
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut r = vec![
                p.n.to_string(),
                p.f.to_string(),
                format!("{:.1}", p.cudnn16),
                format!("{:.1}", p.cudnn_tex),
                format!("{:.1}", p.ours),
                format!("{:.2}x", p.ours / p.cudnn16),
            ];
            if let Some(u) = p.unmatched {
                r.push(format!("{u:.1}"));
                r.push(format!("{:.0}%", 100.0 * (1.0 - u / p.ours)));
            } else if with_unmatched {
                r.push(String::new());
                r.push(String::new());
            }
            r
        })
        .collect();
    print_table(&header, &rows);

    let speedups: Vec<f64> = points.iter().map(|p| p.ours / p.cudnn16).collect();
    let tex_speedups: Vec<f64> = points.iter().map(|p| p.ours / p.cudnn_tex).collect();
    let paper = match k {
        1 => "6.16x",
        3 => "6.43x",
        5 => "2.90x",
        _ => "n/a",
    };
    println!(
        "\ngeomean speedup over the 2016-era baseline: {:.2}x   (paper average for {k}x{k}: {paper})",
        geomean(&speedups)
    );
    println!(
        "geomean speedup over the texture-path baseline: {:.2}x   (stronger than the paper's comparator)",
        geomean(&tex_speedups)
    );
    let f1: Vec<f64> = points
        .iter()
        .filter(|p| p.f == 1)
        .map(|p| p.ours / p.cudnn16)
        .collect();
    if !f1.is_empty() {
        println!(
            "geomean speedup at F = 1: {:.1}x   (paper: can exceed 10x)",
            geomean(&f1)
        );
    }
    if with_unmatched {
        let losses: Vec<f64> = points
            .iter()
            .filter_map(|p| p.unmatched.map(|u| 1.0 - u / p.ours))
            .collect();
        println!(
            "mean unmatched-kernel loss: {:.0}%   (paper: 19%)",
            100.0 * losses.iter().sum::<f64>() / losses.len() as f64
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Option<usize> = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let ks: Vec<usize> = filter.map_or_else(|| vec![1, 3, 5], |k| vec![k]);
    println!(
        "Fig. 7 — special-case convolution on simulated {}",
        GpuSpec::kepler_k40m()
    );
    for k in ks {
        let points = sweep(k, quick);
        report(k, &points);
    }
}

//! Ablation — the cost of ignoring the bank-width model in both kernels.
//!
//! Fig. 7b's inset measured the special-case kernel with `W_CD` left
//! unmatched (scalar `float` accesses) and found a 19% average loss; the
//! paper then *predicts* ("it can be expected...") that the degradation is
//! larger for the general case, whose shared memory also holds the
//! filters. This harness measures both.
//!
//! Usage: `cargo run --release -p kconv-bench --bin ablation_unmatched [--quick]`

use kconv_bench::{geomean, print_table};
use kconv_core::{Convolution, GeneralConfig, GeneralConv, SpecialConfig, SpecialConv};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn gflops(conv: &dyn Convolution, problem: &ConvProblem) -> f64 {
    let input = random_maps(problem.channels, problem.height, problem.width, 301);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 303);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
    conv.run(&mut gpu, problem, &input, &filters, SimMode::Sampled(2))
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()))
        .effective_gflops(problem)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Ablation — matched vs unmatched computation data width (K = 3x3)\n");

    let mut rows = Vec::new();
    let mut special_losses = Vec::new();
    let mut general_losses = Vec::new();

    let ns: Vec<usize> = if quick {
        vec![512]
    } else {
        vec![512, 1024, 2048]
    };
    for &n in &ns {
        for f in [8usize, 64] {
            let problem = ConvProblem::special(n, f, 3);
            let matched = gflops(&SpecialConv::default(), &problem);
            let unmatched = gflops(
                &SpecialConv::new(SpecialConfig::kepler_unmatched()),
                &problem,
            );
            special_losses.push(matched / unmatched);
            rows.push(vec![
                "special".into(),
                format!("N={n} F={f}"),
                format!("{matched:.0}"),
                format!("{unmatched:.0}"),
                format!("{:.0}%", 100.0 * (1.0 - unmatched / matched)),
            ]);
        }
    }
    let ns: Vec<usize> = if quick { vec![64] } else { vec![64, 128] };
    for &n in &ns {
        for c in [64usize, 128] {
            let problem = ConvProblem::general(n + 2, c, 64, 3);
            let matched = gflops(&GeneralConv::table1(3), &problem);
            let unmatched_cfg = GeneralConfig {
                vec_width: 1,
                ..GeneralConfig::table1(3)
            };
            let unmatched = gflops(&GeneralConv::new(unmatched_cfg), &problem);
            general_losses.push(matched / unmatched);
            rows.push(vec![
                "general".into(),
                format!("N'={n} C={c} F=64"),
                format!("{matched:.0}"),
                format!("{unmatched:.0}"),
                format!("{:.0}%", 100.0 * (1.0 - unmatched / matched)),
            ]);
        }
    }
    print_table(
        &[
            "kernel",
            "problem",
            "matched GF/s",
            "unmatched GF/s",
            "loss",
        ],
        &rows,
    );
    let sp = 100.0 * (1.0 - 1.0 / geomean(&special_losses));
    let ge = 100.0 * (1.0 - 1.0 / geomean(&general_losses));
    println!("\nmean special-case loss: {sp:.0}%   (paper Fig. 7b: 19%)");
    println!("mean general-case loss: {ge:.0}%   (paper predicts: higher than special)");
    if ge > sp {
        println!("=> the paper's prediction holds under the model.");
    } else {
        println!("=> the paper's prediction does NOT hold under the model (see EXPERIMENTS.md).");
    }
}

//! Fig. 1 — the shared-memory access-pattern model, demonstrated
//! numerically.
//!
//! The paper's Fig. 1 contrasts the conventional pattern (contiguous
//! threads access contiguous elements) with the matched pattern (each
//! thread accesses `n = W_SMB / W_CD` elements as one unit). This harness
//! feeds both patterns — plus the classic pathological ones — through the
//! simulator's bank model and prints cycles and delivered bytes, making
//! the figure's 2x claim an executable statement.
//!
//! Usage: `cargo run --release -p kconv-bench --bin fig1_patterns`

use kconv_bench::print_table;
use kconv_sim::{bank_conflict_cycles, lane_addrs, BankWidth, LaneMask, WARP_SIZE};

struct Pattern {
    name: &'static str,
    stride: u64,
    width: u64,
}

fn main() {
    println!("Fig. 1 — shared-memory access patterns under the bank model\n");
    let patterns = [
        Pattern {
            name: "conventional float (Fig. 1a)",
            stride: 4,
            width: 4,
        },
        Pattern {
            name: "matched float2 (Fig. 1b)",
            stride: 8,
            width: 8,
        },
        Pattern {
            name: "column stride (32 words)",
            stride: 32 * 8,
            width: 4,
        },
        Pattern {
            name: "padded column (33 words)",
            stride: 33 * 8,
            width: 8,
        },
        Pattern {
            name: "float4 per lane",
            stride: 16,
            width: 16,
        },
    ];

    for bank in [BankWidth::B8, BankWidth::B4] {
        println!(
            "--- {bank} ({}) ---",
            match bank {
                BankWidth::B8 => "Kepler",
                BankWidth::B4 => "Fermi/Maxwell",
            }
        );
        let capacity = 32 * bank.bytes();
        let rows: Vec<Vec<String>> = patterns
            .iter()
            .map(|p| {
                let out = bank_conflict_cycles(
                    &lane_addrs(0, p.stride),
                    p.width,
                    LaneMask::ALL,
                    32,
                    bank,
                );
                let useful = WARP_SIZE as u64 * p.width;
                let bw = useful as f64 / (out.cycles * capacity) as f64;
                vec![
                    p.name.to_string(),
                    out.cycles.to_string(),
                    useful.to_string(),
                    format!("{:.0}%", 100.0 * bw),
                    if out.broadcast { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &[
                "pattern",
                "cycles",
                "useful bytes",
                "fabric use",
                "broadcast",
            ],
            &rows,
        );
        println!();
    }
    println!(
        "On Kepler the conventional float pattern completes in one cycle but\n\
         uses half the fabric; the matched float2 pattern uses all of it —\n\
         the paper's n-fold shared-memory bandwidth claim, verbatim."
    );
}

//! CI smoke check: one serial iteration of the Fig. 8 general-case 3x3
//! layer, with every `KernelStats` counter compared against the checked-in
//! golden values in `GOLDEN_fig8.json`.
//!
//! The hot-path data structures (paged write journal, constant-line bitmap,
//! stack-array dedup) are justified by being *bit-identical* to the naive
//! models they replaced; this binary is the tripwire that keeps them honest
//! on the real workload. Any counter drift fails the run with a field-level
//! diff.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin bench_smoke            # verify
//!   cargo run --release -p kconv-bench --bin bench_smoke -- --write # re-bless
//!
//! `--write` regenerates the golden file; only do that when a modeling
//! change (not an optimization) intentionally moves the counters.

use kconv_core::{Convolution, GeneralConv};
use kconv_sim::{Gpu, GpuSpec, KernelStats, Parallelism, SanitizerMode, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

/// Canonical JSON rendering of every counter, one line per field, so a
/// drift shows up as a readable diff.
fn stats_json(s: &KernelStats) -> String {
    let h = s.sm_conflict_histogram;
    format!(
        "{{\n  \"bench\": \"fig8_general_3x3_full\",\n  \"fma_lane_ops\": {},\n  \"alu_lane_ops\": {},\n  \"gm_ld_requests\": {},\n  \"gm_st_requests\": {},\n  \"gm_ld_transactions\": {},\n  \"gm_st_transactions\": {},\n  \"gm_ld_bytes_bus\": {},\n  \"gm_st_bytes_bus\": {},\n  \"gm_ld_bytes_useful\": {},\n  \"gm_st_bytes_useful\": {},\n  \"gm_ro_hits\": {},\n  \"sm_ld_requests\": {},\n  \"sm_st_requests\": {},\n  \"sm_ld_cycles\": {},\n  \"sm_st_cycles\": {},\n  \"sm_bytes_useful\": {},\n  \"sm_broadcasts\": {},\n  \"sm_conflict_histogram\": [{}, {}, {}, {}, {}, {}],\n  \"cm_requests\": {},\n  \"cm_cycles\": {},\n  \"cm_misses\": {},\n  \"barriers\": {},\n  \"blocks_executed\": {},\n  \"blocks_total\": {}\n}}\n",
        s.fma_lane_ops,
        s.alu_lane_ops,
        s.gm_ld_requests,
        s.gm_st_requests,
        s.gm_ld_transactions,
        s.gm_st_transactions,
        s.gm_ld_bytes_bus,
        s.gm_st_bytes_bus,
        s.gm_ld_bytes_useful,
        s.gm_st_bytes_useful,
        s.gm_ro_hits,
        s.sm_ld_requests,
        s.sm_st_requests,
        s.sm_ld_cycles,
        s.sm_st_cycles,
        s.sm_bytes_useful,
        s.sm_broadcasts,
        h[0],
        h[1],
        h[2],
        h[3],
        h[4],
        h[5],
        s.cm_requests,
        s.cm_cycles,
        s.cm_misses,
        s.barriers,
        s.blocks_executed,
        s.blocks_total,
    )
}

fn main() {
    let write = std::env::args().any(|a| a == "--write");

    let problem = ConvProblem::general(64 + 2, 64, 64, 3);
    let input = random_maps(problem.channels, problem.height, problem.width, 201);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 203);
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(Parallelism::Serial)
        .with_sanitizer(SanitizerMode::Off);
    let run = GeneralConv::table1(3)
        .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
        .expect("fig8 layer launches");
    let current = stats_json(&run.report.stats);

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/GOLDEN_fig8.json");
    if write {
        std::fs::write(&path, &current).expect("write GOLDEN_fig8.json");
        println!("wrote {path}");
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with --write to create it)"));
    if golden == current {
        println!("bench_smoke: all fig8 counters match {path}");
        return;
    }
    eprintln!("bench_smoke: counter drift against {path}");
    for (g, c) in golden.lines().zip(current.lines()) {
        if g != c {
            eprintln!("  golden:  {}", g.trim());
            eprintln!("  current: {}", c.trim());
        }
    }
    std::process::exit(1);
}

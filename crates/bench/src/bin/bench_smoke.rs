//! CI smoke check: one serial iteration of the Fig. 8 general-case 3x3
//! layer, with every `KernelStats` counter compared against the checked-in
//! golden values in `GOLDEN_fig8.json`.
//!
//! The hot-path data structures (paged write journal, constant-line bitmap,
//! stack-array dedup) are justified by being *bit-identical* to the naive
//! models they replaced; this binary is the tripwire that keeps them honest
//! on the real workload. Any counter drift fails the run with a field-level
//! diff. The workload, the canonical JSON rendering and the golden path all
//! come from [`kconv_bench::fig8`], shared with the `hotpath`/`parallel`
//! benches and `trace_report`.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin bench_smoke            # verify
//!   cargo run --release -p kconv-bench --bin bench_smoke -- --write # re-bless
//!
//! `--write` regenerates the golden file; only do that when a modeling
//! change (not an optimization) intentionally moves the counters.

use kconv_bench::fig8;
use kconv_core::Convolution;
use kconv_sim::{Gpu, GpuSpec, Parallelism, SanitizerMode, SimMode};

fn main() {
    let write = std::env::args().any(|a| a == "--write");

    let (problem, input, filters) = fig8::workload();
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(Parallelism::Serial)
        .with_sanitizer(SanitizerMode::Off);
    let run = fig8::conv()
        .run(&mut gpu, &problem, &input, &filters, SimMode::Full)
        .expect("fig8 layer launches");
    let current = fig8::stats_json(&run.report.stats);

    let path = fig8::workspace_file("GOLDEN_fig8.json");
    if write {
        std::fs::write(&path, &current).expect("write GOLDEN_fig8.json");
        println!("wrote {path}");
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with --write to create it)"));
    if golden == current {
        println!("bench_smoke: all fig8 counters match {path}");
        return;
    }
    eprintln!("bench_smoke: counter drift against {path}");
    fig8::print_json_diff(&golden, &current);
    std::process::exit(1);
}

//! Related-work comparison (paper section 1) — direct vs Winograd for 3x3.
//!
//! The paper argues direct convolution is the general-purpose choice:
//! Winograd's 2.25x multiplication reduction is real but "at the cost of
//! increased memory usage and filter size dependent specialized
//! processing", and FFT/Winograd "are not universal". This harness puts
//! numbers on that trade-off for CNN-shaped problems:
//!
//! * multiplication counts (the 2.25x) and filter-memory blow-up (16/9),
//!   from the verified implementation in `kconv_core::winograd`;
//! * a projected Winograd rate on the simulated K40m — the arithmetic
//!   reduction applied to the measured direct-kernel rate, i.e. the
//!   *upper bound* a perfect Winograd kernel could reach;
//! * the restriction table (which of the paper's sweep points Winograd
//!   can serve at all).
//!
//! Usage: `cargo run --release -p kconv-bench --bin winograd_compare`

use kconv_bench::print_table;
use kconv_core::winograd::{multiplication_counts, transformed_filter_bytes, winograd_conv_3x3};
use kconv_core::{conv_reference, Convolution, GeneralConv};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn main() {
    println!("Related work — direct vs Winograd F(2x2, 3x3)\n");

    // Verify once, loudly, that the Winograd implementation is exact.
    let p = ConvProblem::general(18, 4, 8, 3);
    let input = random_maps(4, 18, 18, 601);
    let filters = random_filters(8, 4, 3, 603);
    let wino = winograd_conv_3x3(&p, &input, &filters).expect("winograd");
    let direct = conv_reference(&p, &input, &filters);
    kconv_tensor::assert_close(wino.as_slice(), direct.as_slice(), 1e-4, "winograd check");
    println!("correctness: Winograd output == direct reference (16x16x8, C=4) ✓\n");

    let mut rows = Vec::new();
    for (n, c, f) in [(64usize, 64usize, 64usize), (128, 128, 128), (256, 64, 128)] {
        let problem = ConvProblem::general(n + 2, c, f, 3);
        let (mul_direct, mul_wino) = multiplication_counts(&problem);
        let (mem_direct, mem_wino) = transformed_filter_bytes(&problem);

        // Measured direct-kernel rate on the simulated K40m.
        let inp = random_maps(c, n + 2, n + 2, 605);
        let flt = random_filters(f, c, 3, 607);
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
        let run = GeneralConv::table1(3)
            .run(&mut gpu, &problem, &inp, &flt, SimMode::Sampled(2))
            .expect("direct run");
        let direct_gflops = run.effective_gflops(&problem);
        let wino_bound = direct_gflops * mul_direct as f64 / mul_wino as f64;

        rows.push(vec![
            format!("{n}x{n} C={c} F={f}"),
            format!("{:.2}x", mul_direct as f64 / mul_wino as f64),
            format!("{:.2}x", mem_wino as f64 / mem_direct as f64),
            format!("{direct_gflops:.0}"),
            format!("{wino_bound:.0}"),
        ]);
    }
    print_table(
        &[
            "problem",
            "mult. reduction",
            "filter memory",
            "direct (GF/s, measured)",
            "Winograd bound (GF/s)",
        ],
        &rows,
    );

    println!("\nrestrictions (why the paper calls direct convolution universal):");
    let sweep = [(3usize, "3x3"), (5, "5x5"), (7, "7x7"), (1, "1x1")];
    let mut rows = Vec::new();
    for (k, name) in sweep {
        let problem = ConvProblem::general(32, 4, 4, k);
        let inp = random_maps(4, 32, 32, 609);
        let flt = random_filters(4, 4, k, 611);
        let served = winograd_conv_3x3(&problem, &inp, &flt).is_ok();
        rows.push(vec![
            name.to_string(),
            if served {
                "yes".into()
            } else {
                "no (filter-size-specialized)".into()
            },
        ]);
    }
    print_table(&["filter", "F(2x2,3x3) applicable"], &rows);
    println!(
        "\nThe 2.25x bound also assumes the transforms are free; on real\n\
         hardware they cost bandwidth and shared-memory traffic, which is\n\
         why measured Winograd wins are well below 2.25x (paper refs [15,16])."
    );
}

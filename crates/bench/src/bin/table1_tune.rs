//! Table 1 — design-space exploration of the general-case kernel.
//!
//! Reproduces the process behind the paper's Table 1: enumerate the tuning
//! knobs `(W, H, F_TB, W_T, F_T, C_SH)`, measure every feasible
//! configuration on a representative problem, and report the winner per
//! filter size, next to the paper's published best.
//!
//! Usage: `cargo run --release -p kconv-bench --bin table1_tune [--quick]`

use kconv_bench::print_table;
use kconv_core::tune::{candidate_space, explore_general};
use kconv_core::GeneralConfig;
use kconv_sim::GpuSpec;
use kconv_tensor::ConvProblem;

fn fmt_cfg(c: &GeneralConfig) -> Vec<String> {
    vec![
        c.width.to_string(),
        c.height.to_string(),
        c.f_tb.to_string(),
        c.w_t.to_string(),
        c.f_t.to_string(),
        c.c_sh.to_string(),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = GpuSpec::kepler_k40m();
    println!("Table 1 — best general-case configurations on simulated {spec}\n");
    let (n, c, f) = if quick { (64, 32, 64) } else { (128, 64, 64) };
    println!(
        "probe problem: N'={n}, C={c}, F={f}; candidate space: {} configs\n",
        candidate_space().len()
    );

    let mut rows = Vec::new();
    for k in [3usize, 5, 7] {
        let problem = ConvProblem::general(n + k - 1, c, f, k);
        let results =
            explore_general(&spec, &problem, &candidate_space(), 2).expect("exploration failed");
        let best = results.first().expect("no feasible configuration");
        let paper = GeneralConfig::table1(k);
        let mut row = vec![format!("{k}x{k}"), "ours".into()];
        row.extend(fmt_cfg(&best.config));
        row.push(format!("{:.0}", best.gflops));
        rows.push(row);
        // Where does the paper's config land in our ranking?
        let paper_rank = results
            .iter()
            .position(|r| r.config == paper)
            .map_or("n/a".to_string(), |i| format!("#{}", i + 1));
        let paper_gf = results
            .iter()
            .find(|r| r.config == paper)
            .map_or("-".to_string(), |r| format!("{:.0}", r.gflops));
        let mut row = vec![format!("{k}x{k}"), format!("paper ({paper_rank})")];
        row.extend(fmt_cfg(&paper));
        row.push(paper_gf);
        rows.push(row);
    }
    print_table(
        &[
            "K", "config", "W", "H", "F_TB", "W_T", "F_T", "C_SH", "GFlop/s",
        ],
        &rows,
    );
    println!(
        "\npaper Table 1:  3x3: W=32 H=4 F_TB=64 W_T=16 F_T=4 C_SH=2\n               5x5: W=32 H=8 F_TB=32 W_T=8  F_T=8 C_SH=1\n               7x7: W=64 H=4 F_TB=32 W_T=8  F_T=8 C_SH=1"
    );
}

//! Architecture-adaptive generator harness: eq. 1 in reverse, gated by
//! replay.
//!
//! Generates the matched kernel variant for every preset × dtype
//! (`n = W_SMB / W_CD`, clamped to the instantiable factors), captures
//! each variant's KTRC trace on its own spec, and gates with replay:
//! matched variants are conflict-free and bank-row-filling (both factors
//! exactly 1.0), the generated f32 variant never serializes more than the
//! paper's hard-wired Kepler float2 kernel (strictly less on 4-byte-bank
//! parts), the fp16 mismatch factor measures exactly 2.0 at the wrong `n`
//! and exactly 1.0 at the derived `n`, and every variant runs
//! sanitizer-clean, reference-verified and bit-identical between serial
//! and threaded execution.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin arch            # report
//!   cargo run --release -p kconv-bench --bin arch -- --check # exit 1 on FAIL
//!
//! Writes `BENCH_arch.json` to the workspace root either way.

fn main() {
    kconv_bench::reject_unknown_args("arch", &[("--check", false)]);
    let check = std::env::args().any(|a| a == "--check");
    let c = kconv_bench::arch::run();
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

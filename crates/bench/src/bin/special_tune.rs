//! Special-case tile exploration — the search behind the paper's
//! "best block size for the special case is W = 256 and H = 8".
//!
//! Explores (W, H) tile shapes for the special kernel on a representative
//! problem and reports where the paper's choice lands.
//!
//! Usage: `cargo run --release -p kconv-bench --bin special_tune [--quick]`

use kconv_bench::print_table;
use kconv_core::tune::{explore_special, special_candidate_space};
use kconv_core::SpecialConfig;
use kconv_sim::GpuSpec;
use kconv_tensor::ConvProblem;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = GpuSpec::kepler_k40m();
    let (n, f, k) = if quick { (512, 8, 3) } else { (2048, 32, 3) };
    let problem = ConvProblem::special(n, f, k);
    println!("Special-case tile exploration on simulated {spec}\nprobe problem: {problem}\n");

    let results =
        explore_special(&spec, &problem, &special_candidate_space(), 2).expect("exploration");
    let rows: Vec<Vec<String>> = results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mark = if r.config == SpecialConfig::kepler_best() {
                "  <- paper's choice"
            } else {
                ""
            };
            vec![
                format!("#{}", i + 1),
                r.config.width.to_string(),
                r.config.height.to_string(),
                format!("{:.0}{mark}", r.gflops),
            ]
        })
        .collect();
    print_table(&["rank", "W", "H", "GFlop/s"], &rows);

    let paper_rank = results
        .iter()
        .position(|r| r.config == SpecialConfig::kepler_best())
        .map(|i| i + 1);
    match paper_rank {
        Some(rank) => println!(
            "\nthe paper's W=256, H=8 ranks #{rank} of {} under the model",
            results.len()
        ),
        None => println!("\nthe paper's W=256, H=8 was not feasible on this probe"),
    }
}

//! Fig. 2 — single-precision GEMM on the simulated K40m.
//!
//! Reproduces the paper's motivation experiment: a Fermi-tuned MAGMA-style
//! kernel (scalar shared-memory fragments, *unmatched* against Kepler's
//! 8-byte banks) against a Kepler-tuned cuBLAS-like kernel and the
//! "MAGMA mod." variant that only matches the computation data width.
//!
//! Paper-reported shape: MAGMA is 2.4x slower than cuBLAS on Kepler; the
//! modification saves 36% of MAGMA's execution time on average.
//!
//! Usage: `cargo run --release -p kconv-bench --bin fig2_gemm [--quick]`

use kconv_bench::{geomean, print_table};
use kconv_gemm::{block_tile, gemm_ref_tile, launch_gemm, GemmConfig, GemmShape};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::assert_close;

fn run_config(cfg: &GemmConfig, dim: usize, verify: bool) -> f64 {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
    let shape = GemmShape::square(dim);
    let elems = (dim * dim) as u64;
    let a = gpu.alloc_f32(elems).expect("alloc A");
    let b = gpu.alloc_f32(elems).expect("alloc B");
    let c = gpu.alloc_f32(elems).expect("alloc C");

    // Data is performance-irrelevant; use a cheap deterministic pattern and
    // verify one sampled block against the CPU reference at small sizes.
    let av: Vec<f32> = (0..dim * dim)
        .map(|i| ((i % 17) as f32 - 8.0) / 8.0)
        .collect();
    let bv: Vec<f32> = (0..dim * dim)
        .map(|i| ((i % 13) as f32 - 6.0) / 6.0)
        .collect();
    gpu.upload_f32(a, &av).expect("upload A");
    gpu.upload_f32(b, &bv).expect("upload B");

    let report = launch_gemm(&mut gpu, cfg, shape, a, b, c, SimMode::Sampled(2)).expect("launch");

    if verify {
        let blk = report.executed_blocks[0];
        let (r0, rs, c0, cs) = block_tile(cfg, shape, blk);
        let want = gemm_ref_tile(&av, &bv, dim, dim, dim, r0, rs, c0, cs);
        let mut got = Vec::new();
        for r in 0..rs {
            got.extend(
                gpu.download_f32_at(c, ((r0 + r) * dim + c0) as u64, cs)
                    .expect("download"),
            );
        }
        assert_close(&got, &want, kconv_tensor::CONV_TOL, cfg.name);
    }

    report.seconds()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dims: Vec<usize> = if quick {
        vec![2048, 4096]
    } else {
        vec![2048, 3072, 4096, 5120, 6144, 7168, 8192]
    };
    let configs = [
        GemmConfig::kepler_tuned(),
        GemmConfig::fermi_tuned(),
        GemmConfig::fermi_tuned_matched(),
    ];

    println!(
        "Fig. 2 — SGEMM execution time on simulated {}\n",
        GpuSpec::kepler_k40m()
    );
    let mut rows = Vec::new();
    let mut magma_over_cublas = Vec::new();
    let mut mod_saving = Vec::new();
    for &dim in &dims {
        let verify = dim <= 2048;
        let times: Vec<f64> = configs.iter().map(|c| run_config(c, dim, verify)).collect();
        magma_over_cublas.push(times[1] / times[0]);
        mod_saving.push(1.0 - times[2] / times[1]);
        rows.push(vec![
            dim.to_string(),
            format!("{:.1}", times[0] * 1e3),
            format!("{:.1}", times[1] * 1e3),
            format!("{:.1}", times[2] * 1e3),
            format!("{:.2}x", times[1] / times[0]),
            format!("{:.0}%", 100.0 * (1.0 - times[2] / times[1])),
        ]);
    }
    print_table(
        &[
            "dim",
            "cuBLAS-like (ms)",
            "MAGMA (ms)",
            "MAGMA mod. (ms)",
            "MAGMA/cuBLAS",
            "mod. saving",
        ],
        &rows,
    );
    println!();
    println!(
        "geomean MAGMA/cuBLAS slowdown: {:.2}x   (paper: 2.4x)",
        geomean(&magma_over_cublas)
    );
    println!(
        "mean saving from matching the bank width: {:.0}%   (paper: 36%)",
        100.0 * mod_saving.iter().sum::<f64>() / mod_saving.len() as f64
    );
}

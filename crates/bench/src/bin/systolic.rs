//! Double-buffered pipeline harness: the staging schedule's claims,
//! gated by captured KTRC traces.
//!
//! Runs the systolic kernel at pipeline depth 1 (stage/sync/compute/sync)
//! and depth 2 (ping/pong double buffering) over the extended workload
//! matrix (dense, strided, dilated, depthwise, strided+dilated) and
//! checks, per preset: the traces show exactly `2R` barriers per block at
//! depth 1 and `R + 1` at depth 2; every GM/SM/CM traffic counter and the
//! output tensor are bit-identical across depths; the modeled launch time
//! strictly improves; each capture replays to the live counters bit for
//! bit; and both depths run sanitizer-clean, reference-verified and
//! bit-identical between serial and threaded execution. A tuner gate
//! proves the depth axis ranks the double-buffered schedule first and
//! that oversized staging comes back as a recorded skip.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin systolic            # report
//!   cargo run --release -p kconv-bench --bin systolic -- --check # exit 1 on FAIL
//!
//! Writes `BENCH_systolic.json` to the workspace root either way.

fn main() {
    kconv_bench::reject_unknown_args("systolic", &[("--check", false)]);
    let check = std::env::args().any(|a| a == "--check");
    let c = kconv_bench::systolic::run();
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

//! Cross-architecture ablation — the mismatch penalty exists exactly where
//! the model says it does.
//!
//! The paper's model predicts the unmatched kernel loses only when
//! `n = W_SMB / W_CD > 1`. On Fermi-class 4-byte banks, `float` is already
//! matched, so the scalar kernel should cost nothing relative to the
//! vectorized one; on Kepler it should lose. This harness runs the special
//! kernel's matched/unmatched pair on three architectures and reports the
//! penalty, plus the fp16 pair, where *every* architecture shows a
//! mismatch.
//!
//! Usage: `cargo run --release -p kconv-bench --bin ablation_arch`

use kconv_bench::print_table;
use kconv_core::{Convolution, SpecialConfig, SpecialConv, SpecialConvF16, SpecialConvI8};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn seconds(conv: &dyn Convolution, spec: &GpuSpec, problem: &ConvProblem) -> f64 {
    let input = random_maps(1, problem.height, problem.width, 501);
    let filters = random_filters(problem.filters, 1, problem.k, 503);
    let mut gpu = Gpu::new(spec.clone()).with_parallelism(Parallelism::env_or_auto());
    conv.run(&mut gpu, problem, &input, &filters, SimMode::Sampled(2))
        .unwrap_or_else(|e| panic!("{} on {}: {e}", conv.name(), spec.name))
        .report
        .seconds()
}

fn main() {
    println!("Cross-architecture ablation — unmatched-kernel penalty (special case)\n");
    let problem = ConvProblem::special(1024, 8, 3);
    let specs = [
        GpuSpec::kepler_k40m(),
        GpuSpec::fermi_m2090(),
        GpuSpec::maxwell_like(),
    ];

    let mut rows = Vec::new();
    for spec in &specs {
        let n_f32 = spec.mismatch_factor(4);
        let matched = seconds(
            &SpecialConv::new(SpecialConfig {
                vec_width: n_f32 as usize,
                ..SpecialConfig::kepler_best()
            }),
            spec,
            &problem,
        );
        let unmatched = seconds(
            &SpecialConv::new(SpecialConfig::kepler_unmatched()),
            spec,
            &problem,
        );
        rows.push(vec![
            spec.name.to_string(),
            "f32".into(),
            n_f32.to_string(),
            format!("{:.3}", matched * 1e3),
            format!("{:.3}", unmatched * 1e3),
            format!("{:.1}%", 100.0 * (unmatched / matched - 1.0)),
        ]);

        let n_f16 = spec.mismatch_factor(2);
        let matched16 = seconds(
            &SpecialConvF16::new(SpecialConfig {
                vec_width: n_f16 as usize,
                ..SpecialConfig::kepler_best()
            }),
            spec,
            &problem,
        );
        let unmatched16 = seconds(&SpecialConvF16::unmatched(), spec, &problem);
        rows.push(vec![
            spec.name.to_string(),
            "fp16".into(),
            n_f16.to_string(),
            format!("{:.3}", matched16 * 1e3),
            format!("{:.3}", unmatched16 * 1e3),
            format!("{:.1}%", 100.0 * (unmatched16 / matched16 - 1.0)),
        ]);

        let n_i8 = spec.mismatch_factor(1);
        let matched8 = seconds(
            &SpecialConvI8::new(SpecialConfig {
                vec_width: n_i8 as usize,
                ..SpecialConfig::kepler_best()
            }),
            spec,
            &problem,
        );
        let unmatched8 = seconds(&SpecialConvI8::unmatched(), spec, &problem);
        rows.push(vec![
            spec.name.to_string(),
            "int8".into(),
            n_i8.to_string(),
            format!("{:.3}", matched8 * 1e3),
            format!("{:.3}", unmatched8 * 1e3),
            format!("{:.1}%", 100.0 * (unmatched8 / matched8 - 1.0)),
        ]);
    }
    print_table(
        &[
            "architecture",
            "type",
            "n",
            "matched (ms)",
            "scalar (ms)",
            "scalar penalty",
        ],
        &rows,
    );
    println!(
        "\nThe penalty tracks n: where n = 1 the scalar kernel is already\n\
         matched (no penalty beyond instruction-count noise); the paper's\n\
         optimization is Kepler-specific for f32 but universal for fp16 —\n\
         exactly its section-6 argument."
    );
}

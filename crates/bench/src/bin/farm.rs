//! Replay farm harness: decode-once corpus replay over a spec grid.
//!
//! Captures the farm corpus (the paper's kernels across filter sizes,
//! layouts, algorithms and data types — see `kconv_bench::farm::corpus`),
//! decodes each KTRC trace once, and re-prices every trace under a
//! 16-spec Kepler-anchored what-if grid on a scoped thread pool. Checks:
//!
//! * replay under the capture spec reproduces each live launch bit for
//!   bit (stats + timing);
//! * the serial and threaded sweeps produce bit-identical cells in
//!   deterministic `(trace, spec, launch)` order;
//! * the decode-once path prices every cell exactly as the byte path
//!   that re-decodes the stream per spec.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin farm            # report
//!   cargo run --release -p kconv-bench --bin farm -- --check # exit 1 on FAIL
//!
//! Writes `BENCH_farm.json` to the workspace root either way.

fn main() {
    kconv_bench::reject_unknown_args("farm", &[("--check", false)]);
    let check = std::env::args().any(|a| a == "--check");
    let c = kconv_bench::farm::run(1);
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

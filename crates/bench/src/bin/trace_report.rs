//! Trace-level verification of the paper's analytical traffic claims.
//!
//! Runs the paper kernels with a [`TraceWriter`] attached, rolls the binary
//! traces into [`TraceSummary`]/[`EfficiencyReport`]s, and machine-checks
//! the measured traffic against the closed-form model of
//! `kconv_core::model`:
//!
//! 1. **Special-kernel optimality** (paper §3.2): useful GM load/store
//!    bytes equal the model exactly; no input word is read more than twice
//!    (interior once, vertical-halo rows twice), with the duplicate count
//!    and halo factor matching the tiling arithmetic.
//! 2. **General-kernel 1/K** (paper §4.2): useful GM load bytes equal the
//!    model exactly for K in {3, 5, 7} on the Fig. 8 layer set, and the
//!    traffic ratio against the GEMM-style model sits near 1/K.
//! 3. **Shared-memory layout** (paper §4.2): on the contiguous-vs-strided
//!    output-layout ablation, image pixels read from shared memory obey
//!    `contig / strided = (W_T + K - 1) / (W_T * K)` as an exact integer
//!    identity, with identical filter-fragment traffic.
//! 4. **Pipeline barriers**: the systolic kernel's depth-1 and depth-2
//!    captures record exactly `2R` vs `R + 1` barrier rounds per block,
//!    arrivals equal to the live `bar_syncs` counter, and the halving
//!    identity `(d2 - 1) * 2 == d1`.
//! 5. **Determinism**: the serial and `Threads(4)` traces of the same
//!    launch are byte-identical.
//! 6. **Zero observer effect**: traced and untraced runs produce
//!    bit-identical `KernelStats`.
//! 7. **Replay gate**: every captured trace re-priced under its own
//!    capture spec by `kconv-replay` reproduces the live `KernelStats`
//!    bit for bit; re-priced under Fermi/Maxwell (4-byte banks), the
//!    spec-independent facts (lane accesses, useful bytes) stay fixed,
//!    the `(W_T+K-1)/(W_T*K)` shared-memory saving survives both bank
//!    widths, and the synthetic Fig. 1 patterns show exactly the eq. 1
//!    mismatch factor.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin trace_report            # report
//!   cargo run --release -p kconv-bench --bin trace_report -- --check # exit 1 on FAIL
//!   cargo run ... -- --spec fermi   # also print replayed summaries under a preset
//!   cargo run ... -- --trace capture.ktrc   # replay an external KTRC file
//!
//! Every check prints a PASS/FAIL line; `--check` (the CI mode) turns any
//! FAIL into a nonzero exit. `--spec <preset>` (kepler, kepler-4b, fermi,
//! maxwell, or a full preset name) additionally re-prices every captured
//! trace under that architecture and prints the replayed summaries.
//! `--trace <path>` skips the suite and replays an external KTRC capture
//! instead (under `--spec` if given, else the embedded capture spec);
//! unknown presets, unreadable paths and malformed traces exit nonzero
//! with a one-line `error:` diagnostic rather than a panic.

use kconv_bench::fig8;
use kconv_core::model::{
    gemm_gm_load_bytes, general_gm_load_bytes, general_sm_reduction, general_vs_gemm_gm_ratio,
    special_gm_load_bytes, special_gm_store_bytes, special_halo_factor,
};
use kconv_core::{
    Convolution, GeneralConfig, GeneralConv, GeneralConvStrided, SpecialConfig, SpecialConv,
};
use kconv_replay::{replay, TargetSpec};
use kconv_sim::{
    Gpu, GpuSpec, KernelStats, LaneMask, OverlapMode, Parallelism, SanitizerMode, SimMode,
    TraceEvent, TraceLaunch, TraceOp, TraceSink, WARP_SIZE,
};
use kconv_systolic::{barrier_halving, PipelineConfig, SystolicConv};
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet};
use kconv_trace::{EfficiencyReport, KernelMeta, SharedBuffer, TraceSummary, TraceWriter};

/// One captured launch kept around for the replay checks: the live final
/// stats and the binary trace they were summed from.
struct NamedTrace {
    name: &'static str,
    stats: KernelStats,
    bytes: Vec<u8>,
}

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Running PASS/FAIL tally; every check prints one line.
#[derive(Default)]
struct Checker {
    checks: usize,
    failures: usize,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("  PASS {name}: {detail}");
        } else {
            self.failures += 1;
            println!("  FAIL {name}: {detail}");
        }
    }

    fn eq_u64(&mut self, name: &str, measured: u64, expected: u64) {
        self.check(
            name,
            measured == expected,
            &format!("measured {measured}, expected {expected}"),
        );
    }
}

/// Runs `conv` with a trace writer attached; returns the final stats and
/// the binary trace.
fn traced_run(
    conv: &dyn Convolution,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    parallelism: Parallelism,
) -> (KernelStats, Vec<u8>) {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(parallelism)
        .with_sanitizer(SanitizerMode::Off);
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = conv
        .run(&mut gpu, problem, input, filters, SimMode::Full)
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    gpu.set_trace_sink(None);
    (run.report.stats, buf.take())
}

fn untraced_run(
    conv: &dyn Convolution,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> KernelStats {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(Parallelism::Serial)
        .with_sanitizer(SanitizerMode::Off);
    conv.run(&mut gpu, problem, input, filters, SimMode::Full)
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()))
        .report
        .stats
}

/// §3.2 — the special kernel reads each interior input word exactly once.
fn check_special(c: &mut Checker, traces: &mut Vec<NamedTrace>) {
    let cfg = SpecialConfig::kepler_best();
    let problem = ConvProblem::special(130, 32, 3);
    let input = random_maps(1, 130, 130, 101);
    let filters = random_filters(32, 1, 3, 103);
    println!("\n[special] {problem}, {cfg}");

    let (stats, bytes) = traced_run(
        &SpecialConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let meta = KernelMeta {
        out_pixels: problem.out_pixels() as u64,
        sm_image_split: None,
    };
    let report = &EfficiencyReport::analyze(&bytes, &meta).expect("readable trace")[0];
    let s = &report.summary;
    println!(
        "  trace: {} blocks, {} events, {} B ({:.1} B/event)",
        s.blocks,
        s.events,
        bytes.len(),
        bytes.len() as f64 / s.events.max(1) as f64
    );
    println!(
        "  GM: {:.2} load B/px, {:.2} store B/px, {} transactions",
        report.gm_ld_bytes_per_out_pixel(),
        report.gm_st_bytes_per_out_pixel(),
        s.gm_transactions()
    );

    c.eq_u64(
        "gm.ld useful bytes == model",
        s.gm_ld_useful_bytes(),
        special_gm_load_bytes(&problem, &cfg),
    );
    c.eq_u64(
        "gm.st useful bytes == model",
        s.gm_st_useful_bytes(),
        special_gm_store_bytes(&problem, &cfg),
    );
    c.eq_u64(
        "trace GM totals == KernelStats",
        s.gm_ld_useful_bytes() + s.gm_st_useful_bytes(),
        stats.gm_ld_bytes_useful + stats.gm_st_bytes_useful,
    );

    // The padded input the kernel actually covers (the kernel's own
    // geometry, replicated): every word of it is read, none three times.
    let (tiles_x, tiles_y) = (
        problem.out_width().div_ceil(cfg.width),
        problem.out_height().div_ceil(cfg.height),
    );
    let row_len = cfg.width + problem.k - 1;
    let in_pitch = (tiles_x * cfg.width + problem.k - 1)
        .max((tiles_x - 1) * cfg.width + round_up(row_len, cfg.vec_width));
    let in_rows = tiles_y * cfg.height + problem.k - 1;
    let covered_words = (in_pitch * in_rows) as u64;
    c.eq_u64(
        "distinct input words read",
        report.gm_ld_distinct_words,
        covered_words,
    );
    // Vertical halo: the K-1 boundary rows between vertically adjacent
    // tiles are the only words read twice.
    let halo_words = ((tiles_y - 1) * (problem.k - 1) * in_pitch) as u64;
    c.eq_u64(
        "duplicate word reads == vertical halo",
        report.duplicate_word_reads(),
        halo_words,
    );
    c.check(
        "no word read more than twice",
        report.gm_ld_word_reads_max <= 2,
        &format!("max multiplicity {}", report.gm_ld_word_reads_max),
    );
    let measured_halo =
        s.gm_ld_useful_bytes() as f64 / (covered_words * kconv_trace::WORD_BYTES) as f64;
    let model_halo = special_halo_factor(&problem, &cfg);
    c.check(
        "halo factor == model",
        (measured_halo - model_halo).abs() < 1e-12,
        &format!("measured {measured_halo:.4}, model {model_halo:.4}"),
    );
    traces.push(NamedTrace {
        name: "special-3x3",
        stats,
        bytes,
    });
}

/// §4.2 — the general kernel's GM traffic equals the model and beats the
/// GEMM formulation by about 1/K, on the Fig. 8 layer set.
fn check_general_gm(c: &mut Checker, k: usize, traces: &mut Vec<NamedTrace>) {
    let cfg = GeneralConfig::table1(k);
    let (problem, input, filters) = if k == 3 {
        fig8::workload()
    } else {
        let problem = ConvProblem::general(64 + k - 1, 64, 64, k);
        let input = random_maps(
            problem.channels,
            problem.height,
            problem.width,
            fig8::INPUT_SEED,
        );
        let filters = random_filters(
            problem.filters,
            problem.channels,
            problem.k,
            fig8::FILTER_SEED,
        );
        (problem, input, filters)
    };
    println!("\n[general {k}x{k}] {problem}, {cfg}");

    let (stats, bytes) = traced_run(
        &GeneralConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let s = &TraceSummary::from_bytes(&bytes).expect("readable trace")[0];
    println!(
        "  trace: {} blocks, {} events, {} B",
        s.blocks,
        s.events,
        bytes.len()
    );
    println!(
        "  GM: {:.2} load B/px, sm cycles/FMA {:.4}",
        s.gm_ld_useful_bytes() as f64 / problem.out_pixels() as f64,
        s.sm_cycles_per_fma().unwrap_or(0.0)
    );

    c.eq_u64(
        &format!("K={k}: gm.ld useful bytes == model"),
        s.gm_ld_useful_bytes(),
        general_gm_load_bytes(&problem, &cfg),
    );
    c.eq_u64(
        &format!("K={k}: trace gm.ld == KernelStats"),
        s.gm_ld_useful_bytes(),
        stats.gm_ld_bytes_useful,
    );
    let ratio = s.gm_ld_useful_bytes() as f64
        / gemm_gm_load_bytes(&problem, cfg.width * cfg.height, cfg.f_tb) as f64;
    let model_ratio = general_vs_gemm_gm_ratio(&problem, &cfg);
    c.check(
        &format!("K={k}: measured ratio == model ratio"),
        (ratio - model_ratio).abs() < 1e-12,
        &format!("measured {ratio:.4}, model {model_ratio:.4}"),
    );
    c.check(
        &format!("K={k}: GM ratio vs GEMM near 1/K"),
        ratio > 0.2 / k as f64 && ratio < 2.5 / k as f64,
        &format!("ratio {ratio:.4}, 1/K = {:.4}", 1.0 / k as f64),
    );
    traces.push(NamedTrace {
        name: match k {
            3 => "general-3x3",
            5 => "general-5x5",
            _ => "general-7x7",
        },
        stats,
        bytes,
    });
}

/// §4.2 — contiguous vs strided output layout: the shared-memory image
/// traffic obeys (W_T + K - 1)/(W_T * K) as an exact integer identity.
fn check_sm_layout(c: &mut Checker, traces: &mut Vec<NamedTrace>) {
    let k = 3;
    let cfg = GeneralConfig::table1_3x3();
    let problem = ConvProblem::general(34, 4, 64, k);
    let input = random_maps(problem.channels, 34, 34, 29);
    let filters = random_filters(problem.filters, problem.channels, k, 31);
    println!("\n[sm layout] {problem}, contiguous vs strided outputs");

    // The block's shared-memory layout: image slab below, transposed
    // filters above (same formula as the kernels).
    let slab_rows = cfg.height + k - 1;
    let flt_base = (cfg.c_sh * slab_rows * cfg.img_pitch(k) * 4) as u64;
    let meta = KernelMeta {
        out_pixels: problem.out_pixels() as u64,
        sm_image_split: Some(flt_base),
    };

    let (contig_stats, contig_bytes) = traced_run(
        &GeneralConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let (strided_stats, strided_bytes) = traced_run(
        &GeneralConvStrided::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let contig = &EfficiencyReport::analyze(&contig_bytes, &meta).expect("readable trace")[0];
    let strided = &EfficiencyReport::analyze(&strided_bytes, &meta).expect("readable trace")[0];

    // Lane reads -> pixels: the contiguous kernel reads vec_width pixels
    // per lane access, the strided ablation is scalar by construction.
    let contig_px = contig.sm_image_lane_reads * cfg.vec_width as u64;
    let strided_px = strided.sm_image_lane_reads;
    println!(
        "  image pixels from SM: contiguous {contig_px}, strided {strided_px} (ratio {:.4})",
        contig_px as f64 / strided_px as f64
    );
    println!(
        "  SM conflict histogram (contig):  {:?}",
        contig.summary.sm_conflict_histogram
    );
    println!(
        "  SM conflict histogram (strided): {:?}",
        strided.summary.sm_conflict_histogram
    );

    // Expected absolute counts: every thread refills its row window
    // (W_T + K - 1 pixels, vectorized) K times per channel vs one scalar
    // K-window per output pixel (W_T * K); all C channels, all blocks.
    let blocks = (problem.filters / cfg.f_tb)
        * problem.out_width().div_ceil(cfg.width)
        * problem.out_height().div_ceil(cfg.height);
    let per_thread_contig = round_up(cfg.w_t + k - 1, cfg.vec_width);
    let expect_contig = (problem.channels * k * per_thread_contig * cfg.threads() * blocks) as u64;
    let expect_strided = (problem.channels * k * cfg.w_t * k * cfg.threads() * blocks) as u64;
    c.eq_u64("contiguous image pixels", contig_px, expect_contig);
    c.eq_u64("strided image pixels", strided_px, expect_strided);
    // The paper's reduction as an exact cross-multiplication (here the
    // vector window W_T + K - 1 = 18 needs no alignment padding, so the
    // identity is exact, not approximate).
    c.check(
        "contig/strided == (W_T+K-1)/(W_T*K)",
        contig_px * (cfg.w_t * k) as u64 == strided_px * (cfg.w_t + k - 1) as u64,
        &format!(
            "{contig_px} * {} == {strided_px} * {} (model {:.4})",
            cfg.w_t * k,
            cfg.w_t + k - 1,
            general_sm_reduction(&cfg, k)
        ),
    );
    c.eq_u64(
        "filter-fragment SM reads identical",
        contig.sm_filter_lane_reads,
        strided.sm_filter_lane_reads,
    );
    traces.push(NamedTrace {
        name: "general-3x3-contig",
        stats: contig_stats,
        bytes: contig_bytes,
    });
    traces.push(NamedTrace {
        name: "general-3x3-strided",
        stats: strided_stats,
        bytes: strided_bytes,
    });
}

/// Pipeline barrier accounting: the systolic kernel's depth-1 and depth-2
/// schedules compared at trace level. Every block records exactly `2R`
/// barrier rounds at depth 1 and `R + 1` double-buffered (uniform across
/// blocks), the per-warp arrival events in the trace sum to the live
/// `bar_syncs` counter, the `EfficiencyReport` accessors agree with the
/// underlying `TraceSummary`, and the per-block counts satisfy the
/// halving identity `(d2 - 1) * 2 == d1`.
fn check_barriers(c: &mut Checker, traces: &mut Vec<NamedTrace>) {
    let problem = ConvProblem::general(34, 8, 8, 3).with_stride(2);
    let input = random_maps(problem.channels, problem.height, problem.width, 41);
    let filters = random_filters(problem.filters, problem.channels, problem.k, 43);
    let base = PipelineConfig::matched_for(&GpuSpec::kepler_k40m());
    let rounds = base.rounds(&problem) as u64;
    let warps = (base.tile_w as u64).div_ceil(WARP_SIZE as u64);
    println!("\n[barriers] systolic {problem}, depth 1 vs depth 2, R = {rounds}");

    let mut per_block = [0u64; 2];
    for (i, depth) in [1usize, 2].into_iter().enumerate() {
        let conv = SystolicConv::new(base.with_depth(depth));
        let (stats, bytes) = traced_run(&conv, &problem, &input, &filters, Parallelism::Serial);
        let s = &TraceSummary::from_bytes(&bytes).expect("readable trace")[0];
        let meta = KernelMeta {
            out_pixels: problem.out_pixels() as u64,
            sm_image_split: None,
        };
        let report = &EfficiencyReport::analyze(&bytes, &meta).expect("readable trace")[0];
        c.check(
            &format!("d{depth}: per-block barrier counts uniform"),
            s.block_bar_min == s.block_bar_max,
            &format!("[{}, {}] warp arrivals", s.block_bar_min, s.block_bar_max),
        );
        c.eq_u64(
            &format!("d{depth}: trace bar arrivals == live bar_syncs"),
            s.bar_arrivals(),
            stats.bar_syncs,
        );
        c.check(
            &format!("d{depth}: EfficiencyReport mirrors the summary"),
            report.bar_arrivals() == s.bar_arrivals()
                && report.block_bar_range() == (s.block_bar_min, s.block_bar_max),
            "bar_arrivals + block_bar_range",
        );
        per_block[i] = s.block_bar_max / warps;
        c.eq_u64(
            &format!("d{depth}: barriers per block match the schedule"),
            per_block[i],
            if depth == 1 { 2 * rounds } else { rounds + 1 },
        );
        traces.push(NamedTrace {
            name: if depth == 1 {
                "systolic-3x3-d1"
            } else {
                "systolic-3x3-d2"
            },
            stats,
            bytes,
        });
    }
    c.check(
        "depth 2 halves the barrier rounds",
        barrier_halving(per_block[0], per_block[1]),
        &format!("(d2 {} - 1) * 2 == d1 {}", per_block[1], per_block[0]),
    );
}

/// Serial and threaded captures of the same launch must be byte-identical,
/// and tracing must not perturb the simulation.
fn check_determinism(c: &mut Checker, traces: &[NamedTrace]) {
    let serial = traces
        .iter()
        .find(|t| t.name == "general-3x3")
        .expect("K=3 general trace captured");
    let (problem, input, filters) = fig8::workload();
    let conv = fig8::conv();
    println!("\n[determinism] {problem}, serial vs Threads(4), traced vs untraced");

    let (par_stats, par_bytes) =
        traced_run(&conv, &problem, &input, &filters, Parallelism::Threads(4));
    c.check(
        "serial and threaded traces byte-identical",
        serial.bytes == par_bytes,
        &format!("{} B each", serial.bytes.len()),
    );
    c.check(
        "serial and threaded stats bit-identical",
        serial.stats == par_stats,
        "KernelStats compared field-wise",
    );
    let untraced = untraced_run(&conv, &problem, &input, &filters);
    c.check(
        "tracing does not change KernelStats",
        serial.stats == untraced,
        "traced vs untraced serial run",
    );
}

/// Replay gate: every capture re-priced under its own spec reproduces the
/// live counters bit for bit; under 4-byte-bank specs the trace facts stay
/// fixed and the paper's shared-memory saving survives the bank width.
fn check_replay(c: &mut Checker, traces: &[NamedTrace]) {
    println!(
        "\n[replay] {} captures re-priced by kconv-replay",
        traces.len()
    );
    for t in traces {
        let r = &replay(&t.bytes, &TargetSpec::Capture).expect("replayable capture")[0];
        c.check(
            &format!("{}: replay(capture spec) == live KernelStats", t.name),
            r.stats == t.stats,
            "all counters + histogram, bit-exact",
        );
        for alias in ["fermi", "maxwell"] {
            let spec = GpuSpec::preset(alias).expect("known preset");
            let other = &replay(&t.bytes, &TargetSpec::Spec(spec)).expect("replayable capture")[0];
            let facts_fixed = TraceOp::ALL.iter().all(|&op| {
                r.op(op).lane_accesses == other.op(op).lane_accesses
                    && r.op(op).useful_bytes == other.op(op).useful_bytes
            });
            c.check(
                &format!("{}: trace facts invariant under {alias}", t.name),
                facts_fixed,
                "per-op lane accesses and useful bytes unchanged",
            );
        }
    }
    // The §4.2 layout saving is architectural, not a bank-width artifact:
    // the contiguous kernel's replayed SM load cycles beat the strided
    // ablation's on 8-byte *and* 4-byte banks.
    let contig = traces
        .iter()
        .find(|t| t.name == "general-3x3-contig")
        .expect("contiguous layout trace captured");
    let strided = traces
        .iter()
        .find(|t| t.name == "general-3x3-strided")
        .expect("strided layout trace captured");
    for alias in ["kepler", "fermi"] {
        let spec = GpuSpec::preset(alias).expect("known preset");
        let rc = &replay(&contig.bytes, &TargetSpec::Spec(spec.clone())).expect("replays")[0];
        let rs = &replay(&strided.bytes, &TargetSpec::Spec(spec)).expect("replays")[0];
        c.check(
            &format!("layout saving survives {alias} banks"),
            rc.op(TraceOp::SmLd).cycles < rs.op(TraceOp::SmLd).cycles,
            &format!(
                "contig {} < strided {} SM load cycles",
                rc.op(TraceOp::SmLd).cycles,
                rs.op(TraceOp::SmLd).cycles
            ),
        );
    }
}

/// Builds a synthetic one-block trace of full-mask shared-memory loads
/// with the given per-lane width and byte stride — the paper's Fig. 1
/// access patterns distilled to their addresses.
fn sm_pattern_trace(name: &str, lane_bytes: u32, stride: u64, events: usize) -> Vec<u8> {
    let spec = GpuSpec::kepler_k40m();
    let buf = SharedBuffer::new();
    let mut w = TraceWriter::new(buf.clone());
    w.launch_begin(&TraceLaunch {
        kernel: name,
        grid_blocks: 1,
        executed_blocks: 1,
        threads_per_block: 256,
        smem_bytes: 4096,
        regs_per_thread: 32,
        overlap: OverlapMode::Prefetch,
        spec: &spec,
    });
    let evs: Vec<TraceEvent> = (0..events)
        .map(|_| {
            let mut addrs = [0u64; WARP_SIZE];
            for (lane, a) in addrs.iter_mut().enumerate() {
                *a = lane as u64 * stride;
            }
            TraceEvent {
                op: TraceOp::SmLd,
                warp: 0,
                mask: LaneMask::ALL,
                lane_bytes,
                transactions: 0,
                cycles: 1,
                addrs,
            }
        })
        .collect();
    w.block_events(0, &evs);
    w.launch_end(&KernelStats::default());
    buf.take()
}

/// Eq. 1 on synthetic Fig. 1 patterns: unvectorized `float` loads waste
/// exactly the mismatch factor on 8-byte banks and nothing on 4-byte
/// banks; the `float2` pattern is matched on both, at 2x the cycles on
/// the narrow banks.
fn check_replay_patterns(c: &mut Checker) {
    println!("\n[replay patterns] full-warp SmLd, synthetic Fig. 1 strides");
    let b8 = TargetSpec::Spec(GpuSpec::kepler_k40m());
    let b4 = TargetSpec::Spec(GpuSpec::kepler_k40m_4b());
    let float_trace = sm_pattern_trace("float-stride4", 4, 4, 10);
    let float2_trace = sm_pattern_trace("float2-stride8", 8, 8, 10);
    let f_b8 = &replay(&float_trace, &b8).expect("pattern replays")[0];
    let f_b4 = &replay(&float_trace, &b4).expect("pattern replays")[0];
    let v_b8 = &replay(&float2_trace, &b8).expect("pattern replays")[0];
    let v_b4 = &replay(&float2_trace, &b4).expect("pattern replays")[0];
    let n = GpuSpec::kepler_k40m().mismatch_factor(4) as f64;
    c.check(
        "float pattern wastes n = W_SMB/W_CD on 8B banks",
        f_b8.sm_waste() == n,
        &format!("waste {} vs n = {n}", f_b8.sm_waste()),
    );
    c.check(
        "float pattern waste vanishes on 4B banks",
        f_b4.sm_waste() == 1.0,
        &format!("waste {}", f_b4.sm_waste()),
    );
    c.check(
        "float2 pattern matched on both bank widths",
        v_b8.sm_waste() == 1.0 && v_b4.sm_waste() == 1.0,
        &format!("waste {} / {}", v_b8.sm_waste(), v_b4.sm_waste()),
    );
    c.eq_u64(
        "float2 pattern: 4B-bank cycles exactly n x 8B-bank cycles",
        v_b4.sm_cycles(),
        n as u64 * v_b8.sm_cycles(),
    );
}

/// `--spec <preset>`: re-price every capture under the chosen target and
/// print the replayed summaries.
fn print_replayed(spec: &GpuSpec, traces: &[NamedTrace]) {
    println!("\n[--spec] captures re-priced under {}", spec.name);
    println!(
        "  {:<20} {:>12} {:>9} {:>12} {:>10}  bottleneck",
        "kernel", "sm cycles", "waste", "gm txns", "t (ms)"
    );
    for t in traces {
        let r = &replay(&t.bytes, &TargetSpec::Spec(spec.clone())).expect("replayable capture")[0];
        println!(
            "  {:<20} {:>12} {:>9.3} {:>12} {:>10}  {}",
            t.name,
            r.sm_cycles(),
            r.sm_waste(),
            r.gm_transactions(),
            r.timing
                .map_or("n/a".into(), |t| format!("{:.3}", t.t_total * 1e3)),
            r.timing.map_or_else(
                || r.timing_error.clone().unwrap_or_default(),
                |t| t.bottleneck().to_string()
            ),
        );
    }
}

/// `--trace <path>`: replay an external KTRC capture and print one summary
/// row per launch. Unreadable paths and malformed byte streams produce a
/// one-line `error:` and a nonzero exit — external files are untrusted
/// input, not an invariant violation worth a backtrace.
fn replay_external(path: &str, spec: Option<&GpuSpec>) -> ! {
    let bytes = std::fs::read(path)
        .unwrap_or_else(|e| kconv_bench::bail(&format!("cannot read trace {path:?}: {e}")));
    let target = spec.map_or(TargetSpec::Capture, |s| TargetSpec::Spec(s.clone()));
    let reports = replay(&bytes, &target)
        .unwrap_or_else(|e| kconv_bench::bail(&format!("malformed KTRC trace {path:?}: {e}")));
    println!(
        "[--trace] {path}: {} B, {} launch(es), priced under {}",
        bytes.len(),
        reports.len(),
        spec.map_or("capture spec", |s| s.name),
    );
    println!(
        "  {:<4} {:>12} {:>9} {:>12} {:>10}  bottleneck",
        "#", "sm cycles", "waste", "gm txns", "t (ms)"
    );
    for (i, r) in reports.iter().enumerate() {
        println!(
            "  {:<4} {:>12} {:>9.3} {:>12} {:>10}  {}",
            i,
            r.sm_cycles(),
            r.sm_waste(),
            r.gm_transactions(),
            r.timing
                .map_or("n/a".into(), |t| format!("{:.3}", t.t_total * 1e3)),
            r.timing.map_or_else(
                || r.timing_error.clone().unwrap_or_default(),
                |t| t.bottleneck().to_string()
            ),
        );
    }
    std::process::exit(0)
}

fn main() {
    kconv_bench::reject_unknown_args(
        "trace_report",
        &[("--check", false), ("--spec", true), ("--trace", true)],
    );
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let target = args.iter().position(|a| a == "--spec").map(|i| {
        let alias = args.get(i + 1).unwrap_or_else(|| {
            kconv_bench::bail("--spec needs a preset name (kepler, kepler-4b, fermi, maxwell)")
        });
        GpuSpec::preset(alias).unwrap_or_else(|| {
            kconv_bench::bail(&format!(
                "unknown spec preset {alias:?} (try kepler, kepler-4b, fermi, maxwell)"
            ))
        })
    });
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| kconv_bench::bail("--trace needs a path to a KTRC file"));
        replay_external(path, target.as_ref());
    }
    println!(
        "trace_report — measured traffic vs the paper's analytical model, on simulated {}",
        GpuSpec::kepler_k40m()
    );

    let mut c = Checker::default();
    let mut traces = Vec::new();
    check_special(&mut c, &mut traces);
    for k in [3, 5, 7] {
        check_general_gm(&mut c, k, &mut traces);
    }
    check_sm_layout(&mut c, &mut traces);
    check_barriers(&mut c, &mut traces);
    check_determinism(&mut c, &traces);
    check_replay(&mut c, &traces);
    check_replay_patterns(&mut c);
    if let Some(spec) = &target {
        print_replayed(spec, &traces);
    }

    println!(
        "\n{}/{} checks passed{}",
        c.checks - c.failures,
        c.checks,
        if c.failures > 0 {
            " — FAILURES ABOVE"
        } else {
            ""
        }
    );
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

//! Trace-level verification of the paper's analytical traffic claims.
//!
//! Runs the paper kernels with a [`TraceWriter`] attached, rolls the binary
//! traces into [`TraceSummary`]/[`EfficiencyReport`]s, and machine-checks
//! the measured traffic against the closed-form model of
//! `kconv_core::model`:
//!
//! 1. **Special-kernel optimality** (paper §3.2): useful GM load/store
//!    bytes equal the model exactly; no input word is read more than twice
//!    (interior once, vertical-halo rows twice), with the duplicate count
//!    and halo factor matching the tiling arithmetic.
//! 2. **General-kernel 1/K** (paper §4.2): useful GM load bytes equal the
//!    model exactly for K in {3, 5, 7} on the Fig. 8 layer set, and the
//!    traffic ratio against the GEMM-style model sits near 1/K.
//! 3. **Shared-memory layout** (paper §4.2): on the contiguous-vs-strided
//!    output-layout ablation, image pixels read from shared memory obey
//!    `contig / strided = (W_T + K - 1) / (W_T * K)` as an exact integer
//!    identity, with identical filter-fragment traffic.
//! 4. **Determinism**: the serial and `Threads(4)` traces of the same
//!    launch are byte-identical.
//! 5. **Zero observer effect**: traced and untraced runs produce
//!    bit-identical `KernelStats`.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin trace_report            # report
//!   cargo run --release -p kconv-bench --bin trace_report -- --check # exit 1 on FAIL
//!
//! Every check prints a PASS/FAIL line; `--check` (the CI mode) turns any
//! FAIL into a nonzero exit.

use kconv_bench::fig8;
use kconv_core::model::{
    gemm_gm_load_bytes, general_gm_load_bytes, general_sm_reduction, general_vs_gemm_gm_ratio,
    special_gm_load_bytes, special_gm_store_bytes, special_halo_factor,
};
use kconv_core::{
    Convolution, GeneralConfig, GeneralConv, GeneralConvStrided, SpecialConfig, SpecialConv,
};
use kconv_sim::{Gpu, GpuSpec, KernelStats, Parallelism, SanitizerMode, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem, FeatureMaps, FilterSet};
use kconv_trace::{EfficiencyReport, KernelMeta, SharedBuffer, TraceSummary, TraceWriter};

fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Running PASS/FAIL tally; every check prints one line.
#[derive(Default)]
struct Checker {
    checks: usize,
    failures: usize,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("  PASS {name}: {detail}");
        } else {
            self.failures += 1;
            println!("  FAIL {name}: {detail}");
        }
    }

    fn eq_u64(&mut self, name: &str, measured: u64, expected: u64) {
        self.check(
            name,
            measured == expected,
            &format!("measured {measured}, expected {expected}"),
        );
    }
}

/// Runs `conv` with a trace writer attached; returns the final stats and
/// the binary trace.
fn traced_run(
    conv: &dyn Convolution,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
    parallelism: Parallelism,
) -> (KernelStats, Vec<u8>) {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(parallelism)
        .with_sanitizer(SanitizerMode::Off);
    let buf = SharedBuffer::new();
    gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
    let run = conv
        .run(&mut gpu, problem, input, filters, SimMode::Full)
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()));
    gpu.set_trace_sink(None);
    (run.report.stats, buf.take())
}

fn untraced_run(
    conv: &dyn Convolution,
    problem: &ConvProblem,
    input: &FeatureMaps,
    filters: &FilterSet,
) -> KernelStats {
    let mut gpu = Gpu::new(GpuSpec::kepler_k40m())
        .with_parallelism(Parallelism::Serial)
        .with_sanitizer(SanitizerMode::Off);
    conv.run(&mut gpu, problem, input, filters, SimMode::Full)
        .unwrap_or_else(|e| panic!("{}: {e}", conv.name()))
        .report
        .stats
}

/// §3.2 — the special kernel reads each interior input word exactly once.
fn check_special(c: &mut Checker) {
    let cfg = SpecialConfig::kepler_best();
    let problem = ConvProblem::special(130, 32, 3);
    let input = random_maps(1, 130, 130, 101);
    let filters = random_filters(32, 1, 3, 103);
    println!("\n[special] {problem}, {cfg}");

    let (stats, bytes) = traced_run(
        &SpecialConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let meta = KernelMeta {
        out_pixels: problem.out_pixels() as u64,
        sm_image_split: None,
    };
    let report = &EfficiencyReport::analyze(&bytes, &meta).expect("readable trace")[0];
    let s = &report.summary;
    println!(
        "  trace: {} blocks, {} events, {} B ({:.1} B/event)",
        s.blocks,
        s.events,
        bytes.len(),
        bytes.len() as f64 / s.events.max(1) as f64
    );
    println!(
        "  GM: {:.2} load B/px, {:.2} store B/px, {} transactions",
        report.gm_ld_bytes_per_out_pixel(),
        report.gm_st_bytes_per_out_pixel(),
        s.gm_transactions()
    );

    c.eq_u64(
        "gm.ld useful bytes == model",
        s.gm_ld_useful_bytes(),
        special_gm_load_bytes(&problem, &cfg),
    );
    c.eq_u64(
        "gm.st useful bytes == model",
        s.gm_st_useful_bytes(),
        special_gm_store_bytes(&problem, &cfg),
    );
    c.eq_u64(
        "trace GM totals == KernelStats",
        s.gm_ld_useful_bytes() + s.gm_st_useful_bytes(),
        stats.gm_ld_bytes_useful + stats.gm_st_bytes_useful,
    );

    // The padded input the kernel actually covers (the kernel's own
    // geometry, replicated): every word of it is read, none three times.
    let (tiles_x, tiles_y) = (
        problem.out_width().div_ceil(cfg.width),
        problem.out_height().div_ceil(cfg.height),
    );
    let row_len = cfg.width + problem.k - 1;
    let in_pitch = (tiles_x * cfg.width + problem.k - 1)
        .max((tiles_x - 1) * cfg.width + round_up(row_len, cfg.vec_width));
    let in_rows = tiles_y * cfg.height + problem.k - 1;
    let covered_words = (in_pitch * in_rows) as u64;
    c.eq_u64(
        "distinct input words read",
        report.gm_ld_distinct_words,
        covered_words,
    );
    // Vertical halo: the K-1 boundary rows between vertically adjacent
    // tiles are the only words read twice.
    let halo_words = ((tiles_y - 1) * (problem.k - 1) * in_pitch) as u64;
    c.eq_u64(
        "duplicate word reads == vertical halo",
        report.duplicate_word_reads(),
        halo_words,
    );
    c.check(
        "no word read more than twice",
        report.gm_ld_word_reads_max <= 2,
        &format!("max multiplicity {}", report.gm_ld_word_reads_max),
    );
    let measured_halo =
        s.gm_ld_useful_bytes() as f64 / (covered_words * kconv_trace::WORD_BYTES) as f64;
    let model_halo = special_halo_factor(&problem, &cfg);
    c.check(
        "halo factor == model",
        (measured_halo - model_halo).abs() < 1e-12,
        &format!("measured {measured_halo:.4}, model {model_halo:.4}"),
    );
}

/// §4.2 — the general kernel's GM traffic equals the model and beats the
/// GEMM formulation by about 1/K, on the Fig. 8 layer set.
fn check_general_gm(c: &mut Checker, k: usize) -> Option<(KernelStats, Vec<u8>)> {
    let cfg = GeneralConfig::table1(k);
    let (problem, input, filters) = if k == 3 {
        fig8::workload()
    } else {
        let problem = ConvProblem::general(64 + k - 1, 64, 64, k);
        let input = random_maps(
            problem.channels,
            problem.height,
            problem.width,
            fig8::INPUT_SEED,
        );
        let filters = random_filters(
            problem.filters,
            problem.channels,
            problem.k,
            fig8::FILTER_SEED,
        );
        (problem, input, filters)
    };
    println!("\n[general {k}x{k}] {problem}, {cfg}");

    let (stats, bytes) = traced_run(
        &GeneralConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let s = &TraceSummary::from_bytes(&bytes).expect("readable trace")[0];
    println!(
        "  trace: {} blocks, {} events, {} B",
        s.blocks,
        s.events,
        bytes.len()
    );
    println!(
        "  GM: {:.2} load B/px, sm cycles/FMA {:.4}",
        s.gm_ld_useful_bytes() as f64 / problem.out_pixels() as f64,
        s.sm_cycles_per_fma().unwrap_or(0.0)
    );

    c.eq_u64(
        &format!("K={k}: gm.ld useful bytes == model"),
        s.gm_ld_useful_bytes(),
        general_gm_load_bytes(&problem, &cfg),
    );
    c.eq_u64(
        &format!("K={k}: trace gm.ld == KernelStats"),
        s.gm_ld_useful_bytes(),
        stats.gm_ld_bytes_useful,
    );
    let ratio = s.gm_ld_useful_bytes() as f64
        / gemm_gm_load_bytes(&problem, cfg.width * cfg.height, cfg.f_tb) as f64;
    let model_ratio = general_vs_gemm_gm_ratio(&problem, &cfg);
    c.check(
        &format!("K={k}: measured ratio == model ratio"),
        (ratio - model_ratio).abs() < 1e-12,
        &format!("measured {ratio:.4}, model {model_ratio:.4}"),
    );
    c.check(
        &format!("K={k}: GM ratio vs GEMM near 1/K"),
        ratio > 0.2 / k as f64 && ratio < 2.5 / k as f64,
        &format!("ratio {ratio:.4}, 1/K = {:.4}", 1.0 / k as f64),
    );
    (k == 3).then_some((stats, bytes))
}

/// §4.2 — contiguous vs strided output layout: the shared-memory image
/// traffic obeys (W_T + K - 1)/(W_T * K) as an exact integer identity.
fn check_sm_layout(c: &mut Checker) {
    let k = 3;
    let cfg = GeneralConfig::table1_3x3();
    let problem = ConvProblem::general(34, 4, 64, k);
    let input = random_maps(problem.channels, 34, 34, 29);
    let filters = random_filters(problem.filters, problem.channels, k, 31);
    println!("\n[sm layout] {problem}, contiguous vs strided outputs");

    // The block's shared-memory layout: image slab below, transposed
    // filters above (same formula as the kernels).
    let slab_rows = cfg.height + k - 1;
    let flt_base = (cfg.c_sh * slab_rows * cfg.img_pitch(k) * 4) as u64;
    let meta = KernelMeta {
        out_pixels: problem.out_pixels() as u64,
        sm_image_split: Some(flt_base),
    };

    let (_, contig_bytes) = traced_run(
        &GeneralConv::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let (_, strided_bytes) = traced_run(
        &GeneralConvStrided::new(cfg),
        &problem,
        &input,
        &filters,
        Parallelism::Serial,
    );
    let contig = &EfficiencyReport::analyze(&contig_bytes, &meta).expect("readable trace")[0];
    let strided = &EfficiencyReport::analyze(&strided_bytes, &meta).expect("readable trace")[0];

    // Lane reads -> pixels: the contiguous kernel reads vec_width pixels
    // per lane access, the strided ablation is scalar by construction.
    let contig_px = contig.sm_image_lane_reads * cfg.vec_width as u64;
    let strided_px = strided.sm_image_lane_reads;
    println!(
        "  image pixels from SM: contiguous {contig_px}, strided {strided_px} (ratio {:.4})",
        contig_px as f64 / strided_px as f64
    );
    println!(
        "  SM conflict histogram (contig):  {:?}",
        contig.summary.sm_conflict_histogram
    );
    println!(
        "  SM conflict histogram (strided): {:?}",
        strided.summary.sm_conflict_histogram
    );

    // Expected absolute counts: every thread refills its row window
    // (W_T + K - 1 pixels, vectorized) K times per channel vs one scalar
    // K-window per output pixel (W_T * K); all C channels, all blocks.
    let blocks = (problem.filters / cfg.f_tb)
        * problem.out_width().div_ceil(cfg.width)
        * problem.out_height().div_ceil(cfg.height);
    let per_thread_contig = round_up(cfg.w_t + k - 1, cfg.vec_width);
    let expect_contig = (problem.channels * k * per_thread_contig * cfg.threads() * blocks) as u64;
    let expect_strided = (problem.channels * k * cfg.w_t * k * cfg.threads() * blocks) as u64;
    c.eq_u64("contiguous image pixels", contig_px, expect_contig);
    c.eq_u64("strided image pixels", strided_px, expect_strided);
    // The paper's reduction as an exact cross-multiplication (here the
    // vector window W_T + K - 1 = 18 needs no alignment padding, so the
    // identity is exact, not approximate).
    c.check(
        "contig/strided == (W_T+K-1)/(W_T*K)",
        contig_px * (cfg.w_t * k) as u64 == strided_px * (cfg.w_t + k - 1) as u64,
        &format!(
            "{contig_px} * {} == {strided_px} * {} (model {:.4})",
            cfg.w_t * k,
            cfg.w_t + k - 1,
            general_sm_reduction(&cfg, k)
        ),
    );
    c.eq_u64(
        "filter-fragment SM reads identical",
        contig.sm_filter_lane_reads,
        strided.sm_filter_lane_reads,
    );
}

/// Serial and threaded captures of the same launch must be byte-identical,
/// and tracing must not perturb the simulation.
fn check_determinism(c: &mut Checker, serial: &(KernelStats, Vec<u8>)) {
    let (problem, input, filters) = fig8::workload();
    let conv = fig8::conv();
    println!("\n[determinism] {problem}, serial vs Threads(4), traced vs untraced");

    let (par_stats, par_bytes) =
        traced_run(&conv, &problem, &input, &filters, Parallelism::Threads(4));
    c.check(
        "serial and threaded traces byte-identical",
        serial.1 == par_bytes,
        &format!("{} B each", serial.1.len()),
    );
    c.check(
        "serial and threaded stats bit-identical",
        serial.0 == par_stats,
        "KernelStats compared field-wise",
    );
    let untraced = untraced_run(&conv, &problem, &input, &filters);
    c.check(
        "tracing does not change KernelStats",
        serial.0 == untraced,
        "traced vs untraced serial run",
    );
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!(
        "trace_report — measured traffic vs the paper's analytical model, on simulated {}",
        GpuSpec::kepler_k40m()
    );

    let mut c = Checker::default();
    check_special(&mut c);
    let mut fig8_trace = None;
    for k in [3, 5, 7] {
        if let Some(t) = check_general_gm(&mut c, k) {
            fig8_trace = Some(t);
        }
    }
    check_sm_layout(&mut c);
    check_determinism(&mut c, &fig8_trace.expect("K=3 ran"));

    println!(
        "\n{}/{} checks passed{}",
        c.checks - c.failures,
        c.checks,
        if c.failures > 0 {
            " — FAILURES ABOVE"
        } else {
            ""
        }
    );
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

//! Serving chaos harness: mixed Table-1 workload through the resilient
//! serving layer, chaos off vs. on, with invariant checks.
//!
//! Proves the resilience policies on a seeded chaos plan (device faults,
//! latency spikes, malformed requests): every request reaches exactly one
//! terminal state, clean requests are bit-identical chaos-on vs. off, the
//! circuit breaker trips and recovers, poisoned batches re-enqueue their
//! batchmates, and admission control sheds bursts with typed errors.
//!
//! Usage:
//!   cargo run --release -p kconv-bench --bin serve            # report
//!   cargo run --release -p kconv-bench --bin serve -- --check # exit 1 on FAIL
//!
//! Writes `BENCH_serve.json` to the workspace root either way.

fn main() {
    kconv_bench::reject_unknown_args("serve", &[("--check", false)]);
    let check = std::env::args().any(|a| a == "--check");
    let c = kconv_bench::serve::run(1);
    if check && c.failures > 0 {
        std::process::exit(1);
    }
}

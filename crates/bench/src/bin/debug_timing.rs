//! Developer utility: per-component timing breakdown of each convolution
//! engine on one problem. Not part of the paper's artifacts.
use kconv_core::{Convolution, GeneralConv, ImplicitGemmConv};
use kconv_sim::{Gpu, GpuSpec, Parallelism, SimMode};
use kconv_tensor::{random_filters, random_maps, ConvProblem};

fn main() {
    let k = 3;
    let problem = ConvProblem::general(64 + k - 1, 64, 64, k);
    let input = random_maps(problem.channels, problem.height, problem.width, 1);
    let filters = random_filters(problem.filters, problem.channels, k, 2);
    let engines: Vec<Box<dyn Convolution>> = vec![
        Box::new(GeneralConv::table1(k)),
        Box::new(ImplicitGemmConv::default()),
    ];
    for e in engines {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::env_or_auto());
        let run = e
            .run(&mut gpu, &problem, &input, &filters, SimMode::Sampled(2))
            .unwrap();
        let t = &run.report.timing;
        println!("{}:", e.name());
        println!(
            "  blocks={} occ={:?}",
            run.report.stats.blocks_total, t.occupancy
        );
        println!("  compute={:.3}ms smem={:.3}ms cm={:.3}ms gm={:.3}ms barrier={:.3}ms latency={:.3}ms total={:.3}ms",
            t.t_compute*1e3, t.t_smem*1e3, t.t_cm*1e3, t.t_gm*1e3, t.t_barrier*1e3, t.t_latency*1e3, t.t_total*1e3);
        println!(
            "  gflops(alg)={:.0} fma={} alu={} sm_req={} sm_cyc={} replay={:.3}",
            run.effective_gflops(&problem),
            run.report.stats.fma_lane_ops,
            run.report.stats.alu_lane_ops,
            run.report.stats.sm_requests(),
            run.report.stats.sm_cycles(),
            run.report.stats.sm_replay_factor()
        );
    }
}

//! Fuzz-style robustness properties of the KTRC readers.
//!
//! The binary trace format crosses a trust boundary: `trace_report
//! --trace` and the replay tools accept arbitrary files. These tests feed
//! systematically corrupted v1/v2/v3 streams — every truncation prefix,
//! seeded bit flips, seeded byte splices and hostile header varints —
//! through all three reader entry points ([`Trace::decode`], the
//! streaming [`read_trace`] visitor, and [`read_launches`]) and assert
//! the contract: a typed [`TraceError`] or a well-formed result, never a
//! panic, never an abort-by-allocation, never a hang.

use kconv_sim::{
    GpuSpec, KernelStats, LaneMask, OverlapMode, TraceEvent, TraceLaunch, TraceOp, TraceSink,
    WARP_SIZE,
};
use kconv_tensor::rng::StdRng;
use kconv_trace::varint::write_u64;
use kconv_trace::{
    read_launches, read_trace, SharedBuffer, Trace, TraceVisitor, TraceWriter, MAGIC, V1, V2,
};

// The wire format is frozen by contract (`format.rs` keeps reading v1/v2
// forever), so the record tags are stable test constants.
const TAG_LAUNCH_BEGIN: u8 = 1;
const TAG_BLOCK: u8 = 2;
const TAG_LAUNCH_END: u8 = 3;

fn event(op: TraceOp, warp: u32, stride: u64, base: u64) -> TraceEvent {
    let mut addrs = [0u64; WARP_SIZE];
    for (lane, a) in addrs.iter_mut().enumerate() {
        *a = base + lane as u64 * stride;
    }
    TraceEvent {
        op,
        warp,
        mask: LaneMask::ALL,
        lane_bytes: 4,
        transactions: 2,
        cycles: 3,
        addrs,
    }
}

/// A current-version (v3) stream produced by the real writer: two
/// launches, mixed ops, a partial mask.
fn v3_stream() -> Vec<u8> {
    let spec = GpuSpec::kepler_k40m();
    let buf = SharedBuffer::new();
    let mut w = TraceWriter::new(buf.clone());
    for kernel in ["alpha", "beta"] {
        w.launch_begin(&TraceLaunch {
            kernel,
            grid_blocks: 2,
            executed_blocks: 2,
            threads_per_block: 64,
            smem_bytes: 2048,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        let mut partial = event(TraceOp::SmLd, 1, 8, 512);
        partial.mask = LaneMask(0x00ff_00ff);
        w.block_events(0, &[event(TraceOp::GmLd, 0, 4, 4096), partial]);
        w.block_events(1, &[event(TraceOp::GmSt, 2, 4, 1 << 20)]);
        w.launch_end(&KernelStats::default());
    }
    buf.take()
}

fn encode_event(buf: &mut Vec<u8>, ev: &TraceEvent) {
    buf.push(ev.op as u8);
    write_u64(buf, u64::from(ev.warp));
    write_u64(buf, u64::from(ev.mask.0));
    write_u64(buf, u64::from(ev.lane_bytes));
    write_u64(buf, u64::from(ev.transactions));
    write_u64(buf, u64::from(ev.cycles));
    let mut prev: Option<u64> = None;
    for lane in 0..WARP_SIZE {
        if !ev.mask.is_active(lane) {
            continue;
        }
        let addr = ev.addrs[lane];
        match prev {
            None => write_u64(buf, addr),
            Some(p) => {
                let delta = addr.wrapping_sub(p) as i64;
                write_u64(buf, ((delta << 1) ^ (delta >> 63)) as u64);
            }
        }
        prev = Some(addr);
    }
}

/// Hand-encodes a v1 (spec-less) stream — the frozen legacy layout.
fn v1_stream() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(V1);
    bytes.push(TAG_LAUNCH_BEGIN);
    write_u64(&mut bytes, 2);
    bytes.extend_from_slice(b"v1");
    write_u64(&mut bytes, 2); // grid blocks
    write_u64(&mut bytes, 2); // executed blocks
    write_u64(&mut bytes, 64); // threads per block
    write_u64(&mut bytes, 2048); // smem bytes
    let events = [
        event(TraceOp::GmLd, 0, 4, 4096),
        event(TraceOp::SmSt, 1, 8, 0),
    ];
    bytes.push(TAG_BLOCK);
    write_u64(&mut bytes, 0);
    write_u64(&mut bytes, events.len() as u64);
    for ev in &events {
        encode_event(&mut bytes, ev);
    }
    bytes.push(TAG_LAUNCH_END);
    bytes.push(0); // not aborted
    write_u64(&mut bytes, 777); // fma lane ops
    bytes
}

fn encode_v2_spec(bytes: &mut Vec<u8>, spec: &GpuSpec) {
    write_u64(bytes, spec.name.len() as u64);
    bytes.extend_from_slice(spec.name.as_bytes());
    write_u64(bytes, u64::from(spec.sm_count));
    write_u64(bytes, u64::from(spec.cores_per_sm));
    write_u64(bytes, spec.clock_ghz.to_bits());
    write_u64(bytes, u64::from(spec.smem_banks));
    bytes.push(spec.bank_width.bytes() as u8);
    write_u64(bytes, u64::from(spec.smem_bytes_per_sm));
    write_u64(bytes, u64::from(spec.max_threads_per_sm));
    write_u64(bytes, u64::from(spec.max_blocks_per_sm));
    write_u64(bytes, u64::from(spec.regs_per_sm));
    write_u64(bytes, u64::from(spec.max_smem_per_block));
    write_u64(bytes, spec.gm_bandwidth_gbs.to_bits());
    write_u64(bytes, spec.gm_transaction_bytes);
    write_u64(bytes, spec.gm_store_transaction_bytes);
    write_u64(bytes, spec.cm_bytes);
    write_u64(bytes, spec.cm_line_bytes);
    write_u64(bytes, u64::from(spec.latency_hiding_warps));
    write_u64(bytes, spec.issue_efficiency.to_bits());
}

/// Hand-encodes a v2 stream — the frozen pre-`ro_cache_bytes` layout.
/// Ends mid-launch so the synthesized-abort path is part of the corpus.
fn v2_stream() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(V2);
    bytes.push(TAG_LAUNCH_BEGIN);
    write_u64(&mut bytes, 2);
    bytes.extend_from_slice(b"v2");
    write_u64(&mut bytes, 1); // grid blocks
    write_u64(&mut bytes, 1); // executed blocks
    write_u64(&mut bytes, 64); // threads per block
    write_u64(&mut bytes, 2048); // smem bytes
    write_u64(&mut bytes, 40); // regs per thread
    bytes.push(OverlapMode::Moderate.as_u8());
    encode_v2_spec(&mut bytes, &GpuSpec::kepler_k40m());
    let events = [event(TraceOp::SmLd, 3, 8, 64)];
    bytes.push(TAG_BLOCK);
    write_u64(&mut bytes, 0);
    write_u64(&mut bytes, events.len() as u64);
    for ev in &events {
        encode_event(&mut bytes, ev);
    }
    bytes
}

fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("v1", v1_stream()),
        ("v2", v2_stream()),
        ("v3", v3_stream()),
    ]
}

/// A visitor that exercises the streaming path and asserts its delivery
/// contract: events only inside an open block of an open launch, and
/// never more per block than the header claimed.
#[derive(Default)]
struct Probe {
    launches_open: u64,
    launches_closed: u64,
    claimed: u64,
    delivered: u64,
    events_total: u64,
}

impl TraceVisitor for Probe {
    fn launch_begin(&mut self, _header: &kconv_trace::LaunchHeader) {
        self.launches_open += 1;
    }
    fn block_begin(&mut self, _block_id: u64, event_count: u64) {
        assert!(
            self.launches_open > self.launches_closed,
            "block outside launch"
        );
        self.claimed = event_count;
        self.delivered = 0;
    }
    fn event(&mut self, _block_id: u64, _ev: &TraceEvent) {
        self.delivered += 1;
        self.events_total += 1;
        assert!(
            self.delivered <= self.claimed,
            "more events than the block claimed"
        );
    }
    fn launch_end(&mut self, _end: &kconv_trace::LaunchEnd) {
        self.launches_closed += 1;
    }
}

/// Runs all three reader entry points on `bytes`; each must return a
/// typed result. The return value is whether every path accepted it.
fn decode_all(bytes: &[u8]) -> bool {
    let a = Trace::decode(bytes).is_ok();
    let b = read_launches(bytes).is_ok();
    let mut probe = Probe::default();
    let c = read_trace(bytes, &mut probe).is_ok();
    assert_eq!(
        a, b,
        "Trace::decode and read_launches must agree on validity"
    );
    assert_eq!(b, c, "read_launches and read_trace must agree on validity");
    a
}

#[test]
fn every_truncation_prefix_is_typed() {
    for (name, bytes) in corpus() {
        assert!(decode_all(&bytes), "{name}: intact stream must decode");
        for cut in 0..bytes.len() {
            // Ok (a clean record boundary synthesizes an aborted launch)
            // or Err — either way typed, never a panic.
            decode_all(&bytes[..cut]);
        }
    }
}

#[test]
fn seeded_bit_flips_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for (name, bytes) in corpus() {
        let mut accepted = 0u32;
        for _ in 0..600 {
            let mut m = bytes.clone();
            let at = rng.gen_range(0..m.len());
            m[at] ^= 1 << rng.gen_range(0..8);
            if decode_all(&m) {
                accepted += 1;
            }
        }
        // Some single-bit flips land in payload values (addresses,
        // counters) and still parse — that's fine; the property under
        // test is absence of panics, not rejection.
        assert!(accepted < 600, "{name}: every corruption accepted?");
    }
}

#[test]
fn seeded_byte_splices_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xDECADE);
    for (_, bytes) in corpus() {
        for _ in 0..200 {
            let mut m = bytes.clone();
            // Overwrite a random short run with random bytes, then cut a
            // random tail — compound corruption.
            let at = rng.gen_range(0..m.len());
            let run = 1 + rng.gen_range(0..8);
            for b in m.iter_mut().skip(at).take(run) {
                *b = (rng.next_u64() & 0xff) as u8;
            }
            let keep = 1 + rng.gen_range(0..m.len());
            m.truncate(keep);
            decode_all(&m);
        }
    }
}

#[test]
fn hostile_event_counts_fail_without_huge_allocation() {
    // A block header claiming up to u64::MAX events backed by zero event
    // bytes: the readers must reject it with a typed error, and the
    // clamped pre-allocation (`RESERVE_EVENTS_MAX`) must keep them from
    // reserving terabytes first (an unclamped reserve aborts the process,
    // which this test would report as a crash, not a failure).
    for claim in [
        kconv_trace::RESERVE_EVENTS_MAX + 1,
        1 << 40,
        u64::MAX / WARP_SIZE as u64,
        u64::MAX,
    ] {
        let mut bytes = v1_stream();
        // Rebuild the v1 stream's block header with a hostile count and
        // no events after it.
        bytes.truncate(MAGIC.len() + 1);
        bytes.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut bytes, 1);
        bytes.extend_from_slice(b"k");
        for _ in 0..4 {
            write_u64(&mut bytes, 1); // grid/executed/threads/smem
        }
        bytes.push(TAG_BLOCK);
        write_u64(&mut bytes, 0); // block id
        write_u64(&mut bytes, claim); // hostile event count
        assert!(Trace::decode(&bytes).is_err(), "claim {claim}: must reject");
        assert!(read_launches(&bytes).is_err());
        let mut probe = Probe::default();
        assert!(read_trace(&bytes, &mut probe).is_err());
        // The streaming path delivered at most the bytes that existed.
        assert_eq!(probe.events_total, 0);
    }
}

#[test]
fn hostile_name_lengths_fail_typed() {
    for claim in [1u64 << 32, u64::MAX] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V1);
        bytes.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut bytes, claim); // kernel-name length, no name bytes
        assert!(Trace::decode(&bytes).is_err(), "claim {claim}: must reject");
        assert!(read_launches(&bytes).is_err());
    }
}

#[test]
fn intact_corpus_decodes_identically_across_paths() {
    for (name, bytes) in corpus() {
        let trace = Trace::decode(&bytes).expect("intact stream decodes");
        let launches = read_launches(&bytes).expect("intact stream decodes");
        assert_eq!(trace.launches().len(), launches.len(), "{name}");
        for (d, l) in trace.launches().iter().zip(&launches) {
            assert_eq!(d.header, l.header, "{name}: headers agree");
            assert_eq!(d.end, l.end, "{name}: ends agree");
            let streamed: usize = l.blocks.iter().map(|(_, evs)| evs.len()).sum();
            assert_eq!(d.event_count(), streamed, "{name}: event counts agree");
        }
    }
}

//! The compact binary trace format: writer (a [`TraceSink`]) and reader.
//!
//! # Layout
//!
//! A trace file is a 5-byte header (`"KTRC"` + version) followed by a
//! stream of tagged records; all integers are LEB128 varints (see
//! [`crate::varint`]):
//!
//! | tag | record | fields (version 3) |
//! |-----|--------|--------------------|
//! | 1 | launch begin | kernel-name length + UTF-8 bytes, grid blocks, executed blocks, threads/block, smem bytes, regs/thread, overlap mode (u8), capture [`GpuSpec`] (below) |
//! | 2 | block | block id, event count, events (below) |
//! | 3 | launch end | aborted flag (u8), full final [`KernelStats`] in field-declaration order (histogram as 6 varints) |
//!
//! The embedded spec is: name length + UTF-8 bytes, then varints for every
//! [`GpuSpec`] field in declaration order — `f64` rates travel as their
//! IEEE-754 bit patterns, the bank width as a raw byte (4 or 8). A v2+
//! trace is therefore **self-describing**: an offline consumer can
//! re-price the recorded addresses under the capture spec (or any other)
//! and rebuild the timing model's launch inputs without the kernel — see
//! the `kconv-replay` crate and DESIGN.md §11.
//!
//! Two legacy versions remain readable:
//!
//! * Version 2 predates [`GpuSpec::ro_cache_bytes`]; its embedded spec
//!   skips that field, which decodes to the 48 KiB every real part
//!   carries (`pricing::RO_CACHE_BYTES`).
//! * Version 1 lacks the last three launch-begin fields and carries only
//!   `fma_lane_ops` in the launch-end record; its headers decode with
//!   [`LaunchHeader::spec`] `None`, so replaying a v1 trace requires the
//!   caller to assert the capture spec explicitly (`--assume-spec`).
//!
//! Each event is: op tag (u8), warp, lane mask, bytes/lane, transactions,
//! cycles — then the addresses of the **active lanes only**, as one
//! absolute address followed by zigzag deltas between successive active
//! lanes. Convolution kernels issue overwhelmingly unit- or
//! constant-strided warps, so the deltas are one byte each and a 32-lane
//! event costs ≈40 bytes instead of 256.
//!
//! A `launch begin` arriving while a launch is open, or end-of-file inside
//! a launch, marks the open launch aborted — exactly the sink contract for
//! faulted launches ([`TraceSink`] docs).

use std::io::Write;
use std::sync::{Arc, Mutex};

use kconv_sim::{
    BankWidth, GpuSpec, KernelStats, LaneMask, OverlapMode, TraceEvent, TraceLaunch, TraceOp,
    TraceSink, WARP_SIZE,
};

use crate::varint::{write_u64, zigzag, Cursor};
use crate::TraceError;

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"KTRC";
/// Format version the writer emits. The reader also accepts [`V1`],
/// [`V2`] and [`V3`].
pub const VERSION: u8 = 4;
/// The legacy version whose stats record predates
/// [`KernelStats::bar_syncs`] and whose event stream predates
/// [`TraceOp::Bar`](kconv_sim::TraceOp::Bar) (readable, no longer written).
pub const V3: u8 = 3;
/// The legacy version whose embedded spec predates
/// [`GpuSpec::ro_cache_bytes`] (readable, no longer written).
pub const V2: u8 = 2;
/// The legacy spec-less format version (readable, no longer written).
pub const V1: u8 = 1;

const TAG_LAUNCH_BEGIN: u8 = 1;
const TAG_BLOCK: u8 = 2;
const TAG_LAUNCH_END: u8 = 3;

fn encode_event(buf: &mut Vec<u8>, ev: &TraceEvent) {
    buf.push(ev.op as u8);
    write_u64(buf, u64::from(ev.warp));
    write_u64(buf, u64::from(ev.mask.0));
    write_u64(buf, u64::from(ev.lane_bytes));
    write_u64(buf, u64::from(ev.transactions));
    write_u64(buf, u64::from(ev.cycles));
    let mut prev: Option<u64> = None;
    for lane in 0..WARP_SIZE {
        if !ev.mask.is_active(lane) {
            continue;
        }
        let addr = ev.addrs[lane];
        match prev {
            None => write_u64(buf, addr),
            Some(p) => write_u64(buf, zigzag(addr.wrapping_sub(p) as i64)),
        }
        prev = Some(addr);
    }
}

fn decode_event(cur: &mut Cursor<'_>) -> Result<TraceEvent, TraceError> {
    let op_tag = cur.read_u8("event op")?;
    let op = TraceOp::from_u8(op_tag).ok_or_else(|| TraceError::Malformed {
        offset: cur.pos(),
        reason: format!("unknown trace op tag {op_tag}"),
    })?;
    let warp = cur.read_u64("event warp")? as u32;
    let mask = LaneMask(cur.read_u64("event mask")? as u32);
    let lane_bytes = cur.read_u64("event lane bytes")? as u32;
    let transactions = cur.read_u64("event transactions")? as u32;
    let cycles = cur.read_u64("event cycles")? as u32;
    let mut addrs = [0u64; WARP_SIZE];
    let mut prev: Option<u64> = None;
    for (lane, slot) in addrs.iter_mut().enumerate() {
        if !mask.is_active(lane) {
            continue;
        }
        let addr = match prev {
            None => cur.read_u64("event first address")?,
            Some(p) => p.wrapping_add(cur.read_i64("event address delta")? as u64),
        };
        *slot = addr;
        prev = Some(addr);
    }
    Ok(TraceEvent {
        op,
        warp,
        mask,
        lane_bytes,
        transactions,
        cycles,
        addrs,
    })
}

fn encode_spec(buf: &mut Vec<u8>, spec: &GpuSpec) {
    write_u64(buf, spec.name.len() as u64);
    buf.extend_from_slice(spec.name.as_bytes());
    write_u64(buf, u64::from(spec.sm_count));
    write_u64(buf, u64::from(spec.cores_per_sm));
    write_u64(buf, spec.clock_ghz.to_bits());
    write_u64(buf, u64::from(spec.smem_banks));
    buf.push(spec.bank_width.bytes() as u8);
    write_u64(buf, u64::from(spec.smem_bytes_per_sm));
    write_u64(buf, u64::from(spec.max_threads_per_sm));
    write_u64(buf, u64::from(spec.max_blocks_per_sm));
    write_u64(buf, u64::from(spec.regs_per_sm));
    write_u64(buf, u64::from(spec.max_smem_per_block));
    write_u64(buf, spec.gm_bandwidth_gbs.to_bits());
    write_u64(buf, spec.gm_transaction_bytes);
    write_u64(buf, spec.gm_store_transaction_bytes);
    write_u64(buf, spec.ro_cache_bytes);
    write_u64(buf, spec.cm_bytes);
    write_u64(buf, spec.cm_line_bytes);
    write_u64(buf, u64::from(spec.latency_hiding_warps));
    write_u64(buf, spec.issue_efficiency.to_bits());
}

fn decode_spec(cur: &mut Cursor<'_>, version: u8) -> Result<GpuSpec, TraceError> {
    let name_len = cur.read_u64("spec name length")? as usize;
    let name_bytes = cur.read_bytes(name_len, "spec name")?;
    let recorded_name = std::str::from_utf8(name_bytes)
        .map_err(|_| TraceError::Malformed {
            offset: cur.pos(),
            reason: "spec name is not UTF-8".into(),
        })?
        .to_owned();
    // `GpuSpec::name` is `&'static str`; map recorded names back to the
    // known presets' literals, anything else to a generic label. Every
    // numeric parameter still comes from the trace, so an unrecognized
    // name only loses the display string, never the pricing inputs.
    let name = GpuSpec::preset(&recorded_name).map_or("captured", |p| p.name);
    let sm_count = cur.read_u64("spec sm count")? as u32;
    let cores_per_sm = cur.read_u64("spec cores per sm")? as u32;
    let clock_ghz = f64::from_bits(cur.read_u64("spec clock bits")?);
    let smem_banks = cur.read_u64("spec smem banks")? as u32;
    let bank_width = match cur.read_u8("spec bank width")? {
        4 => BankWidth::B4,
        8 => BankWidth::B8,
        other => {
            return Err(TraceError::Malformed {
                offset: cur.pos(),
                reason: format!("unknown bank width {other} (expected 4 or 8)"),
            })
        }
    };
    Ok(GpuSpec {
        name,
        sm_count,
        cores_per_sm,
        clock_ghz,
        smem_banks,
        bank_width,
        smem_bytes_per_sm: cur.read_u64("spec smem bytes per sm")? as u32,
        max_threads_per_sm: cur.read_u64("spec max threads per sm")? as u32,
        max_blocks_per_sm: cur.read_u64("spec max blocks per sm")? as u32,
        regs_per_sm: cur.read_u64("spec regs per sm")? as u32,
        max_smem_per_block: cur.read_u64("spec max smem per block")? as u32,
        gm_bandwidth_gbs: f64::from_bits(cur.read_u64("spec gm bandwidth bits")?),
        gm_transaction_bytes: cur.read_u64("spec gm transaction bytes")?,
        gm_store_transaction_bytes: cur.read_u64("spec gm store transaction bytes")?,
        // v2 specs predate the sweepable read-only cache capacity; every
        // part they could describe carried Kepler's 48 KiB.
        ro_cache_bytes: if version >= 3 {
            cur.read_u64("spec ro cache bytes")?
        } else {
            kconv_sim::pricing::RO_CACHE_BYTES
        },
        cm_bytes: cur.read_u64("spec cm bytes")?,
        cm_line_bytes: cur.read_u64("spec cm line bytes")?,
        latency_hiding_warps: cur.read_u64("spec latency hiding warps")? as u32,
        issue_efficiency: f64::from_bits(cur.read_u64("spec issue efficiency bits")?),
    })
}

fn encode_stats(buf: &mut Vec<u8>, s: &KernelStats) {
    for v in [
        s.fma_lane_ops,
        s.alu_lane_ops,
        s.gm_ld_requests,
        s.gm_st_requests,
        s.gm_ld_transactions,
        s.gm_st_transactions,
        s.gm_ld_bytes_bus,
        s.gm_st_bytes_bus,
        s.gm_ld_bytes_useful,
        s.gm_st_bytes_useful,
        s.gm_ro_hits,
        s.sm_ld_requests,
        s.sm_st_requests,
        s.sm_ld_cycles,
        s.sm_st_cycles,
        s.sm_bytes_useful,
        s.sm_broadcasts,
    ] {
        write_u64(buf, v);
    }
    for v in s.sm_conflict_histogram {
        write_u64(buf, v);
    }
    for v in [
        s.cm_requests,
        s.cm_cycles,
        s.cm_misses,
        s.barriers,
        s.blocks_executed,
        s.blocks_total,
        // v4 appends bar_syncs after the frozen v2/v3 tail.
        s.bar_syncs,
    ] {
        write_u64(buf, v);
    }
}

fn decode_stats(cur: &mut Cursor<'_>, version: u8) -> Result<KernelStats, TraceError> {
    let mut s = KernelStats {
        fma_lane_ops: cur.read_u64("stats fma lane ops")?,
        alu_lane_ops: cur.read_u64("stats alu lane ops")?,
        gm_ld_requests: cur.read_u64("stats gm ld requests")?,
        gm_st_requests: cur.read_u64("stats gm st requests")?,
        gm_ld_transactions: cur.read_u64("stats gm ld transactions")?,
        gm_st_transactions: cur.read_u64("stats gm st transactions")?,
        gm_ld_bytes_bus: cur.read_u64("stats gm ld bytes bus")?,
        gm_st_bytes_bus: cur.read_u64("stats gm st bytes bus")?,
        gm_ld_bytes_useful: cur.read_u64("stats gm ld bytes useful")?,
        gm_st_bytes_useful: cur.read_u64("stats gm st bytes useful")?,
        gm_ro_hits: cur.read_u64("stats gm ro hits")?,
        sm_ld_requests: cur.read_u64("stats sm ld requests")?,
        sm_st_requests: cur.read_u64("stats sm st requests")?,
        sm_ld_cycles: cur.read_u64("stats sm ld cycles")?,
        sm_st_cycles: cur.read_u64("stats sm st cycles")?,
        sm_bytes_useful: cur.read_u64("stats sm bytes useful")?,
        sm_broadcasts: cur.read_u64("stats sm broadcasts")?,
        ..Default::default()
    };
    for slot in &mut s.sm_conflict_histogram {
        *slot = cur.read_u64("stats conflict histogram")?;
    }
    s.cm_requests = cur.read_u64("stats cm requests")?;
    s.cm_cycles = cur.read_u64("stats cm cycles")?;
    s.cm_misses = cur.read_u64("stats cm misses")?;
    s.barriers = cur.read_u64("stats barriers")?;
    s.blocks_executed = cur.read_u64("stats blocks executed")?;
    s.blocks_total = cur.read_u64("stats blocks total")?;
    s.bar_syncs = if version >= 4 {
        cur.read_u64("stats bar syncs")?
    } else {
        // Pre-v4 captures did not count barrier arrivals.
        0
    };
    Ok(s)
}

/// Streams [`TraceSink`] callbacks into a [`Write`] target as the binary
/// trace format.
///
/// The sink callbacks cannot return errors, so the first I/O failure is
/// latched and the writer goes inert; recover it (and the output) with
/// [`TraceWriter::into_inner`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    scratch: Vec<u8>,
    wrote_header: bool,
    launch_open: bool,
    err: Option<std::io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps an output stream; nothing is written until the first launch.
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            scratch: Vec::new(),
            wrote_header: false,
            launch_open: false,
            err: None,
        }
    }

    /// The first I/O error the writer hit, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.err.as_ref()
    }

    /// Flushes and returns the output stream plus any latched I/O error.
    pub fn into_inner(mut self) -> (W, Option<std::io::Error>) {
        if self.err.is_none() {
            if let Err(e) = self.out.flush() {
                self.err = Some(e);
            }
        }
        (self.out, self.err)
    }

    fn emit(&mut self) {
        if self.err.is_some() {
            self.scratch.clear();
            return;
        }
        if !self.wrote_header {
            self.wrote_header = true;
            let mut header = Vec::with_capacity(5);
            header.extend_from_slice(&MAGIC);
            header.push(VERSION);
            if let Err(e) = self.out.write_all(&header) {
                self.err = Some(e);
                self.scratch.clear();
                return;
            }
        }
        if let Err(e) = self.out.write_all(&self.scratch) {
            self.err = Some(e);
        }
        self.scratch.clear();
    }

    fn end_record(&mut self, aborted: bool, stats: &KernelStats) {
        self.scratch.push(TAG_LAUNCH_END);
        self.scratch.push(u8::from(aborted));
        encode_stats(&mut self.scratch, stats);
        self.launch_open = false;
        self.emit();
    }
}

impl<W: Write + Send> TraceSink for TraceWriter<W> {
    fn launch_begin(&mut self, launch: &TraceLaunch<'_>) {
        if self.launch_open {
            // The previous launch never ended: it faulted. Close it so the
            // stream stays parseable.
            self.end_record(true, &KernelStats::default());
        }
        self.scratch.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut self.scratch, launch.kernel.len() as u64);
        self.scratch.extend_from_slice(launch.kernel.as_bytes());
        write_u64(&mut self.scratch, launch.grid_blocks as u64);
        write_u64(&mut self.scratch, launch.executed_blocks as u64);
        write_u64(&mut self.scratch, launch.threads_per_block as u64);
        write_u64(&mut self.scratch, u64::from(launch.smem_bytes));
        write_u64(&mut self.scratch, u64::from(launch.regs_per_thread));
        self.scratch.push(launch.overlap.as_u8());
        encode_spec(&mut self.scratch, launch.spec);
        self.launch_open = true;
        self.emit();
    }

    fn block_events(&mut self, block_id: usize, events: &[TraceEvent]) {
        self.scratch.push(TAG_BLOCK);
        write_u64(&mut self.scratch, block_id as u64);
        write_u64(&mut self.scratch, events.len() as u64);
        for ev in events {
            encode_event(&mut self.scratch, ev);
        }
        self.emit();
    }

    fn launch_end(&mut self, stats: &KernelStats) {
        self.end_record(false, stats);
    }
}

/// An `Arc<Mutex<Vec<u8>>>` [`Write`] target, for keeping a handle on the
/// trace bytes while the [`TraceWriter`] is boxed away inside the `Gpu`.
///
/// ```
/// use kconv_trace::{SharedBuffer, TraceWriter};
///
/// let buf = SharedBuffer::new();
/// let writer = TraceWriter::new(buf.clone());
/// // gpu.set_trace_sink(Some(Box::new(writer)));
/// // ... launches ...
/// // gpu.set_trace_sink(None);
/// let bytes = buf.take();
/// # let _ = bytes;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Removes and returns the accumulated bytes.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.lock())
    }

    /// Copies out the accumulated bytes, leaving them in place.
    pub fn snapshot(&self) -> Vec<u8> {
        self.lock().clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Metadata of one launch, as recorded by the writer.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchHeader {
    /// Kernel name.
    pub kernel: String,
    /// Blocks the grid logically contained.
    pub grid_blocks: u64,
    /// Blocks that executed functionally (fewer when sampled).
    pub executed_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u64,
    /// Shared memory per block in bytes.
    pub smem_bytes: u64,
    /// Registers per thread the launch declared (v1 traces default to 32,
    /// the simulator's `LaunchConfig::new` default).
    pub regs_per_thread: u64,
    /// The launch's compute/communication overlap declaration (v1 traces
    /// default to [`OverlapMode::Prefetch`]).
    pub overlap: OverlapMode,
    /// The architecture the trace was captured on. `None` for v1 traces,
    /// which predate the embedded spec — replaying those requires the
    /// caller to assert a capture spec explicitly.
    pub spec: Option<GpuSpec>,
}

/// How a launch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchEnd {
    /// `true` when the launch faulted (or the trace was cut off) before
    /// completing — its event stream is the clean prefix of blocks.
    pub aborted: bool,
    /// `fma_lane_ops` from the launch's final (scaled) stats; 0 for
    /// aborted launches.
    pub fma_lane_ops: u64,
    /// The launch's full final (scaled) [`KernelStats`]. `None` for v1
    /// traces (which recorded only `fma_lane_ops`) and for synthesized
    /// aborted ends.
    pub stats: Option<KernelStats>,
}

/// Streaming consumer for [`read_trace`]. All methods default to no-ops;
/// implement only what the analysis needs.
pub trait TraceVisitor {
    /// A launch's header record was read.
    fn launch_begin(&mut self, _header: &LaunchHeader) {}
    /// A block record was opened (its events follow).
    fn block_begin(&mut self, _block_id: u64, _event_count: u64) {}
    /// One event of the current block.
    fn event(&mut self, _block_id: u64, _ev: &TraceEvent) {}
    /// The launch ended. Synthesized with `aborted: true` when the stream
    /// stops inside a launch.
    fn launch_end(&mut self, _end: &LaunchEnd) {}
}

/// Parses a binary trace, streaming records into `visitor` without
/// materializing event buffers.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] on bad magic, an unsupported version,
/// or a corrupt/truncated record.
pub fn read_trace(bytes: &[u8], visitor: &mut impl TraceVisitor) -> Result<(), TraceError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.read_bytes(MAGIC.len(), "file magic")?;
    if magic != MAGIC {
        return Err(TraceError::Malformed {
            offset: 0,
            reason: "bad magic: not a kconv trace".into(),
        });
    }
    let version = cur.read_u8("format version")?;
    if !(V1..=VERSION).contains(&version) {
        return Err(TraceError::Malformed {
            offset: cur.pos(),
            reason: format!("unsupported trace version {version} (expected {V1}..={VERSION})"),
        });
    }
    let mut launch_open = false;
    while !cur.is_empty() {
        let tag = cur.read_u8("record tag")?;
        match tag {
            TAG_LAUNCH_BEGIN => {
                if launch_open {
                    visitor.launch_end(&LaunchEnd {
                        aborted: true,
                        fma_lane_ops: 0,
                        stats: None,
                    });
                }
                let name_len = cur.read_u64("kernel-name length")? as usize;
                let name = cur.read_bytes(name_len, "kernel name")?;
                let kernel = std::str::from_utf8(name)
                    .map_err(|_| TraceError::Malformed {
                        offset: cur.pos(),
                        reason: "kernel name is not UTF-8".into(),
                    })?
                    .to_owned();
                let mut header = LaunchHeader {
                    kernel,
                    grid_blocks: cur.read_u64("grid blocks")?,
                    executed_blocks: cur.read_u64("executed blocks")?,
                    threads_per_block: cur.read_u64("threads per block")?,
                    smem_bytes: cur.read_u64("smem bytes")?,
                    // v1 defaults: the simulator's LaunchConfig::new values.
                    regs_per_thread: 32,
                    overlap: OverlapMode::Prefetch,
                    spec: None,
                };
                if version >= 2 {
                    header.regs_per_thread = cur.read_u64("regs per thread")?;
                    let overlap_tag = cur.read_u8("overlap mode")?;
                    header.overlap =
                        OverlapMode::from_u8(overlap_tag).ok_or_else(|| TraceError::Malformed {
                            offset: cur.pos(),
                            reason: format!("unknown overlap mode {overlap_tag}"),
                        })?;
                    header.spec = Some(decode_spec(&mut cur, version)?);
                }
                launch_open = true;
                visitor.launch_begin(&header);
            }
            TAG_BLOCK => {
                if !launch_open {
                    return Err(TraceError::Malformed {
                        offset: cur.pos(),
                        reason: "block record outside a launch".into(),
                    });
                }
                let block_id = cur.read_u64("block id")?;
                let count = cur.read_u64("event count")?;
                visitor.block_begin(block_id, count);
                for _ in 0..count {
                    let ev = decode_event(&mut cur)?;
                    visitor.event(block_id, &ev);
                }
            }
            TAG_LAUNCH_END => {
                if !launch_open {
                    return Err(TraceError::Malformed {
                        offset: cur.pos(),
                        reason: "launch-end record outside a launch".into(),
                    });
                }
                let aborted = cur.read_u8("aborted flag")? != 0;
                let end = if version >= 2 {
                    let stats = decode_stats(&mut cur, version)?;
                    LaunchEnd {
                        aborted,
                        fma_lane_ops: stats.fma_lane_ops,
                        stats: Some(stats),
                    }
                } else {
                    LaunchEnd {
                        aborted,
                        fma_lane_ops: cur.read_u64("fma lane ops")?,
                        stats: None,
                    }
                };
                launch_open = false;
                visitor.launch_end(&end);
            }
            other => {
                return Err(TraceError::Malformed {
                    offset: cur.pos(),
                    reason: format!("unknown record tag {other}"),
                });
            }
        }
    }
    if launch_open {
        visitor.launch_end(&LaunchEnd {
            aborted: true,
            fma_lane_ops: 0,
            stats: None,
        });
    }
    Ok(())
}

/// One fully materialized launch from [`read_launches`].
#[derive(Debug, Clone)]
pub struct LaunchTrace {
    /// Launch metadata.
    pub header: LaunchHeader,
    /// `(block_id, events)` in delivery (= block-id) order.
    pub blocks: Vec<(u64, Vec<TraceEvent>)>,
    /// How the launch ended.
    pub end: LaunchEnd,
}

/// Parses a binary trace into fully materialized launches (convenient for
/// tests and small traces; large traces should stream via [`read_trace`]).
///
/// # Errors
///
/// Propagates [`read_trace`]'s errors.
pub fn read_launches(bytes: &[u8]) -> Result<Vec<LaunchTrace>, TraceError> {
    #[derive(Default)]
    struct Collect {
        done: Vec<LaunchTrace>,
        open: Option<LaunchTrace>,
    }
    impl TraceVisitor for Collect {
        fn launch_begin(&mut self, header: &LaunchHeader) {
            self.open = Some(LaunchTrace {
                header: header.clone(),
                blocks: Vec::new(),
                end: LaunchEnd {
                    aborted: true,
                    fma_lane_ops: 0,
                    stats: None,
                },
            });
        }
        fn block_begin(&mut self, block_id: u64, event_count: u64) {
            if let Some(open) = self.open.as_mut() {
                // Untrusted varint: clamp the pre-allocation (see
                // `RESERVE_EVENTS_MAX`) — the vector grows organically if
                // a well-formed block really is bigger.
                let reserve = event_count.min(crate::RESERVE_EVENTS_MAX) as usize;
                open.blocks.push((block_id, Vec::with_capacity(reserve)));
            }
        }
        fn event(&mut self, _block_id: u64, ev: &TraceEvent) {
            if let Some((_, events)) = self.open.as_mut().and_then(|o| o.blocks.last_mut()) {
                events.push(*ev);
            }
        }
        fn launch_end(&mut self, end: &LaunchEnd) {
            if let Some(mut open) = self.open.take() {
                open.end = *end;
                self.done.push(open);
            }
        }
    }
    let mut collect = Collect::default();
    read_trace(bytes, &mut collect)?;
    Ok(collect.done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: TraceOp, warp: u32, mask: u32, stride: u64, base: u64) -> TraceEvent {
        let mut addrs = [0u64; WARP_SIZE];
        for (lane, a) in addrs.iter_mut().enumerate() {
            if LaneMask(mask).is_active(lane) {
                *a = base + lane as u64 * stride;
            }
        }
        TraceEvent {
            op,
            warp,
            mask: LaneMask(mask),
            lane_bytes: 4,
            transactions: u32::from(op.space() == Some(kconv_sim::MemSpace::Global)),
            cycles: u32::from(op.space() != Some(kconv_sim::MemSpace::Global)),
            addrs,
        }
    }

    fn capture_spec() -> GpuSpec {
        GpuSpec::kepler_k40m()
    }

    fn launch<'a>(name: &'a str, blocks: usize, spec: &'a GpuSpec) -> TraceLaunch<'a> {
        TraceLaunch {
            kernel: name,
            grid_blocks: blocks,
            executed_blocks: blocks,
            threads_per_block: 64,
            smem_bytes: 1024,
            regs_per_thread: 48,
            overlap: OverlapMode::Moderate,
            spec,
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let events = vec![
            ev(TraceOp::GmLd, 0, u32::MAX, 4, 1 << 20),
            ev(TraceOp::SmSt, 1, 0x0000_ffff, 8, 128),
            ev(TraceOp::CmLd, 2, 0x8000_0001, 0, 16),
            ev(TraceOp::GmSt, 3, 0, 4, 0), // fully masked-off warp
        ];
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("k1", 2, &spec));
        w.block_events(0, &events);
        w.block_events(1, &events[..2]);
        let stats = KernelStats {
            fma_lane_ops: 4242,
            gm_ld_transactions: 17,
            sm_ld_cycles: 99,
            sm_conflict_histogram: [1, 2, 3, 4, 5, 6],
            barriers: 7,
            blocks_executed: 2,
            blocks_total: 2,
            ..Default::default()
        };
        w.launch_end(&stats);
        let (_, err) = w.into_inner();
        assert!(err.is_none());

        let launches = read_launches(&buf.take()).unwrap();
        assert_eq!(launches.len(), 1);
        let l = &launches[0];
        assert_eq!(
            l.header,
            LaunchHeader {
                kernel: "k1".into(),
                grid_blocks: 2,
                executed_blocks: 2,
                threads_per_block: 64,
                smem_bytes: 1024,
                regs_per_thread: 48,
                overlap: OverlapMode::Moderate,
                spec: Some(spec),
            }
        );
        assert_eq!(
            l.end,
            LaunchEnd {
                aborted: false,
                fma_lane_ops: 4242,
                stats: Some(stats),
            }
        );
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.blocks[0].0, 0);
        assert_eq!(l.blocks[1].0, 1);
        // Inactive-lane addresses are not stored: compare canonical forms.
        let want: Vec<TraceEvent> = events.iter().map(|e| e.canonical()).collect();
        assert_eq!(l.blocks[0].1, want);
        assert_eq!(l.blocks[1].1, want[..2]);
    }

    #[test]
    fn strided_warps_encode_compactly() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("k", 1, &spec));
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| ev(TraceOp::GmLd, 0, u32::MAX, 4, i * 128))
            .collect();
        w.block_events(0, &events);
        w.launch_end(&KernelStats::default());
        // 32 lanes x 8-byte addresses = 256 B/event raw; delta coding must
        // stay well under a fifth of that.
        let bytes_per_event = buf.len() as f64 / events.len() as f64;
        assert!(bytes_per_event < 50.0, "{bytes_per_event} B/event");
    }

    #[test]
    fn begin_while_open_marks_previous_launch_aborted() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("faulty", 4, &spec));
        w.block_events(0, &[ev(TraceOp::GmLd, 0, 0xff, 4, 0)]);
        // No launch_end: the launch faulted. A new launch begins.
        w.launch_begin(&launch("clean", 1, &spec));
        w.block_events(0, &[]);
        w.launch_end(&KernelStats::default());
        let launches = read_launches(&buf.take()).unwrap();
        assert_eq!(launches.len(), 2);
        assert!(launches[0].end.aborted);
        assert_eq!(launches[0].header.kernel, "faulty");
        assert_eq!(launches[0].blocks.len(), 1);
        assert!(!launches[1].end.aborted);
    }

    #[test]
    fn eof_inside_launch_synthesizes_aborted_end() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("cut", 4, &spec));
        w.block_events(0, &[ev(TraceOp::SmLd, 0, 0xff, 8, 64)]);
        drop(w);
        let launches = read_launches(&buf.take()).unwrap();
        assert_eq!(launches.len(), 1);
        assert!(launches[0].end.aborted);
        assert_eq!(launches[0].blocks.len(), 1);
    }

    #[test]
    fn corrupt_streams_error_instead_of_panicking() {
        assert!(read_launches(b"").is_err());
        assert!(read_launches(b"NOPE\x01").is_err());
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(&MAGIC);
        bad_version.push(99);
        assert!(read_launches(&bad_version).is_err());
        // Valid header, garbage record tag.
        let mut bad_tag = Vec::new();
        bad_tag.extend_from_slice(&MAGIC);
        bad_tag.push(VERSION);
        bad_tag.push(77);
        assert!(read_launches(&bad_tag).is_err());
        // Truncate a valid stream at every byte: must never panic.
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("k", 1, &spec));
        w.block_events(0, &[ev(TraceOp::GmLd, 0, u32::MAX, 4, 1000)]);
        w.launch_end(&KernelStats::default());
        let bytes = buf.take();
        for cut in 0..bytes.len() {
            let _ = read_launches(&bytes[..cut]);
        }
        assert!(read_launches(&bytes).is_ok());
    }

    #[test]
    fn block_record_outside_launch_is_malformed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(TAG_BLOCK);
        bytes.push(0); // block id
        bytes.push(0); // event count
        assert!(matches!(
            read_launches(&bytes),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn non_preset_spec_round_trips_numerically() {
        // A hypothetical part: the name degrades to "captured" (it cannot
        // be interned back to a &'static str) but every pricing parameter
        // must survive bit-exactly, including the f64 rates.
        let spec = GpuSpec {
            name: "Frankenstein",
            clock_ghz: 1.234_567_891,
            bank_width: BankWidth::B4,
            gm_transaction_bytes: 64,
            issue_efficiency: 0.333_333_333,
            ..GpuSpec::kepler_k40m()
        };
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        w.launch_begin(&launch("k", 1, &spec));
        w.block_events(0, &[]);
        w.launch_end(&KernelStats::default());
        let launches = read_launches(&buf.take()).unwrap();
        let got = launches[0].header.spec.as_ref().unwrap();
        assert_eq!(got.name, "captured");
        assert_eq!(
            GpuSpec {
                name: spec.name,
                ..got.clone()
            },
            spec,
            "all numeric fields must round-trip"
        );
    }

    /// Hand-encodes a v1 (spec-less) stream: the frozen legacy layout the
    /// reader must keep accepting.
    fn encode_v1_stream(events: &[TraceEvent], fma_lane_ops: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V1);
        bytes.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut bytes, 2);
        bytes.extend_from_slice(b"v1");
        write_u64(&mut bytes, 3); // grid blocks
        write_u64(&mut bytes, 3); // executed blocks
        write_u64(&mut bytes, 64); // threads per block
        write_u64(&mut bytes, 2048); // smem bytes
        bytes.push(TAG_BLOCK);
        write_u64(&mut bytes, 0);
        write_u64(&mut bytes, events.len() as u64);
        for ev in events {
            encode_event(&mut bytes, ev);
        }
        bytes.push(TAG_LAUNCH_END);
        bytes.push(0); // not aborted
        write_u64(&mut bytes, fma_lane_ops);
        bytes
    }

    #[test]
    fn v1_traces_still_decode_with_defaults() {
        let events = vec![
            ev(TraceOp::GmLd, 0, u32::MAX, 4, 4096),
            ev(TraceOp::SmLd, 1, 0x00ff_00ff, 8, 0),
        ];
        let bytes = encode_v1_stream(&events, 777);
        let launches = read_launches(&bytes).unwrap();
        assert_eq!(launches.len(), 1);
        let l = &launches[0];
        assert_eq!(l.header.kernel, "v1");
        assert_eq!(l.header.grid_blocks, 3);
        // v1 defaults: LaunchConfig::new's values, and no capture spec.
        assert_eq!(l.header.regs_per_thread, 32);
        assert_eq!(l.header.overlap, OverlapMode::Prefetch);
        assert_eq!(l.header.spec, None);
        assert_eq!(
            l.end,
            LaunchEnd {
                aborted: false,
                fma_lane_ops: 777,
                stats: None,
            }
        );
        let want: Vec<TraceEvent> = events.iter().map(|e| e.canonical()).collect();
        assert_eq!(l.blocks[0].1, want);
    }

    /// Hand-encodes the frozen v2/v3 stats record (no `bar_syncs` tail).
    fn encode_stats_pre_v4(bytes: &mut Vec<u8>, s: &KernelStats) {
        for v in [
            s.fma_lane_ops,
            s.alu_lane_ops,
            s.gm_ld_requests,
            s.gm_st_requests,
            s.gm_ld_transactions,
            s.gm_st_transactions,
            s.gm_ld_bytes_bus,
            s.gm_st_bytes_bus,
            s.gm_ld_bytes_useful,
            s.gm_st_bytes_useful,
            s.gm_ro_hits,
            s.sm_ld_requests,
            s.sm_st_requests,
            s.sm_ld_cycles,
            s.sm_st_cycles,
            s.sm_bytes_useful,
            s.sm_broadcasts,
        ] {
            write_u64(bytes, v);
        }
        for v in s.sm_conflict_histogram {
            write_u64(bytes, v);
        }
        for v in [
            s.cm_requests,
            s.cm_cycles,
            s.cm_misses,
            s.barriers,
            s.blocks_executed,
            s.blocks_total,
        ] {
            write_u64(bytes, v);
        }
    }

    /// Hand-encodes a v2 stream: the frozen pre-`ro_cache_bytes` layout the
    /// reader must keep accepting.
    fn encode_v2_stream(spec: &GpuSpec, events: &[TraceEvent], stats: &KernelStats) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V2);
        bytes.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut bytes, 2);
        bytes.extend_from_slice(b"v2");
        write_u64(&mut bytes, 1); // grid blocks
        write_u64(&mut bytes, 1); // executed blocks
        write_u64(&mut bytes, 64); // threads per block
        write_u64(&mut bytes, 2048); // smem bytes
        write_u64(&mut bytes, 40); // regs per thread
        bytes.push(OverlapMode::Moderate.as_u8());
        // v2 spec: declaration order without ro_cache_bytes.
        write_u64(&mut bytes, spec.name.len() as u64);
        bytes.extend_from_slice(spec.name.as_bytes());
        write_u64(&mut bytes, u64::from(spec.sm_count));
        write_u64(&mut bytes, u64::from(spec.cores_per_sm));
        write_u64(&mut bytes, spec.clock_ghz.to_bits());
        write_u64(&mut bytes, u64::from(spec.smem_banks));
        bytes.push(spec.bank_width.bytes() as u8);
        write_u64(&mut bytes, u64::from(spec.smem_bytes_per_sm));
        write_u64(&mut bytes, u64::from(spec.max_threads_per_sm));
        write_u64(&mut bytes, u64::from(spec.max_blocks_per_sm));
        write_u64(&mut bytes, u64::from(spec.regs_per_sm));
        write_u64(&mut bytes, u64::from(spec.max_smem_per_block));
        write_u64(&mut bytes, spec.gm_bandwidth_gbs.to_bits());
        write_u64(&mut bytes, spec.gm_transaction_bytes);
        write_u64(&mut bytes, spec.gm_store_transaction_bytes);
        write_u64(&mut bytes, spec.cm_bytes);
        write_u64(&mut bytes, spec.cm_line_bytes);
        write_u64(&mut bytes, u64::from(spec.latency_hiding_warps));
        write_u64(&mut bytes, spec.issue_efficiency.to_bits());
        bytes.push(TAG_BLOCK);
        write_u64(&mut bytes, 0);
        write_u64(&mut bytes, events.len() as u64);
        for ev in events {
            encode_event(&mut bytes, ev);
        }
        bytes.push(TAG_LAUNCH_END);
        bytes.push(0); // not aborted
        encode_stats_pre_v4(&mut bytes, stats);
        bytes
    }

    #[test]
    fn v2_traces_decode_with_default_ro_cache() {
        let spec = capture_spec();
        let events = vec![ev(TraceOp::GmLd, 0, u32::MAX, 4, 4096)];
        let stats = KernelStats {
            fma_lane_ops: 99,
            blocks_total: 1,
            ..Default::default()
        };
        let bytes = encode_v2_stream(&spec, &events, &stats);
        let launches = read_launches(&bytes).unwrap();
        assert_eq!(launches.len(), 1);
        let got = launches[0].header.spec.as_ref().unwrap();
        assert_eq!(got.ro_cache_bytes, 48 * 1024);
        assert_eq!(got, &spec);
        assert_eq!(launches[0].end.stats.as_ref(), Some(&stats));
        // Truncation at every byte must never panic.
        for cut in 0..bytes.len() {
            let _ = read_launches(&bytes[..cut]);
        }
    }

    /// Hand-encodes a v3 stream: the frozen pre-`bar_syncs` layout (full
    /// spec including `ro_cache_bytes`, stats without the v4 tail) the
    /// reader must keep accepting.
    fn encode_v3_stream(spec: &GpuSpec, events: &[TraceEvent], stats: &KernelStats) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V3);
        bytes.push(TAG_LAUNCH_BEGIN);
        write_u64(&mut bytes, 2);
        bytes.extend_from_slice(b"v3");
        write_u64(&mut bytes, 1); // grid blocks
        write_u64(&mut bytes, 1); // executed blocks
        write_u64(&mut bytes, 64); // threads per block
        write_u64(&mut bytes, 2048); // smem bytes
        write_u64(&mut bytes, 40); // regs per thread
        bytes.push(OverlapMode::Moderate.as_u8());
        // The v3 spec layout is the current one (encode_spec is unchanged
        // since v3 introduced ro_cache_bytes).
        encode_spec(&mut bytes, spec);
        bytes.push(TAG_BLOCK);
        write_u64(&mut bytes, 0);
        write_u64(&mut bytes, events.len() as u64);
        for ev in events {
            encode_event(&mut bytes, ev);
        }
        bytes.push(TAG_LAUNCH_END);
        bytes.push(0); // not aborted
        encode_stats_pre_v4(&mut bytes, stats);
        bytes
    }

    #[test]
    fn v3_traces_decode_with_zero_bar_syncs() {
        let spec = capture_spec();
        let events = vec![
            ev(TraceOp::GmLd, 0, u32::MAX, 4, 4096),
            ev(TraceOp::SmSt, 1, 0x00ff_00ff, 8, 0),
        ];
        let stats = KernelStats {
            fma_lane_ops: 321,
            barriers: 9,
            blocks_executed: 1,
            blocks_total: 1,
            ..Default::default()
        };
        let bytes = encode_v3_stream(&spec, &events, &stats);
        let launches = read_launches(&bytes).unwrap();
        assert_eq!(launches.len(), 1);
        let l = &launches[0];
        assert_eq!(l.header.kernel, "v3");
        assert_eq!(l.header.spec.as_ref(), Some(&spec));
        let got = l.end.stats.as_ref().unwrap();
        assert_eq!(got.barriers, 9);
        // Pre-v4 captures carry no arrival counts: default to zero.
        assert_eq!(got.bar_syncs, 0);
        assert_eq!(got, &stats);
        let want: Vec<TraceEvent> = events.iter().map(|e| e.canonical()).collect();
        assert_eq!(l.blocks[0].1, want);
        // Truncation at every byte must never panic.
        for cut in 0..bytes.len() {
            let _ = read_launches(&bytes[..cut]);
        }
    }

    #[test]
    fn v4_round_trips_bar_syncs_and_bar_events() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = capture_spec();
        w.launch_begin(&launch("k-bar", 1, &spec));
        let bar = TraceEvent {
            op: TraceOp::Bar,
            warp: 1,
            mask: LaneMask(0),
            lane_bytes: 0,
            transactions: 0,
            cycles: 0,
            addrs: [0; WARP_SIZE],
        };
        let events = vec![ev(TraceOp::SmLd, 0, u32::MAX, 4, 0), bar];
        w.block_events(0, &events);
        let stats = KernelStats {
            barriers: 4,
            bar_syncs: 8,
            blocks_executed: 1,
            blocks_total: 1,
            ..Default::default()
        };
        w.launch_end(&stats);
        let launches = read_launches(&buf.take()).unwrap();
        let l = &launches[0];
        assert_eq!(l.end.stats.as_ref().unwrap().bar_syncs, 8);
        assert_eq!(l.blocks[0].1[1], bar);
    }

    #[test]
    fn v1_truncation_never_panics() {
        let bytes = encode_v1_stream(&[ev(TraceOp::CmLd, 0, 0x0f, 0, 99)], 5);
        for cut in 0..bytes.len() {
            let _ = read_launches(&bytes[..cut]);
        }
        assert!(read_launches(&bytes).is_ok());
    }

    /// splitmix64: a tiny seeded generator so the property test needs no
    /// external crate.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Seeded-random streams through the writer must come back field-exact
    /// through the streaming reader, across the varint/zigzag edge cases:
    /// `u64::MAX` addresses (deltas wrap), single-lane and empty masks,
    /// zero-transaction events, and multi-launch streams.
    #[test]
    fn random_streams_round_trip_bit_exactly() {
        for seed in 0..8u64 {
            let mut rng = Rng(0xD1CE_0000 + seed);
            let spec = capture_spec();
            let buf = SharedBuffer::new();
            let mut w = TraceWriter::new(buf.clone());
            let mut want: Vec<LaunchTrace> = Vec::new();
            for li in 0..1 + (seed % 3) {
                let name = format!("kernel-{seed}-{li}");
                let blocks = 1 + (rng.next() % 4);
                let threads_per_block = 32 * (1 + (rng.next() % 8) as usize);
                let smem_bytes = (rng.next() % 48_000) as u32;
                let regs_per_thread = 16 + (rng.next() % 200) as u32;
                let overlap = OverlapMode::from_u8((rng.next() % 3) as u8).unwrap();
                w.launch_begin(&TraceLaunch {
                    kernel: &name,
                    grid_blocks: blocks as usize,
                    executed_blocks: blocks as usize,
                    threads_per_block,
                    smem_bytes,
                    regs_per_thread,
                    overlap,
                    spec: &spec,
                });
                let mut blocks_want = Vec::new();
                for block_id in 0..blocks {
                    let n = rng.next() % 20;
                    let events: Vec<TraceEvent> = (0..n)
                        .map(|_| {
                            let mask = match rng.next() % 5 {
                                0 => LaneMask(0),                      // empty
                                1 => LaneMask(1 << (rng.next() % 32)), // single lane
                                2 => LaneMask(u32::MAX),               // full warp
                                _ => LaneMask(rng.next() as u32),      // arbitrary
                            };
                            let mut addrs = [0u64; WARP_SIZE];
                            for (lane, slot) in addrs.iter_mut().enumerate() {
                                if mask.is_active(lane) {
                                    *slot = match rng.next() % 4 {
                                        0 => u64::MAX - (rng.next() % 3), // wraparound deltas
                                        1 => rng.next(),                  // scattered
                                        _ => 1024 + lane as u64 * 4,      // strided
                                    };
                                }
                            }
                            TraceEvent {
                                op: TraceOp::ALL[(rng.next() % 6) as usize],
                                warp: rng.next() as u32,
                                mask,
                                lane_bytes: (rng.next() % 17) as u32,
                                transactions: if rng.next().is_multiple_of(3) {
                                    0
                                } else {
                                    rng.next() as u32
                                },
                                cycles: rng.next() as u32,
                                addrs,
                            }
                        })
                        .collect();
                    w.block_events(block_id as usize, &events);
                    blocks_want.push((block_id, events.iter().map(|e| e.canonical()).collect()));
                }
                let stats = KernelStats {
                    fma_lane_ops: rng.next(),
                    gm_ld_transactions: rng.next(),
                    sm_ld_cycles: rng.next(),
                    sm_conflict_histogram: std::array::from_fn(|_| rng.next()),
                    blocks_total: blocks,
                    ..Default::default()
                };
                w.launch_end(&stats);
                want.push(LaunchTrace {
                    header: LaunchHeader {
                        kernel: name,
                        grid_blocks: blocks,
                        executed_blocks: blocks,
                        threads_per_block: threads_per_block as u64,
                        smem_bytes: u64::from(smem_bytes),
                        regs_per_thread: u64::from(regs_per_thread),
                        overlap,
                        spec: Some(spec.clone()),
                    },
                    blocks: blocks_want,
                    end: LaunchEnd {
                        aborted: false,
                        fma_lane_ops: stats.fma_lane_ops,
                        stats: Some(stats),
                    },
                });
            }
            let (_, err) = w.into_inner();
            assert!(err.is_none());
            let got = read_launches(&buf.take()).unwrap();
            assert_eq!(got.len(), want.len(), "seed {seed}");
            for (g, w_) in got.iter().zip(&want) {
                assert_eq!(g.header, w_.header, "seed {seed}");
                assert_eq!(g.end, w_.end, "seed {seed}");
                assert_eq!(g.blocks, w_.blocks, "seed {seed}");
            }
        }
    }
}

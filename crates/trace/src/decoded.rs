//! Decoded in-memory traces: parse the KTRC byte stream **once**, re-price
//! it many times.
//!
//! [`read_trace`] is a streaming parser — cheap in memory, but every
//! consumer pays the full varint/zigzag decode again. That is the wrong
//! trade for the replay farm, which prices one capture under dozens of
//! hypothetical [`GpuSpec`](kconv_sim::GpuSpec)s: decoding dominates
//! pricing. A [`Trace`] materializes the stream into three flat slabs per
//! launch —
//!
//! * fixed-size [`EventHead`]s (op, warp, mask, bytes/lane, recorded
//!   transactions/cycles),
//! * one contiguous `u64` lane-address slab, [`WARP_SIZE`] entries per
//!   event in canonical form (inactive lanes zeroed), and
//! * block spans (`block_id` + event range)
//!
//! — no per-event `Vec`, no pointer chasing. Replay walks the slabs and
//! borrows each event's addresses as a zero-copy
//! [`&WarpAddrs`](kconv_sim::WarpAddrs), exactly the type the shared
//! pricing functions take.
//!
//! The decoded form is *lossless* with respect to the pricing inputs:
//! every header, end record and event field that [`read_launches`]
//! materializes is recoverable (see [`BlockView::to_events`]), which the
//! round-trip property test pins.
//!
//! [`read_trace`]: crate::read_trace
//! [`read_launches`]: crate::read_launches

use kconv_sim::{LaneMask, TraceEvent, TraceOp, WarpAddrs, WARP_SIZE};

use crate::format::{LaunchEnd, LaunchHeader, TraceVisitor};
use crate::TraceError;

/// The fixed-size part of one traced warp instruction — everything except
/// the lane addresses, which live in the launch's shared address slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHead {
    /// Which instruction.
    pub op: TraceOp,
    /// Issuing warp id within its block.
    pub warp: u32,
    /// Active lanes.
    pub mask: LaneMask,
    /// Bytes accessed per active lane.
    pub lane_bytes: u32,
    /// Transactions charged at capture time.
    pub transactions: u32,
    /// Cycles charged at capture time.
    pub cycles: u32,
}

/// One block's event range inside a [`DecodedLaunch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockSpan {
    id: u64,
    start: usize,
    len: usize,
}

/// One launch of a [`Trace`]: header, end record, and the flat event slabs.
#[derive(Debug, Clone)]
pub struct DecodedLaunch {
    /// Launch metadata (including the capture spec for v2+ traces).
    pub header: LaunchHeader,
    /// How the launch ended (synthesized aborted on truncation, like the
    /// streaming reader).
    pub end: LaunchEnd,
    blocks: Vec<BlockSpan>,
    heads: Vec<EventHead>,
    /// Lane addresses, `WARP_SIZE` per event, inactive lanes zeroed.
    addrs: Vec<u64>,
}

impl DecodedLaunch {
    fn new(header: LaunchHeader) -> Self {
        DecodedLaunch {
            header,
            end: LaunchEnd {
                aborted: true,
                fma_lane_ops: 0,
                stats: None,
            },
            blocks: Vec::new(),
            heads: Vec::new(),
            addrs: Vec::new(),
        }
    }

    /// Number of traced events across all blocks.
    pub fn event_count(&self) -> usize {
        self.heads.len()
    }

    /// Number of block records.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks in delivery order, each a borrowed view into the slabs.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = BlockView<'_>> + '_ {
        self.blocks.iter().map(|span| BlockView {
            block_id: span.id,
            heads: &self.heads[span.start..span.start + span.len],
            addrs: &self.addrs[span.start * WARP_SIZE..(span.start + span.len) * WARP_SIZE],
        })
    }
}

/// Borrowed view of one block's events inside a [`DecodedLaunch`].
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    /// The block id recorded by the writer.
    pub block_id: u64,
    heads: &'a [EventHead],
    addrs: &'a [u64],
}

impl<'a> BlockView<'a> {
    /// Number of events in this block.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether the block recorded no events.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// The block's events in issue order, each head paired with a
    /// zero-copy borrow of its 32 lane addresses.
    pub fn events(&self) -> impl ExactSizeIterator<Item = (&'a EventHead, &'a WarpAddrs)> + 'a {
        let addrs = self.addrs;
        self.heads.iter().enumerate().map(move |(i, head)| {
            let slice = &addrs[i * WARP_SIZE..(i + 1) * WARP_SIZE];
            (head, <&WarpAddrs>::try_from(slice).expect("slab stride"))
        })
    }

    /// Re-materializes the block as owned [`TraceEvent`]s (canonical form),
    /// for comparison against [`read_launches`](crate::read_launches).
    pub fn to_events(&self) -> Vec<TraceEvent> {
        self.events()
            .map(|(head, addrs)| TraceEvent {
                op: head.op,
                warp: head.warp,
                mask: head.mask,
                lane_bytes: head.lane_bytes,
                transactions: head.transactions,
                cycles: head.cycles,
                addrs: *addrs,
            })
            .collect()
    }
}

/// A fully decoded KTRC byte stream: every launch in slab form, ready to be
/// re-priced many times without touching the varint decoder again.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    launches: Vec<DecodedLaunch>,
}

impl Trace {
    /// Decodes a binary KTRC stream (any readable version) into slabs.
    ///
    /// # Errors
    ///
    /// Propagates [`read_trace`](crate::read_trace)'s
    /// [`TraceError::Malformed`] on corrupt or truncated input.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        struct Builder {
            done: Vec<DecodedLaunch>,
            open: Option<DecodedLaunch>,
        }
        impl TraceVisitor for Builder {
            fn launch_begin(&mut self, header: &LaunchHeader) {
                self.open = Some(DecodedLaunch::new(header.clone()));
            }
            fn block_begin(&mut self, block_id: u64, event_count: u64) {
                if let Some(open) = self.open.as_mut() {
                    open.blocks.push(BlockSpan {
                        id: block_id,
                        start: open.heads.len(),
                        len: 0,
                    });
                    // The count is an untrusted varint: clamp the
                    // speculative pre-allocation so a corrupt header
                    // cannot demand gigabytes (or overflow the capacity
                    // math) before the event bytes fail to decode.
                    let reserve = event_count.min(crate::RESERVE_EVENTS_MAX) as usize;
                    open.heads.reserve(reserve);
                    open.addrs.reserve(reserve * WARP_SIZE);
                }
            }
            fn event(&mut self, _block_id: u64, ev: &TraceEvent) {
                if let Some(open) = self.open.as_mut() {
                    open.heads.push(EventHead {
                        op: ev.op,
                        warp: ev.warp,
                        mask: ev.mask,
                        lane_bytes: ev.lane_bytes,
                        transactions: ev.transactions,
                        cycles: ev.cycles,
                    });
                    // The decoder leaves inactive lanes zeroed, so the slab
                    // holds the canonical form by construction.
                    open.addrs.extend_from_slice(&ev.addrs);
                    if let Some(span) = open.blocks.last_mut() {
                        span.len += 1;
                    }
                }
            }
            fn launch_end(&mut self, end: &LaunchEnd) {
                if let Some(mut open) = self.open.take() {
                    open.end = *end;
                    self.done.push(open);
                }
            }
        }
        let mut builder = Builder {
            done: Vec::new(),
            open: None,
        };
        crate::format::read_trace(bytes, &mut builder)?;
        Ok(Trace {
            launches: builder.done,
        })
    }

    /// The decoded launches in stream order.
    pub fn launches(&self) -> &[DecodedLaunch] {
        &self.launches
    }

    /// Total events across all launches.
    pub fn total_events(&self) -> usize {
        self.launches.iter().map(DecodedLaunch::event_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{read_launches, SharedBuffer, TraceWriter};
    use kconv_sim::{GpuSpec, KernelStats, OverlapMode, TraceLaunch, TraceSink};

    /// splitmix64, as in the format round-trip property test.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn random_stream(seed: u64) -> Vec<u8> {
        let mut rng = Rng(0xFA43_0000 + seed);
        let spec = GpuSpec::kepler_k40m();
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        for li in 0..1 + (seed % 3) {
            let name = format!("kernel-{seed}-{li}");
            let blocks = 1 + (rng.next() % 4);
            w.launch_begin(&TraceLaunch {
                kernel: &name,
                grid_blocks: blocks as usize,
                executed_blocks: blocks as usize,
                threads_per_block: 64,
                smem_bytes: (rng.next() % 48_000) as u32,
                regs_per_thread: 16 + (rng.next() % 200) as u32,
                overlap: OverlapMode::from_u8((rng.next() % 3) as u8).unwrap(),
                spec: &spec,
            });
            for block_id in 0..blocks {
                let events: Vec<TraceEvent> = (0..rng.next() % 20)
                    .map(|_| {
                        let mask = LaneMask(match rng.next() % 4 {
                            0 => 0,
                            1 => 1 << (rng.next() % 32),
                            2 => u32::MAX,
                            _ => rng.next() as u32,
                        });
                        let mut addrs = [0u64; WARP_SIZE];
                        for (lane, slot) in addrs.iter_mut().enumerate() {
                            if mask.is_active(lane) {
                                *slot = rng.next() % (1 << 40);
                            }
                        }
                        TraceEvent {
                            op: TraceOp::ALL[(rng.next() % 6) as usize],
                            warp: rng.next() as u32,
                            mask,
                            lane_bytes: (rng.next() % 17) as u32,
                            transactions: rng.next() as u32,
                            cycles: rng.next() as u32,
                            addrs,
                        }
                    })
                    .collect();
                w.block_events(block_id as usize, &events);
            }
            w.launch_end(&KernelStats {
                fma_lane_ops: rng.next(),
                blocks_total: blocks,
                ..Default::default()
            });
        }
        let (_, err) = w.into_inner();
        assert!(err.is_none());
        buf.take()
    }

    /// Corpus round-trip property: on seeded random streams the decoded
    /// slab view reproduces exactly what the materializing reader sees —
    /// headers, ends, block ids, and every event field-exact.
    #[test]
    fn decoded_view_equals_materialized_launches() {
        for seed in 0..8u64 {
            let bytes = random_stream(seed);
            let want = read_launches(&bytes).unwrap();
            let trace = Trace::decode(&bytes).unwrap();
            assert_eq!(trace.launches().len(), want.len(), "seed {seed}");
            for (dl, wl) in trace.launches().iter().zip(&want) {
                assert_eq!(dl.header, wl.header, "seed {seed}");
                assert_eq!(dl.end, wl.end, "seed {seed}");
                assert_eq!(dl.block_count(), wl.blocks.len(), "seed {seed}");
                assert_eq!(
                    dl.event_count(),
                    wl.blocks.iter().map(|(_, evs)| evs.len()).sum::<usize>(),
                    "seed {seed}"
                );
                for (bv, (wid, wevs)) in dl.blocks().zip(&wl.blocks) {
                    assert_eq!(bv.block_id, *wid, "seed {seed}");
                    assert_eq!(bv.len(), wevs.len(), "seed {seed}");
                    assert_eq!(&bv.to_events(), wevs, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn truncated_streams_decode_as_aborted_like_the_streaming_reader() {
        let bytes = random_stream(3);
        // Cut inside the stream: both readers must agree on the prefix.
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            match (read_launches(&bytes[..cut]), Trace::decode(&bytes[..cut])) {
                (Ok(want), Ok(trace)) => {
                    assert_eq!(trace.launches().len(), want.len(), "cut {cut}");
                    for (dl, wl) in trace.launches().iter().zip(&want) {
                        assert_eq!(dl.end, wl.end, "cut {cut}");
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("readers disagree at cut {cut}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn empty_trace_decodes_empty() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::MAGIC);
        bytes.push(crate::VERSION);
        let trace = Trace::decode(&bytes).unwrap();
        assert!(trace.launches().is_empty());
        assert_eq!(trace.total_events(), 0);
    }
}

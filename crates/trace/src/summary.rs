//! Constant-memory per-launch roll-ups of a binary trace.
//!
//! A [`TraceSummary`] is what you can compute in one streaming pass with
//! O(1) state per launch: per-op totals (events, lane accesses, useful
//! bytes, transactions, cycles) and the shared-memory conflict histogram.
//! Anything that needs per-address state (distinct lines, read
//! multiplicity) lives in [`crate::analyze`].

use kconv_sim::{KernelStats, TraceEvent, TraceOp};

use crate::format::{read_trace, LaunchEnd, LaunchHeader, TraceVisitor};
use crate::TraceError;

/// Totals for one [`TraceOp`] kind within a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTotals {
    /// Warp instructions of this kind.
    pub events: u64,
    /// Active lanes summed over those instructions.
    pub lane_accesses: u64,
    /// Bytes the active lanes requested (`mask.count() * lane_bytes`).
    pub useful_bytes: u64,
    /// Global-memory bus transactions charged (0 for SM/CM ops).
    pub transactions: u64,
    /// SM/CM pipeline cycles charged (0 for GM ops).
    pub cycles: u64,
}

/// One launch's trace rolled up to totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Kernel name from the launch header.
    pub kernel: String,
    /// Blocks whose events are in the trace.
    pub blocks: u64,
    /// Total events across all ops.
    pub events: u64,
    /// Totals per op kind, indexed by [`TraceOp::index`].
    pub per_op: [OpTotals; TraceOp::COUNT],
    /// Shared-memory accesses (loads + stores) bucketed by their replay
    /// cost, using the same degree buckets as
    /// [`KernelStats::sm_conflict_histogram`]: 1, 2, 3–4, 5–8, 9–16,
    /// 17–32 cycles.
    pub sm_conflict_histogram: [u64; 6],
    /// `fma_lane_ops` from the launch-end record (0 if aborted).
    pub fma_lane_ops: u64,
    /// Whether the launch aborted (faulted or truncated trace).
    pub aborted: bool,
    /// Fewest barrier-arrival events recorded by any single block in the
    /// trace (0 when the trace holds no blocks). With one
    /// [`TraceOp::Bar`] event per warp per `__syncthreads()`, a block of
    /// `w` warps running `b` barriers records `w * b` arrivals.
    pub block_bar_min: u64,
    /// Most barrier-arrival events recorded by any single block.
    pub block_bar_max: u64,
    /// Arrivals in the block currently being absorbed; folded into
    /// min/max at the next block boundary or at launch end.
    open_block_bars: u64,
    /// Whether a block is open (so empty traces fold nothing).
    in_block: bool,
}

impl TraceSummary {
    pub(crate) fn new(kernel: String) -> Self {
        TraceSummary {
            kernel,
            blocks: 0,
            events: 0,
            per_op: [OpTotals::default(); TraceOp::COUNT],
            sm_conflict_histogram: [0; 6],
            fma_lane_ops: 0,
            aborted: true,
            block_bar_min: u64::MAX,
            block_bar_max: 0,
            open_block_bars: 0,
            in_block: false,
        }
    }

    pub(crate) fn absorb(&mut self, ev: &TraceEvent) {
        self.events += 1;
        let t = &mut self.per_op[ev.op.index()];
        t.events += 1;
        t.lane_accesses += u64::from(ev.mask.count());
        t.useful_bytes += ev.useful_bytes();
        t.transactions += u64::from(ev.transactions);
        t.cycles += u64::from(ev.cycles);
        if matches!(ev.op, TraceOp::SmLd | TraceOp::SmSt) && ev.cycles > 0 {
            self.sm_conflict_histogram[KernelStats::conflict_bucket(u64::from(ev.cycles))] += 1;
        }
        if ev.op == TraceOp::Bar {
            self.open_block_bars += 1;
        }
    }

    /// Marks a block boundary: folds the previous block's barrier count
    /// and counts the new block.
    pub(crate) fn begin_block(&mut self) {
        self.fold_open_block();
        self.blocks += 1;
        self.in_block = true;
    }

    fn fold_open_block(&mut self) {
        if self.in_block {
            self.block_bar_min = self.block_bar_min.min(self.open_block_bars);
            self.block_bar_max = self.block_bar_max.max(self.open_block_bars);
            self.open_block_bars = 0;
            self.in_block = false;
        }
    }

    /// Applies the launch-end record and closes the last block.
    pub(crate) fn finalize(&mut self, end: &LaunchEnd) {
        self.fold_open_block();
        if self.block_bar_min == u64::MAX {
            self.block_bar_min = 0;
        }
        self.aborted = end.aborted;
        self.fma_lane_ops = end.fma_lane_ops;
    }

    /// Summarizes every launch in a binary trace, in file order.
    ///
    /// # Errors
    ///
    /// Propagates [`read_trace`](crate::read_trace)'s errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Vec<TraceSummary>, TraceError> {
        #[derive(Default)]
        struct Roll {
            done: Vec<TraceSummary>,
            open: Option<TraceSummary>,
        }
        impl TraceVisitor for Roll {
            fn launch_begin(&mut self, header: &LaunchHeader) {
                self.open = Some(TraceSummary::new(header.kernel.clone()));
            }
            fn block_begin(&mut self, _block_id: u64, _event_count: u64) {
                if let Some(open) = self.open.as_mut() {
                    open.begin_block();
                }
            }
            fn event(&mut self, _block_id: u64, ev: &TraceEvent) {
                if let Some(open) = self.open.as_mut() {
                    open.absorb(ev);
                }
            }
            fn launch_end(&mut self, end: &LaunchEnd) {
                if let Some(mut open) = self.open.take() {
                    open.finalize(end);
                    self.done.push(open);
                }
            }
        }
        let mut roll = Roll::default();
        read_trace(bytes, &mut roll)?;
        Ok(roll.done)
    }

    /// Totals for one op kind.
    pub fn op(&self, op: TraceOp) -> &OpTotals {
        &self.per_op[op.index()]
    }

    /// Useful bytes loaded from global memory (plain + read-only path).
    pub fn gm_ld_useful_bytes(&self) -> u64 {
        self.op(TraceOp::GmLd).useful_bytes + self.op(TraceOp::GmLdRo).useful_bytes
    }

    /// Useful bytes stored to global memory.
    pub fn gm_st_useful_bytes(&self) -> u64 {
        self.op(TraceOp::GmSt).useful_bytes
    }

    /// Global-memory bus transactions (loads + stores).
    pub fn gm_transactions(&self) -> u64 {
        self.op(TraceOp::GmLd).transactions
            + self.op(TraceOp::GmLdRo).transactions
            + self.op(TraceOp::GmSt).transactions
    }

    /// Shared-memory pipeline cycles (loads + stores, replays included).
    pub fn sm_cycles(&self) -> u64 {
        self.op(TraceOp::SmLd).cycles + self.op(TraceOp::SmSt).cycles
    }

    /// Shared-memory warp accesses (loads + stores).
    pub fn sm_accesses(&self) -> u64 {
        self.op(TraceOp::SmLd).events + self.op(TraceOp::SmSt).events
    }

    /// Barrier-arrival events across the launch (one per warp per
    /// `__syncthreads()`) — the trace-side counterpart of
    /// [`KernelStats::bar_syncs`]. 0 for pre-v4 captures, which did not
    /// record [`TraceOp::Bar`] events.
    pub fn bar_arrivals(&self) -> u64 {
        self.op(TraceOp::Bar).events
    }

    /// Shared-memory cycles per FMA lane-op — the paper's "SM transactions
    /// per FMA" axis. `None` when the trace carries no FMA count (aborted
    /// launch).
    pub fn sm_cycles_per_fma(&self) -> Option<f64> {
        (self.fma_lane_ops > 0).then(|| self.sm_cycles() as f64 / self.fma_lane_ops as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;
    use crate::SharedBuffer;
    use kconv_sim::{GpuSpec, LaneMask, OverlapMode, TraceLaunch, TraceSink, WARP_SIZE};

    fn ev(op: TraceOp, lanes: usize, cycles: u32, tx: u32) -> TraceEvent {
        TraceEvent {
            op,
            warp: 0,
            mask: LaneMask::first(lanes),
            lane_bytes: 4,
            transactions: tx,
            cycles,
            addrs: [0; WARP_SIZE],
        }
    }

    #[test]
    fn totals_and_histogram() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = GpuSpec::kepler_k40m();
        w.launch_begin(&TraceLaunch {
            kernel: "k",
            grid_blocks: 2,
            executed_blocks: 2,
            threads_per_block: 32,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        w.block_events(
            0,
            &[
                ev(TraceOp::GmLd, 32, 0, 2),
                ev(TraceOp::SmLd, 32, 1, 0),
                ev(TraceOp::SmSt, 16, 4, 0),
            ],
        );
        w.block_events(
            1,
            &[ev(TraceOp::SmLd, 32, 32, 0), ev(TraceOp::CmLd, 8, 3, 0)],
        );
        w.launch_end(&KernelStats {
            fma_lane_ops: 1000,
            ..Default::default()
        });
        let summaries = TraceSummary::from_bytes(&buf.take()).unwrap();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.kernel, "k");
        assert_eq!(s.blocks, 2);
        assert_eq!(s.events, 5);
        assert!(!s.aborted);
        assert_eq!(s.gm_ld_useful_bytes(), 32 * 4);
        assert_eq!(s.gm_transactions(), 2);
        assert_eq!(s.op(TraceOp::SmLd).lane_accesses, 64);
        assert_eq!(s.sm_cycles(), 1 + 4 + 32);
        assert_eq!(s.sm_accesses(), 3);
        assert_eq!(s.op(TraceOp::CmLd).cycles, 3);
        // Buckets: 1 cycle -> 0, 4 -> 2, 32 -> 5.
        assert_eq!(s.sm_conflict_histogram, [1, 0, 1, 0, 0, 1]);
        assert_eq!(s.fma_lane_ops, 1000);
        assert_eq!(s.sm_cycles_per_fma(), Some(0.037));
        // No Bar events in this trace: zero arrivals everywhere.
        assert_eq!(s.bar_arrivals(), 0);
        assert_eq!((s.block_bar_min, s.block_bar_max), (0, 0));
    }

    fn bar() -> TraceEvent {
        TraceEvent {
            op: TraceOp::Bar,
            warp: 0,
            mask: LaneMask(0),
            lane_bytes: 0,
            transactions: 0,
            cycles: 0,
            addrs: [0; WARP_SIZE],
        }
    }

    #[test]
    fn per_block_bar_counts_roll_into_min_max() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = GpuSpec::kepler_k40m();
        w.launch_begin(&TraceLaunch {
            kernel: "k",
            grid_blocks: 3,
            executed_blocks: 3,
            threads_per_block: 32,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        // Blocks with 2, 4 and 0 barrier arrivals.
        w.block_events(0, &[bar(), ev(TraceOp::GmLd, 32, 0, 2), bar()]);
        w.block_events(1, &[bar(), bar(), bar(), bar()]);
        w.block_events(2, &[ev(TraceOp::SmLd, 32, 1, 0)]);
        w.launch_end(&KernelStats::default());
        let summaries = TraceSummary::from_bytes(&buf.take()).unwrap();
        let s = &summaries[0];
        assert_eq!(s.bar_arrivals(), 6);
        assert_eq!(s.block_bar_min, 0);
        assert_eq!(s.block_bar_max, 4);
        // Bar events move no bytes and charge no costs.
        assert_eq!(s.op(TraceOp::Bar).useful_bytes, 0);
        assert_eq!(s.op(TraceOp::Bar).cycles, 0);
    }
}

//! # kconv-trace — binary warp traces and memory-efficiency analysis
//!
//! Companion crate to `kconv-sim`'s per-warp trace hooks
//! ([`TraceSink`](kconv_sim::TraceSink)). It ships three layers:
//!
//! * [`TraceWriter`] / [`read_trace`] — a compact binary format (varint +
//!   zigzag address deltas, see [`format`]) streaming every warp memory
//!   instruction of a launch to any `Write` target. [`SharedBuffer`] keeps
//!   a handle on the bytes while the writer is boxed inside the `Gpu`.
//!   [`Trace`] materializes the stream into flat slabs (see [`decoded`])
//!   so replay consumers decode once and re-price many times.
//! * [`TraceSummary`] — one streaming pass, O(1) state: per-op totals and
//!   the bank-conflict histogram.
//! * [`EfficiencyReport`] — address-granular analysis: distinct
//!   words/lines loaded from global memory, read-multiplicity histograms
//!   (the paper's communication-optimality claim is "every interior pixel
//!   read exactly once"), and the shared-memory image/filter read split.
//!
//! Because the simulator delivers identical event streams under serial
//! and threaded execution, two traces of the same launch are comparable
//! byte for byte — the `trace_report` harness in `kconv-bench` relies on
//! exactly that.
//!
//! ## Capturing a trace
//!
//! ```
//! use kconv_sim::{lane_addrs, Gpu, GpuSpec, LaneMask, LaunchConfig, SimMode};
//! use kconv_trace::{SharedBuffer, TraceSummary, TraceWriter};
//!
//! # fn main() -> Result<(), kconv_sim::SimError> {
//! let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
//! let src = gpu.alloc_f32(32)?;
//! gpu.upload_f32(src, &[1.0; 32])?;
//!
//! let buf = SharedBuffer::new();
//! gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
//! let cfg = LaunchConfig::new("read", 1, 32);
//! gpu.launch(&cfg, SimMode::Full, |blk| {
//!     blk.each_warp(|w| {
//!         w.ld_global::<1>(&lane_addrs(src.f32_addr(0), 4), LaneMask::ALL);
//!     });
//! })?;
//! gpu.set_trace_sink(None); // drop the writer, flushing the buffer
//!
//! let summary = &TraceSummary::from_bytes(&buf.take()).unwrap()[0];
//! assert_eq!(summary.gm_ld_useful_bytes(), 128);
//! assert_eq!(summary.gm_transactions(), 1); // coalesced to one line
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod decoded;
pub mod format;
pub mod summary;
pub mod varint;

pub use analyze::{EfficiencyReport, KernelMeta, LINE_BYTES, WORD_BYTES};
pub use decoded::{BlockView, DecodedLaunch, EventHead, Trace};
pub use format::{
    read_launches, read_trace, LaunchEnd, LaunchHeader, LaunchTrace, SharedBuffer, TraceVisitor,
    TraceWriter, MAGIC, V1, V2, V3, VERSION,
};
pub use summary::{OpTotals, TraceSummary};

/// Upper bound on speculative event pre-allocation from one block
/// header's (untrusted) event-count varint. A corrupt or hostile count
/// reserves at most this many event slots up front; decoding then fails
/// on the event bytes themselves, or the buffers grow organically for a
/// genuinely larger well-formed block. 64Ki events ≈ 17 MB of address
/// slab — far above any real block, far below an allocation-failure DoS.
pub const RESERVE_EVENTS_MAX: u64 = 1 << 16;

/// Errors reading a binary trace.
#[derive(Debug)]
pub enum TraceError {
    /// The byte stream is not a well-formed trace.
    Malformed {
        /// Byte offset near which parsing failed.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
    /// An underlying I/O error (reading a trace file).
    Io(std::io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { offset, reason } => {
                write!(f, "malformed trace at byte {offset}: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kconv_sim::{
        lane_addrs, Gpu, GpuSpec, LaneMask, LaunchConfig, Parallelism, SimMode, TraceOp,
    };

    /// End to end against the simulator: the trace's totals must agree
    /// with the launch's own counters, and serial vs threaded capture must
    /// produce byte-identical streams.
    #[test]
    fn trace_totals_match_kernel_stats_and_parallelism_is_invisible() {
        let run = |parallelism: Parallelism| {
            let mut gpu = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let src = gpu.alloc_f32(16 * 64).unwrap();
            let dst = gpu.alloc_f32(16 * 64).unwrap();
            let vals: Vec<f32> = (0..16 * 64).map(|i| i as f32).collect();
            gpu.upload_f32(src, &vals).unwrap();
            gpu.write_const_f32(0, &[3.0; 64]).unwrap();
            let buf = SharedBuffer::new();
            gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
            let cfg = LaunchConfig::new("roundtrip", 16, 64).with_smem(2048);
            let report = gpu
                .launch(&cfg, SimMode::Full, |blk| {
                    let id = blk.dims.block_id as u64;
                    blk.each_warp(|w| {
                        let a = lane_addrs(src.f32_addr(id * 64 + w.warp_id() as u64 * 32), 4);
                        let x = w.ld_global::<1>(&a, LaneMask::ALL);
                        let c =
                            w.ld_const(&kconv_sim::lane_addrs_uniform(4 * id % 64), LaneMask::ALL);
                        let s = lane_addrs(w.warp_id() as u64 * 128, 4);
                        let y: [[f32; 1]; 32] = std::array::from_fn(|l| [x[l][0] * c[l]]);
                        w.st_shared::<1>(&s, &y, LaneMask::ALL);
                        let z = w.ld_shared::<1>(&s, LaneMask::ALL);
                        let d = lane_addrs(dst.f32_addr(id * 64 + w.warp_id() as u64 * 32), 4);
                        w.st_global::<1>(&d, &z, LaneMask::ALL);
                        w.count_fma(32);
                    });
                    blk.sync();
                })
                .unwrap();
            gpu.set_trace_sink(None);
            (report.stats, buf.take())
        };

        let (stats, bytes) = run(Parallelism::Serial);
        let summaries = TraceSummary::from_bytes(&bytes).unwrap();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.kernel, "roundtrip");
        assert_eq!(s.blocks, 16);
        assert!(!s.aborted);
        // Every traced total agrees with the simulator's own counters.
        assert_eq!(s.op(TraceOp::GmLd).transactions, stats.gm_ld_transactions);
        assert_eq!(s.op(TraceOp::GmSt).transactions, stats.gm_st_transactions);
        assert_eq!(s.gm_ld_useful_bytes(), stats.gm_ld_bytes_useful);
        assert_eq!(s.gm_st_useful_bytes(), stats.gm_st_bytes_useful);
        assert_eq!(s.op(TraceOp::SmLd).cycles, stats.sm_ld_cycles);
        assert_eq!(s.op(TraceOp::SmSt).cycles, stats.sm_st_cycles);
        assert_eq!(s.op(TraceOp::SmLd).events, stats.sm_ld_requests);
        assert_eq!(s.op(TraceOp::SmSt).events, stats.sm_st_requests);
        assert_eq!(s.op(TraceOp::CmLd).events, stats.cm_requests);
        assert_eq!(s.op(TraceOp::CmLd).cycles, stats.cm_cycles);
        assert_eq!(s.fma_lane_ops, stats.fma_lane_ops);
        assert_eq!(
            s.sm_conflict_histogram.iter().sum::<u64>(),
            stats.sm_conflict_histogram.iter().sum::<u64>()
        );

        // Threaded capture produces the identical byte stream.
        for threads in [2, 5] {
            let (par_stats, par_bytes) = run(Parallelism::Threads(threads));
            assert_eq!(par_stats, stats, "{threads} threads");
            assert_eq!(par_bytes, bytes, "{threads} threads");
        }
    }

    /// The analyzer on a real launch: a kernel that reads every word once
    /// plus a halo row read twice.
    #[test]
    fn analyzer_counts_multiplicity_on_a_real_launch() {
        let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
        let src = gpu.alloc_f32(4 * 32).unwrap();
        gpu.upload_f32(src, &vec![1.0; 4 * 32]).unwrap();
        let buf = SharedBuffer::new();
        gpu.set_trace_sink(Some(Box::new(TraceWriter::new(buf.clone()))));
        let cfg = LaunchConfig::new("halo", 2, 32);
        gpu.launch(&cfg, SimMode::Full, |blk| {
            let id = blk.dims.block_id as u64;
            blk.each_warp(|w| {
                // Each block reads rows [2*id, 2*id+1] plus halo row 2*id+2
                // clamped to the last row; block 0's halo row 2 is block
                // 1's first row -> 32 words read twice.
                for row in 0..3u64 {
                    let r = (2 * id + row).min(3);
                    w.ld_global::<1>(&lane_addrs(src.f32_addr(r * 32), 4), LaneMask::ALL);
                }
            });
        })
        .unwrap();
        gpu.set_trace_sink(None);
        let reports = EfficiencyReport::analyze(
            &buf.take(),
            &KernelMeta {
                out_pixels: 4 * 32,
                sm_image_split: None,
            },
        )
        .unwrap();
        let r = &reports[0];
        assert_eq!(r.gm_ld_distinct_words, 4 * 32);
        // Block 0 re-reads row 2; block 1 re-reads row 3 (clamped halo).
        assert_eq!(r.gm_read_multiplicity, [64, 64, 0, 0]);
        assert_eq!(r.duplicate_word_reads(), 64);
        assert_eq!(r.gm_ld_distinct_lines, 4); // 4 rows x 128 B
        assert_eq!(r.gm_ld_bytes_per_out_pixel(), 6.0);
    }
}

//! Address-level memory-efficiency analysis of binary traces.
//!
//! Where [`TraceSummary`] answers "how much traffic", this module answers
//! the paper's sharper questions: *which* global-memory words were read
//! and how many times each (communication optimality — §3 of the paper
//! claims each interior input pixel is fetched exactly once), how many
//! distinct 128-byte lines were touched, and how shared-memory reads split
//! between image pixels and filter fragments (the (W_T+K−1)/(W_T·K)
//! layout claim).

use std::collections::HashMap;

use kconv_sim::{TraceEvent, TraceOp};

use crate::format::{read_trace, LaunchEnd, LaunchHeader, TraceVisitor};
use crate::summary::TraceSummary;
use crate::TraceError;

/// Global-memory transaction (line) size the distinct-line count uses.
pub const LINE_BYTES: u64 = 128;
/// Word size for read-multiplicity accounting (one `f32`).
pub const WORD_BYTES: u64 = 4;

/// Per-kernel facts the trace alone cannot know, supplied by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelMeta {
    /// Output pixels the launch produced (denominator for bytes/pixel).
    pub out_pixels: u64,
    /// Shared-memory byte threshold splitting the block's layout: `SmLd`
    /// lanes with address below it are image reads, at or above it filter
    /// reads. `None` disables the split (both counters read 0).
    pub sm_image_split: Option<u64>,
}

/// One launch's trace analyzed at address granularity.
#[derive(Debug, Clone)]
pub struct EfficiencyReport {
    /// The O(1) roll-up of the same launch.
    pub summary: TraceSummary,
    /// Output pixels (copied from [`KernelMeta`]).
    pub out_pixels: u64,
    /// Distinct 4-byte global-memory words loaded (plain + read-only path).
    pub gm_ld_distinct_words: u64,
    /// Distinct 128-byte global-memory lines loaded.
    pub gm_ld_distinct_lines: u64,
    /// Word read-multiplicity histogram: words read exactly 1, 2, 3, and
    /// ≥ 4 times.
    pub gm_read_multiplicity: [u64; 4],
    /// The most times any single word was loaded.
    pub gm_ld_word_reads_max: u64,
    /// `SmLd` lane reads below the image/filter split.
    pub sm_image_lane_reads: u64,
    /// `SmLd` lane reads at or above the split.
    pub sm_filter_lane_reads: u64,
}

impl EfficiencyReport {
    /// Analyzes every launch in a binary trace, applying the same
    /// [`KernelMeta`] to each (traces produced by `trace_report` hold one
    /// launch per buffer).
    ///
    /// # Errors
    ///
    /// Propagates [`read_trace`](crate::read_trace)'s errors.
    pub fn analyze(bytes: &[u8], meta: &KernelMeta) -> Result<Vec<EfficiencyReport>, TraceError> {
        struct Pass {
            meta: KernelMeta,
            done: Vec<EfficiencyReport>,
            open: Option<Acc>,
        }
        struct Acc {
            summary: TraceSummary,
            word_reads: HashMap<u64, u64>,
            sm_image: u64,
            sm_filter: u64,
        }
        impl TraceVisitor for Pass {
            fn launch_begin(&mut self, header: &LaunchHeader) {
                self.open = Some(Acc {
                    summary: TraceSummary::new(header.kernel.clone()),
                    word_reads: HashMap::new(),
                    sm_image: 0,
                    sm_filter: 0,
                });
            }
            fn block_begin(&mut self, _block_id: u64, _event_count: u64) {
                if let Some(acc) = self.open.as_mut() {
                    acc.summary.begin_block();
                }
            }
            fn event(&mut self, _block_id: u64, ev: &TraceEvent) {
                let Some(acc) = self.open.as_mut() else {
                    return;
                };
                acc.summary.absorb(ev);
                match ev.op {
                    TraceOp::GmLd | TraceOp::GmLdRo => {
                        for lane in ev.mask.iter() {
                            let a = ev.addrs[lane];
                            let first = a / WORD_BYTES;
                            let last = (a + u64::from(ev.lane_bytes).max(1) - 1) / WORD_BYTES;
                            for w in first..=last {
                                *acc.word_reads.entry(w).or_insert(0) += 1;
                            }
                        }
                    }
                    TraceOp::SmLd => {
                        if let Some(split) = self.meta.sm_image_split {
                            for lane in ev.mask.iter() {
                                if ev.addrs[lane] < split {
                                    acc.sm_image += 1;
                                } else {
                                    acc.sm_filter += 1;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            fn launch_end(&mut self, end: &LaunchEnd) {
                let Some(mut acc) = self.open.take() else {
                    return;
                };
                acc.summary.finalize(end);
                let mut multiplicity = [0u64; 4];
                let mut max_reads = 0u64;
                let mut lines = std::collections::HashSet::new();
                for (&word, &reads) in &acc.word_reads {
                    multiplicity[(reads.min(4) - 1) as usize] += 1;
                    max_reads = max_reads.max(reads);
                    lines.insert(word * WORD_BYTES / LINE_BYTES);
                }
                self.done.push(EfficiencyReport {
                    summary: acc.summary,
                    out_pixels: self.meta.out_pixels,
                    gm_ld_distinct_words: acc.word_reads.len() as u64,
                    gm_ld_distinct_lines: lines.len() as u64,
                    gm_read_multiplicity: multiplicity,
                    gm_ld_word_reads_max: max_reads,
                    sm_image_lane_reads: acc.sm_image,
                    sm_filter_lane_reads: acc.sm_filter,
                });
            }
        }
        let mut pass = Pass {
            meta: *meta,
            done: Vec::new(),
            open: None,
        };
        read_trace(bytes, &mut pass)?;
        Ok(pass.done)
    }

    /// Useful global-memory load bytes per output pixel.
    pub fn gm_ld_bytes_per_out_pixel(&self) -> f64 {
        ratio(self.summary.gm_ld_useful_bytes(), self.out_pixels)
    }

    /// Useful global-memory store bytes per output pixel.
    pub fn gm_st_bytes_per_out_pixel(&self) -> f64 {
        ratio(self.summary.gm_st_useful_bytes(), self.out_pixels)
    }

    /// Words loaded exactly once.
    pub fn words_read_once(&self) -> u64 {
        self.gm_read_multiplicity[0]
    }

    /// Barrier-arrival events across the launch (one per warp per
    /// `__syncthreads()`); see [`TraceSummary::bar_arrivals`].
    pub fn bar_arrivals(&self) -> u64 {
        self.summary.bar_arrivals()
    }

    /// Per-block barrier-arrival range `(min, max)` — equal components
    /// mean every block ran the same number of barrier rounds, the
    /// precondition for the pipeline's per-block halving claim.
    pub fn block_bar_range(&self) -> (u64, u64) {
        (self.summary.block_bar_min, self.summary.block_bar_max)
    }

    /// Word-granular loads beyond the first touch of each word — 0 means
    /// communication-optimal traffic.
    pub fn duplicate_word_reads(&self) -> u64 {
        let total_word_reads: u64 = self
            .summary
            .op(TraceOp::GmLd)
            .useful_bytes
            .div_ceil(WORD_BYTES)
            + self
                .summary
                .op(TraceOp::GmLdRo)
                .useful_bytes
                .div_ceil(WORD_BYTES);
        total_word_reads - self.gm_ld_distinct_words
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;
    use crate::SharedBuffer;
    use kconv_sim::{
        GpuSpec, KernelStats, LaneMask, OverlapMode, TraceLaunch, TraceSink, WARP_SIZE,
    };

    fn gm_ld(base: u64, stride: u64, lanes: usize) -> TraceEvent {
        let mut addrs = [0u64; WARP_SIZE];
        for (lane, a) in addrs.iter_mut().enumerate().take(lanes) {
            *a = base + lane as u64 * stride;
        }
        TraceEvent {
            op: TraceOp::GmLd,
            warp: 0,
            mask: LaneMask::first(lanes),
            lane_bytes: 4,
            transactions: 1,
            cycles: 0,
            addrs,
        }
    }

    fn sm_ld(base: u64, stride: u64, lanes: usize) -> TraceEvent {
        let mut ev = gm_ld(base, stride, lanes);
        ev.op = TraceOp::SmLd;
        ev.transactions = 0;
        ev.cycles = 1;
        ev
    }

    #[test]
    fn multiplicity_lines_and_sm_split() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = GpuSpec::kepler_k40m();
        w.launch_begin(&TraceLaunch {
            kernel: "k",
            grid_blocks: 1,
            executed_blocks: 1,
            threads_per_block: 32,
            smem_bytes: 4096,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        w.block_events(
            0,
            &[
                gm_ld(0, 4, 32),   // words 0..32, once
                gm_ld(64, 4, 16),  // words 16..32 again -> read twice
                sm_ld(0, 4, 32),   // 32 image reads (< 1024)
                sm_ld(1024, 4, 8), // 8 filter reads (>= 1024)
                sm_ld(1020, 4, 2), // addrs 1020, 1024: one of each
            ],
        );
        w.launch_end(&KernelStats {
            fma_lane_ops: 256,
            ..Default::default()
        });
        let meta = KernelMeta {
            out_pixels: 64,
            sm_image_split: Some(1024),
        };
        let reports = EfficiencyReport::analyze(&buf.take(), &meta).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.gm_ld_distinct_words, 32);
        // Words 0..16 once, 16..32 twice.
        assert_eq!(r.gm_read_multiplicity, [16, 16, 0, 0]);
        assert_eq!(r.gm_ld_word_reads_max, 2);
        assert_eq!(r.duplicate_word_reads(), 16);
        assert_eq!(r.words_read_once(), 16);
        // 32 words * 4 B = 128 B = exactly one line.
        assert_eq!(r.gm_ld_distinct_lines, 1);
        assert_eq!(r.sm_image_lane_reads, 33);
        assert_eq!(r.sm_filter_lane_reads, 9);
        assert_eq!(r.gm_ld_bytes_per_out_pixel(), (48.0 * 4.0) / 64.0);
        // The embedded summary matches the standalone one.
        assert_eq!(r.summary.events, 5);
        assert_eq!(r.summary.fma_lane_ops, 256);
        assert!(!r.summary.aborted);
    }

    #[test]
    fn wide_lane_bytes_cover_multiple_words() {
        let buf = SharedBuffer::new();
        let mut w = TraceWriter::new(buf.clone());
        let spec = GpuSpec::kepler_k40m();
        w.launch_begin(&TraceLaunch {
            kernel: "k",
            grid_blocks: 1,
            executed_blocks: 1,
            threads_per_block: 32,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
            spec: &spec,
        });
        let mut ev = gm_ld(0, 8, 4); // float2 per lane: 8 bytes
        ev.lane_bytes = 8;
        w.block_events(0, &[ev]);
        w.launch_end(&KernelStats::default());
        let reports = EfficiencyReport::analyze(&buf.take(), &KernelMeta::default()).unwrap();
        assert_eq!(reports[0].gm_ld_distinct_words, 8);
        assert_eq!(reports[0].duplicate_word_reads(), 0);
    }
}

//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! The trace format stores almost every field as an unsigned LEB128
//! varint: 7 payload bits per byte, continuation in the high bit,
//! little-endian. Address deltas, which can be negative, are first folded
//! through the zigzag mapping so that small magnitudes of either sign stay
//! small.

use crate::TraceError;

/// Appends `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Maps a signed value to unsigned so small magnitudes encode short:
/// `0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked read position over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn truncated(&self, what: &str) -> TraceError {
        TraceError::Malformed {
            offset: self.pos,
            reason: format!("truncated {what}"),
        }
    }

    /// Reads one raw byte.
    pub fn read_u8(&mut self, what: &str) -> Result<u8, TraceError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one unsigned LEB128 varint.
    pub fn read_u64(&mut self, what: &str) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8(what)?;
            let payload = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(TraceError::Malformed {
                    offset: self.pos,
                    reason: format!("varint overflow in {what}"),
                });
            }
            v |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads one zigzag-folded signed varint.
    pub fn read_i64(&mut self, what: &str) -> Result<i64, TraceError> {
        Ok(unzigzag(self.read_u64(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let probes = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &probes {
            write_u64(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &probes {
            assert_eq!(cur.read_u64("probe").unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, -1, 1, -2, 2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut cur = Cursor::new(&[0x80]);
        assert!(matches!(
            cur.read_u64("x"),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // 11 continuation bytes can encode more than 64 bits.
        let buf = [0xff; 11];
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            cur.read_u64("x"),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn bounds_checked_reads() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.read_bytes(2, "x").unwrap(), &[1, 2]);
        assert!(cur.read_bytes(2, "x").is_err());
        assert_eq!(cur.read_u8("x").unwrap(), 3);
        assert!(cur.read_u8("x").is_err());
    }
}

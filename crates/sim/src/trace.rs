//! Per-warp memory-instruction trace hooks.
//!
//! The paper's claims are *traffic* claims — how many bytes move, through
//! which memory, with how many transactions and replays. The aggregate
//! [`KernelStats`] counters prove totals; this module exposes the
//! per-instruction stream those totals are summed from, so tools can check
//! per-access properties (e.g. "each interior pixel is read from global
//! memory exactly once") that no aggregate can express.
//!
//! A [`TraceSink`] installed on a [`Gpu`](crate::Gpu) observes one
//! [`TraceEvent`] per warp memory instruction: the op kind and memory
//! space, the live lane mask, the per-lane byte addresses, and the cost the
//! memory model charged (global-memory transactions, shared-memory
//! pipeline cycles including bank-conflict replays, constant-memory
//! serialization cycles).
//!
//! # Cost and determinism
//!
//! With no sink installed the hook is one `Option` check per warp memory
//! instruction — the same discipline as
//! [`SanitizerMode::Off`](crate::SanitizerMode): no shadow state, no event
//! construction, nothing to buffer.
//!
//! With a sink installed, events are buffered per block and delivered in
//! ascending block-id order on the launching thread — mirroring how the
//! parallel launch path replays write journals (see
//! [`crate::launch`]). A trace captured under
//! [`Parallelism::Threads`](crate::Parallelism) is therefore byte-for-byte
//! identical to the serial trace of the same launch.

use crate::fault::MemSpace;
use crate::spec::GpuSpec;
use crate::stats::KernelStats;
use crate::timing::OverlapMode;
use crate::warp::{LaneMask, WarpAddrs};

/// Which warp memory instruction produced a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceOp {
    /// Global-memory load ([`WarpCtx::ld_global`](crate::WarpCtx::ld_global)
    /// / [`ld_global_bytes`](crate::WarpCtx::ld_global_bytes)).
    GmLd = 0,
    /// Global-memory store ([`WarpCtx::st_global`](crate::WarpCtx::st_global)
    /// / [`st_global_bytes`](crate::WarpCtx::st_global_bytes)).
    GmSt = 1,
    /// Global-memory load through the read-only (texture) cache path
    /// ([`WarpCtx::ld_global_ro`](crate::WarpCtx::ld_global_ro)).
    GmLdRo = 2,
    /// Shared-memory load ([`WarpCtx::ld_shared`](crate::WarpCtx::ld_shared)
    /// / [`ld_shared_bytes`](crate::WarpCtx::ld_shared_bytes)).
    SmLd = 3,
    /// Shared-memory store ([`WarpCtx::st_shared`](crate::WarpCtx::st_shared)
    /// / [`st_shared_bytes`](crate::WarpCtx::st_shared_bytes)).
    SmSt = 4,
    /// Constant-memory load ([`WarpCtx::ld_const`](crate::WarpCtx::ld_const)).
    CmLd = 5,
    /// Block-wide barrier arrival ([`BlockCtx::sync`](crate::BlockCtx::sync)):
    /// one event per warp per `__syncthreads()`. Touches no memory — the
    /// mask, byte counts, costs and addresses are all zero — but its
    /// position in the per-block program-order stream is what lets offline
    /// tools count barrier rounds and check the pipeline's halving claim.
    Bar = 6,
}

impl TraceOp {
    /// Number of distinct op kinds (array-index bound for per-op tables).
    pub const COUNT: usize = 7;

    /// All op kinds, in tag order.
    pub const ALL: [TraceOp; TraceOp::COUNT] = [
        TraceOp::GmLd,
        TraceOp::GmSt,
        TraceOp::GmLdRo,
        TraceOp::SmLd,
        TraceOp::SmSt,
        TraceOp::CmLd,
        TraceOp::Bar,
    ];

    /// The memory space this op touches — `None` for [`TraceOp::Bar`],
    /// which is a synchronization event, not a memory access.
    pub fn space(self) -> Option<MemSpace> {
        match self {
            TraceOp::GmLd | TraceOp::GmSt | TraceOp::GmLdRo => Some(MemSpace::Global),
            TraceOp::SmLd | TraceOp::SmSt => Some(MemSpace::Shared),
            TraceOp::CmLd => Some(MemSpace::Constant),
            TraceOp::Bar => None,
        }
    }

    /// Whether this op writes (rather than reads) its space.
    pub fn is_store(self) -> bool {
        matches!(self, TraceOp::GmSt | TraceOp::SmSt)
    }

    /// Dense index for per-op tables (`0..COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of the `u8` tag used by trace encodings.
    pub fn from_u8(v: u8) -> Option<TraceOp> {
        TraceOp::ALL.get(v as usize).copied()
    }
}

impl std::fmt::Display for TraceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceOp::GmLd => "gm.ld",
            TraceOp::GmSt => "gm.st",
            TraceOp::GmLdRo => "gm.ld.ro",
            TraceOp::SmLd => "sm.ld",
            TraceOp::SmSt => "sm.st",
            TraceOp::CmLd => "cm.ld",
            TraceOp::Bar => "bar.sync",
        })
    }
}

/// One warp memory instruction as observed by the memory models.
///
/// Addresses are byte addresses in the op's space (block-local for shared
/// memory); only lanes active in `mask` are meaningful — inactive lanes
/// carry whatever the kernel's address vector held and must be ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Which memory instruction this is.
    pub op: TraceOp,
    /// Warp id within the block.
    pub warp: u32,
    /// Live lanes: the kernel's mask intersected with the warp population.
    pub mask: LaneMask,
    /// Bytes accessed per active lane (e.g. 8 for a `float2` access).
    pub lane_bytes: u32,
    /// Bus segments this instruction moved (global memory only; a fully
    /// read-only-cached load moves 0). Zero for shared/constant ops.
    pub transactions: u32,
    /// Pipeline cycles the instruction consumed beyond free: for shared
    /// memory the full access cycles including bank-conflict replays
    /// (conflict-free = 1), for constant memory the serialization cycles
    /// (distinct addresses − 1). Zero for global-memory ops.
    pub cycles: u32,
    /// Per-lane byte addresses.
    pub addrs: WarpAddrs,
}

impl TraceEvent {
    /// Bytes the active lanes actually requested.
    pub fn useful_bytes(&self) -> u64 {
        u64::from(self.mask.count()) * u64::from(self.lane_bytes)
    }

    /// Copy with the addresses of inactive lanes zeroed — the canonical
    /// form trace encodings round-trip through (inactive-lane addresses
    /// are not recorded).
    pub fn canonical(&self) -> TraceEvent {
        let mut ev = *self;
        for lane in 0..ev.addrs.len() {
            if !ev.mask.is_active(lane) {
                ev.addrs[lane] = 0;
            }
        }
        ev
    }
}

/// Launch metadata handed to [`TraceSink::launch_begin`].
///
/// Carries everything an offline consumer needs to re-price the launch
/// without the kernel: the full launch geometry and resource declaration
/// (enough to rebuild a [`LaunchConfig`](crate::LaunchConfig) for the
/// timing model) plus the capture [`GpuSpec`] the costs were charged
/// under. Binary trace formats that persist this header are
/// self-describing — see the KTRC v2 layout in `kconv-trace`.
#[derive(Debug, Clone, Copy)]
pub struct TraceLaunch<'a> {
    /// Kernel name from the [`LaunchConfig`](crate::LaunchConfig).
    pub kernel: &'a str,
    /// Blocks the grid logically contains.
    pub grid_blocks: usize,
    /// Blocks that will execute functionally (fewer when sampling).
    pub executed_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block in bytes.
    pub smem_bytes: u32,
    /// Registers per thread declared by the launch (occupancy input).
    pub regs_per_thread: u32,
    /// The launch's compute/communication overlap declaration (timing-model
    /// input).
    pub overlap: OverlapMode,
    /// The architecture the launch executed on — the spec every recorded
    /// cost (transactions, conflict cycles) was charged under.
    pub spec: &'a GpuSpec,
}

/// Observer for per-warp memory-instruction traces.
///
/// Contract (all methods run on the launching thread):
///
/// 1. [`launch_begin`](TraceSink::launch_begin) once per traced launch,
///    after validation and before any block executes;
/// 2. [`block_events`](TraceSink::block_events) once per executed block in
///    **ascending block-id order**, regardless of
///    [`Parallelism`](crate::Parallelism) — the events inside a block are
///    in program order;
/// 3. [`launch_end`](TraceSink::launch_end) once with the launch's final
///    (scaled) stats — only for successful launches. A faulted launch
///    delivers the events of the clean blocks that precede the fault and
///    no `launch_end`; sinks that frame launches should treat a
///    `launch_begin` (or drop) while a launch is open as an abort.
pub trait TraceSink: Send {
    /// A traced launch is starting.
    fn launch_begin(&mut self, launch: &TraceLaunch<'_>);
    /// All events of one executed block, in program order.
    fn block_events(&mut self, block_id: usize, events: &[TraceEvent]);
    /// The launch completed with these final stats.
    fn launch_end(&mut self, stats: &KernelStats);
}

/// The [`KernelStats`] counters a [`TraceEvent`] for `op` is charged
/// against, as (transaction-like, cycle-like) values: the hook records the
/// per-instruction delta of this pair.
pub(crate) fn cost_counters(stats: &KernelStats, op: TraceOp) -> (u64, u64) {
    match op {
        TraceOp::GmLd | TraceOp::GmLdRo => (stats.gm_ld_transactions, 0),
        TraceOp::GmSt => (stats.gm_st_transactions, 0),
        TraceOp::SmLd => (0, stats.sm_ld_cycles),
        TraceOp::SmSt => (0, stats.sm_st_cycles),
        TraceOp::CmLd => (0, stats.cm_cycles),
        TraceOp::Bar => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tags_round_trip() {
        for op in TraceOp::ALL {
            assert_eq!(TraceOp::from_u8(op as u8), Some(op));
        }
        assert_eq!(TraceOp::from_u8(7), None);
    }

    #[test]
    fn op_spaces_and_stores() {
        assert_eq!(TraceOp::GmLdRo.space(), Some(MemSpace::Global));
        assert_eq!(TraceOp::SmSt.space(), Some(MemSpace::Shared));
        assert_eq!(TraceOp::CmLd.space(), Some(MemSpace::Constant));
        assert_eq!(TraceOp::Bar.space(), None);
        assert!(TraceOp::GmSt.is_store() && TraceOp::SmSt.is_store());
        assert!(!TraceOp::GmLd.is_store() && !TraceOp::CmLd.is_store());
        assert!(!TraceOp::Bar.is_store());
    }

    #[test]
    fn useful_bytes_counts_active_lanes() {
        let ev = TraceEvent {
            op: TraceOp::SmLd,
            warp: 0,
            mask: LaneMask::first(3),
            lane_bytes: 8,
            transactions: 0,
            cycles: 1,
            addrs: [7; 32],
        };
        assert_eq!(ev.useful_bytes(), 24);
        let canon = ev.canonical();
        assert_eq!(canon.addrs[2], 7);
        assert_eq!(canon.addrs[3], 0);
    }

    #[test]
    fn cost_counters_select_the_op_counter() {
        let stats = KernelStats {
            gm_ld_transactions: 3,
            gm_st_transactions: 5,
            sm_ld_cycles: 7,
            sm_st_cycles: 11,
            cm_cycles: 13,
            ..Default::default()
        };
        assert_eq!(cost_counters(&stats, TraceOp::GmLd), (3, 0));
        assert_eq!(cost_counters(&stats, TraceOp::GmLdRo), (3, 0));
        assert_eq!(cost_counters(&stats, TraceOp::GmSt), (5, 0));
        assert_eq!(cost_counters(&stats, TraceOp::SmLd), (0, 7));
        assert_eq!(cost_counters(&stats, TraceOp::SmSt), (0, 11));
        assert_eq!(cost_counters(&stats, TraceOp::CmLd), (0, 13));
        assert_eq!(cost_counters(&stats, TraceOp::Bar), (0, 0));
    }

    #[test]
    fn display_names() {
        assert_eq!(TraceOp::GmLdRo.to_string(), "gm.ld.ro");
        assert_eq!(TraceOp::CmLd.to_string(), "cm.ld");
    }
}

//! Device handle and kernel launching.
//!
//! [`Gpu`] owns the device memories; [`Gpu::launch`] runs a kernel closure
//! over a grid of thread blocks, gathers [`KernelStats`], and evaluates the
//! [timing model](crate::timing).
//!
//! # Sampled execution
//!
//! Launches whose blocks are access-pattern homogeneous (every tiled kernel
//! in this workspace) can run in [`SimMode::Sampled`] mode: a representative
//! subset of blocks executes functionally, and the counters are scaled to
//! the full grid. This keeps large parameter sweeps tractable; tests verify
//! on small grids that sampled counters match full execution.

use crate::block::{BlockCtx, BlockDims};
use crate::error::{Result, SimError};
use crate::mem::{ConstantMemory, GlobalMemory, GmBuf, SharedMemory};
use crate::spec::GpuSpec;
use crate::stats::KernelStats;
use crate::timing::{self, OverlapMode, Timing};

/// Launch geometry and resource declaration for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    /// Kernel name (reported in errors and harness output).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (<= 1024).
    pub threads_per_block: usize,
    /// Shared memory per block in bytes.
    pub smem_bytes: u32,
    /// Architectural registers per thread (occupancy model input; the
    /// kernels document how their estimates are derived).
    pub regs_per_thread: u32,
    /// Software-pipelining quality of the kernel.
    pub overlap: OverlapMode,
}

impl LaunchConfig {
    /// Creates a config with no shared memory, a 32-register estimate and
    /// [`OverlapMode::Prefetch`].
    pub fn new(name: impl Into<String>, blocks: usize, threads_per_block: usize) -> Self {
        LaunchConfig {
            name: name.into(),
            blocks,
            threads_per_block,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
        }
    }

    /// Sets the shared-memory allocation per block.
    pub fn with_smem(mut self, bytes: u32) -> Self {
        self.smem_bytes = bytes;
        self
    }

    /// Sets the per-thread register estimate.
    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Sets the overlap mode.
    pub fn with_overlap(mut self, overlap: OverlapMode) -> Self {
        self.overlap = overlap;
        self
    }
}

/// How much of the grid to execute functionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimMode {
    /// Execute every block (full functional fidelity).
    Full,
    /// Execute `n` evenly spaced blocks and scale the counters to the full
    /// grid. Output buffers are only written for the executed blocks.
    Sampled(usize),
    /// Execute exactly these block ids and scale the counters.
    Blocks(Vec<usize>),
}

impl SimMode {
    fn executed_ids(&self, blocks: usize) -> Vec<usize> {
        match self {
            SimMode::Full => (0..blocks).collect(),
            SimMode::Sampled(n) => {
                let n = (*n).clamp(1, blocks);
                let mut ids: Vec<usize> = (0..n)
                    .map(|i| ((i as f64 + 0.5) * blocks as f64 / n as f64) as usize)
                    .map(|b| b.min(blocks - 1))
                    .collect();
                ids.dedup();
                ids
            }
            SimMode::Blocks(ids) => {
                let mut ids: Vec<usize> = ids.iter().copied().filter(|&b| b < blocks).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
        }
    }
}

/// Result of one kernel launch: exact (or scaled) counters, modeled timing,
/// and which blocks actually executed.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Event counters for the full grid (scaled if sampled).
    pub stats: KernelStats,
    /// Timing-model evaluation of those counters.
    pub timing: Timing,
    /// Ids of the blocks that executed functionally.
    pub executed_blocks: Vec<usize>,
}

impl LaunchReport {
    /// Achieved throughput in GFlop/s (shorthand for `timing.gflops`).
    pub fn gflops(&self) -> f64 {
        self.timing.gflops
    }

    /// Modeled wall time in seconds (shorthand for `timing.t_total`).
    pub fn seconds(&self) -> f64 {
        self.timing.t_total
    }
}

/// A simulated GPU: an architecture plus its global and constant memories.
///
/// # Examples
///
/// Launch a trivial copy kernel and inspect its traffic:
///
/// ```
/// use kconv_sim::{Gpu, GpuSpec, LaunchConfig, LaneMask, SimMode, lane_addrs};
///
/// # fn main() -> Result<(), kconv_sim::SimError> {
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let src = gpu.alloc_f32(32)?;
/// let dst = gpu.alloc_f32(32)?;
/// gpu.upload_f32(src, &[1.0; 32])?;
///
/// let cfg = LaunchConfig::new("copy", 1, 32);
/// let report = gpu.launch(&cfg, SimMode::Full, |blk| {
///     blk.each_warp(|w| {
///         let a = lane_addrs(src.f32_addr(0), 4);
///         let v = w.ld_global::<1>(&a, LaneMask::ALL);
///         let b = lane_addrs(dst.f32_addr(0), 4);
///         w.st_global::<1>(&b, &v, LaneMask::ALL);
///     });
/// })?;
///
/// assert_eq!(gpu.download_f32(dst)?, vec![1.0; 32]);
/// assert_eq!(report.stats.gm_ld_transactions, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpu {
    spec: GpuSpec,
    gm: GlobalMemory,
    cm: ConstantMemory,
}

/// Device-memory capacity given to every [`Gpu`] (the K40m carries 12 GiB;
/// backing pages are committed lazily).
const GM_CAPACITY: u64 = 12 << 30;

impl Gpu {
    /// Creates a device with the given architecture.
    pub fn new(spec: GpuSpec) -> Self {
        let gm = GlobalMemory::new(
            GM_CAPACITY,
            spec.gm_transaction_bytes,
            spec.gm_store_transaction_bytes,
        );
        let cm = ConstantMemory::new(spec.cm_bytes, spec.cm_line_bytes);
        Gpu { spec, gm, cm }
    }

    /// The architecture of this device.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Allocates `len` `f32` elements of global memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] when device memory is exhausted.
    pub fn alloc_f32(&mut self, len: u64) -> Result<GmBuf> {
        self.gm.alloc_f32(len)
    }

    /// Allocates `bytes` bytes of global memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] when device memory is exhausted.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<GmBuf> {
        self.gm.alloc(bytes)
    }

    /// Host-to-device copy into the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if `values` exceeds the
    /// buffer.
    pub fn upload_f32(&mut self, buf: GmBuf, values: &[f32]) -> Result<()> {
        self.gm.write_f32s(buf, 0, values)
    }

    /// Host-to-device copy into `buf` starting at element `elem_offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn upload_f32_at(&mut self, buf: GmBuf, elem_offset: u64, values: &[f32]) -> Result<()> {
        self.gm.write_f32s(buf, elem_offset, values)
    }

    /// Device-to-host copy of the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] on descriptor
    /// corruption (cannot normally happen for a valid `GmBuf`).
    pub fn download_f32(&self, buf: GmBuf) -> Result<Vec<f32>> {
        self.gm.read_f32s(buf, 0, buf.len_f32() as usize)
    }

    /// Device-to-host copy of `len` elements starting at `elem_offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn download_f32_at(&self, buf: GmBuf, elem_offset: u64, len: usize) -> Result<Vec<f32>> {
        self.gm.read_f32s(buf, elem_offset, len)
    }

    /// Fills a buffer with a constant (host-side).
    pub fn fill_f32(&mut self, buf: GmBuf, value: f32) {
        self.gm.fill_f32(buf, value)
    }

    /// Writes filter data (or any constants) into constant memory at
    /// element `elem_offset` (models `cudaMemcpyToSymbol`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the data does not
    /// fit in constant memory.
    pub fn write_const_f32(&mut self, elem_offset: u64, values: &[f32]) -> Result<()> {
        self.cm.write_f32s(elem_offset, values)
    }

    /// Launches `kernel` over `cfg.blocks` thread blocks.
    ///
    /// The closure runs once per executed block (see [`SimMode`]); it
    /// receives a [`BlockCtx`] through which all device traffic flows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidLaunch`] if the configuration cannot run
    /// on this architecture.
    ///
    /// # Panics
    ///
    /// Panics if the kernel performs an out-of-bounds device access (a
    /// kernel bug, mirroring a device fault).
    pub fn launch(
        &mut self,
        cfg: &LaunchConfig,
        mode: SimMode,
        mut kernel: impl FnMut(&mut BlockCtx),
    ) -> Result<LaunchReport> {
        // Validate before running anything.
        timing::occupancy(&self.spec, cfg)?;
        let ids = mode.executed_ids(cfg.blocks);
        if ids.is_empty() {
            return Err(SimError::InvalidLaunch(format!(
                "kernel {}: no blocks selected for execution",
                cfg.name
            )));
        }
        self.cm.reset_cache();
        let mut stats = KernelStats::default();
        for &block_id in &ids {
            self.gm.reset_ro_cache();
            let dims = BlockDims {
                block_id,
                grid_blocks: cfg.blocks,
                threads: cfg.threads_per_block,
            };
            let smem = SharedMemory::new(cfg.smem_bytes, self.spec.smem_banks, self.spec.bank_width);
            let mut blk = BlockCtx::new(dims, &mut self.gm, &mut self.cm, smem, &mut stats);
            kernel(&mut blk);
            stats.blocks_executed += 1;
        }
        let stats = if ids.len() == cfg.blocks {
            let mut s = stats;
            s.blocks_total = cfg.blocks as u64;
            s
        } else {
            stats.scaled_to_blocks(cfg.blocks as u64, ids.len() as u64)
        };
        let timing = timing::evaluate(&self.spec, cfg, &stats)?;
        Ok(LaunchReport {
            stats,
            timing,
            executed_blocks: ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{lane_addrs, LaneMask};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m())
    }

    /// A kernel where each block writes `block_id` to its slot and does a
    /// fixed amount of counted work.
    fn id_kernel(dst: GmBuf) -> impl FnMut(&mut BlockCtx) {
        move |blk: &mut BlockCtx| {
            let id = blk.dims.block_id;
            blk.each_warp(|w| {
                let addrs = lane_addrs(dst.f32_addr(id as u64 * 32), 4);
                let vals = [[id as f32]; 32];
                w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
                w.count_fma(32);
            });
            blk.sync();
        }
    }

    #[test]
    fn full_mode_runs_every_block() {
        let mut g = gpu();
        let dst = g.alloc_f32(8 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 8, 32);
        let r = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        assert_eq!(r.executed_blocks.len(), 8);
        assert_eq!(r.stats.blocks_executed, 8);
        assert_eq!(r.stats.fma_lane_ops, 8 * 32);
        for b in 0..8 {
            assert_eq!(
                g.download_f32_at(dst, b * 32, 1).unwrap()[0],
                b as f32,
                "block {b}"
            );
        }
    }

    #[test]
    fn sampled_mode_scales_counters_exactly_for_homogeneous_kernels() {
        let mut g = gpu();
        let dst = g.alloc_f32(64 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 64, 32);
        let full = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        let sampled = g
            .launch(&cfg, SimMode::Sampled(4), id_kernel(dst))
            .unwrap();
        assert_eq!(sampled.executed_blocks.len(), 4);
        assert_eq!(sampled.stats.fma_lane_ops, full.stats.fma_lane_ops);
        assert_eq!(sampled.stats.gm_st_bytes_bus, full.stats.gm_st_bytes_bus);
        assert_eq!(sampled.stats.barriers, full.stats.barriers);
        assert_eq!(sampled.stats.blocks_total, 64);
        // Timing of a homogeneous kernel is identical under sampling.
        assert!((sampled.seconds() - full.seconds()).abs() < 1e-12);
    }

    #[test]
    fn sampled_ids_are_spread_and_clamped() {
        assert_eq!(SimMode::Sampled(4).executed_ids(64), vec![8, 24, 40, 56]);
        assert_eq!(SimMode::Sampled(10).executed_ids(3), vec![0, 1, 2]);
        assert_eq!(SimMode::Sampled(1).executed_ids(100), vec![50]);
    }

    #[test]
    fn explicit_blocks_mode() {
        let mut g = gpu();
        let dst = g.alloc_f32(16 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 16, 32);
        let r = g
            .launch(&cfg, SimMode::Blocks(vec![3, 3, 7, 99]), id_kernel(dst))
            .unwrap();
        assert_eq!(r.executed_blocks, vec![3, 7]);
        assert_eq!(g.download_f32_at(dst, 3 * 32, 1).unwrap()[0], 3.0);
        assert_eq!(g.download_f32_at(dst, 7 * 32, 1).unwrap()[0], 7.0);
    }

    #[test]
    fn empty_selection_is_an_error() {
        let mut g = gpu();
        let cfg = LaunchConfig::new("noop", 4, 32);
        let err = g.launch(&cfg, SimMode::Blocks(vec![100]), |_| {});
        assert!(matches!(err, Err(SimError::InvalidLaunch(_))));
    }

    #[test]
    fn invalid_config_is_rejected_before_execution() {
        let mut g = gpu();
        let cfg = LaunchConfig::new("bad", 1, 2048);
        let mut ran = false;
        let err = g.launch(&cfg, SimMode::Full, |_| ran = true);
        assert!(err.is_err());
        assert!(!ran);
    }

    #[test]
    fn constant_cache_reset_between_launches() {
        let mut g = gpu();
        g.write_const_f32(0, &[1.0]).unwrap();
        let cfg = LaunchConfig::new("cm", 1, 32);
        let kernel = |blk: &mut BlockCtx| {
            blk.each_warp(|w| {
                w.ld_const(&crate::warp::lane_addrs_uniform(0), LaneMask::ALL);
            });
        };
        let a = g.launch(&cfg, SimMode::Full, kernel).unwrap();
        let b = g.launch(&cfg, SimMode::Full, kernel).unwrap();
        assert_eq!(a.stats.cm_misses, 1);
        assert_eq!(b.stats.cm_misses, 1);
    }

    #[test]
    fn builder_methods() {
        let cfg = LaunchConfig::new("k", 2, 64)
            .with_smem(1024)
            .with_regs(64)
            .with_overlap(OverlapMode::Serial);
        assert_eq!(cfg.smem_bytes, 1024);
        assert_eq!(cfg.regs_per_thread, 64);
        assert_eq!(cfg.overlap, OverlapMode::Serial);
    }

    #[test]
    fn report_shorthands() {
        let mut g = gpu();
        let dst = g.alloc_f32(32).unwrap();
        let cfg = LaunchConfig::new("id", 1, 32);
        let r = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        assert_eq!(r.gflops(), r.timing.gflops);
        assert_eq!(r.seconds(), r.timing.t_total);
    }
}

//! Device handle and kernel launching.
//!
//! [`Gpu`] owns the device memories; [`Gpu::launch`] runs a kernel closure
//! over a grid of thread blocks, gathers [`KernelStats`], and evaluates the
//! [timing model](crate::timing).
//!
//! # Sampled execution
//!
//! Launches whose blocks are access-pattern homogeneous (every tiled kernel
//! in this workspace) can run in [`SimMode::Sampled`] mode: a representative
//! subset of blocks executes functionally, and the counters are scaled to
//! the full grid. This keeps large parameter sweeps tractable; tests verify
//! on small grids that sampled counters match full execution.
//!
//! # Parallel execution
//!
//! Simulated thread blocks are independent by construction (CUDA forbids
//! inter-block communication through global memory within a launch), so the
//! selected block ids can also be executed across a host thread pool — see
//! [`Parallelism`]. Every counter and every output byte is **bit-identical**
//! to serial execution:
//!
//! * each block runs against its own [`KernelStats`]; every worker folds
//!   its blocks' counters into one thread-local shard and the shards are
//!   summed once at the end — bit-identical to the serial block-id-order
//!   merge because every counter is an order-independent sum;
//! * global-memory stores are journaled per block (a paged overlay holding
//!   each byte's final value) and replayed into the shared memory in
//!   block-id order, reproducing the serial outcome byte for byte; a block
//!   reads its own stores but never another in-flight block's (the
//!   disjoint-write contract kernels already obey under CUDA);
//! * the read-only (texture) cache is per block in both modes;
//! * constant-cache misses are counted at merge time as the ordered union
//!   of per-block touched-line bitmaps, which equals the serial first-touch
//!   count exactly because the model never evicts within a launch.
//!
//! The default is [`Parallelism::Serial`] unless the `KCONV_THREADS`
//! environment variable overrides it; the sweep harnesses opt in
//! explicitly. See `DESIGN.md` for thread-count guidance.
//!
//! # Fault containment
//!
//! A kernel bug — out-of-bounds device access, a sanitizer finding, a
//! watchdog timeout, or a plain panic inside the closure — no longer tears
//! down the process. Each block runs inside a containment boundary
//! ([`crate::fault`]); the first fault (in block-id order, identical under
//! serial and parallel execution) surfaces as
//! [`SimError::KernelFault`] carrying the kernel name, block, warp, lane
//! and fault detail. After a faulted launch the device memories hold
//! unspecified partial results, exactly as on real hardware; host-visible
//! state is otherwise intact and the `Gpu` remains usable.
//!
//! The opt-in sanitizer tools ([`SanitizerMode`], `KCONV_SANITIZE`) add
//! memcheck (uninitialized reads), racecheck (cross-warp shared-memory
//! hazards between barriers) and synccheck (barrier divergence); with the
//! default [`SanitizerMode::Off`] no shadow state exists and no per-access
//! checks run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::block::{BlockCtx, BlockDims, Inject};
use crate::error::{Result, SimError};
use crate::fault::{self, DeviceFault, FaultInjection, SanitizerMode};
use crate::mem::constant::LineBitmap;
use crate::mem::plane::{CmPlane, GmPlane, WriteJournal};
use crate::mem::{ConstantMemory, GlobalMemory, GmBuf, SharedMemory};
use crate::pricing::RoCache;
use crate::spec::GpuSpec;
use crate::stats::KernelStats;
use crate::timing::{self, OverlapMode, Timing};
use crate::trace::{TraceEvent, TraceLaunch, TraceSink};

/// Launch geometry and resource declaration for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    /// Kernel name (reported in errors and harness output).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (<= 1024).
    pub threads_per_block: usize,
    /// Shared memory per block in bytes.
    pub smem_bytes: u32,
    /// Architectural registers per thread (occupancy model input; the
    /// kernels document how their estimates are derived).
    pub regs_per_thread: u32,
    /// Software-pipelining quality of the kernel.
    pub overlap: OverlapMode,
}

impl LaunchConfig {
    /// Creates a config with no shared memory, a 32-register estimate and
    /// [`OverlapMode::Prefetch`].
    pub fn new(name: impl Into<String>, blocks: usize, threads_per_block: usize) -> Self {
        LaunchConfig {
            name: name.into(),
            blocks,
            threads_per_block,
            smem_bytes: 0,
            regs_per_thread: 32,
            overlap: OverlapMode::Prefetch,
        }
    }

    /// Sets the shared-memory allocation per block.
    pub fn with_smem(mut self, bytes: u32) -> Self {
        self.smem_bytes = bytes;
        self
    }

    /// Sets the per-thread register estimate.
    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Sets the overlap mode.
    pub fn with_overlap(mut self, overlap: OverlapMode) -> Self {
        self.overlap = overlap;
        self
    }
}

/// How much of the grid to execute functionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimMode {
    /// Execute every block (full functional fidelity).
    Full,
    /// Execute `n` evenly spaced blocks and scale the counters to the full
    /// grid. Output buffers are only written for the executed blocks.
    Sampled(usize),
    /// Execute exactly these block ids and scale the counters. Ids must be
    /// in range for the grid; the launch is rejected otherwise.
    Blocks(Vec<usize>),
}

impl SimMode {
    fn executed_ids(&self, blocks: usize) -> Result<Vec<usize>> {
        Ok(match self {
            SimMode::Full => (0..blocks).collect(),
            SimMode::Sampled(n) => {
                let n = (*n).clamp(1, blocks);
                let mut ids: Vec<usize> = (0..n)
                    .map(|i| ((i as f64 + 0.5) * blocks as f64 / n as f64) as usize)
                    .map(|b| b.min(blocks - 1))
                    .collect();
                ids.dedup();
                ids
            }
            SimMode::Blocks(ids) => {
                if let Some(&bad) = ids.iter().find(|&&b| b >= blocks) {
                    return Err(SimError::InvalidLaunch(format!(
                        "block id {bad} out of range for a grid of {blocks} blocks"
                    )));
                }
                let mut ids = ids.clone();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
        })
    }
}

/// Host-side execution strategy for the block loop of a launch.
///
/// Results are bit-identical across strategies (see the
/// [module docs](crate::launch)); only wall-clock time differs. The
/// default for a new [`Gpu`] is `Serial` unless the `KCONV_THREADS`
/// environment variable says otherwise, so doctests and small examples pay
/// no threading overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Execute blocks one after another on the calling thread.
    #[default]
    Serial,
    /// Execute blocks across this many worker threads (1 behaves like
    /// `Serial`).
    Threads(usize),
}

impl Parallelism {
    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Reads the `KCONV_THREADS` environment variable: `serial` forces
    /// serial execution, `auto` or `0` uses [`Parallelism::auto`], a
    /// number uses that many threads. Returns `None` when unset or
    /// unparseable.
    pub fn from_env() -> Option<Self> {
        let v = std::env::var("KCONV_THREADS").ok()?;
        match v.trim() {
            "serial" => Some(Parallelism::Serial),
            "auto" | "0" => Some(Parallelism::auto()),
            s => s.parse().ok().map(Parallelism::Threads),
        }
    }

    /// The sweep-harness default: the `KCONV_THREADS` override if set,
    /// otherwise [`Parallelism::auto`]. Long-running sweeps (tuning,
    /// figure reproduction) opt in through this; [`Gpu::new`] keeps the
    /// serial default so examples and doctests pay no threading overhead.
    pub fn env_or_auto() -> Self {
        Self::from_env().unwrap_or_else(Self::auto)
    }

    /// Number of worker threads this strategy runs on.
    pub fn worker_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Result of one kernel launch: exact (or scaled) counters, modeled timing,
/// and which blocks actually executed.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Event counters for the full grid (scaled if sampled).
    pub stats: KernelStats,
    /// Timing-model evaluation of those counters.
    pub timing: Timing,
    /// Ids of the blocks that executed functionally.
    pub executed_blocks: Vec<usize>,
}

impl LaunchReport {
    /// Achieved throughput in GFlop/s (shorthand for `timing.gflops`).
    pub fn gflops(&self) -> f64 {
        self.timing.gflops
    }

    /// Modeled wall time in seconds (shorthand for `timing.t_total`).
    pub fn seconds(&self) -> f64 {
        self.timing.t_total
    }
}

/// Everything one executed block produces. In parallel launches the
/// counters travel worker-sharded while the side effects (journal,
/// constant-line bitmap) are merged in block-id order.
struct BlockOut {
    stats: KernelStats,
    journal: WriteJournal,
    cm_lines: LineBitmap,
    events: Vec<TraceEvent>,
}

/// A simulated GPU: an architecture plus its global and constant memories.
///
/// # Examples
///
/// Launch a trivial copy kernel and inspect its traffic:
///
/// ```
/// use kconv_sim::{Gpu, GpuSpec, LaunchConfig, LaneMask, SimMode, lane_addrs};
///
/// # fn main() -> Result<(), kconv_sim::SimError> {
/// let mut gpu = Gpu::new(GpuSpec::kepler_k40m());
/// let src = gpu.alloc_f32(32)?;
/// let dst = gpu.alloc_f32(32)?;
/// gpu.upload_f32(src, &[1.0; 32])?;
///
/// let cfg = LaunchConfig::new("copy", 1, 32);
/// let report = gpu.launch(&cfg, SimMode::Full, |blk| {
///     blk.each_warp(|w| {
///         let a = lane_addrs(src.f32_addr(0), 4);
///         let v = w.ld_global::<1>(&a, LaneMask::ALL);
///         let b = lane_addrs(dst.f32_addr(0), 4);
///         w.st_global::<1>(&b, &v, LaneMask::ALL);
///     });
/// })?;
///
/// assert_eq!(gpu.download_f32(dst)?, vec![1.0; 32]);
/// assert_eq!(report.stats.gm_ld_transactions, 1);
/// # Ok(())
/// # }
/// ```
pub struct Gpu {
    spec: GpuSpec,
    gm: GlobalMemory,
    cm: ConstantMemory,
    parallelism: Parallelism,
    sanitizer: SanitizerMode,
    step_budget: u64,
    injection: Option<FaultInjection>,
    /// Opt-in per-warp memory-instruction observer (see [`TraceSink`]).
    trace: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("spec", &self.spec)
            .field("gm", &self.gm)
            .field("cm", &self.cm)
            .field("parallelism", &self.parallelism)
            .field("sanitizer", &self.sanitizer)
            .field("step_budget", &self.step_budget)
            .field("injection", &self.injection)
            .field("trace", &self.trace.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

/// Device-memory capacity given to every [`Gpu`] (the K40m carries 12 GiB;
/// backing pages are committed lazily).
const GM_CAPACITY: u64 = 12 << 30;

fn step_budget_from_env() -> u64 {
    std::env::var("KCONV_STEP_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(u64::MAX)
}

impl Gpu {
    /// Creates a device with the given architecture.
    ///
    /// The block loop runs serially unless `KCONV_THREADS` is set (see
    /// [`Parallelism::from_env`]) or [`Gpu::set_parallelism`] is called.
    /// The sanitizer starts in the mode named by `KCONV_SANITIZE` (default
    /// off — see [`SanitizerMode::from_env`]), and the watchdog budget
    /// comes from `KCONV_STEP_BUDGET` (default unlimited).
    pub fn new(spec: GpuSpec) -> Self {
        let mut gm = GlobalMemory::new(
            GM_CAPACITY,
            spec.gm_transaction_bytes,
            spec.gm_store_transaction_bytes,
            spec.ro_cache_bytes,
        );
        let mut cm = ConstantMemory::new(spec.cm_bytes, spec.cm_line_bytes);
        let sanitizer = SanitizerMode::from_env().unwrap_or_default();
        if sanitizer.memcheck() {
            // The memories are brand new: track from a fresh (nothing
            // written) state for full precision.
            gm.enable_uninit_tracking(false);
            cm.enable_uninit_tracking(false);
        }
        Gpu {
            spec,
            gm,
            cm,
            parallelism: Parallelism::from_env().unwrap_or_default(),
            sanitizer,
            step_budget: step_budget_from_env(),
            injection: None,
            trace: None,
        }
    }

    /// The architecture of this device.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The host-side execution strategy for launches on this device.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the host-side execution strategy for subsequent launches.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Builder-style [`Gpu::set_parallelism`].
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The sanitizer mode for subsequent launches.
    pub fn sanitizer(&self) -> SanitizerMode {
        self.sanitizer
    }

    /// Sets the sanitizer mode for subsequent launches.
    ///
    /// Enabling memcheck after allocations or uploads already happened is
    /// conservative: existing global/constant contents are presumed
    /// initialized (only reads of bytes never written *from now on* can
    /// fault). Create the `Gpu` under `KCONV_SANITIZE` for full-precision
    /// tracking from the first byte.
    pub fn set_sanitizer(&mut self, mode: SanitizerMode) {
        let was = self.sanitizer.memcheck();
        self.sanitizer = mode;
        let now = mode.memcheck();
        if now && !was {
            self.gm.enable_uninit_tracking(true);
            self.cm.enable_uninit_tracking(true);
        } else if !now && was {
            self.gm.disable_uninit_tracking();
            self.cm.disable_uninit_tracking();
        }
    }

    /// Builder-style [`Gpu::set_sanitizer`].
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.set_sanitizer(mode);
        self
    }

    /// Sets the watchdog budget: total warp operations one block may
    /// execute before the launch is aborted with a
    /// [`FaultKind::Timeout`](crate::FaultKind::Timeout) fault.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.step_budget = budget;
    }

    /// Builder-style [`Gpu::set_step_budget`].
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Arms (or, with `None`, disarms) the test-only fault injector: the
    /// next launches matching the injection's kernel filter flip one
    /// lane's address on one memory operation of one block. Used by the
    /// robustness tests to prove the sanitizer pinpoints the exact site.
    pub fn set_fault_injection(&mut self, injection: Option<FaultInjection>) {
        self.injection = injection;
    }

    /// Builder-style [`Gpu::set_fault_injection`].
    pub fn with_fault_injection(mut self, injection: FaultInjection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Installs (or, with `None`, removes) the per-warp trace sink for
    /// subsequent launches. See [`TraceSink`] for the delivery contract:
    /// one event per warp memory instruction, flushed per block in
    /// ascending block-id order on the launching thread, identically under
    /// serial and threaded execution. With no sink installed the hook costs
    /// one branch per memory instruction and buffers nothing.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.trace = sink;
    }

    /// Builder-style [`Gpu::set_trace_sink`].
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Removes and returns the installed trace sink — the usual way to
    /// finalize a trace writer and recover its output stream.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Allocates `len` `f32` elements of global memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] when device memory is exhausted.
    pub fn alloc_f32(&mut self, len: u64) -> Result<GmBuf> {
        self.gm.alloc_f32(len)
    }

    /// Allocates `bytes` bytes of global memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AllocTooLarge`] when device memory is exhausted.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<GmBuf> {
        self.gm.alloc(bytes)
    }

    /// Host-to-device copy into the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if `values` exceeds the
    /// buffer.
    pub fn upload_f32(&mut self, buf: GmBuf, values: &[f32]) -> Result<()> {
        self.gm.write_f32s(buf, 0, values)
    }

    /// Host-to-device copy into `buf` starting at element `elem_offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn upload_f32_at(&mut self, buf: GmBuf, elem_offset: u64, values: &[f32]) -> Result<()> {
        self.gm.write_f32s(buf, elem_offset, values)
    }

    /// Device-to-host copy of the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] on descriptor
    /// corruption (cannot normally happen for a valid `GmBuf`).
    pub fn download_f32(&self, buf: GmBuf) -> Result<Vec<f32>> {
        self.gm.read_f32s(buf, 0, buf.len_f32() as usize)
    }

    /// Device-to-host copy of `len` elements starting at `elem_offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the range exceeds
    /// the buffer.
    pub fn download_f32_at(&self, buf: GmBuf, elem_offset: u64, len: usize) -> Result<Vec<f32>> {
        self.gm.read_f32s(buf, elem_offset, len)
    }

    /// Fills a buffer with a constant (host-side).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] on descriptor
    /// corruption (cannot normally happen for a valid `GmBuf`).
    pub fn fill_f32(&mut self, buf: GmBuf, value: f32) -> Result<()> {
        self.gm.fill_f32(buf, value)
    }

    /// Writes filter data (or any constants) into constant memory at
    /// element `elem_offset` (models `cudaMemcpyToSymbol`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HostTransferOutOfBounds`] if the data does not
    /// fit in constant memory.
    pub fn write_const_f32(&mut self, elem_offset: u64, values: &[f32]) -> Result<()> {
        self.cm.write_f32s(elem_offset, values)
    }

    /// Launches `kernel` over `cfg.blocks` thread blocks.
    ///
    /// The closure runs once per executed block (see [`SimMode`]); it
    /// receives a [`BlockCtx`] through which all device traffic flows.
    /// Depending on [`Gpu::parallelism`], blocks run serially or across a
    /// thread pool — with bit-identical counters, timing and output either
    /// way (see the [module docs](crate::launch) for why). The closure is
    /// therefore required to be `Fn + Sync`: per-block state belongs
    /// *inside* the closure body, captured state is shared read-only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidLaunch`] if the configuration cannot run
    /// on this architecture or [`SimMode::Blocks`] names an out-of-range
    /// block id.
    ///
    /// Returns [`SimError::KernelFault`] when the kernel faults on the
    /// device: out-of-bounds access, an enabled sanitizer finding, a
    /// watchdog timeout, or a panic inside the closure. The reported fault
    /// is the one from the lowest faulting block id regardless of
    /// [`Parallelism`]; device memory afterwards holds unspecified partial
    /// results, and the `Gpu` stays usable for further launches.
    pub fn launch(
        &mut self,
        cfg: &LaunchConfig,
        mode: SimMode,
        kernel: impl Fn(&mut BlockCtx) + Sync,
    ) -> Result<LaunchReport> {
        fault::install_quiet_hook();
        // Validate before running anything — in particular, an oversized
        // shared-memory request must surface as a typed error before any
        // worker thread is spawned or any block executes.
        if cfg.smem_bytes > self.spec.max_smem_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "kernel {}: shared-memory request of {} bytes exceeds the device limit of {} \
                 bytes per block",
                cfg.name, cfg.smem_bytes, self.spec.max_smem_per_block
            )));
        }
        timing::occupancy(&self.spec, cfg)?;
        let ids = mode.executed_ids(cfg.blocks)?;
        if ids.is_empty() {
            return Err(SimError::InvalidLaunch(format!(
                "kernel {}: no blocks selected for execution",
                cfg.name
            )));
        }
        self.cm.reset_cache();
        if let Some(sink) = self.trace.as_mut() {
            sink.launch_begin(&TraceLaunch {
                kernel: &cfg.name,
                grid_blocks: cfg.blocks,
                executed_blocks: ids.len(),
                threads_per_block: cfg.threads_per_block,
                smem_bytes: cfg.smem_bytes,
                regs_per_thread: cfg.regs_per_thread,
                overlap: cfg.overlap,
                spec: &self.spec,
            });
        }
        let workers = self.parallelism.worker_threads().min(ids.len());
        let stats = if workers <= 1 {
            self.run_serial(cfg, &ids, &kernel)?
        } else {
            self.run_parallel(cfg, &ids, &kernel, workers)?
        };
        let stats = if ids.len() == cfg.blocks {
            let mut s = stats;
            s.blocks_total = cfg.blocks as u64;
            s
        } else {
            stats.scaled_to_blocks(cfg.blocks as u64, ids.len() as u64)
        };
        if let Some(sink) = self.trace.as_mut() {
            sink.launch_end(&stats);
        }
        let timing = timing::evaluate(&self.spec, cfg, &stats)?;
        Ok(LaunchReport {
            stats,
            timing,
            executed_blocks: ids,
        })
    }

    /// This launch's injection slice for `block_id`, if the armed injection
    /// targets this kernel and block.
    fn block_inject(&self, cfg: &LaunchConfig, block_id: usize) -> Option<Inject> {
        let i = self.injection.as_ref()?;
        (cfg.name.contains(&i.kernel_substr) && i.block == block_id).then_some(Inject {
            op_index: i.op_index,
            lane: i.lane,
            addr_xor: i.addr_xor,
        })
    }

    fn run_serial(
        &mut self,
        cfg: &LaunchConfig,
        ids: &[usize],
        kernel: &(impl Fn(&mut BlockCtx) + Sync),
    ) -> Result<KernelStats> {
        let tracing = self.trace.is_some();
        let mut total = KernelStats::default();
        for &block_id in ids {
            let inject = self.block_inject(cfg, block_id);
            let blk = exec_block(
                &self.spec,
                cfg,
                block_id,
                GmPlane::Direct(&mut self.gm),
                CmPlane::Direct(&mut self.cm),
                self.sanitizer,
                self.step_budget,
                inject,
                tracing,
                kernel,
            )?;
            total.merge(&blk.stats);
            if let Some(sink) = self.trace.as_mut() {
                sink.block_events(block_id, &blk.events);
            }
        }
        Ok(total)
    }

    fn run_parallel(
        &mut self,
        cfg: &LaunchConfig,
        ids: &[usize],
        kernel: &(impl Fn(&mut BlockCtx) + Sync),
        workers: usize,
    ) -> Result<KernelStats> {
        /// Side effects a worker hands back for one block. The counters do
        /// NOT ride along: they are folded into the worker's thread-local
        /// shard so the merge loop never clones or queues `KernelStats`.
        /// Trace events do ride along (they are inherently per block) and
        /// are flushed by the ordered merge below, which is what makes a
        /// threaded trace byte-identical to the serial one.
        struct BlockSide {
            journal: WriteJournal,
            cm_lines: LineBitmap,
            events: Vec<TraceEvent>,
        }
        type Slot = Mutex<Option<std::result::Result<BlockSide, DeviceFault>>>;
        let slots: Vec<Slot> = ids.iter().map(|_| Mutex::new(None)).collect();
        let injects: Vec<Option<Inject>> = ids.iter().map(|&b| self.block_inject(cfg, b)).collect();
        let next = AtomicUsize::new(0);
        let shards = Mutex::new(KernelStats::default());
        let (spec, gm, cm) = (&self.spec, &self.gm, &self.cm);
        let (sanitizer, step_budget) = (self.sanitizer, self.step_budget);
        let tracing = self.trace.is_some();
        // Device faults are contained per block, so workers never panic on
        // kernel bugs; every selected block runs to a verdict and the merge
        // below picks the fault (if any) with the lowest block id —
        // identical to what serial execution reports.
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local = KernelStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ids.len() {
                            break;
                        }
                        let out = exec_block(
                            spec,
                            cfg,
                            ids[i],
                            GmPlane::Journaled {
                                base: gm,
                                journal: WriteJournal::new(),
                            },
                            CmPlane::shared(cm),
                            sanitizer,
                            step_budget,
                            injects[i],
                            tracing,
                            kernel,
                        )
                        .map(|out| {
                            local.merge(&out.stats);
                            BlockSide {
                                journal: out.journal,
                                cm_lines: out.cm_lines,
                                events: out.events,
                            }
                        });
                        match slots[i].lock() {
                            Ok(mut slot) => *slot = Some(out),
                            Err(poisoned) => *poisoned.into_inner() = Some(out),
                        }
                    }
                    // One merge per worker, not per block. Counter sums
                    // commute, so the shard order cannot be observed.
                    match shards.lock() {
                        Ok(mut total) => total.merge(&local),
                        Err(poisoned) => poisoned.into_inner().merge(&local),
                    }
                });
            }
        });
        let mut total = shards
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Deterministic merge in block-id order (ids are ascending for
        // every SimMode): replay journals into global memory, fold each
        // block's constant-line bitmap into the launch-scoped cache state,
        // and flush each block's trace events to the sink. The first
        // faulting block (lowest id) stops the merge, leaving memory in the
        // documented unspecified state and the sink with exactly the clean
        // prefix of blocks a serial run would have delivered.
        for (i, slot) in slots.into_iter().enumerate() {
            let side = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .ok_or_else(|| {
                    SimError::Internal("a block slot was never filled by the worker pool".into())
                })?;
            let side = side?;
            if !side.journal.is_empty() {
                self.gm.apply_journal(&side.journal);
            }
            total.cm_misses += self.cm.absorb_lines(&side.cm_lines);
            if let Some(sink) = self.trace.as_mut() {
                sink.block_events(ids[i], &side.events);
            }
        }
        Ok(total)
    }
}

/// Runs one block to completion inside the fault-containment boundary and
/// packages its side effects.
#[allow(clippy::too_many_arguments)]
fn exec_block(
    spec: &GpuSpec,
    cfg: &LaunchConfig,
    block_id: usize,
    gm: GmPlane<'_>,
    cm: CmPlane<'_>,
    sanitizer: SanitizerMode,
    step_budget: u64,
    inject: Option<Inject>,
    tracing: bool,
    kernel: &(impl Fn(&mut BlockCtx) + Sync),
) -> std::result::Result<BlockOut, DeviceFault> {
    let dims = BlockDims {
        block_id,
        grid_blocks: cfg.blocks,
        threads: cfg.threads_per_block,
    };
    let smem = SharedMemory::new(cfg.smem_bytes, spec.smem_banks, spec.bank_width)
        .with_sanitizer(sanitizer.memcheck(), sanitizer.racecheck());
    let ro = RoCache::new(gm_ro_capacity(&gm));
    let mut blk = BlockCtx::new(dims, gm, cm, ro, smem).with_step_budget(step_budget);
    if sanitizer.synccheck() {
        blk = blk.with_synccheck();
    }
    if let Some(inj) = inject {
        blk = blk.with_injection(inj);
    }
    if tracing {
        blk = blk.with_tracing();
    }
    fault::contain(&cfg.name, block_id, move || {
        kernel(&mut blk);
        blk.finish();
        blk.stats.blocks_executed += 1;
        let BlockCtx {
            gm,
            cm,
            stats,
            events,
            ..
        } = blk;
        BlockOut {
            stats,
            journal: gm.into_journal().unwrap_or_default(),
            cm_lines: cm.into_touched_lines().unwrap_or_default(),
            events: events.unwrap_or_default(),
        }
    })
}

fn gm_ro_capacity(gm: &GmPlane<'_>) -> usize {
    match gm {
        GmPlane::Direct(m) => m.ro_capacity_lines(),
        GmPlane::Journaled { base, .. } => base.ro_capacity_lines(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::spec::WARP_SIZE;
    use crate::warp::{lane_addrs, LaneMask};
    use std::sync::atomic::AtomicBool;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(Parallelism::Serial)
    }

    /// A kernel where each block writes `block_id` to its slot and does a
    /// fixed amount of counted work.
    fn id_kernel(dst: GmBuf) -> impl Fn(&mut BlockCtx) + Sync {
        move |blk: &mut BlockCtx| {
            let id = blk.dims.block_id;
            blk.each_warp(|w| {
                let addrs = lane_addrs(dst.f32_addr(id as u64 * 32), 4);
                let vals = [[id as f32]; 32];
                w.st_global::<1>(&addrs, &vals, LaneMask::ALL);
                w.count_fma(32);
            });
            blk.sync();
        }
    }

    #[test]
    fn full_mode_runs_every_block() {
        let mut g = gpu();
        let dst = g.alloc_f32(8 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 8, 32);
        let r = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        assert_eq!(r.executed_blocks.len(), 8);
        assert_eq!(r.stats.blocks_executed, 8);
        assert_eq!(r.stats.fma_lane_ops, 8 * 32);
        for b in 0..8 {
            assert_eq!(
                g.download_f32_at(dst, b * 32, 1).unwrap()[0],
                b as f32,
                "block {b}"
            );
        }
    }

    #[test]
    fn sampled_mode_scales_counters_exactly_for_homogeneous_kernels() {
        let mut g = gpu();
        let dst = g.alloc_f32(64 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 64, 32);
        let full = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        let sampled = g.launch(&cfg, SimMode::Sampled(4), id_kernel(dst)).unwrap();
        assert_eq!(sampled.executed_blocks.len(), 4);
        assert_eq!(sampled.stats.fma_lane_ops, full.stats.fma_lane_ops);
        assert_eq!(sampled.stats.gm_st_bytes_bus, full.stats.gm_st_bytes_bus);
        assert_eq!(sampled.stats.barriers, full.stats.barriers);
        assert_eq!(sampled.stats.blocks_total, 64);
        // Timing of a homogeneous kernel is identical under sampling.
        assert!((sampled.seconds() - full.seconds()).abs() < 1e-12);
    }

    #[test]
    fn sampled_ids_are_spread_and_clamped() {
        assert_eq!(
            SimMode::Sampled(4).executed_ids(64).unwrap(),
            vec![8, 24, 40, 56]
        );
        assert_eq!(SimMode::Sampled(10).executed_ids(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(SimMode::Sampled(1).executed_ids(100).unwrap(), vec![50]);
    }

    #[test]
    fn explicit_blocks_mode() {
        let mut g = gpu();
        let dst = g.alloc_f32(16 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 16, 32);
        let r = g
            .launch(&cfg, SimMode::Blocks(vec![3, 3, 7]), id_kernel(dst))
            .unwrap();
        assert_eq!(r.executed_blocks, vec![3, 7]);
        assert_eq!(g.download_f32_at(dst, 3 * 32, 1).unwrap()[0], 3.0);
        assert_eq!(g.download_f32_at(dst, 7 * 32, 1).unwrap()[0], 7.0);
    }

    #[test]
    fn out_of_range_block_ids_are_rejected() {
        let mut g = gpu();
        let dst = g.alloc_f32(16 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 16, 32);
        let err = g.launch(&cfg, SimMode::Blocks(vec![3, 99]), id_kernel(dst));
        match err {
            Err(SimError::InvalidLaunch(msg)) => {
                assert!(msg.contains("99") && msg.contains("out of range"), "{msg}");
            }
            other => panic!("expected InvalidLaunch, got {other:?}"),
        }
        // Nothing executed: block 3's slot is untouched.
        assert_eq!(g.download_f32_at(dst, 3 * 32, 1).unwrap()[0], 0.0);
    }

    #[test]
    fn empty_selection_is_an_error() {
        let mut g = gpu();
        let cfg = LaunchConfig::new("noop", 4, 32);
        let err = g.launch(&cfg, SimMode::Blocks(vec![]), |_| {});
        assert!(matches!(err, Err(SimError::InvalidLaunch(_))));
    }

    #[test]
    fn invalid_config_is_rejected_before_execution() {
        let mut g = gpu();
        let cfg = LaunchConfig::new("bad", 1, 2048);
        let ran = AtomicBool::new(false);
        let err = g.launch(&cfg, SimMode::Full, |_| ran.store(true, Ordering::Relaxed));
        assert!(err.is_err());
        assert!(!ran.load(Ordering::Relaxed));
    }

    #[test]
    fn constant_cache_reset_between_launches() {
        let mut g = gpu();
        g.write_const_f32(0, &[1.0]).unwrap();
        let cfg = LaunchConfig::new("cm", 1, 32);
        let kernel = |blk: &mut BlockCtx| {
            blk.each_warp(|w| {
                w.ld_const(&crate::warp::lane_addrs_uniform(0), LaneMask::ALL);
            });
        };
        let a = g.launch(&cfg, SimMode::Full, kernel).unwrap();
        let b = g.launch(&cfg, SimMode::Full, kernel).unwrap();
        assert_eq!(a.stats.cm_misses, 1);
        assert_eq!(b.stats.cm_misses, 1);
    }

    /// A kernel exercising every counter class: global stores, read-only
    /// loads (shared input lines), constant reads (shared filter lines),
    /// shared-memory staging, and arithmetic. Each warp stages through its
    /// own shared-memory slice, so the kernel is also race-free under the
    /// sanitizer's racecheck tool.
    fn mixed_kernel(src: GmBuf, dst: GmBuf) -> impl Fn(&mut BlockCtx) + Sync {
        move |blk: &mut BlockCtx| {
            let id = blk.dims.block_id as u64;
            blk.each_warp(|w| {
                // Overlapping read-only loads: blocks share input lines.
                let a = lane_addrs(src.f32_addr((id % 4) * 8), 4);
                let x = w.ld_global_ro::<1>(&a, LaneMask::ALL);
                // Divergent constant reads spanning a few lines.
                let ca = crate::warp::lane_addrs_from(|l| ((id as usize + l) % 96) as u64 * 4);
                let c = w.ld_const(&ca, LaneMask::ALL);
                // Stage through this warp's own shared-memory slice.
                let sa = lane_addrs(w.warp_id() as u64 * 128, 4);
                let vals: [[f32; 1]; 32] = std::array::from_fn(|l| [x[l][0] + c[l]]);
                w.st_shared::<1>(&sa, &vals, LaneMask::ALL);
                let staged = w.ld_shared::<1>(&sa, LaneMask::ALL);
                // Write the block's slot.
                let d = lane_addrs(dst.f32_addr(id * 32), 4);
                w.st_global::<1>(&d, &staged, LaneMask::ALL);
                w.count_fma(17);
                w.count_alu(3);
            });
            blk.sync();
        }
    }

    #[test]
    fn parallel_launch_is_bit_identical_to_serial() {
        let build = |parallelism: Parallelism| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let src = g.alloc_f32(64).unwrap();
            let dst = g.alloc_f32(24 * 32).unwrap();
            let vals: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
            g.upload_f32(src, &vals).unwrap();
            g.write_const_f32(0, &vec![2.0; 128]).unwrap();
            let cfg = LaunchConfig::new("mixed", 24, 64).with_smem(1024);
            let r = g
                .launch(&cfg, SimMode::Full, mixed_kernel(src, dst))
                .unwrap();
            (r, g.download_f32(dst).unwrap())
        };
        let (serial, serial_mem) = build(Parallelism::Serial);
        for threads in [2, 4, 7] {
            let (par, par_mem) = build(Parallelism::Threads(threads));
            assert_eq!(par.stats, serial.stats, "{threads} threads");
            assert_eq!(par_mem, serial_mem, "{threads} threads");
            assert_eq!(par.executed_blocks, serial.executed_blocks);
            assert!((par.seconds() - serial.seconds()).abs() == 0.0);
        }
    }

    #[test]
    fn trace_events_are_ordered_and_identical_across_parallelism() {
        use crate::trace::{TraceEvent, TraceLaunch, TraceSink};
        use std::sync::Arc;

        #[derive(Default)]
        struct Log {
            begins: usize,
            ends: usize,
            blocks: Vec<(usize, Vec<TraceEvent>)>,
        }
        struct Collect(Arc<Mutex<Log>>);
        impl TraceSink for Collect {
            fn launch_begin(&mut self, launch: &TraceLaunch<'_>) {
                assert_eq!(launch.kernel, "mixed");
                assert_eq!(launch.grid_blocks, 24);
                assert_eq!(launch.executed_blocks, 24);
                self.0.lock().unwrap().begins += 1;
            }
            fn block_events(&mut self, block_id: usize, events: &[TraceEvent]) {
                let mut log = self.0.lock().unwrap();
                log.blocks.push((block_id, events.to_vec()));
            }
            fn launch_end(&mut self, stats: &KernelStats) {
                assert!(stats.gm_st_transactions > 0);
                self.0.lock().unwrap().ends += 1;
            }
        }

        let run = |parallelism: Parallelism, traced: bool| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let src = g.alloc_f32(64).unwrap();
            let dst = g.alloc_f32(24 * 32).unwrap();
            let vals: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
            g.upload_f32(src, &vals).unwrap();
            g.write_const_f32(0, &vec![2.0; 128]).unwrap();
            let log = Arc::new(Mutex::new(Log::default()));
            if traced {
                g.set_trace_sink(Some(Box::new(Collect(log.clone()))));
            }
            let cfg = LaunchConfig::new("mixed", 24, 64).with_smem(1024);
            let r = g
                .launch(&cfg, SimMode::Full, mixed_kernel(src, dst))
                .unwrap();
            g.set_trace_sink(None);
            let log = Arc::try_unwrap(log).ok().unwrap().into_inner().unwrap();
            (r, g.download_f32(dst).unwrap(), log)
        };

        let (serial, serial_mem, serial_log) = run(Parallelism::Serial, true);
        assert_eq!((serial_log.begins, serial_log.ends), (1, 1));
        let ids: Vec<usize> = serial_log.blocks.iter().map(|(b, _)| *b).collect();
        assert_eq!(ids, (0..24).collect::<Vec<_>>());
        assert!(serial_log.blocks.iter().all(|(_, ev)| !ev.is_empty()));

        // Tracing must not perturb execution...
        let (bare, bare_mem, _) = run(Parallelism::Serial, false);
        assert_eq!(serial.stats, bare.stats);
        assert_eq!(serial_mem, bare_mem);

        // ...and a threaded launch must deliver the identical event stream
        // in the identical order.
        for threads in [2, 4, 7] {
            let (par, par_mem, par_log) = run(Parallelism::Threads(threads), true);
            assert_eq!(par.stats, serial.stats, "{threads} threads");
            assert_eq!(par_mem, serial_mem, "{threads} threads");
            assert_eq!((par_log.begins, par_log.ends), (1, 1));
            assert_eq!(par_log.blocks, serial_log.blocks, "{threads} threads");
        }
    }

    #[test]
    fn faulted_traced_launch_delivers_clean_prefix_and_no_end() {
        use crate::trace::{TraceEvent, TraceLaunch, TraceSink};
        use std::sync::Arc;

        #[derive(Default)]
        struct Log {
            ends: usize,
            block_ids: Vec<usize>,
        }
        struct Collect(Arc<Mutex<Log>>);
        impl TraceSink for Collect {
            fn launch_begin(&mut self, _launch: &TraceLaunch<'_>) {}
            fn block_events(&mut self, block_id: usize, _events: &[TraceEvent]) {
                self.0.lock().unwrap().block_ids.push(block_id);
            }
            fn launch_end(&mut self, _stats: &KernelStats) {
                self.0.lock().unwrap().ends += 1;
            }
        }

        let run = |parallelism: Parallelism| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let buf = g.alloc_f32(64).unwrap();
            g.fill_f32(buf, 0.0).unwrap();
            let log = Arc::new(Mutex::new(Log::default()));
            g.set_trace_sink(Some(Box::new(Collect(log.clone()))));
            let cfg = LaunchConfig::new("oob test", 8, 32);
            g.launch(&cfg, SimMode::Full, oob_kernel(buf, 64))
                .unwrap_err();
            g.set_trace_sink(None);
            Arc::try_unwrap(log).ok().unwrap().into_inner().unwrap()
        };
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let log = run(parallelism);
            // Block 2 faults: only the clean prefix 0..2 reaches the sink,
            // and the launch never ends.
            assert_eq!(log.block_ids, vec![0, 1], "{parallelism:?}");
            assert_eq!(log.ends, 0, "{parallelism:?}");
        }
    }

    #[test]
    fn oversized_smem_request_is_rejected_before_any_block_runs() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let limit = g.spec().max_smem_per_block;
            let cfg = LaunchConfig::new("fat smem", 4, 32).with_smem(limit + 1);
            let ran = AtomicBool::new(false);
            let err = g
                .launch(&cfg, SimMode::Full, |_| ran.store(true, Ordering::Relaxed))
                .unwrap_err();
            match err {
                SimError::InvalidLaunch(msg) => {
                    assert!(
                        msg.contains("fat smem")
                            && msg.contains("shared-memory")
                            && msg.contains(&limit.to_string()),
                        "{msg}"
                    );
                }
                other => panic!("expected InvalidLaunch, got {other:?} ({parallelism:?})"),
            }
            assert!(!ran.load(Ordering::Relaxed), "{parallelism:?}");
        }
    }

    /// A randomized scatter/gather kernel: every warp stores to random
    /// (possibly colliding) addresses inside its block's private slice
    /// under a random lane mask, immediately loads the same addresses back
    /// (read-your-own-writes through the parallel-mode journal), and
    /// scatters the loaded values again. Everything derives from a PRNG
    /// seeded by (block, warp, round), so serial and parallel execution
    /// face exactly the same traffic.
    fn scatter_kernel(dst: GmBuf, slice: u64) -> impl Fn(&mut BlockCtx) + Sync {
        use crate::testrng::Xoshiro;
        use crate::warp::lane_addrs_from;
        move |blk: &mut BlockCtx| {
            let id = blk.dims.block_id as u64;
            for round in 0..3u64 {
                blk.each_warp(|w| {
                    let mut rng = Xoshiro::seeded(
                        0x5CA7_7E21 ^ (id << 20) ^ ((w.warp_id() as u64) << 8) ^ round,
                    );
                    let mut offs = [0u64; WARP_SIZE];
                    for o in offs.iter_mut() {
                        *o = id * slice + rng.next() % slice;
                    }
                    let addrs = lane_addrs_from(|l| dst.f32_addr(offs[l]));
                    let vals: [[f32; 1]; WARP_SIZE] =
                        std::array::from_fn(|_| [(rng.next() % 997) as f32]);
                    let mask = LaneMask(rng.next() as u32);
                    w.st_global::<1>(&addrs, &vals, mask);
                    let back = w.ld_global::<1>(&addrs, mask);
                    let mut offs2 = [0u64; WARP_SIZE];
                    for o in offs2.iter_mut() {
                        *o = id * slice + rng.next() % slice;
                    }
                    let addrs2 = lane_addrs_from(|l| dst.f32_addr(offs2[l]));
                    w.st_global::<1>(&addrs2, &back, mask);
                });
                blk.sync();
            }
        }
    }

    #[test]
    fn randomized_scatter_is_bit_identical_across_parallelism() {
        const BLOCKS: u64 = 12;
        const SLICE: u64 = 192;
        let run = |parallelism: Parallelism| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let dst = g.alloc_f32(BLOCKS * SLICE).unwrap();
            g.fill_f32(dst, -1.0).unwrap();
            let cfg = LaunchConfig::new("scatter", BLOCKS as usize, 64);
            let r = g
                .launch(&cfg, SimMode::Full, scatter_kernel(dst, SLICE))
                .unwrap();
            (r, g.download_f32(dst).unwrap())
        };
        let (serial, serial_mem) = run(Parallelism::Serial);
        for threads in [2, 3, 5] {
            let (par, par_mem) = run(Parallelism::Threads(threads));
            assert_eq!(par.stats, serial.stats, "{threads} threads");
            assert_eq!(par_mem, serial_mem, "{threads} threads");
        }
    }

    #[test]
    fn parallel_sampled_launch_matches_serial() {
        let run = |parallelism: Parallelism| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let dst = g.alloc_f32(64 * 32).unwrap();
            let cfg = LaunchConfig::new("id", 64, 32);
            g.launch(&cfg, SimMode::Sampled(8), id_kernel(dst)).unwrap()
        };
        let serial = run(Parallelism::Serial);
        let par = run(Parallelism::Threads(4));
        assert_eq!(par.stats, serial.stats);
        assert_eq!(par.executed_blocks, serial.executed_blocks);
    }

    #[test]
    fn parallelism_env_parsing() {
        // from_env reads the process environment, which tests must not
        // mutate (other tests run concurrently); exercise the pure parts.
        assert_eq!(Parallelism::Serial.worker_threads(), 1);
        assert_eq!(Parallelism::Threads(0).worker_threads(), 1);
        assert_eq!(Parallelism::Threads(6).worker_threads(), 6);
        assert!(Parallelism::auto().worker_threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }

    #[test]
    fn builder_methods() {
        let cfg = LaunchConfig::new("k", 2, 64)
            .with_smem(1024)
            .with_regs(64)
            .with_overlap(OverlapMode::Serial);
        assert_eq!(cfg.smem_bytes, 1024);
        assert_eq!(cfg.regs_per_thread, 64);
        assert_eq!(cfg.overlap, OverlapMode::Serial);
    }

    #[test]
    fn report_shorthands() {
        let mut g = gpu();
        let dst = g.alloc_f32(32).unwrap();
        let cfg = LaunchConfig::new("id", 1, 32);
        let r = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
        assert_eq!(r.gflops(), r.timing.gflops);
        assert_eq!(r.seconds(), r.timing.t_total);
    }

    #[test]
    fn fill_f32_reports_success() {
        let mut g = gpu();
        let buf = g.alloc_f32(16).unwrap();
        g.fill_f32(buf, 2.5).unwrap();
        assert_eq!(g.download_f32(buf).unwrap(), vec![2.5; 16]);
    }

    /// A kernel whose block 2 runs one lane off the end of `buf`.
    fn oob_kernel(buf: GmBuf, len: u64) -> impl Fn(&mut BlockCtx) + Sync {
        move |blk: &mut BlockCtx| {
            let id = blk.dims.block_id;
            blk.each_warp(|w| {
                let base = if id == 2 { len - 16 } else { 0 };
                let addrs = lane_addrs(buf.f32_addr(base), 4);
                w.ld_global::<1>(&addrs, LaneMask::ALL);
            });
        }
    }

    #[test]
    fn device_fault_surfaces_as_kernel_fault_error() {
        let mut g = gpu();
        let buf = g.alloc_f32(64).unwrap();
        g.fill_f32(buf, 0.0).unwrap();
        let cfg = LaunchConfig::new("oob test", 4, 32);
        let err = g
            .launch(&cfg, SimMode::Full, oob_kernel(buf, 64))
            .unwrap_err();
        let fault = err.device_fault().expect("expected a kernel fault");
        assert_eq!(fault.kernel, "oob test");
        assert_eq!(fault.block, 2);
        assert_eq!(fault.warp, 0);
        // Lanes 0..16 still read in-bounds floats; lane 16 runs off the end.
        assert_eq!(fault.lane, 16);
        assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }));
        // The device remains usable after the fault.
        let cfg_ok = LaunchConfig::new("id", 2, 32);
        let dst = g.alloc_f32(2 * 32).unwrap();
        g.launch(&cfg_ok, SimMode::Full, id_kernel(dst)).unwrap();
    }

    #[test]
    fn parallel_fault_matches_serial_fault() {
        let run = |parallelism: Parallelism| {
            let mut g = Gpu::new(GpuSpec::kepler_k40m()).with_parallelism(parallelism);
            let buf = g.alloc_f32(64).unwrap();
            g.fill_f32(buf, 0.0).unwrap();
            let cfg = LaunchConfig::new("oob test", 8, 32);
            g.launch(&cfg, SimMode::Full, oob_kernel(buf, 64))
                .unwrap_err()
        };
        let serial = run(Parallelism::Serial);
        let par = run(Parallelism::Threads(4));
        assert_eq!(serial.device_fault(), par.device_fault());
    }

    #[test]
    fn kernel_panic_is_contained() {
        let mut g = gpu();
        let cfg = LaunchConfig::new("panicky", 2, 32);
        let err = g
            .launch(&cfg, SimMode::Full, |blk: &mut BlockCtx| {
                if blk.dims.block_id == 1 {
                    panic!("boom {}", blk.dims.block_id);
                }
            })
            .unwrap_err();
        let fault = err.device_fault().expect("expected a kernel fault");
        assert_eq!(fault.block, 1);
        match &fault.kind {
            FaultKind::KernelPanic { message } => assert!(message.contains("boom"), "{message}"),
            other => panic!("expected KernelPanic, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_budget_aborts_runaway_kernels() {
        let mut g = gpu().with_step_budget(1_000);
        let cfg = LaunchConfig::new("runaway", 1, 32);
        let err = g
            .launch(&cfg, SimMode::Full, |blk: &mut BlockCtx| loop {
                blk.each_warp(|w| w.count_alu(1));
            })
            .unwrap_err();
        let fault = err.device_fault().expect("expected a kernel fault");
        assert!(matches!(fault.kind, FaultKind::Timeout { steps } if steps > 1_000));
    }

    #[test]
    fn injection_targets_exact_block_and_lane() {
        let mut g = gpu().with_fault_injection(FaultInjection {
            kernel_substr: "id".into(),
            block: 5,
            op_index: 0,
            lane: 3,
            addr_xor: 1 << 41,
        });
        let dst = g.alloc_f32(8 * 32).unwrap();
        let cfg = LaunchConfig::new("id", 8, 32);
        let err = g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap_err();
        let fault = err.device_fault().expect("expected a kernel fault");
        assert_eq!((fault.block, fault.lane), (5, 3));
        // Disarm: the same launch now succeeds.
        g.set_fault_injection(None);
        g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
    }

    #[test]
    fn injection_skips_non_matching_kernels() {
        let mut g = gpu().with_fault_injection(FaultInjection {
            kernel_substr: "does-not-match".into(),
            block: 0,
            op_index: 0,
            lane: 0,
            addr_xor: 1 << 41,
        });
        let dst = g.alloc_f32(32).unwrap();
        let cfg = LaunchConfig::new("id", 1, 32);
        g.launch(&cfg, SimMode::Full, id_kernel(dst)).unwrap();
    }
}

//! Error type for the simulator.

use crate::fault::DeviceFault;

/// Errors reported by the simulator's fallible public API (allocation,
/// launch configuration, host transfers, kernel execution).
///
/// Out-of-bounds *device* accesses inside a kernel no longer panic across
/// the launch boundary: they are contained per block and surface as
/// [`SimError::KernelFault`] carrying the faulting kernel/block/warp/thread
/// and address — the simulator's equivalent of the CUDA driver reporting a
/// sticky device fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation did not fit in the remaining memory.
    AllocTooLarge {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
        /// Which memory space was exhausted (`"global"` or `"constant"`).
        space: &'static str,
    },
    /// A launch configuration is impossible on the target architecture
    /// (zero threads, too much shared memory, occupancy of zero, ...).
    InvalidLaunch(String),
    /// A host transfer referenced a range outside the buffer.
    HostTransferOutOfBounds {
        /// First byte accessed.
        offset: u64,
        /// Length of the access in bytes.
        len: u64,
        /// Size of the buffer in bytes.
        buffer: u64,
    },
    /// A kernel faulted on the device: out-of-bounds access, a sanitizer
    /// finding (uninitialized read, race hazard, barrier divergence), a
    /// watchdog timeout, or a contained kernel panic. The launch's side
    /// effects on device memory are unspecified (partial), exactly as on
    /// real hardware.
    KernelFault(Box<DeviceFault>),
    /// An internal invariant of the launcher failed (a bug in the
    /// simulator itself, not in the kernel under test).
    Internal(String),
}

impl SimError {
    /// The contained [`DeviceFault`] when this error is a kernel fault.
    pub fn device_fault(&self) -> Option<&DeviceFault> {
        match self {
            SimError::KernelFault(f) => Some(f),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::AllocTooLarge {
                requested,
                available,
                space,
            } => write!(
                f,
                "{space} memory allocation of {requested} bytes exceeds {available} available"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::HostTransferOutOfBounds {
                offset,
                len,
                buffer,
            } => write!(
                f,
                "host transfer of {len} bytes at offset {offset} exceeds buffer of {buffer} bytes"
            ),
            SimError::KernelFault(fault) => write!(f, "kernel fault: {fault}"),
            SimError::Internal(msg) => write!(f, "simulator internal error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<DeviceFault> for SimError {
    fn from(fault: DeviceFault) -> Self {
        SimError::KernelFault(Box::new(fault))
    }
}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, MemSpace};

    #[test]
    fn display_messages() {
        let e = SimError::AllocTooLarge {
            requested: 100,
            available: 10,
            space: "global",
        };
        assert!(e.to_string().contains("100"));
        let e = SimError::InvalidLaunch("zero threads".into());
        assert!(e.to_string().contains("zero threads"));
        let e = SimError::HostTransferOutOfBounds {
            offset: 4,
            len: 8,
            buffer: 8,
        };
        assert!(e.to_string().contains("offset 4"));
        let e = SimError::Internal("slot not filled".into());
        assert!(e.to_string().contains("internal"));
    }

    #[test]
    fn kernel_fault_display_and_accessor() {
        let fault = DeviceFault {
            kernel: "gemm 64x64".into(),
            block: 11,
            warp: 3,
            lane: 17,
            kind: FaultKind::UninitializedRead {
                space: MemSpace::Shared,
                addr: 0x40,
                width: 4,
            },
        };
        let e = SimError::from(fault.clone());
        assert_eq!(e.device_fault(), Some(&fault));
        let s = e.to_string();
        assert!(s.contains("kernel fault"), "{s}");
        assert!(s.contains("block 11"), "{s}");
        assert!(s.contains("uninitialized"), "{s}");
        assert_eq!(SimError::InvalidLaunch("x".into()).device_fault(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SimError>();
    }
}

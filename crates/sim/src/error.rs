//! Error type for the simulator.

/// Errors reported by the simulator's fallible public API (allocation,
/// launch configuration, host transfers).
///
/// Out-of-bounds *device* accesses inside a kernel panic instead: they are
/// kernel bugs, equivalent to a CUDA fault, and a panic carries the faulting
/// address straight to the failing test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation did not fit in the remaining memory.
    AllocTooLarge {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
        /// Which memory space was exhausted (`"global"` or `"constant"`).
        space: &'static str,
    },
    /// A launch configuration is impossible on the target architecture
    /// (zero threads, too much shared memory, occupancy of zero, ...).
    InvalidLaunch(String),
    /// A host transfer referenced a range outside the buffer.
    HostTransferOutOfBounds {
        /// First byte accessed.
        offset: u64,
        /// Length of the access in bytes.
        len: u64,
        /// Size of the buffer in bytes.
        buffer: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::AllocTooLarge {
                requested,
                available,
                space,
            } => write!(
                f,
                "{space} memory allocation of {requested} bytes exceeds {available} available"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::HostTransferOutOfBounds {
                offset,
                len,
                buffer,
            } => write!(
                f,
                "host transfer of {len} bytes at offset {offset} exceeds buffer of {buffer} bytes"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::AllocTooLarge {
            requested: 100,
            available: 10,
            space: "global",
        };
        assert!(e.to_string().contains("100"));
        let e = SimError::InvalidLaunch("zero threads".into());
        assert!(e.to_string().contains("zero threads"));
        let e = SimError::HostTransferOutOfBounds {
            offset: 4,
            len: 8,
            buffer: 8,
        };
        assert!(e.to_string().contains("offset 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SimError>();
    }
}
